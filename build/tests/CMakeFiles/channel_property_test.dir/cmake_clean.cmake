file(REMOVE_RECURSE
  "CMakeFiles/channel_property_test.dir/channel_property_test.cc.o"
  "CMakeFiles/channel_property_test.dir/channel_property_test.cc.o.d"
  "channel_property_test"
  "channel_property_test.pdb"
  "channel_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
