# Empty dependencies file for channel_property_test.
# This may be replaced when dependencies are built.
