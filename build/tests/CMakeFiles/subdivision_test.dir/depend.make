# Empty dependencies file for subdivision_test.
# This may be replaced when dependencies are built.
