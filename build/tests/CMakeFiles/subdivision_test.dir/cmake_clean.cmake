file(REMOVE_RECURSE
  "CMakeFiles/subdivision_test.dir/subdivision_test.cc.o"
  "CMakeFiles/subdivision_test.dir/subdivision_test.cc.o.d"
  "subdivision_test"
  "subdivision_test.pdb"
  "subdivision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subdivision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
