file(REMOVE_RECURSE
  "CMakeFiles/geom_property_test.dir/geom_property_test.cc.o"
  "CMakeFiles/geom_property_test.dir/geom_property_test.cc.o.d"
  "geom_property_test"
  "geom_property_test.pdb"
  "geom_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
