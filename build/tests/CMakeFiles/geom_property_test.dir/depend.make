# Empty dependencies file for geom_property_test.
# This may be replaced when dependencies are built.
