# Empty dependencies file for trapmap_stress_test.
# This may be replaced when dependencies are built.
