file(REMOVE_RECURSE
  "CMakeFiles/trapmap_stress_test.dir/trapmap_stress_test.cc.o"
  "CMakeFiles/trapmap_stress_test.dir/trapmap_stress_test.cc.o.d"
  "trapmap_stress_test"
  "trapmap_stress_test.pdb"
  "trapmap_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trapmap_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
