# Empty compiler generated dependencies file for dtree_test.
# This may be replaced when dependencies are built.
