file(REMOVE_RECURSE
  "CMakeFiles/dtree_test.dir/dtree_test.cc.o"
  "CMakeFiles/dtree_test.dir/dtree_test.cc.o.d"
  "dtree_test"
  "dtree_test.pdb"
  "dtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
