# Empty compiler generated dependencies file for weighted_dtree_test.
# This may be replaced when dependencies are built.
