file(REMOVE_RECURSE
  "CMakeFiles/weighted_dtree_test.dir/weighted_dtree_test.cc.o"
  "CMakeFiles/weighted_dtree_test.dir/weighted_dtree_test.cc.o.d"
  "weighted_dtree_test"
  "weighted_dtree_test.pdb"
  "weighted_dtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_dtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
