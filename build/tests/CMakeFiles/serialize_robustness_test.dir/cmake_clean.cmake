file(REMOVE_RECURSE
  "CMakeFiles/serialize_robustness_test.dir/serialize_robustness_test.cc.o"
  "CMakeFiles/serialize_robustness_test.dir/serialize_robustness_test.cc.o.d"
  "serialize_robustness_test"
  "serialize_robustness_test.pdb"
  "serialize_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
