file(REMOVE_RECURSE
  "CMakeFiles/pager_property_test.dir/pager_property_test.cc.o"
  "CMakeFiles/pager_property_test.dir/pager_property_test.cc.o.d"
  "pager_property_test"
  "pager_property_test.pdb"
  "pager_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pager_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
