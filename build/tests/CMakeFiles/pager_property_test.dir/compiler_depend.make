# Empty compiler generated dependencies file for pager_property_test.
# This may be replaced when dependencies are built.
