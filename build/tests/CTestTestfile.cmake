# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/subdivision_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/dtree_test[1]_include.cmake")
include("/root/repo/build/tests/broadcast_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_dtree_test[1]_include.cmake")
include("/root/repo/build/tests/pager_property_test[1]_include.cmake")
include("/root/repo/build/tests/channel_property_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/geom_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/trapmap_stress_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
