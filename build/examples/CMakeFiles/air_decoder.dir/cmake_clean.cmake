file(REMOVE_RECURSE
  "CMakeFiles/air_decoder.dir/air_decoder.cpp.o"
  "CMakeFiles/air_decoder.dir/air_decoder.cpp.o.d"
  "air_decoder"
  "air_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
