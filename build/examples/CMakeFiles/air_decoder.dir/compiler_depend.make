# Empty compiler generated dependencies file for air_decoder.
# This may be replaced when dependencies are built.
