# Empty dependencies file for skewed_hotspots.
# This may be replaced when dependencies are built.
