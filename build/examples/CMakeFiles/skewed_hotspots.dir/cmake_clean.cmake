file(REMOVE_RECURSE
  "CMakeFiles/skewed_hotspots.dir/skewed_hotspots.cpp.o"
  "CMakeFiles/skewed_hotspots.dir/skewed_hotspots.cpp.o.d"
  "skewed_hotspots"
  "skewed_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
