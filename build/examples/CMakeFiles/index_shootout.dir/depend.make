# Empty dependencies file for index_shootout.
# This may be replaced when dependencies are built.
