file(REMOVE_RECURSE
  "CMakeFiles/index_shootout.dir/index_shootout.cpp.o"
  "CMakeFiles/index_shootout.dir/index_shootout.cpp.o.d"
  "index_shootout"
  "index_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
