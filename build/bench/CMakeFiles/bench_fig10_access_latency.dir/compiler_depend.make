# Empty compiler generated dependencies file for bench_fig10_access_latency.
# This may be replaced when dependencies are built.
