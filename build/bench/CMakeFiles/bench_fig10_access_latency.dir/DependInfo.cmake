
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_access_latency.cc" "bench/CMakeFiles/bench_fig10_access_latency.dir/bench_fig10_access_latency.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_access_latency.dir/bench_fig10_access_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtree/CMakeFiles/dtree_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dtree_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/dtree_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/subdivision/CMakeFiles/dtree_subdivision.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dtree_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dtree_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dtree_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
