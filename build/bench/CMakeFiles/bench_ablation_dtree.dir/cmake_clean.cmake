file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dtree.dir/bench_ablation_dtree.cc.o"
  "CMakeFiles/bench_ablation_dtree.dir/bench_ablation_dtree.cc.o.d"
  "bench_ablation_dtree"
  "bench_ablation_dtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
