# Empty dependencies file for bench_ablation_dtree.
# This may be replaced when dependencies are built.
