file(REMOVE_RECURSE
  "CMakeFiles/bench_msweep.dir/bench_msweep.cc.o"
  "CMakeFiles/bench_msweep.dir/bench_msweep.cc.o.d"
  "bench_msweep"
  "bench_msweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
