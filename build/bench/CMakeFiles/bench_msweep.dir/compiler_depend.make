# Empty compiler generated dependencies file for bench_msweep.
# This may be replaced when dependencies are built.
