# Empty dependencies file for bench_fig11_index_size.
# This may be replaced when dependencies are built.
