file(REMOVE_RECURSE
  "CMakeFiles/bench_skewed_access.dir/bench_skewed_access.cc.o"
  "CMakeFiles/bench_skewed_access.dir/bench_skewed_access.cc.o.d"
  "bench_skewed_access"
  "bench_skewed_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skewed_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
