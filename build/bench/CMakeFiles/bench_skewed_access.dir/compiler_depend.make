# Empty compiler generated dependencies file for bench_skewed_access.
# This may be replaced when dependencies are built.
