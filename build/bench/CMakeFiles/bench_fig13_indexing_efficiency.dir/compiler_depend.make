# Empty compiler generated dependencies file for bench_fig13_indexing_efficiency.
# This may be replaced when dependencies are built.
