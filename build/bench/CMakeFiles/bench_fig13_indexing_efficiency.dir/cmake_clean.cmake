file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_indexing_efficiency.dir/bench_fig13_indexing_efficiency.cc.o"
  "CMakeFiles/bench_fig13_indexing_efficiency.dir/bench_fig13_indexing_efficiency.cc.o.d"
  "bench_fig13_indexing_efficiency"
  "bench_fig13_indexing_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_indexing_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
