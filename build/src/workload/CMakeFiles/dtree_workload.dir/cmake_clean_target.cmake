file(REMOVE_RECURSE
  "libdtree_workload.a"
)
