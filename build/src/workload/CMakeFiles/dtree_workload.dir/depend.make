# Empty dependencies file for dtree_workload.
# This may be replaced when dependencies are built.
