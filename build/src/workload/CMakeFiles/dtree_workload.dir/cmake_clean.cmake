file(REMOVE_RECURSE
  "CMakeFiles/dtree_workload.dir/datasets.cc.o"
  "CMakeFiles/dtree_workload.dir/datasets.cc.o.d"
  "libdtree_workload.a"
  "libdtree_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
