# Empty compiler generated dependencies file for dtree_geom.
# This may be replaced when dependencies are built.
