file(REMOVE_RECURSE
  "CMakeFiles/dtree_geom.dir/polygon.cc.o"
  "CMakeFiles/dtree_geom.dir/polygon.cc.o.d"
  "CMakeFiles/dtree_geom.dir/predicates.cc.o"
  "CMakeFiles/dtree_geom.dir/predicates.cc.o.d"
  "CMakeFiles/dtree_geom.dir/triangle.cc.o"
  "CMakeFiles/dtree_geom.dir/triangle.cc.o.d"
  "libdtree_geom.a"
  "libdtree_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
