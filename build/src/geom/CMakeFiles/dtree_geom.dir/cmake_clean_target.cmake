file(REMOVE_RECURSE
  "libdtree_geom.a"
)
