
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/polygon.cc" "src/geom/CMakeFiles/dtree_geom.dir/polygon.cc.o" "gcc" "src/geom/CMakeFiles/dtree_geom.dir/polygon.cc.o.d"
  "/root/repo/src/geom/predicates.cc" "src/geom/CMakeFiles/dtree_geom.dir/predicates.cc.o" "gcc" "src/geom/CMakeFiles/dtree_geom.dir/predicates.cc.o.d"
  "/root/repo/src/geom/triangle.cc" "src/geom/CMakeFiles/dtree_geom.dir/triangle.cc.o" "gcc" "src/geom/CMakeFiles/dtree_geom.dir/triangle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dtree_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
