# Empty dependencies file for dtree_broadcast.
# This may be replaced when dependencies are built.
