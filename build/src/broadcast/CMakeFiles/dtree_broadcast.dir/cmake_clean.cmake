file(REMOVE_RECURSE
  "CMakeFiles/dtree_broadcast.dir/air_index.cc.o"
  "CMakeFiles/dtree_broadcast.dir/air_index.cc.o.d"
  "CMakeFiles/dtree_broadcast.dir/channel.cc.o"
  "CMakeFiles/dtree_broadcast.dir/channel.cc.o.d"
  "CMakeFiles/dtree_broadcast.dir/experiment.cc.o"
  "CMakeFiles/dtree_broadcast.dir/experiment.cc.o.d"
  "CMakeFiles/dtree_broadcast.dir/pager.cc.o"
  "CMakeFiles/dtree_broadcast.dir/pager.cc.o.d"
  "libdtree_broadcast.a"
  "libdtree_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
