
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broadcast/air_index.cc" "src/broadcast/CMakeFiles/dtree_broadcast.dir/air_index.cc.o" "gcc" "src/broadcast/CMakeFiles/dtree_broadcast.dir/air_index.cc.o.d"
  "/root/repo/src/broadcast/channel.cc" "src/broadcast/CMakeFiles/dtree_broadcast.dir/channel.cc.o" "gcc" "src/broadcast/CMakeFiles/dtree_broadcast.dir/channel.cc.o.d"
  "/root/repo/src/broadcast/experiment.cc" "src/broadcast/CMakeFiles/dtree_broadcast.dir/experiment.cc.o" "gcc" "src/broadcast/CMakeFiles/dtree_broadcast.dir/experiment.cc.o.d"
  "/root/repo/src/broadcast/pager.cc" "src/broadcast/CMakeFiles/dtree_broadcast.dir/pager.cc.o" "gcc" "src/broadcast/CMakeFiles/dtree_broadcast.dir/pager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/subdivision/CMakeFiles/dtree_subdivision.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dtree_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dtree_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
