file(REMOVE_RECURSE
  "libdtree_broadcast.a"
)
