file(REMOVE_RECURSE
  "libdtree_common.a"
)
