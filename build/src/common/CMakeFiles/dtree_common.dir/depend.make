# Empty dependencies file for dtree_common.
# This may be replaced when dependencies are built.
