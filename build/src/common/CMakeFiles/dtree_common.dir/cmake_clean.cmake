file(REMOVE_RECURSE
  "CMakeFiles/dtree_common.dir/status.cc.o"
  "CMakeFiles/dtree_common.dir/status.cc.o.d"
  "libdtree_common.a"
  "libdtree_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
