# Empty dependencies file for dtree_baselines.
# This may be replaced when dependencies are built.
