
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/kirkpatrick/kirkpatrick.cc" "src/baselines/CMakeFiles/dtree_baselines.dir/kirkpatrick/kirkpatrick.cc.o" "gcc" "src/baselines/CMakeFiles/dtree_baselines.dir/kirkpatrick/kirkpatrick.cc.o.d"
  "/root/repo/src/baselines/rstar/rstar.cc" "src/baselines/CMakeFiles/dtree_baselines.dir/rstar/rstar.cc.o" "gcc" "src/baselines/CMakeFiles/dtree_baselines.dir/rstar/rstar.cc.o.d"
  "/root/repo/src/baselines/trapmap/trapmap.cc" "src/baselines/CMakeFiles/dtree_baselines.dir/trapmap/trapmap.cc.o" "gcc" "src/baselines/CMakeFiles/dtree_baselines.dir/trapmap/trapmap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broadcast/CMakeFiles/dtree_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/subdivision/CMakeFiles/dtree_subdivision.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dtree_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dtree_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
