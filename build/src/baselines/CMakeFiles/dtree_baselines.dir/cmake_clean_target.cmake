file(REMOVE_RECURSE
  "libdtree_baselines.a"
)
