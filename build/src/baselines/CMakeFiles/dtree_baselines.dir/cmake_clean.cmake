file(REMOVE_RECURSE
  "CMakeFiles/dtree_baselines.dir/kirkpatrick/kirkpatrick.cc.o"
  "CMakeFiles/dtree_baselines.dir/kirkpatrick/kirkpatrick.cc.o.d"
  "CMakeFiles/dtree_baselines.dir/rstar/rstar.cc.o"
  "CMakeFiles/dtree_baselines.dir/rstar/rstar.cc.o.d"
  "CMakeFiles/dtree_baselines.dir/trapmap/trapmap.cc.o"
  "CMakeFiles/dtree_baselines.dir/trapmap/trapmap.cc.o.d"
  "libdtree_baselines.a"
  "libdtree_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
