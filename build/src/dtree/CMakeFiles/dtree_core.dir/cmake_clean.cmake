file(REMOVE_RECURSE
  "CMakeFiles/dtree_core.dir/dtree.cc.o"
  "CMakeFiles/dtree_core.dir/dtree.cc.o.d"
  "CMakeFiles/dtree_core.dir/partition.cc.o"
  "CMakeFiles/dtree_core.dir/partition.cc.o.d"
  "CMakeFiles/dtree_core.dir/program.cc.o"
  "CMakeFiles/dtree_core.dir/program.cc.o.d"
  "CMakeFiles/dtree_core.dir/serialize.cc.o"
  "CMakeFiles/dtree_core.dir/serialize.cc.o.d"
  "libdtree_core.a"
  "libdtree_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
