# Empty compiler generated dependencies file for dtree_core.
# This may be replaced when dependencies are built.
