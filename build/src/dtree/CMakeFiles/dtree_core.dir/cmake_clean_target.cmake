file(REMOVE_RECURSE
  "libdtree_core.a"
)
