# Empty dependencies file for dtree_subdivision.
# This may be replaced when dependencies are built.
