file(REMOVE_RECURSE
  "libdtree_subdivision.a"
)
