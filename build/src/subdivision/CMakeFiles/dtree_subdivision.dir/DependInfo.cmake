
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/subdivision/extent.cc" "src/subdivision/CMakeFiles/dtree_subdivision.dir/extent.cc.o" "gcc" "src/subdivision/CMakeFiles/dtree_subdivision.dir/extent.cc.o.d"
  "/root/repo/src/subdivision/subdivision.cc" "src/subdivision/CMakeFiles/dtree_subdivision.dir/subdivision.cc.o" "gcc" "src/subdivision/CMakeFiles/dtree_subdivision.dir/subdivision.cc.o.d"
  "/root/repo/src/subdivision/triangulate.cc" "src/subdivision/CMakeFiles/dtree_subdivision.dir/triangulate.cc.o" "gcc" "src/subdivision/CMakeFiles/dtree_subdivision.dir/triangulate.cc.o.d"
  "/root/repo/src/subdivision/voronoi.cc" "src/subdivision/CMakeFiles/dtree_subdivision.dir/voronoi.cc.o" "gcc" "src/subdivision/CMakeFiles/dtree_subdivision.dir/voronoi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/dtree_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dtree_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
