file(REMOVE_RECURSE
  "CMakeFiles/dtree_subdivision.dir/extent.cc.o"
  "CMakeFiles/dtree_subdivision.dir/extent.cc.o.d"
  "CMakeFiles/dtree_subdivision.dir/subdivision.cc.o"
  "CMakeFiles/dtree_subdivision.dir/subdivision.cc.o.d"
  "CMakeFiles/dtree_subdivision.dir/triangulate.cc.o"
  "CMakeFiles/dtree_subdivision.dir/triangulate.cc.o.d"
  "CMakeFiles/dtree_subdivision.dir/voronoi.cc.o"
  "CMakeFiles/dtree_subdivision.dir/voronoi.cc.o.d"
  "libdtree_subdivision.a"
  "libdtree_subdivision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_subdivision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
