// CRC-32 (IEEE 802.3 polynomial, reflected) over byte spans.
//
// Used as the frame check sequence of broadcast packet framing: the sender
// appends the CRC of each packet's payload, the client recomputes it on
// every received frame and treats a mismatch as a lost packet. Catches all
// single-burst errors up to 32 bits and any 1-3 bit flips — the error
// classes the lossy-channel model injects.

#ifndef DTREE_COMMON_CRC32_H_
#define DTREE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtree {

/// CRC-32/ISO-HDLC: init 0xffffffff, reflected, final xor 0xffffffff.
/// Crc32("123456789") == 0xcbf43926.
uint32_t Crc32(const uint8_t* data, size_t size);

inline uint32_t Crc32(const std::vector<uint8_t>& bytes) {
  return Crc32(bytes.data(), bytes.size());
}

}  // namespace dtree

#endif  // DTREE_COMMON_CRC32_H_
