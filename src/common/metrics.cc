#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dtree {

int Histogram::BucketIndex(double v) {
  if (!(v >= 1.0)) return 0;  // v < 1, negative, or NaN
  const double l = std::log2(v) * kSubBuckets;
  if (l >= kOctaves * kSubBuckets) return kNumBuckets - 1;
  return 1 + static_cast<int>(l);
}

double Histogram::BucketLower(int i) {
  DTREE_DCHECK(i >= 0 && i < kNumBuckets);
  if (i == 0) return 0.0;
  return std::exp2(static_cast<double>(i - 1) / kSubBuckets);
}

double Histogram::BucketUpper(int i) {
  DTREE_DCHECK(i >= 0 && i < kNumBuckets);
  if (i == 0) return 1.0;
  return std::exp2(static_cast<double>(i) / kSubBuckets);
}

void Histogram::Add(double v) {
  ++counts_[BucketIndex(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest rank, 1-based; rank r means "the r-th smallest sample".
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_))));
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] == 0) continue;
    if (cum + counts_[i] >= rank) {
      // Interpolate linearly between the bucket bounds by rank position.
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(counts_[i]);
      const double lo = BucketLower(i);
      const double hi = i == kNumBuckets - 1 ? max_ : BucketUpper(i);
      return std::clamp(lo + (hi - lo) * frac, min_, max_);
    }
    cum += counts_[i];
  }
  return max_;  // unreachable when counts are consistent
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  return &histograms_[name];
}

Counter* MetricsRegistry::counter(const std::string& name) {
  return &counters_[name];
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

void MetricsRegistry::MergeOrdered(const MetricsRegistry& other) {
  for (const auto& [name, hist] : other.histograms_) {
    histograms_[name].Merge(hist);
  }
  for (const auto& [name, ctr] : other.counters_) {
    counters_[name].Merge(ctr);
  }
}

}  // namespace dtree
