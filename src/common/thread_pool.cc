#include "common/thread_pool.h"

namespace dtree {

int ThreadPool::DefaultThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads > 0 ? num_threads : DefaultThreads()) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunTasks() {
  int completed = 0;
  int i;
  while ((i = next_task_.fetch_add(1, std::memory_order_relaxed)) <
         num_tasks_) {
    (*fn_)(i);
    ++completed;
  }
  if (completed > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_tasks_ += completed;
    if (done_tasks_ == num_tasks_) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    // A late wakeup for an already-drained generation is harmless: the
    // claim loop sees next_task_ >= num_tasks_ and claims nothing.
    RunTasks();
  }
}

void ThreadPool::ParallelFor(int num_tasks,
                             const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (int i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    done_tasks_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  RunTasks();  // the caller is one of the pool's threads
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return done_tasks_ == num_tasks_; });
  fn_ = nullptr;
}

}  // namespace dtree
