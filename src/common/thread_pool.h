// Fixed-size worker pool with a blocking ParallelFor.
//
// The pool exists so that every parallel stage in the repository (the
// experiment driver today; index build and Voronoi clipping later) shares
// one primitive instead of spawning ad-hoc std::threads. Work is handed
// out as task indices [0, num_tasks) claimed atomically, so callers get
// dynamic load balancing for free; determinism is the caller's job (keep
// per-task state private and merge in task order).

#ifndef DTREE_COMMON_THREAD_POOL_H_
#define DTREE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtree {

class ThreadPool {
 public:
  /// A pool that runs work on `num_threads` threads total, counting the
  /// caller of ParallelFor (so num_threads - 1 workers are spawned).
  /// num_threads <= 0 selects DefaultThreads().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in ParallelFor (>= 1).
  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, num_tasks), distributing indices across
  /// the pool, and returns once all calls have completed. fn must be safe
  /// to invoke concurrently from multiple threads and must not throw.
  /// Calls with num_tasks <= 1 (or on a single-thread pool) run inline on
  /// the caller — same semantics, no synchronization cost.
  void ParallelFor(int num_tasks, const std::function<void(int)>& fn);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();
  void RunTasks();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for a new generation
  std::condition_variable done_cv_;   ///< ParallelFor waits for completion
  uint64_t generation_ = 0;           ///< bumps once per ParallelFor
  bool stop_ = false;

  const std::function<void(int)>* fn_ = nullptr;
  int num_tasks_ = 0;
  std::atomic<int> next_task_{0};
  int done_tasks_ = 0;  ///< guarded by mutex_
};

}  // namespace dtree

#endif  // DTREE_COMMON_THREAD_POOL_H_
