// Status / Result error-handling primitives for the dtree_air library.
//
// Library code does not throw exceptions; fallible operations return a
// Status (or a Result<T> which is a Status plus a value). This mirrors the
// convention used by production database engines (RocksDB, Arrow).

#ifndef DTREE_COMMON_STATUS_H_
#define DTREE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dtree {

/// Machine-readable error category attached to a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller supplied malformed input
  kFailedPrecondition,///< object not in a state where the call is legal
  kNotFound,          ///< lookup target does not exist
  kOutOfRange,        ///< index / capacity exceeded
  kInternal,          ///< invariant violation inside the library
  kUnimplemented,     ///< feature intentionally not supported
  kDataLoss,          ///< received data failed an integrity check (CRC,
                      ///< truncated frame) — distinguishable from caller
                      ///< error so clients can trigger re-tune recovery
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK or a code plus a message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;   // propagate
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A Status carrying a value on success.
///
/// Usage:
///   Result<Tree> r = Build(...);
///   if (!r.ok()) return r.status();
///   Tree t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK Status: failure. Constructing from an OK
  /// Status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from the evaluated expression.
#define DTREE_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::dtree::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace dtree

#endif  // DTREE_COMMON_STATUS_H_
