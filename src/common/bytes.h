// Fixed-width little-endian serialization helpers.
//
// The air-index packet formats (Table 2 of the paper) use 2-byte ids,
// 2-byte headers, 2/4-byte pointers, and 4-byte coordinates. ByteWriter /
// ByteReader provide the corresponding primitives over a growable buffer.

#ifndef DTREE_COMMON_BYTES_H_
#define DTREE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace dtree {

/// Appends fixed-width little-endian fields to an internal byte vector.
class ByteWriter {
 public:
  /// Pre-sizes the buffer when the final byte count is known (node
  /// serializers know it exactly from their size accounting), avoiding the
  /// grow-and-copy churn that dominates large builds.
  void Reserve(size_t bytes) { buf_.reserve(buf_.size() + bytes); }

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v & 0xff));
    buf_.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  }

  /// Range-checked narrowing write: InvalidArgument when v does not fit a
  /// u16 (nothing is written). Serializers use this for counts that come
  /// from in-memory structures whose size is not bounded by the wire
  /// format — a bare static_cast would silently truncate and round-trip
  /// to a different structure.
  Status PutU16Checked(uint64_t v, const char* what) {
    if (v > 0xffffu) {
      return Status::InvalidArgument(std::string(what) + " " +
                                     std::to_string(v) +
                                     " exceeds the u16 wire field");
    }
    PutU16(static_cast<uint16_t>(v));
    return Status::OK();
  }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
    }
  }

  /// Coordinates are serialized as IEEE-754 binary32 (4 bytes, Table 2).
  void PutF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU32(bits);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads fixed-width little-endian fields from a byte span.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Status::OutOfRange("ReadU8 past end");
    *out = data_[pos_++];
    return Status::OK();
  }

  Status ReadU16(uint16_t* out) {
    if (remaining() < 2) return Status::OutOfRange("ReadU16 past end");
    *out = static_cast<uint16_t>(data_[pos_]) |
           static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Status::OutOfRange("ReadU32 past end");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ReadF32(float* out) {
    uint32_t bits;
    DTREE_RETURN_IF_ERROR(ReadU32(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace dtree

#endif  // DTREE_COMMON_BYTES_H_
