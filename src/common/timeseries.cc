#include "common/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dtree {

void MinMaxGauge::Record(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
}

void MinMaxGauge::Merge(const MinMaxGauge& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

TimeSeries::TimeSeries(double window_width) : window_width_(window_width) {
  DTREE_CHECK(window_width > 0.0);
}

int64_t TimeSeries::WindowIndex(double t) const {
  if (!(t > 0.0)) return 0;  // negatives and NaN clamp into window 0
  return static_cast<int64_t>(std::floor(t / window_width_));
}

Counter* TimeSeries::counter(const std::string& name, int64_t window) {
  return &counters_[name][window];
}

Histogram* TimeSeries::histogram(const std::string& name, int64_t window) {
  return &histograms_[name][window];
}

MinMaxGauge* TimeSeries::gauge(const std::string& name, int64_t window) {
  return &gauges_[name][window];
}

namespace {

template <typename T>
const T* FindIn(const std::map<std::string, std::map<int64_t, T>>& by_name,
                const std::string& name, int64_t window) {
  const auto it = by_name.find(name);
  if (it == by_name.end()) return nullptr;
  const auto wit = it->second.find(window);
  return wit == it->second.end() ? nullptr : &wit->second;
}

}  // namespace

const Counter* TimeSeries::FindCounter(const std::string& name,
                                       int64_t window) const {
  return FindIn(counters_, name, window);
}

const Histogram* TimeSeries::FindHistogram(const std::string& name,
                                           int64_t window) const {
  return FindIn(histograms_, name, window);
}

const MinMaxGauge* TimeSeries::FindGauge(const std::string& name,
                                         int64_t window) const {
  return FindIn(gauges_, name, window);
}

uint64_t TimeSeries::CounterValue(const std::string& name,
                                  int64_t window) const {
  const Counter* c = FindCounter(name, window);
  return c == nullptr ? 0 : c->value();
}

uint64_t TimeSeries::CounterTotal(const std::string& name) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  uint64_t total = 0;
  for (const auto& [window, c] : it->second) total += c.value();
  return total;
}

double TimeSeries::HistogramSumTotal(const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return 0.0;
  double total = 0.0;
  for (const auto& [window, h] : it->second) total += h.Sum();
  return total;
}

uint64_t TimeSeries::HistogramCountTotal(const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return 0;
  uint64_t total = 0;
  for (const auto& [window, h] : it->second) total += h.TotalCount();
  return total;
}

void TimeSeries::MergeOrdered(const TimeSeries& other) {
  DTREE_CHECK(window_width_ == other.window_width_);
  for (const auto& [name, windows] : other.counters_) {
    auto& mine = counters_[name];
    for (const auto& [window, c] : windows) mine[window].Merge(c);
  }
  for (const auto& [name, windows] : other.histograms_) {
    auto& mine = histograms_[name];
    for (const auto& [window, h] : windows) mine[window].Merge(h);
  }
  for (const auto& [name, windows] : other.gauges_) {
    auto& mine = gauges_[name];
    for (const auto& [window, g] : windows) mine[window].Merge(g);
  }
}

std::vector<int64_t> TimeSeries::Windows() const {
  std::vector<int64_t> out;
  const auto collect = [&out](const auto& by_name) {
    for (const auto& [name, windows] : by_name) {
      for (const auto& [window, unused] : windows) out.push_back(window);
    }
  };
  collect(counters_);
  collect(histograms_);
  collect(gauges_);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dtree
