#include "common/crc32.h"

#include <array>

namespace dtree {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace dtree
