// Deterministic pseudo-random number generation.
//
// All randomized components (workload generators, the randomized
// incremental trapezoidal map, query streams) take an explicit Rng so that
// every experiment in the repository is reproducible from a seed.

#ifndef DTREE_COMMON_RNG_H_
#define DTREE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace dtree {

/// Seeded 64-bit Mersenne-Twister wrapper with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Independent stream derived from (seed, stream) with a SplitMix64
  /// finalizer, so sharded consumers (e.g. the parallel experiment driver)
  /// get decorrelated generators whose sequences depend only on the seed
  /// and the stream id — never on thread count or scheduling.
  static Rng ForStream(uint64_t seed, uint64_t stream) {
    return Rng(MixStream(seed, stream));
  }

  /// The stream-derivation mix itself, for components that key nested
  /// streams (e.g. the lossy channel's per-query, per-attempt loss
  /// processes): MixStream(MixStream(seed, query), attempt) yields
  /// decorrelated, reproducible sub-streams.
  static uint64_t MixStream(uint64_t seed, uint64_t stream) {
    return SplitMix64(seed ^ SplitMix64(stream));
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DTREE_DCHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  /// SplitMix64 finalizer (Steele et al.); bijective, avalanche-quality
  /// mixing even for adjacent inputs like stream ids 0, 1, 2, ...
  static uint64_t SplitMix64(uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace dtree

#endif  // DTREE_COMMON_RNG_H_
