// Deterministic pseudo-random number generation.
//
// All randomized components (workload generators, the randomized
// incremental trapezoidal map, query streams) take an explicit Rng so that
// every experiment in the repository is reproducible from a seed.

#ifndef DTREE_COMMON_RNG_H_
#define DTREE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace dtree {

/// Seeded 64-bit Mersenne-Twister wrapper with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DTREE_DCHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dtree

#endif  // DTREE_COMMON_RNG_H_
