// Deterministic metric primitives: a log-bucketed Histogram, a Counter,
// and a MetricsRegistry of named instances.
//
// The bucket layout is fixed at compile time (kSubBuckets buckets per
// octave over [1, 2^kOctaves), plus an underflow and an overflow bucket),
// so BucketIndex is a pure function of the value and two histograms over
// the same samples hold identical counts no matter how the samples were
// split across shards. Merging adds integer counts — commutative and
// associative — so every count-derived statistic (percentiles, bucket
// tables) is shard-order-independent. The double-valued accumulators
// (sum) are NOT order-independent; consumers that need bit-identical
// means must merge shards in a fixed order, exactly like the experiment
// driver's partial-sum merge (see MetricsRegistry::MergeOrdered).
//
// There is deliberately no locking: the intended pattern is one private
// Histogram (or registry) per shard, written single-threaded on the hot
// path, merged after the parallel section.

#ifndef DTREE_COMMON_METRICS_H_
#define DTREE_COMMON_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace dtree {

/// Fixed-layout log-bucketed histogram of non-negative samples.
///
/// Resolution is 2^(1/kSubBuckets) ≈ 9% relative error per bucket;
/// count, sum, min and max are tracked exactly, so Mean/Min/Max are
/// exact and only Percentile is bucket-approximate.
class Histogram {
 public:
  /// Buckets per power of two.
  static constexpr int kSubBuckets = 8;
  /// Octaves covered by the log range: values in [1, 2^kOctaves).
  static constexpr int kOctaves = 32;
  /// Bucket 0 holds v < 1 (including 0); the last bucket holds
  /// v >= 2^kOctaves.
  static constexpr int kNumBuckets = kOctaves * kSubBuckets + 2;

  /// Bucket index for a value; pure function of v, total order preserving.
  /// Negative and non-finite-below-1 values clamp into bucket 0, +inf and
  /// NaN into the overflow bucket.
  static int BucketIndex(double v);

  /// Inclusive lower / exclusive upper value bound of bucket i.
  static double BucketLower(int i);
  static double BucketUpper(int i);

  void Add(double v);

  /// Adds another histogram's samples. Counts merge order-independently;
  /// the sum (and therefore Mean) is order-dependent like any
  /// floating-point summation — merge shards in a fixed order when
  /// bit-identical means matter.
  void Merge(const Histogram& other);

  uint64_t TotalCount() const { return count_; }
  bool empty() const { return count_ == 0; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  uint64_t BucketCount(int i) const { return counts_[i]; }

  /// Approximate p-quantile, p in [0, 1]: the value at nearest rank
  /// ceil(p * count), linearly interpolated inside its bucket and clamped
  /// to the exact [Min, Max]. Derived from integer counts only, so it is
  /// identical for any shard merge order. Returns 0 on an empty
  /// histogram.
  double Percentile(double p) const;

 private:
  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Monotone event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  void Merge(const Counter& other) { value_ += other.value_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Named histograms and counters. Shards each own a registry, write it
/// lock-free, and the owner merges them with MergeOrdered in shard order
/// — the same determinism contract as the experiment driver's partial-sum
/// merge: integer statistics are order-independent by construction, and
/// the fixed merge order pins the floating-point sums too.
class MetricsRegistry {
 public:
  /// Returns the named instance, creating it on first use. Pointers stay
  /// valid for the registry's lifetime (node-based map).
  Histogram* histogram(const std::string& name);
  Counter* counter(const std::string& name);

  /// nullptr when the name was never written.
  const Histogram* FindHistogram(const std::string& name) const;
  const Counter* FindCounter(const std::string& name) const;

  /// Merges `other` into this registry, matching by name. Call once per
  /// shard, in shard order.
  void MergeOrdered(const MetricsRegistry& other);

  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, Counter>& counters() const { return counters_; }

 private:
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Counter> counters_;
};

}  // namespace dtree

#endif  // DTREE_COMMON_METRICS_H_
