// Deterministic windowed metrics: a fixed-width time axis cut into
// windows, each window holding named Counters, min/max Gauges, and
// Histogram snapshots (common/metrics.h).
//
// The window index is a pure function of the timestamp
// (floor(t / window_width)), so two series over the same samples hold
// identical per-window integer counts no matter how the samples were
// split across shards. The determinism contract is MetricsRegistry's,
// extended along the time axis: every shard accumulates into a private
// TimeSeries on the hot path (no locking anywhere), and the owner merges
// the shards with MergeOrdered in shard order — count-derived statistics
// (bucket tables, percentiles, gauge min/max) are merge-order-independent
// by construction, and the fixed merge order pins the floating-point sums
// bit-for-bit too, for any thread count.
//
// The intended key is the broadcast-cycle index: the fleet telemetry
// layer (broadcast/telemetry.h) sets window_width = cycle_packets, so
// window w describes what the client population did during the w-th
// broadcast cycle.

#ifndef DTREE_COMMON_TIMESERIES_H_
#define DTREE_COMMON_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace dtree {

/// Min/max gauge over the values recorded into one window. Unlike a
/// Histogram it keeps no distribution — just the envelope — so it is the
/// right shape for sampled instantaneous quantities (queue depths,
/// in-flight counts) where only the window's extremes matter. Merging
/// takes min/max, which is commutative and associative: gauge statistics
/// are merge-order-independent.
class MinMaxGauge {
 public:
  void Record(double v);
  void Merge(const MinMaxGauge& other);

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  /// 0 when no value was recorded (like Histogram::Min/Max).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named, windowed metric instances over a fixed-width time axis.
class TimeSeries {
 public:
  /// `window_width` must be positive; timestamps are expected >= 0.
  explicit TimeSeries(double window_width = 1.0);

  double window_width() const { return window_width_; }

  /// Window owning timestamp t: floor(t / window_width), a pure function
  /// of (t, window_width). Negative timestamps clamp into window 0.
  int64_t WindowIndex(double t) const;

  /// Returns the named instance in window w, creating it on first use.
  /// Pointers stay valid for the series' lifetime (node-based maps).
  Counter* counter(const std::string& name, int64_t window);
  Histogram* histogram(const std::string& name, int64_t window);
  MinMaxGauge* gauge(const std::string& name, int64_t window);

  /// nullptr when (name, window) was never written.
  const Counter* FindCounter(const std::string& name, int64_t window) const;
  const Histogram* FindHistogram(const std::string& name,
                                 int64_t window) const;
  const MinMaxGauge* FindGauge(const std::string& name, int64_t window) const;

  /// Value helpers for exporters: 0 / empty defaults when absent.
  uint64_t CounterValue(const std::string& name, int64_t window) const;
  /// Sum of the named counter across every window.
  uint64_t CounterTotal(const std::string& name) const;
  /// Sum of the named histogram's Sum() across every window, accumulated
  /// in ascending window order (deterministic).
  double HistogramSumTotal(const std::string& name) const;
  /// Total sample count of the named histogram across every window.
  uint64_t HistogramCountTotal(const std::string& name) const;

  /// Merges `other` into this series, matching by (name, window). The
  /// window widths must agree. Call once per shard, in shard order.
  void MergeOrdered(const TimeSeries& other);

  /// Every window index holding any metric, ascending and deduplicated.
  std::vector<int64_t> Windows() const;

  bool empty() const {
    return counters_.empty() && histograms_.empty() && gauges_.empty();
  }

  const std::map<std::string, std::map<int64_t, Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::map<int64_t, Histogram>>& histograms()
      const {
    return histograms_;
  }
  const std::map<std::string, std::map<int64_t, MinMaxGauge>>& gauges()
      const {
    return gauges_;
  }

 private:
  double window_width_;
  std::map<std::string, std::map<int64_t, Counter>> counters_;
  std::map<std::string, std::map<int64_t, Histogram>> histograms_;
  std::map<std::string, std::map<int64_t, MinMaxGauge>> gauges_;
};

}  // namespace dtree

#endif  // DTREE_COMMON_TIMESERIES_H_
