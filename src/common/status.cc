#include "common/status.h"

namespace dtree {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace dtree
