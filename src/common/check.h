// Invariant-checking macros.
//
// DTREE_CHECK fires in all build types and is reserved for invariants whose
// violation would make continuing meaningless (memory-safety hazards,
// broken tree structure). Input validation belongs in Status returns, not
// here.

#ifndef DTREE_COMMON_CHECK_H_
#define DTREE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dtree::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "DTREE_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace dtree::internal

#define DTREE_CHECK(cond)                                         \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::dtree::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                              \
  } while (0)

#ifndef NDEBUG
#define DTREE_DCHECK(cond) DTREE_CHECK(cond)
#else
#define DTREE_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // DTREE_COMMON_CHECK_H_
