// Trapezoidal-map planar point location (the paper's "trap-tree"
// baseline): the randomized incremental construction of de Berg et al.,
// Computational Geometry ch. 6, adapted to the air.
//
// The search structure is a DAG with two internal node kinds:
//  * x-node — a segment endpoint; queries branch on lexicographic (x, y)
//    order (the textbook symbolic shear, which also handles vertical
//    Voronoi edges and endpoints with equal x);
//  * y-node — a segment; queries branch on above/below.
// Leaves are trapezoids, each labeled at build time with the data region
// containing it; on the air a leaf is simply a data pointer embedded in
// its parent's child slot.
//
// Implementation note: this construction maintains the map purely through
// the DAG — the "which trapezoids does the new segment cross" walk
// re-locates the continuation point through the DAG instead of following
// trapezoid neighbor pointers. This is O(k log n) instead of O(k) per
// insertion (irrelevant at this scale) and eliminates the neighbor-pointer
// bookkeeping that is the classic source of degeneracy bugs.
//
// Per Table 2: node sizes use bid 2 B, pointer 4 B, coordinate 4 B, no
// header (x-node payload 1 coordinate, y-node payload 4). The DAG is paged
// top-down (first preceding parent) and broadcast in creation order, which
// provably places every parent before its children even though subtrees
// are shared — so the client only ever jumps forward on the channel.

#ifndef DTREE_BASELINES_TRAPMAP_TRAPMAP_H_
#define DTREE_BASELINES_TRAPMAP_TRAPMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/pager.h"
#include "common/rng.h"
#include "common/status.h"
#include "subdivision/subdivision.h"

namespace dtree::baselines {

class TrapMap final : public bcast::AirIndex {
 public:
  struct Options {
    int packet_capacity = 128;
    /// Seed for the random insertion order (the construction is
    /// randomized incremental).
    uint64_t seed = 1;
    bool merge_leaf_packets = true;
  };

  static Result<TrapMap> Build(const sub::Subdivision& sub,
                               const Options& options);

  // --- AirIndex -----------------------------------------------------------
  std::string name() const override { return "trap-tree"; }
  int NumIndexPackets() const override { return paging_.num_packets; }
  size_t IndexBytes() const override { return paging_.used_bytes; }
  int PacketCapacity() const override { return options_.packet_capacity; }
  Result<bcast::ProbeTrace> Probe(const geom::Point& p) const override;

  /// In-memory point location through the DAG, no packet accounting.
  /// Returns -1 when the descent exceeds the probe step budget (a
  /// construction bug; never happens for a valid map).
  int Locate(const geom::Point& p) const;

  // --- byte-level broadcast form -------------------------------------------
  // Node wire format (little-endian; sizes per Table 2, no header):
  //   u16  bid      — bit 15: node kind (0 = x-node, 1 = y-node);
  //                   bits 0..14: broadcast position mod 2^15 (diagnostic)
  //   u32  left     — pointer (broadcast/frame.h encoding): node pointer
  //   u32  right      for an internal child, data pointer (region id) for
  //                   a trapezoid leaf
  //   payload       — x-node: f32 endpoint x (14 B total);
  //                   y-node: 4 x f32 segment p.x p.y q.x q.y (22 B total)
  //
  // The root node always serializes at packet 0, offset 0 (creation order
  // broadcasts it first), so the decoder needs no out-of-band entry point.
  // Caveat: an x-node branches on the lexicographic (x, y) order in memory
  // but only x fits the 4-byte wire payload, so an on-the-wire query with
  // p.x exactly equal to the endpoint's x may take the other branch — a
  // measure-zero event for continuous query distributions.

  /// One broadcast cycle's worth of index packets, each exactly
  /// `packet_capacity` bytes (zero-padded). InvalidArgument for the
  /// degenerate map with no internal DAG nodes.
  Result<std::vector<std::vector<uint8_t>>> SerializePackets() const;

  /// Hardened client-side query straight from (untrusted) packet bytes:
  /// every read is bounds-checked, every pointer field range-checked, and
  /// total decode work is bounded by bcast::DecodeBudget, so malformed or
  /// corrupted packets yield a Status (kDataLoss), never a crash or hang.
  /// With `framed` (bcast::FramePackets output) each packet's CRC-32 is
  /// verified on first touch. Returns the region id.
  static Result<int> QueryFromPackets(
      const std::vector<std::vector<uint8_t>>& packets, int packet_capacity,
      bool framed, int num_regions, const geom::Point& p,
      std::vector<int>* packets_read);

  // --- introspection -------------------------------------------------------
  int num_dag_nodes() const;
  int num_alive_trapezoids() const;
  int num_segments() const { return static_cast<int>(segs_.size()); }
  /// Structural validation: every alive trapezoid is reachable, DAG
  /// internal nodes have two children, and random probe points land in a
  /// trapezoid that geometrically contains them.
  Status CheckInvariants(int sample_points, uint64_t seed) const;

 private:
  struct Seg {
    geom::Point p, q;  ///< p lex< q
  };
  struct Trap {
    int top = -1;     ///< segment bounding above
    int bottom = -1;  ///< segment bounding below
    int leftp = -1;   ///< point id bounding the slab on the left
    int rightp = -1;  ///< point id bounding the slab on the right
    int leaf = -1;    ///< DAG leaf node id
    int region = -1;  ///< data region label (assigned after construction)
    bool alive = true;
  };
  struct DagNode {
    enum Kind : uint8_t { kXNode, kYNode, kLeaf };
    Kind kind = kLeaf;
    int index = -1;  ///< point id / segment id / trapezoid id
    int left = -1;   ///< x: lex-less side; y: above side
    int right = -1;  ///< x: lex-greater-or-equal side; y: below side
    /// Insertion step at which this slot became an internal node. Parents
    /// always turn internal strictly before (or, within one step, at a
    /// smaller slot id than) their internal children, so broadcasting in
    /// (step, id) order yields a forward-only channel layout.
    int step = 0;
  };

  TrapMap() = default;

  int NewPoint(const geom::Point& p);
  int NewTrap(const Trap& t);
  int NewLeaf(int trap_id);

  /// True when `pt` is strictly above segment s (lexicographic shear
  /// applied for on-line ties via `s_hint`, the segment being inserted).
  bool AboveForInsert(const geom::Point& pt, int seg_id,
                      const Seg& s_hint) const;

  /// DAG descent for the point on `s` infinitesimally lex-right of `w`.
  int LocateTarget(const Seg& s, const geom::Point& w) const;

  /// All trapezoids crossed by s, left to right.
  std::vector<int> FindCrossedTrapezoids(const Seg& s) const;

  void InsertSegment(const Seg& s);

  /// Query-time descent; returns the leaf trapezoid id and appends the
  /// visited internal DAG node ids to `visited` when non-null.
  int LocateTrapezoid(const geom::Point& p,
                      std::vector<int>* visited) const;

  Status AssignRegions(const sub::Subdivision& sub);
  Status Page();

  Options options_;
  std::vector<geom::Point> points_;
  std::vector<Seg> segs_;
  std::vector<Trap> traps_;
  std::vector<DagNode> dag_;
  int root_ = -1;

  // Broadcast layout (internal DAG nodes only; leaves ride in pointers).
  std::vector<int> bfs_order_;          ///< bfs position -> dag node id
  std::vector<int> node_bfs_pos_;       ///< dag node id -> bfs position
  bcast::PagingResult paging_;
};

}  // namespace dtree::baselines

#endif  // DTREE_BASELINES_TRAPMAP_TRAPMAP_H_
