#include "baselines/trapmap/trapmap.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "broadcast/frame.h"
#include "broadcast/params.h"
#include "common/bytes.h"
#include "common/check.h"
#include "geom/predicates.h"

namespace dtree::baselines {

namespace {

using geom::Point;

/// Orientation tolerance: the subdivision is stitched to geom::kMergeEps,
/// so genuinely off-line points produce values far above this.
constexpr double kOrientTol = 1e-6;

/// x-node: bid + two pointers + one coordinate (Table 2, header 0).
constexpr size_t kXNodeSize =
    bcast::kBidSize + 2 * bcast::kPointerSize + bcast::kCoordinateSize;
/// y-node: bid + two pointers + one segment (4 coordinates).
constexpr size_t kYNodeSize =
    bcast::kBidSize + 2 * bcast::kPointerSize + 4 * bcast::kCoordinateSize;

bool LexLE(const Point& a, const Point& b) {
  return a.LexLess(b) || (a.x == b.x && a.y == b.y);
}

}  // namespace

int TrapMap::NewPoint(const Point& p) {
  points_.push_back(p);
  return static_cast<int>(points_.size()) - 1;
}

int TrapMap::NewTrap(const Trap& t) {
  traps_.push_back(t);
  const int id = static_cast<int>(traps_.size()) - 1;
  traps_[id].leaf = NewLeaf(id);
  return id;
}

int TrapMap::NewLeaf(int trap_id) {
  DagNode n;
  n.kind = DagNode::kLeaf;
  n.index = trap_id;
  dag_.push_back(n);
  return static_cast<int>(dag_.size()) - 1;
}

bool TrapMap::AboveForInsert(const Point& pt, int seg_id,
                             const Seg& s_hint) const {
  const Seg& t = segs_[seg_id];
  const double v = geom::OrientValue(t.p, t.q, pt);
  if (std::abs(v) > kOrientTol) return v > 0.0;
  // pt lies on t's line (a shared endpoint): break the tie by where the
  // inserted segment heads, i.e. the side of its right endpoint.
  const double u = geom::OrientValue(t.p, t.q, s_hint.q);
  if (std::abs(u) > kOrientTol) return u > 0.0;
  const double w = geom::OrientValue(t.p, t.q, s_hint.p);
  return w > 0.0;
}

int TrapMap::LocateTarget(const Seg& s, const Point& w) const {
  // Target: the point of s infinitesimally lex-after w (the symbolic
  // shear's reading of "just right of the vertical line through w").
  int node = root_;
  for (int guard = 0; guard < (1 << 22); ++guard) {
    const DagNode& n = dag_[node];
    switch (n.kind) {
      case DagNode::kLeaf:
        return n.index;
      case DagNode::kXNode: {
        const Point& v = points_[n.index];
        node = LexLE(v, w) ? n.right : n.left;
        break;
      }
      case DagNode::kYNode: {
        // Where s sits at lex position w (limit of the shear).
        Point ps;
        if (s.p.x == s.q.x) {
          ps = {s.p.x, std::clamp(w.y, std::min(s.p.y, s.q.y),
                                  std::max(s.p.y, s.q.y))};
        } else {
          const double u =
              std::clamp((w.x - s.p.x) / (s.q.x - s.p.x), 0.0, 1.0);
          ps = {s.p.x + u * (s.q.x - s.p.x), s.p.y + u * (s.q.y - s.p.y)};
        }
        const Seg& t = segs_[n.index];
        double v = geom::OrientValue(t.p, t.q, ps);
        if (std::abs(v) <= kOrientTol) {
          // On the line (shared endpoint): decide by where s heads.
          v = geom::OrientValue(t.p, t.q, s.q);
          if (std::abs(v) <= kOrientTol) {
            v = geom::OrientValue(t.p, t.q, s.p);
          }
        }
        node = v > 0.0 ? n.left : n.right;
        break;
      }
    }
  }
  DTREE_CHECK(false && "trap-map locate did not terminate");
  return -1;
}

std::vector<int> TrapMap::FindCrossedTrapezoids(const Seg& s) const {
  std::vector<int> out;
  int cur = LocateTarget(s, s.p);
  out.push_back(cur);
  while (points_[traps_[cur].rightp].LexLess(s.q)) {
    const int next = LocateTarget(s, points_[traps_[cur].rightp]);
    DTREE_CHECK(next != cur);
    out.push_back(next);
    cur = next;
  }
  return out;
}

void TrapMap::InsertSegment(const Seg& s) {
  const std::vector<int> crossed = FindCrossedTrapezoids(s);
  const int sid = static_cast<int>(segs_.size());
  segs_.push_back(s);
  const int pid_p = NewPoint(s.p);
  const int pid_q = NewPoint(s.q);

  const Trap first = traps_[crossed.front()];
  const Trap last = traps_[crossed.back()];
  const bool has_left = !(points_[first.leftp].x == s.p.x &&
                          points_[first.leftp].y == s.p.y);
  const bool has_right = !(points_[last.rightp].x == s.q.x &&
                           points_[last.rightp].y == s.q.y);

  int cap_left = -1, cap_right = -1;
  if (has_left) {
    cap_left = NewTrap(
        Trap{first.top, first.bottom, first.leftp, pid_p, -1, -1, true});
  }
  if (has_right) {
    cap_right = NewTrap(
        Trap{last.top, last.bottom, pid_q, last.rightp, -1, -1, true});
  }

  // Above/below chains with merging: a chain trapezoid closes at an old
  // slab boundary only when the boundary vertex lies on its side of s.
  const int k = static_cast<int>(crossed.size());
  std::vector<int> above(k), below(k);
  int cur_above =
      NewTrap(Trap{first.top, sid, pid_p, -1, -1, -1, true});
  int cur_below =
      NewTrap(Trap{sid, first.bottom, pid_p, -1, -1, -1, true});
  above[0] = cur_above;
  below[0] = cur_below;
  for (int i = 1; i < k; ++i) {
    const Trap& prev = traps_[crossed[i - 1]];
    const Trap& cur = traps_[crossed[i]];
    const int rp = prev.rightp;
    if (AboveForInsert(points_[rp], sid, s)) {
      // Vertex above s: the wall persists above, the region below merges.
      traps_[cur_above].rightp = rp;
      cur_above = NewTrap(Trap{cur.top, sid, rp, -1, -1, -1, true});
    } else {
      traps_[cur_below].rightp = rp;
      cur_below = NewTrap(Trap{sid, cur.bottom, rp, -1, -1, -1, true});
    }
    above[i] = cur_above;
    below[i] = cur_below;
  }
  const int right_end = has_right ? pid_q : last.rightp;
  traps_[cur_above].rightp = right_end;
  traps_[cur_below].rightp = right_end;

  // DAG surgery: overwrite each crossed trapezoid's leaf in place with its
  // replacement subtree; new leaves are shared across subtrees where
  // chain trapezoids merged.
  auto new_node = [&](DagNode n) {
    n.step = sid;
    dag_.push_back(n);
    return static_cast<int>(dag_.size()) - 1;
  };
  for (int i = 0; i < k; ++i) {
    const int old_leaf = traps_[crossed[i]].leaf;
    traps_[crossed[i]].alive = false;

    DagNode ynode;
    ynode.kind = DagNode::kYNode;
    ynode.index = sid;
    ynode.step = sid;
    ynode.left = traps_[above[i]].leaf;
    ynode.right = traps_[below[i]].leaf;

    DagNode root_content = ynode;
    if (i == 0 && has_left) {
      DagNode xp;
      xp.step = sid;
      xp.kind = DagNode::kXNode;
      xp.index = pid_p;
      xp.left = traps_[cap_left].leaf;
      root_content = xp;
      if (i == k - 1 && has_right) {
        // Single crossed trapezoid with both caps: x(p){A, x(q){y, E}}.
        // Allocate x(q) before the y-node so the broadcast (creation)
        // order places it first — pointers must only go forward.
        DagNode xq;
        xq.step = sid;
        xq.kind = DagNode::kXNode;
        xq.index = pid_q;
        xq.right = traps_[cap_right].leaf;
        const int xq_id = new_node(xq);
        const int y_id = new_node(ynode);
        dag_[xq_id].left = y_id;
        root_content.right = xq_id;
      } else {
        const int y_id = new_node(ynode);
        root_content.right = y_id;
      }
    } else if (i == k - 1 && has_right) {
      const int y_id = new_node(ynode);
      DagNode xq;
      xq.step = sid;
      xq.kind = DagNode::kXNode;
      xq.index = pid_q;
      xq.left = y_id;
      xq.right = traps_[cap_right].leaf;
      root_content = xq;
    }
    dag_[old_leaf] = root_content;
  }
}

Result<TrapMap> TrapMap::Build(const sub::Subdivision& sub,
                               const Options& options) {
  if (options.packet_capacity < static_cast<int>(kYNodeSize)) {
    return Status::InvalidArgument(
        "packet capacity cannot hold a trap-tree y-node");
  }
  if (sub.NumRegions() < 1) {
    return Status::InvalidArgument("empty subdivision");
  }

  TrapMap map;
  map.options_ = options;

  // Bounding box: the service area inflated so every input vertex is
  // strictly interior.
  const geom::BBox& area = sub.service_area();
  const double mx = std::max(area.width(), area.height()) * 0.05;
  const geom::BBox box{area.min_x - mx, area.min_y - mx, area.max_x + mx,
                       area.max_y + mx};
  // Box top/bottom live in segs_ as trapezoid bounds but never as y-nodes.
  map.segs_.push_back(Seg{{box.min_x, box.max_y}, {box.max_x, box.max_y}});
  map.segs_.push_back(Seg{{box.min_x, box.min_y}, {box.max_x, box.min_y}});
  const int box_top = 0, box_bottom = 1;
  const int bl = map.NewPoint({box.min_x, box.min_y});
  const int tr = map.NewPoint({box.max_x, box.max_y});
  const int t0 =
      map.NewTrap(Trap{box_top, box_bottom, bl, tr, -1, -1, true});
  map.root_ = map.traps_[t0].leaf;

  // Collect each undirected subdivision edge once.
  std::vector<Seg> edges;
  std::unordered_set<uint64_t> seen;
  auto key = [](int a, int b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  };
  for (int r = 0; r < sub.NumRegions(); ++r) {
    const std::vector<int>& ring = sub.Ring(r);
    for (size_t i = 0; i < ring.size(); ++i) {
      const int a = ring[i];
      const int b = ring[(i + 1) % ring.size()];
      if (!seen.insert(key(a, b)).second) continue;
      Point pa = sub.vertices()[a];
      Point pb = sub.vertices()[b];
      if (pb.LexLess(pa)) std::swap(pa, pb);
      edges.push_back(Seg{pa, pb});
    }
  }
  // Randomized incremental order.
  Rng rng(options.seed);
  rng.Shuffle(&edges);
  for (const Seg& s : edges) map.InsertSegment(s);

  DTREE_RETURN_IF_ERROR(map.AssignRegions(sub));
  DTREE_RETURN_IF_ERROR(map.Page());
  return map;
}

namespace {

/// y of segment at x (vertical segments return their mid-y).
double EvalY(const geom::Point& p, const geom::Point& q, double x) {
  if (p.x == q.x) return (p.y + q.y) / 2.0;
  const double t = std::clamp((x - p.x) / (q.x - p.x), 0.0, 1.0);
  return p.y + t * (q.y - p.y);
}

}  // namespace

Status TrapMap::AssignRegions(const sub::Subdivision& sub) {
  const sub::PointLocator oracle(sub);
  for (Trap& t : traps_) {
    if (!t.alive) continue;
    const Point& lp = points_[t.leftp];
    const Point& rp = points_[t.rightp];
    const double xm = (lp.x + rp.x) / 2.0;
    const Seg& top = segs_[t.top];
    const Seg& bottom = segs_[t.bottom];
    const double ym =
        (EvalY(top.p, top.q, xm) + EvalY(bottom.p, bottom.q, xm)) / 2.0;
    t.region = oracle.Locate({xm, ym});
    if (t.region < 0) {
      return Status::Internal("trapezoid label resolution failed");
    }
  }
  return Status::OK();
}

int TrapMap::LocateTrapezoid(const Point& p, std::vector<int>* visited) const {
  int node = root_;
  for (int guard = 0; guard < bcast::kProbeStepBudget; ++guard) {
    const DagNode& n = dag_[node];
    if (n.kind == DagNode::kLeaf) return n.index;
    if (visited != nullptr) visited->push_back(node);
    if (n.kind == DagNode::kXNode) {
      node = p.LexLess(points_[n.index]) ? n.left : n.right;
    } else {
      const Seg& t = segs_[n.index];
      const double v = geom::OrientValue(t.p, t.q, p);
      node = v > 0.0 ? n.left : n.right;
    }
  }
  // A cyclic DAG (construction bug) would loop forever; report instead of
  // crashing so Probe can surface a Status.
  return -1;
}

int TrapMap::Locate(const Point& p) const {
  const int trap = LocateTrapezoid(p, nullptr);
  return trap < 0 ? -1 : traps_[trap].region;
}

Status TrapMap::Page() {
  // Broadcast order: creation order (step, slot id) over internal DAG
  // nodes; leaves are not broadcast (they collapse into data pointers
  // inside their parents). A node always turns internal strictly before
  // its internal children do (see DagNode::step), so this order yields a
  // forward-only channel layout even though the structure is a DAG.
  node_bfs_pos_.assign(dag_.size(), -1);
  bfs_order_.clear();
  for (size_t id = 0; id < dag_.size(); ++id) {
    if (dag_[id].kind != DagNode::kLeaf) {
      bfs_order_.push_back(static_cast<int>(id));
    }
  }
  std::stable_sort(bfs_order_.begin(), bfs_order_.end(), [&](int a, int b) {
    if (dag_[a].step != dag_[b].step) return dag_[a].step < dag_[b].step;
    return a < b;
  });
  for (size_t pos = 0; pos < bfs_order_.size(); ++pos) {
    node_bfs_pos_[bfs_order_[pos]] = static_cast<int>(pos);
  }
  // First preceding parent (for packing) plus the full parent list (so the
  // pager's merging step never moves a shared node before any parent).
  bcast::PagingInput input;
  input.parent.assign(bfs_order_.size(), -1);
  input.all_parents.assign(bfs_order_.size(), {});
  for (size_t pos = 0; pos < bfs_order_.size(); ++pos) {
    const int id = bfs_order_[pos];
    for (int child : {dag_[id].left, dag_[id].right}) {
      if (child < 0 || dag_[child].kind == DagNode::kLeaf) continue;
      const int cpos = node_bfs_pos_[child];
      if (cpos <= static_cast<int>(pos)) {
        return Status::Internal(
            "trap-tree DAG edge points backwards in broadcast order");
      }
      if (input.parent[cpos] < 0) {
        input.parent[cpos] = static_cast<int>(pos);
      } else {
        input.all_parents[cpos].push_back(static_cast<int>(pos));
      }
    }
  }
  input.sizes.reserve(bfs_order_.size());
  input.is_leaf.reserve(bfs_order_.size());
  for (int id : bfs_order_) {
    input.sizes.push_back(dag_[id].kind == DagNode::kXNode ? kXNodeSize
                                                           : kYNodeSize);
    auto is_data = [&](int child) {
      return child < 0 || dag_[child].kind == DagNode::kLeaf;
    };
    input.is_leaf.push_back(is_data(dag_[id].left) &&
                            is_data(dag_[id].right));
  }
  if (input.sizes.empty()) {
    // Degenerate single-region map with no internal nodes.
    paging_ = bcast::PagingResult{};
    return Status::OK();
  }
  Result<bcast::PagingResult> r = bcast::TopDownPage(
      input, options_.packet_capacity, options_.merge_leaf_packets);
  if (!r.ok()) return r.status();
  paging_ = std::move(r).value();
  return Status::OK();
}

Result<std::vector<std::vector<uint8_t>>> TrapMap::SerializePackets()
    const {
  if (bfs_order_.empty()) {
    return Status::InvalidArgument(
        "degenerate trap-tree with no internal nodes cannot be serialized");
  }
  const int capacity = options_.packet_capacity;
  std::vector<std::vector<uint8_t>> packets(
      paging_.num_packets,
      std::vector<uint8_t>(static_cast<size_t>(capacity), 0));
  // The decoder enters at (0, 0); creation order broadcasts the root
  // first, so this holds by construction.
  const bcast::NodeSpan& rs = paging_.spans[node_bfs_pos_[root_]];
  if (rs.first_packet != 0 || rs.offset != 0) {
    return Status::Internal("trap-tree root not at packet 0, offset 0");
  }
  auto encode_child = [&](ByteWriter* w, int child) -> Status {
    if (child < 0 || child >= static_cast<int>(dag_.size())) {
      return Status::Internal("DAG node with invalid children");
    }
    const DagNode& c = dag_[child];
    if (c.kind == DagNode::kLeaf) {
      const int region = traps_[c.index].region;
      if (region < 0) {
        return Status::Internal("reachable trapezoid without a region");
      }
      w->PutU32(bcast::EncodeDataPointer(region));
      return Status::OK();
    }
    const bcast::NodeSpan& cs = paging_.spans[node_bfs_pos_[child]];
    if (cs.offset > bcast::kOffsetMask) {
      return Status::InvalidArgument(
          "node offset exceeds the 12-bit pointer field");
    }
    if (cs.first_packet >= (1 << bcast::kPacketBits)) {
      return Status::InvalidArgument(
          "index packet exceeds the 19-bit pointer field");
    }
    w->PutU32(bcast::EncodeNodePointer(cs.first_packet, cs.offset));
    return Status::OK();
  };
  for (size_t bfs = 0; bfs < bfs_order_.size(); ++bfs) {
    const DagNode& n = dag_[bfs_order_[bfs]];
    const bcast::NodeSpan& s = paging_.spans[bfs];
    const bool is_y = n.kind == DagNode::kYNode;
    ByteWriter w;
    w.PutU16(static_cast<uint16_t>((is_y ? 0x8000u : 0u) | (bfs & 0x7fff)));
    DTREE_RETURN_IF_ERROR(encode_child(&w, n.left));
    DTREE_RETURN_IF_ERROR(encode_child(&w, n.right));
    if (is_y) {
      const Seg& t = segs_[n.index];
      w.PutF32(static_cast<float>(t.p.x));
      w.PutF32(static_cast<float>(t.p.y));
      w.PutF32(static_cast<float>(t.q.x));
      w.PutF32(static_cast<float>(t.q.y));
    } else {
      w.PutF32(static_cast<float>(points_[n.index].x));
    }
    if (w.size() != (is_y ? kYNodeSize : kXNodeSize)) {
      return Status::Internal("serialized size " + std::to_string(w.size()) +
                              " != accounted size " +
                              std::to_string(is_y ? kYNodeSize : kXNodeSize));
    }
    bcast::PacketCursor cursor(&packets, capacity, s.first_packet, s.offset);
    cursor.Write(w.bytes());
  }
  return packets;
}

Result<int> TrapMap::QueryFromPackets(
    const std::vector<std::vector<uint8_t>>& packets, int packet_capacity,
    bool framed, int num_regions, const Point& p,
    std::vector<int>* packets_read) {
  if (packets.empty()) return Status::InvalidArgument("no packets");
  if (packet_capacity < 1) {
    return Status::InvalidArgument("packet capacity must be positive");
  }
  int packet = 0;
  size_t offset = 0;
  int budget = bcast::DecodeBudget(packets.size());
  for (;;) {
    if (--budget < 0) {
      return Status::DataLoss("trap-tree decode budget exhausted");
    }
    bcast::PacketReader r(packets, packet_capacity, framed, packet, offset,
                          packets_read);
    uint16_t bid;
    uint32_t left, right;
    DTREE_RETURN_IF_ERROR(r.ReadU16(&bid));
    DTREE_RETURN_IF_ERROR(r.ReadU32(&left));
    DTREE_RETURN_IF_ERROR(r.ReadU32(&right));
    uint32_t next;
    if ((bid & 0x8000u) == 0) {
      float x;
      DTREE_RETURN_IF_ERROR(r.ReadF32(&x));
      next = p.x < static_cast<double>(x) ? left : right;
    } else {
      float px, py, qx, qy;
      DTREE_RETURN_IF_ERROR(r.ReadF32(&px));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&py));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&qx));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&qy));
      const double v = geom::OrientValue(Point{px, py}, Point{qx, qy}, p);
      next = v > 0.0 ? left : right;
    }
    if (bcast::IsDataPointer(next)) {
      const int region = bcast::DataPointerRegion(next);
      // Every trapezoid carries a real region label (kOutsideRegionPtr is
      // never written), so an out-of-range id means corrupted bytes.
      if (region >= num_regions) {
        return Status::DataLoss("data pointer to out-of-range region " +
                                std::to_string(region));
      }
      return region;
    }
    packet = bcast::NodePointerPacket(next);
    offset = bcast::NodePointerOffset(next);
    if (packet >= static_cast<int>(packets.size())) {
      return Status::DataLoss("node pointer outside the packet stream");
    }
    if (offset >= static_cast<size_t>(packet_capacity)) {
      return Status::DataLoss("node pointer offset outside the packet");
    }
  }
}

Result<bcast::ProbeTrace> TrapMap::Probe(const Point& p) const {
  bcast::ProbeTrace trace;
  std::vector<int> visited;
  const int trap = LocateTrapezoid(p, &visited);
  if (trap < 0) {
    return Status::Internal("trap-tree descent exceeded the probe budget");
  }
  trace.region = traps_[trap].region;
  for (int node : visited) {
    const int pos = node_bfs_pos_[node];
    DTREE_CHECK(pos >= 0);
    const bcast::NodeSpan& span = paging_.spans[pos];
    DTREE_CHECK(span.num_packets == 1);
    if (trace.packets.empty() || trace.packets.back() != span.first_packet) {
      trace.packets.push_back(span.first_packet);
    }
  }
  return trace;
}

int TrapMap::num_dag_nodes() const {
  int n = 0;
  for (const DagNode& d : dag_) {
    if (d.kind != DagNode::kLeaf) ++n;
  }
  return n;
}

int TrapMap::num_alive_trapezoids() const {
  int n = 0;
  for (const Trap& t : traps_) n += t.alive ? 1 : 0;
  return n;
}

Status TrapMap::CheckInvariants(int sample_points, uint64_t seed) const {
  for (const DagNode& d : dag_) {
    if (d.kind == DagNode::kLeaf) continue;
    if (d.left < 0 || d.right < 0 ||
        d.left >= static_cast<int>(dag_.size()) ||
        d.right >= static_cast<int>(dag_.size())) {
      return Status::Internal("DAG node with invalid children");
    }
  }
  // Reachability: every alive trapezoid's leaf is reachable from the root.
  std::vector<bool> reach(dag_.size(), false);
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (reach[id]) continue;
    reach[id] = true;
    if (dag_[id].kind != DagNode::kLeaf) {
      stack.push_back(dag_[id].left);
      stack.push_back(dag_[id].right);
    }
  }
  for (const Trap& t : traps_) {
    if (t.alive && !reach[t.leaf]) {
      return Status::Internal("alive trapezoid unreachable from DAG root");
    }
    if (!t.alive && reach[t.leaf] && dag_[t.leaf].kind == DagNode::kLeaf) {
      return Status::Internal("dead trapezoid still reachable");
    }
  }
  // Geometric containment of random probes.
  Rng rng(seed);
  const Point& bl = points_[0];
  const Point& tr = points_[1];
  for (int i = 0; i < sample_points; ++i) {
    const Point p{rng.Uniform(bl.x, tr.x), rng.Uniform(bl.y, tr.y)};
    const int id = LocateTrapezoid(p, nullptr);
    if (id < 0) return Status::Internal("trap-map query did not terminate");
    const Trap& t = traps_[id];
    if (!t.alive) return Status::Internal("query reached a dead trapezoid");
    const double slack = 1e-6;
    if (p.x < points_[t.leftp].x - slack ||
        p.x > points_[t.rightp].x + slack) {
      return Status::Internal("query point outside its trapezoid's slab");
    }
    const Seg& top = segs_[t.top];
    const Seg& bottom = segs_[t.bottom];
    if (geom::OrientValue(top.p, top.q, p) > kOrientTol) {
      return Status::Internal("query point above its trapezoid's top");
    }
    if (geom::OrientValue(bottom.p, bottom.q, p) < -kOrientTol) {
      return Status::Internal("query point below its trapezoid's bottom");
    }
  }
  return Status::OK();
}

}  // namespace dtree::baselines
