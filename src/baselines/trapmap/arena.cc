#include "baselines/trapmap/arena.h"

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "geom/predicates.h"

namespace dtree::baselines {

namespace {

using bcast::kDataPtrBit;
using bcast::kOffsetBits;
using bcast::kOffsetMask;

/// Smallest node on the wire: an x-node (bid + two pointers + one f32).
constexpr size_t kMinNodeBytes = 14;

}  // namespace

Result<TrapMapArena> TrapMapArena::Build(bcast::PacketSource packets,
                                         int packet_capacity, bool framed,
                                         int num_regions) {
  if (packets.num_packets() == 0) {
    return Status::InvalidArgument("no packets");
  }
  if (packet_capacity < 1) {
    return Status::InvalidArgument("packet capacity must be positive");
  }
  TrapMapArena a;
  a.budget_ = bcast::DecodeBudget(packets.num_packets());

  const size_t max_nodes =
      packets.num_packets() * static_cast<size_t>(packet_capacity) /
          kMinNodeBytes +
      16;
  std::unordered_map<uint32_t, uint32_t> index_of;  // wire key -> arena id
  std::deque<uint32_t> pending;
  index_of.emplace(0u, 0u);
  pending.push_back(0u);

  while (!pending.empty()) {
    const uint32_t key = pending.front();
    pending.pop_front();
    const int packet = static_cast<int>(key >> kOffsetBits);
    const size_t offset = key & kOffsetMask;

    bcast::PacketReader r(packets, packet_capacity, framed, packet, offset,
                          nullptr);
    uint16_t bid;
    uint32_t left, right;
    DTREE_RETURN_IF_ERROR(r.ReadU16(&bid));
    DTREE_RETURN_IF_ERROR(r.ReadU32(&left));
    DTREE_RETURN_IF_ERROR(r.ReadU32(&right));
    const bool is_y = (bid & 0x8000u) != 0;
    a.is_y_.push_back(is_y ? 1 : 0);
    a.packet_.push_back(packet);
    if (is_y) {
      float px, py, qx, qy;
      DTREE_RETURN_IF_ERROR(r.ReadF32(&px));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&py));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&qx));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&qy));
      a.px_.push_back(px);
      a.py_.push_back(py);
      a.qx_.push_back(qx);
      a.qy_.push_back(qy);
      a.x_.push_back(0.0);
    } else {
      float x;
      DTREE_RETURN_IF_ERROR(r.ReadF32(&x));
      a.x_.push_back(x);
      a.px_.push_back(0.0);
      a.py_.push_back(0.0);
      a.qx_.push_back(0.0);
      a.qy_.push_back(0.0);
    }

    // Remap children exactly as the per-probe decoder validates them:
    // data pointers must label a real region, node pointers must land
    // inside the stream.
    auto remap = [&](uint32_t ptr) -> Result<uint32_t> {
      if (ptr & kDataPtrBit) {
        const int region = static_cast<int>(ptr & ~kDataPtrBit);
        if (region >= num_regions) {
          return Status::DataLoss("data pointer to out-of-range region " +
                                  std::to_string(region));
        }
        return ptr;
      }
      const int cpkt = static_cast<int>(ptr >> kOffsetBits);
      const size_t coff = ptr & kOffsetMask;
      if (cpkt >= static_cast<int>(packets.num_packets())) {
        return Status::DataLoss("node pointer outside the packet stream");
      }
      if (coff >= static_cast<size_t>(packet_capacity)) {
        return Status::DataLoss("node pointer offset outside the packet");
      }
      const auto [it, inserted] =
          index_of.emplace(ptr, static_cast<uint32_t>(index_of.size()));
      if (inserted) {
        if (index_of.size() > max_nodes) {
          return Status::DataLoss(
              "decoded node count exceeds what the cycle can hold");
        }
        pending.push_back(ptr);
      }
      return it->second;
    };
    Result<uint32_t> l = remap(left);
    if (!l.ok()) return l.status();
    Result<uint32_t> rr = remap(right);
    if (!rr.ok()) return rr.status();
    a.left_.push_back(l.value());
    a.right_.push_back(rr.value());
  }
  return a;
}

Status TrapMapArena::ProbeInto(const geom::Point& p,
                               bcast::ProbeTrace* trace) const {
  trace->region = -1;
  trace->packets.clear();
  trace->origins.clear();
  uint32_t cur = 0;
  for (int hops = 0; hops < budget_; ++hops) {
    const int pkt = packet_[cur];
    if (trace->packets.empty() || trace->packets.back() != pkt) {
      trace->packets.push_back(pkt);
    }
    uint32_t next;
    if (is_y_[cur] == 0) {
      next = p.x < x_[cur] ? left_[cur] : right_[cur];
    } else {
      const double v = geom::OrientValue({px_[cur], py_[cur]},
                                         {qx_[cur], qy_[cur]}, p);
      next = v > 0.0 ? left_[cur] : right_[cur];
    }
    if (next & kDataPtrBit) {
      trace->region = static_cast<int>(next & ~kDataPtrBit);
      return Status::OK();
    }
    cur = next;
  }
  return Status::DataLoss("trap-tree decode budget exhausted");
}

size_t TrapMapArena::ArenaBytes() const {
  return is_y_.capacity() +
         sizeof(double) * (x_.capacity() + px_.capacity() + py_.capacity() +
                           qx_.capacity() + qy_.capacity()) +
         sizeof(uint32_t) * (left_.capacity() + right_.capacity()) +
         sizeof(int32_t) * packet_.capacity();
}

Result<bcast::ArenaIndex> BuildTrapMapArenaIndex(const TrapMap& map,
                                                 int num_regions) {
  Result<std::vector<std::vector<uint8_t>>> packets = map.SerializePackets();
  if (!packets.ok()) return packets.status();
  Result<TrapMapArena> arena =
      TrapMapArena::Build(packets.value(), map.PacketCapacity(),
                          /*framed=*/false, num_regions);
  if (!arena.ok()) return arena.status();
  return bcast::ArenaIndex(
      map, std::make_unique<TrapMapArena>(std::move(arena).value()));
}

}  // namespace dtree::baselines
