// Flat-arena probe engine for the trapezoidal-map baseline (DESIGN.md
// §12): the serialized DAG decoded once — CRC-verified in framed mode —
// into structure-of-arrays node records, so probes branch over contiguous
// typed arrays instead of re-parsing wire bytes per query. ProbeInto
// replicates TrapMap::QueryFromPackets' exact arithmetic (x-node: p.x <
// promoted f32 x; y-node: OrientValue over promoted f32 endpoints > 0)
// and emits the same packet log the wire read-log / TrapMap::Probe
// produce (one single-packet node per visited DAG node, deduplicated
// when consecutive).

#ifndef DTREE_BASELINES_TRAPMAP_ARENA_H_
#define DTREE_BASELINES_TRAPMAP_ARENA_H_

#include <cstdint>
#include <vector>

#include "broadcast/arena.h"
#include "broadcast/frame.h"
#include "common/status.h"
#include "baselines/trapmap/trapmap.h"

namespace dtree::baselines {

class TrapMapArena final : public bcast::FlatProbeEngine {
 public:
  /// Decodes every DAG node reachable from (packet 0, offset 0). In
  /// framed mode each packet's CRC is verified as the build first touches
  /// it; malformed pointers or out-of-range region labels fail with
  /// kDataLoss, so the arena is never built over unverified bytes.
  static Result<TrapMapArena> Build(bcast::PacketSource packets,
                                    int packet_capacity, bool framed,
                                    int num_regions);

  Status ProbeInto(const geom::Point& p,
                   bcast::ProbeTrace* trace) const override;
  size_t ArenaBytes() const override;

  int num_nodes() const { return static_cast<int>(left_.size()); }

 private:
  TrapMapArena() = default;

  int budget_ = 0;  ///< DecodeBudget(num_packets), as the wire decoder

  // --- per-node records (structure of arrays) ---------------------------
  std::vector<uint8_t> is_y_;      ///< 1 = y-node (segment), 0 = x-node
  std::vector<double> x_;          ///< x-node: promoted endpoint x
  std::vector<double> px_, py_, qx_, qy_;  ///< y-node: promoted segment
  std::vector<uint32_t> left_, right_;     ///< kDataPtrBit kept; else index
  std::vector<int32_t> packet_;    ///< the node's (single) packet
};

/// Server-side arena for a built trap-tree: serializes and decodes back.
/// The ArenaIndex reports the map's own identity, so experiment output is
/// byte-identical with the arena enabled.
Result<bcast::ArenaIndex> BuildTrapMapArenaIndex(const TrapMap& map,
                                                 int num_regions);

}  // namespace dtree::baselines

#endif  // DTREE_BASELINES_TRAPMAP_ARENA_H_
