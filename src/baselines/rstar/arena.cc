#include "baselines/rstar/arena.h"

#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "broadcast/params.h"
#include "geom/polygon.h"

namespace dtree::baselines {

namespace {

constexpr size_t kEntrySize = 4 * bcast::kCoordinateSize +  // MBR
                              bcast::kRStarPointerSize;     // child/shape
constexpr size_t kNodeHeader = bcast::kBidSize;
constexpr size_t kShapeHeader = 3 * sizeof(uint16_t);

}  // namespace

Result<RStarArena> RStarArena::Build(bcast::PacketSource packets,
                                     int packet_capacity, bool framed,
                                     int num_regions) {
  if (packets.num_packets() == 0) {
    return Status::InvalidArgument("no packets");
  }
  if (packet_capacity < static_cast<int>(kNodeHeader + 2 * kEntrySize)) {
    return Status::InvalidArgument(
        "packet capacity cannot hold an R*-tree node");
  }
  const int max_count = (packet_capacity - static_cast<int>(kNodeHeader)) /
                        static_cast<int>(kEntrySize);
  const size_t max_verts =
      packets.num_packets() * static_cast<size_t>(packet_capacity) / 8;
  const size_t cap = static_cast<size_t>(packet_capacity);

  RStarArena a;
  a.budget_ = bcast::DecodeBudget(packets.num_packets());
  a.entry_begin_.push_back(0);
  a.ring_begin_.push_back(0);

  std::unordered_map<int, uint32_t> index_of;  // wire packet -> arena id
  std::deque<int> pending;
  index_of.emplace(0, 0u);
  pending.push_back(0);

  // Child links are discovered before their nodes get arena ids, so they
  // are recorded per entry and remain valid because `intern` assigns ids
  // in the same order `pending` is drained.
  auto intern = [&](int pkt) -> uint32_t {
    const auto [it, inserted] =
        index_of.emplace(pkt, static_cast<uint32_t>(index_of.size()));
    if (inserted) pending.push_back(pkt);
    return it->second;
  };

  while (!pending.empty()) {
    const int pkt = pending.front();
    pending.pop_front();

    bcast::PacketReader r(packets, packet_capacity, framed, pkt, 0, nullptr);
    uint16_t bid;
    DTREE_RETURN_IF_ERROR(r.ReadU16(&bid));
    const bool leaf = (bid & 0x8000u) != 0;
    const int count = bid & 0x7fff;
    if (count > max_count) {
      return Status::DataLoss("r*-tree node entry count " +
                              std::to_string(count) +
                              " exceeds the packet capacity");
    }
    a.leaf_.push_back(leaf ? 1 : 0);
    a.packet_.push_back(pkt);

    std::vector<uint16_t> ptrs(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      float min_x, min_y, max_x, max_y;
      DTREE_RETURN_IF_ERROR(r.ReadF32(&min_x));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&min_y));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&max_x));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&max_y));
      DTREE_RETURN_IF_ERROR(r.ReadU16(&ptrs[static_cast<size_t>(i)]));
      a.ebox_.push_back(geom::BBox{min_x, min_y, max_x, max_y});
    }

    if (!leaf) {
      for (int i = 0; i < count; ++i) {
        const int child = ptrs[static_cast<size_t>(i)];
        // Strictly forward: rules out pointer cycles on corrupt bytes
        // (the per-probe decoder applies the same check to the children
        // it descends).
        if (child <= pkt || child >= static_cast<int>(packets.num_packets())) {
          return Status::DataLoss(
              "child pointer does not move forward on the channel");
        }
        a.child_.push_back(intern(child));
        a.region_.push_back(-1);
        a.shape_first_.push_back(-1);
        a.shape_num_.push_back(0);
        a.attempts_.push_back(0);
        a.ring_begin_.push_back(static_cast<uint32_t>(a.rx_.size()));
      }
      a.entry_begin_.push_back(static_cast<uint32_t>(a.ebox_.size()));
      continue;
    }

    // Leaf: replay the writer's shape placement cursor once, here, so
    // probes never re-walk it. This is the per-probe decoder's walk
    // verbatim, minus the query-dependent parts.
    int spkt = pkt + 1;
    size_t soff = 0;
    for (int i = 0; i < count; ++i) {
      const uint16_t eptr = ptrs[static_cast<size_t>(i)];
      bool placed = false;
      uint8_t attempts = 0;
      for (int attempt = 0; attempt < 2 && !placed; ++attempt) {
        ++attempts;
        if (soff + kShapeHeader > cap) {  // header never straddles
          ++spkt;
          soff = 0;
          continue;
        }
        bcast::PacketReader sr(packets, packet_capacity, framed, spkt, soff,
                               nullptr);
        uint16_t sbid, sptr, nverts;
        DTREE_RETURN_IF_ERROR(sr.ReadU16(&sbid));
        DTREE_RETURN_IF_ERROR(sr.ReadU16(&sptr));
        DTREE_RETURN_IF_ERROR(sr.ReadU16(&nverts));
        const size_t size = kShapeHeader + nverts * 2 * sizeof(float);
        if (sptr != eptr || nverts < 3 ||
            static_cast<size_t>(nverts) > max_verts ||
            (soff != 0 && size > cap - soff)) {
          if (soff == 0) {
            return Status::DataLoss(
                "shape header does not match its leaf entry");
          }
          ++spkt;
          soff = 0;
          continue;
        }
        const int first = spkt;
        for (int v = 0; v < nverts; ++v) {
          float x, y;
          DTREE_RETURN_IF_ERROR(sr.ReadF32(&x));
          DTREE_RETURN_IF_ERROR(sr.ReadF32(&y));
          a.rx_.push_back(x);
          a.ry_.push_back(y);
        }
        int num = 1;
        if (soff == 0) {
          size_t rest = size;
          while (rest > cap) {
            rest -= cap;
            ++spkt;
            ++num;
          }
          soff = rest;
        } else {
          soff += size;
        }
        placed = true;
        const int region = sptr;
        if (region >= num_regions) {
          return Status::DataLoss("data pointer to out-of-range region " +
                                  std::to_string(region));
        }
        a.child_.push_back(0);
        a.region_.push_back(region);
        a.shape_first_.push_back(first);
        a.shape_num_.push_back(num);
      }
      if (!placed) {
        return Status::DataLoss("shape header does not match its leaf entry");
      }
      a.attempts_.push_back(attempts);
      a.ring_begin_.push_back(static_cast<uint32_t>(a.rx_.size()));
    }
    a.entry_begin_.push_back(static_cast<uint32_t>(a.ebox_.size()));
  }
  return a;
}

Status RStarArena::ProbeInto(const geom::Point& p,
                             bcast::ProbeTrace* trace) const {
  trace->region = -1;
  trace->packets.clear();
  trace->origins.clear();
  auto touch = [&](int packet) {
    if (trace->packets.empty() || trace->packets.back() != packet) {
      trace->packets.push_back(packet);
    }
  };

  int best_fallback = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  int budget = budget_;

  thread_local std::vector<uint32_t> stack;
  stack.clear();
  stack.push_back(0);
  while (!stack.empty()) {
    const uint32_t cur = stack.back();
    stack.pop_back();
    if (--budget < 0) {
      return Status::DataLoss("r*-tree decode budget exhausted");
    }
    touch(packet_[cur]);
    const uint32_t eb = entry_begin_[cur];
    const uint32_t ee = entry_begin_[cur + 1];
    if (leaf_[cur] == 0) {
      // Depth-first: push matching children in reverse so the leftmost
      // (earliest on the channel) is explored first.
      for (uint32_t i = ee; i-- > eb;) {
        if (ebox_[i].Contains(p)) stack.push_back(child_[i]);
      }
      continue;
    }
    for (uint32_t i = eb; i < ee; ++i) {
      // The wire decoder spends budget replaying the placement walk for
      // every leaf entry, wanted or not; charge the recorded cost so
      // budget exhaustion fires exactly where it would on the wire.
      budget -= attempts_[i];
      if (budget < 0) {
        return Status::DataLoss("r*-tree decode budget exhausted");
      }
      if (!ebox_[i].Contains(p)) continue;
      for (int k = 0; k < shape_num_[i]; ++k) touch(shape_first_[i] + k);
      const size_t rb = ring_begin_[i];
      const size_t rn = ring_begin_[i + 1] - rb;
      if (geom::PointInRing(rx_.data() + rb, ry_.data() + rb, rn, p)) {
        trace->region = region_[i];
        return Status::OK();
      }
      const double d =
          geom::RingDistanceToBoundary(rx_.data() + rb, ry_.data() + rb, rn, p);
      if (d < best_dist) {
        best_dist = d;
        best_fallback = region_[i];
      }
    }
  }
  if (best_fallback >= 0) {
    trace->region = best_fallback;
    return Status::OK();
  }
  return Status::DataLoss("query point escaped every leaf MBR");
}

size_t RStarArena::ArenaBytes() const {
  return leaf_.capacity() + attempts_.capacity() +
         sizeof(geom::BBox) * ebox_.capacity() +
         sizeof(int32_t) * (packet_.capacity() + region_.capacity() +
                            shape_first_.capacity() + shape_num_.capacity()) +
         sizeof(uint32_t) * (entry_begin_.capacity() + child_.capacity() +
                             ring_begin_.capacity()) +
         sizeof(double) * (rx_.capacity() + ry_.capacity());
}

Result<bcast::ArenaIndex> BuildRStarArenaIndex(const RStarTree& tree,
                                               int num_regions) {
  Result<std::vector<std::vector<uint8_t>>> packets = tree.SerializePackets();
  if (!packets.ok()) return packets.status();
  Result<RStarArena> arena =
      RStarArena::Build(packets.value(), tree.PacketCapacity(),
                        /*framed=*/false, num_regions);
  if (!arena.ok()) return arena.status();
  return bcast::ArenaIndex(
      tree, std::make_unique<RStarArena>(std::move(arena).value()));
}

}  // namespace dtree::baselines
