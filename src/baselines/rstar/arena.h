// Flat-arena probe engine for the R*-tree baseline (DESIGN.md §12): the
// whole broadcast cycle — tree nodes and the shape objects trailing each
// leaf — decoded once (CRC-verified in framed mode) into contiguous
// entry/ring arrays, so probes run MBR tests over typed memory and ring
// tests over SoA coordinate arrays instead of re-walking the shape
// placement cursor per query.
//
// ProbeInto replicates RStarTree::QueryFromPackets' exact decision
// arithmetic (promoted outward-rounded wire MBRs, the same DFS order,
// the same ring containment and nearest-boundary fallback) while
// emitting RStarTree::Probe-style packet accounting: the visited nodes'
// packets plus the wanted shapes' spans, not the placement walk's header
// peeks. The differential test therefore pins the region for this
// engine; the trace shape matches the in-memory Probe.

#ifndef DTREE_BASELINES_RSTAR_ARENA_H_
#define DTREE_BASELINES_RSTAR_ARENA_H_

#include <cstdint>
#include <vector>

#include "baselines/rstar/rstar.h"
#include "broadcast/arena.h"
#include "broadcast/frame.h"
#include "common/status.h"
#include "geom/point.h"

namespace dtree::baselines {

class RStarArena final : public bcast::FlatProbeEngine {
 public:
  /// Decodes every node reachable from packet 0 plus every leaf's shape
  /// objects (the placement-cursor walk is query-independent, so it runs
  /// once here instead of once per probe). In framed mode each packet's
  /// CRC is verified as the build first touches it; malformed counts,
  /// non-forward child pointers, mismatched shape headers, or
  /// out-of-range region labels fail with kDataLoss, so the arena is
  /// never built over unverified bytes.
  static Result<RStarArena> Build(bcast::PacketSource packets,
                                  int packet_capacity, bool framed,
                                  int num_regions);

  Status ProbeInto(const geom::Point& p,
                   bcast::ProbeTrace* trace) const override;
  size_t ArenaBytes() const override;

  int num_nodes() const { return static_cast<int>(leaf_.size()); }

 private:
  RStarArena() = default;

  int budget_ = 0;  ///< DecodeBudget(num_packets), as the wire decoder

  // --- per-node records (index = arena node id; root = 0) ---------------
  std::vector<uint8_t> leaf_;
  std::vector<int32_t> packet_;       ///< the node's wire packet
  std::vector<uint32_t> entry_begin_; ///< size num_nodes + 1

  // --- per-entry records, flattened across all nodes --------------------
  std::vector<geom::BBox> ebox_;      ///< promoted outward-rounded wire MBR
  std::vector<uint32_t> child_;       ///< internal: arena node id
  std::vector<int32_t> region_;       ///< leaf: the shape's region id
  std::vector<int32_t> shape_first_;  ///< leaf: shape span start packet
  std::vector<int32_t> shape_num_;    ///< leaf: shape span packet count
  std::vector<uint8_t> attempts_;     ///< leaf: placement-walk budget cost
  std::vector<uint32_t> ring_begin_;  ///< size num_entries + 1

  // --- shape rings (promoted wire f32), flattened -----------------------
  std::vector<double> rx_, ry_;
};

/// Server-side arena for a built R*-tree: serializes and decodes back.
/// The ArenaIndex reports the tree's identity, so experiment output is
/// byte-identical with the arena enabled.
Result<bcast::ArenaIndex> BuildRStarArenaIndex(const RStarTree& tree,
                                               int num_regions);

}  // namespace dtree::baselines

#endif  // DTREE_BASELINES_RSTAR_ARENA_H_
