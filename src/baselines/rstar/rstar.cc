#include "baselines/rstar/rstar.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "broadcast/frame.h"
#include "broadcast/params.h"
#include "common/bytes.h"
#include "common/check.h"

namespace dtree::baselines {

namespace {

using geom::BBox;
using geom::Point;

constexpr size_t kEntrySize = 4 * bcast::kCoordinateSize +  // MBR
                              bcast::kRStarPointerSize;     // child/shape
constexpr size_t kNodeHeader = bcast::kBidSize;

/// f64 -> f32 rounded towards -infinity (so a wire MBR min never moves
/// inside the true box).
float FloatDown(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) > v) {
    f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}

/// f64 -> f32 rounded towards +infinity.
float FloatUp(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) < v) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

double OverlapWithSiblings(const std::vector<BBox>& boxes, size_t skip,
                           const BBox& candidate) {
  double overlap = 0.0;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (i == skip) continue;
    overlap += candidate.IntersectionArea(boxes[i]);
  }
  return overlap;
}

}  // namespace

BBox RStarTree::NodeBox(int id) const {
  BBox b;
  for (const Entry& e : nodes_[id].entries) b.Extend(e.box);
  return b;
}

int RStarTree::ChooseSubtree(int node_id, const BBox& box, int target_level,
                             std::vector<int>* path) const {
  int cur = node_id;
  for (;;) {
    path->push_back(cur);
    const Node& node = nodes_[cur];
    if (node.level == target_level) return cur;
    DTREE_CHECK(!node.entries.empty());

    std::vector<BBox> boxes;
    boxes.reserve(node.entries.size());
    for (const Entry& e : node.entries) boxes.push_back(e.box);

    int best = 0;
    if (node.level == 1) {
      // Children are leaves: minimize overlap enlargement, ties by area
      // enlargement, then by area (R* ChooseSubtree).
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlarge = best_overlap;
      double best_area = best_overlap;
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const BBox united = boxes[i].Union(box);
        const double d_overlap = OverlapWithSiblings(boxes, i, united) -
                                 OverlapWithSiblings(boxes, i, boxes[i]);
        const double enlarge = united.Area() - boxes[i].Area();
        const double area = boxes[i].Area();
        if (d_overlap < best_overlap ||
            (d_overlap == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best = static_cast<int>(i);
          best_overlap = d_overlap;
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    } else {
      // Minimize area enlargement, ties by area.
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = best_enlarge;
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const double enlarge = boxes[i].Union(box).Area() - boxes[i].Area();
        const double area = boxes[i].Area();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best = static_cast<int>(i);
          best_enlarge = enlarge;
          best_area = area;
        }
      }
    }
    cur = node.entries[best].child;
    DTREE_CHECK(cur >= 0);
  }
}

void RStarTree::SplitNode(int node_id, Entry* new_node_entry) {
  Node& node = nodes_[node_id];
  std::vector<Entry> entries = std::move(node.entries);
  const int total = static_cast<int>(entries.size());
  DTREE_CHECK(total == max_entries_ + 1);
  const int m = min_entries_;

  // R* split: pick the axis with the minimum total margin over all
  // distributions, then the distribution with minimum overlap (ties: area).
  auto margin_for_sort = [&](std::vector<Entry>& sorted) {
    double margin_sum = 0.0;
    for (int k = m; k <= total - m; ++k) {
      BBox b1, b2;
      for (int i = 0; i < k; ++i) b1.Extend(sorted[i].box);
      for (int i = k; i < total; ++i) b2.Extend(sorted[i].box);
      margin_sum += b1.Margin() + b2.Margin();
    }
    return margin_sum;
  };

  std::vector<Entry> by_x = entries, by_y = entries;
  auto x_less = [](const Entry& a, const Entry& b) {
    if (a.box.min_x != b.box.min_x) return a.box.min_x < b.box.min_x;
    return a.box.max_x < b.box.max_x;
  };
  auto y_less = [](const Entry& a, const Entry& b) {
    if (a.box.min_y != b.box.min_y) return a.box.min_y < b.box.min_y;
    return a.box.max_y < b.box.max_y;
  };
  std::sort(by_x.begin(), by_x.end(), x_less);
  std::sort(by_y.begin(), by_y.end(), y_less);
  const double margin_x = margin_for_sort(by_x);
  const double margin_y = margin_for_sort(by_y);
  std::vector<Entry>& chosen = margin_x <= margin_y ? by_x : by_y;

  int best_k = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = best_overlap;
  for (int k = m; k <= total - m; ++k) {
    BBox b1, b2;
    for (int i = 0; i < k; ++i) b1.Extend(chosen[i].box);
    for (int i = k; i < total; ++i) b2.Extend(chosen[i].box);
    const double overlap = b1.IntersectionArea(b2);
    const double area = b1.Area() + b2.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_k = k;
      best_overlap = overlap;
      best_area = area;
    }
  }

  node.entries.assign(chosen.begin(), chosen.begin() + best_k);
  Node sibling;
  sibling.level = node.level;
  sibling.entries.assign(chosen.begin() + best_k, chosen.end());
  const int sibling_id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(sibling));

  new_node_entry->child = sibling_id;
  new_node_entry->region = -1;
  new_node_entry->box = NodeBox(sibling_id);
}

void RStarTree::Insert(Entry e, int target_level) {
  std::fill(reinserted_level_.begin(), reinserted_level_.end(), false);
  InsertImpl(e, target_level, /*allow_reinsert=*/true);
}

void RStarTree::InsertImpl(Entry e, int target_level, bool allow_reinsert) {
  std::vector<int> path;
  const int target = ChooseSubtree(root_, e.box, target_level, &path);
  nodes_[target].entries.push_back(e);

  // Walk back up handling overflow and refreshing parent entry boxes.
  for (int i = static_cast<int>(path.size()) - 1; i >= 0; --i) {
    const int nid = path[i];
    if (static_cast<int>(nodes_[nid].entries.size()) > max_entries_) {
      const int level = nodes_[nid].level;
      if (nid != root_ && allow_reinsert &&
          level < static_cast<int>(reinserted_level_.size()) &&
          !reinserted_level_[level]) {
        // --- Forced reinsertion ------------------------------------------
        reinserted_level_[level] = true;
        Node& node = nodes_[nid];
        const Point center = NodeBox(nid).Center();
        std::stable_sort(node.entries.begin(), node.entries.end(),
                         [&](const Entry& a, const Entry& b) {
                           return geom::DistanceSquared(a.box.Center(),
                                                        center) >
                                  geom::DistanceSquared(b.box.Center(),
                                                        center);
                         });
        const int p = std::max(
            1, static_cast<int>(node.entries.size()) *
                   options_.reinsert_percent / 100);
        std::vector<Entry> evicted(node.entries.begin(),
                                   node.entries.begin() + p);
        node.entries.erase(node.entries.begin(), node.entries.begin() + p);
        // Refresh ancestor boxes before reinserting.
        for (int j = i - 1; j >= 0; --j) {
          for (Entry& pe : nodes_[path[j]].entries) {
            if (pe.child == path[j + 1]) {
              pe.box = NodeBox(path[j + 1]);
              break;
            }
          }
        }
        // Close reinsert: nearest entries first (evicted is sorted
        // farthest-first).
        for (auto it = evicted.rbegin(); it != evicted.rend(); ++it) {
          InsertImpl(*it, level, /*allow_reinsert=*/true);
        }
        return;
      }
      // --- Split ----------------------------------------------------------
      Entry sibling_entry;
      SplitNode(nid, &sibling_entry);
      if (nid == root_) {
        Node new_root;
        new_root.level = nodes_[nid].level + 1;
        Entry old_root_entry;
        old_root_entry.child = nid;
        old_root_entry.box = NodeBox(nid);
        new_root.entries = {old_root_entry, sibling_entry};
        root_ = static_cast<int>(nodes_.size());
        nodes_.push_back(std::move(new_root));
        height_ = nodes_[root_].level + 1;
        reinserted_level_.resize(height_, false);
      } else {
        const int parent = path[i - 1];
        // Refresh this child's box and append the sibling.
        for (Entry& pe : nodes_[parent].entries) {
          if (pe.child == nid) {
            pe.box = NodeBox(nid);
            break;
          }
        }
        nodes_[parent].entries.push_back(sibling_entry);
        continue;  // parent may now overflow
      }
      return;
    }
    // No overflow: refresh the parent's box for this child and continue.
    if (i > 0) {
      for (Entry& pe : nodes_[path[i - 1]].entries) {
        if (pe.child == nid) {
          pe.box = NodeBox(nid);
          break;
        }
      }
    }
  }
}

Result<RStarTree> RStarTree::Build(const sub::Subdivision& sub,
                                   const Options& options) {
  RStarTree tree;
  tree.options_ = options;
  const size_t cap = static_cast<size_t>(options.packet_capacity);
  if (cap < kNodeHeader + 2 * kEntrySize) {
    return Status::InvalidArgument(
        "packet capacity cannot hold an R*-tree node with two entries");
  }
  if (sub.NumRegions() < 1) {
    return Status::InvalidArgument("empty subdivision");
  }
  tree.max_entries_ = static_cast<int>((cap - kNodeHeader) / kEntrySize);
  tree.min_entries_ = std::clamp(tree.max_entries_ * 2 / 5, 1,
                                 tree.max_entries_ / 2);

  tree.nodes_.push_back(Node{});  // empty leaf root
  tree.root_ = 0;
  tree.height_ = 1;
  tree.reinserted_level_.assign(1, false);

  for (int r = 0; r < sub.NumRegions(); ++r) {
    Entry e;
    e.box = sub.RegionBounds(r);
    e.region = r;
    tree.Insert(e, /*target_level=*/0);
  }

  DTREE_RETURN_IF_ERROR(tree.Layout(sub));
  return tree;
}

Status RStarTree::Layout(const sub::Subdivision& sub) {
  shapes_.clear();
  shapes_.reserve(sub.NumRegions());
  for (int r = 0; r < sub.NumRegions(); ++r) {
    shapes_.push_back(sub.RegionPolygon(r));
  }
  shape_span_.assign(sub.NumRegions(), {});
  node_packet_.assign(nodes_.size(), -1);
  const size_t cap = static_cast<size_t>(options_.packet_capacity);

  num_packets_ = 0;
  index_bytes_ = 0;
  // DFS in entry order; every tree node opens a packet, a leaf's shape
  // objects follow it greedily.
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    node_packet_[id] = num_packets_++;
    index_bytes_ += kNodeHeader + nodes_[id].entries.size() * kEntrySize;
    const Node& node = nodes_[id];
    if (node.level > 0) {
      for (auto it = node.entries.rbegin(); it != node.entries.rend();
           ++it) {
        stack.push_back(it->child);
      }
      continue;
    }
    // Leaf: append its shape objects greedily into fresh packets.
    size_t fill = cap;  // force a new packet for the first shape
    for (const Entry& e : node.entries) {
      DTREE_CHECK(e.region >= 0);
      const geom::Polygon& poly = shapes_[e.region];
      // bid + data pointer + point count + vertices (ring closed
      // implicitly, no repeated point needed for containment tests).
      const size_t size = bcast::kBidSize + bcast::kRStarPointerSize + 2 +
                          poly.NumVertices() * 2 * bcast::kCoordinateSize;
      index_bytes_ += size;
      bcast::NodeSpan span;
      if (size <= cap - fill) {
        span.first_packet = num_packets_ - 1;
        span.num_packets = 1;
        span.offset = fill;
        fill += size;
      } else {
        span.first_packet = num_packets_;
        span.offset = 0;
        size_t rest = size;
        int count = 1;
        while (rest > cap) {
          rest -= cap;
          ++count;
        }
        span.num_packets = count;
        num_packets_ += count;
        fill = rest;
      }
      shape_span_[e.region] = span;
    }
  }
  return Status::OK();
}

Result<std::vector<std::vector<uint8_t>>> RStarTree::SerializePackets()
    const {
  const int capacity = options_.packet_capacity;
  std::vector<std::vector<uint8_t>> packets(
      num_packets_, std::vector<uint8_t>(static_cast<size_t>(capacity), 0));
  if (node_packet_.empty() || node_packet_[root_] != 0) {
    return Status::Internal("r*-tree root not at packet 0");
  }
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (node_packet_[id] < 0) continue;  // unreachable (never happens)
    const Node& node = nodes_[id];
    const bool leaf = node.level == 0;
    ByteWriter w;
    DTREE_RETURN_IF_ERROR(w.PutU16Checked(
        (leaf ? 0x8000u : 0u) | node.entries.size(), "entry count"));
    for (const Entry& e : node.entries) {
      w.PutF32(FloatDown(e.box.min_x));
      w.PutF32(FloatDown(e.box.min_y));
      w.PutF32(FloatUp(e.box.max_x));
      w.PutF32(FloatUp(e.box.max_y));
      if (leaf) {
        DTREE_RETURN_IF_ERROR(
            w.PutU16Checked(static_cast<uint64_t>(e.region), "region id"));
      } else {
        DTREE_RETURN_IF_ERROR(w.PutU16Checked(
            static_cast<uint64_t>(node_packet_[e.child]), "child packet"));
      }
    }
    if (w.size() != kNodeHeader + node.entries.size() * kEntrySize ||
        w.size() > static_cast<size_t>(capacity)) {
      return Status::Internal("serialized r*-tree node size mismatch");
    }
    bcast::PacketCursor cursor(&packets, capacity, node_packet_[id], 0);
    cursor.Write(w.bytes());
  }
  for (size_t r = 0; r < shapes_.size(); ++r) {
    const bcast::NodeSpan& s = shape_span_[r];
    if (s.first_packet < 0) continue;
    const geom::Polygon& poly = shapes_[r];
    ByteWriter w;
    DTREE_RETURN_IF_ERROR(w.PutU16Checked(r, "region id"));
    DTREE_RETURN_IF_ERROR(w.PutU16Checked(r, "region id"));
    DTREE_RETURN_IF_ERROR(
        w.PutU16Checked(poly.NumVertices(), "shape vertex count"));
    for (const Point& v : poly.ring()) {
      w.PutF32(static_cast<float>(v.x));
      w.PutF32(static_cast<float>(v.y));
    }
    const size_t accounted = bcast::kBidSize + bcast::kRStarPointerSize + 2 +
                             poly.NumVertices() * 2 * bcast::kCoordinateSize;
    if (w.size() != accounted) {
      return Status::Internal("serialized shape size mismatch");
    }
    bcast::PacketCursor cursor(&packets, capacity, s.first_packet,
                               s.offset);
    cursor.Write(w.bytes());
  }
  return packets;
}

Result<int> RStarTree::QueryFromPackets(
    const std::vector<std::vector<uint8_t>>& packets, int packet_capacity,
    bool framed, int num_regions, const geom::Point& p,
    std::vector<int>* packets_read) {
  if (packets.empty()) return Status::InvalidArgument("no packets");
  if (packet_capacity < static_cast<int>(kNodeHeader + 2 * kEntrySize)) {
    return Status::InvalidArgument(
        "packet capacity cannot hold an R*-tree node");
  }
  const int max_count =
      (packet_capacity - static_cast<int>(kNodeHeader)) /
      static_cast<int>(kEntrySize);
  // A real shape's ring fits the stream; a corrupted count larger than
  // this would just walk off the end anyway.
  const size_t max_verts =
      packets.size() * static_cast<size_t>(packet_capacity) / 8;
  int budget = bcast::DecodeBudget(packets.size());
  int best_fallback = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  struct WireEntry {
    BBox box;
    uint16_t ptr = 0;
  };
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int pkt = stack.back();
    stack.pop_back();
    if (--budget < 0) {
      return Status::DataLoss("r*-tree decode budget exhausted");
    }
    bcast::PacketReader r(packets, packet_capacity, framed, pkt, 0,
                          packets_read);
    uint16_t bid;
    DTREE_RETURN_IF_ERROR(r.ReadU16(&bid));
    const bool leaf = (bid & 0x8000u) != 0;
    const int count = bid & 0x7fff;
    if (count > max_count) {
      return Status::DataLoss("r*-tree node entry count " +
                              std::to_string(count) +
                              " exceeds the packet capacity");
    }
    std::vector<WireEntry> entries(static_cast<size_t>(count));
    for (WireEntry& e : entries) {
      float min_x, min_y, max_x, max_y;
      DTREE_RETURN_IF_ERROR(r.ReadF32(&min_x));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&min_y));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&max_x));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&max_y));
      DTREE_RETURN_IF_ERROR(r.ReadU16(&e.ptr));
      e.box = BBox{min_x, min_y, max_x, max_y};
    }
    if (!leaf) {
      // Push matching children in reverse so the leftmost (earliest on
      // the channel) is explored first, mirroring the in-memory Probe.
      for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        if (!it->box.Contains(p)) continue;
        const int child = it->ptr;
        // Strictly forward: rules out pointer cycles on corrupt bytes.
        if (child <= pkt || child >= static_cast<int>(packets.size())) {
          return Status::DataLoss(
              "child pointer does not move forward on the channel");
        }
        stack.push_back(child);
      }
      continue;
    }
    // Leaf: its shape objects follow it in entry order, starting at the
    // next packet. The writer places each shape at the current fill
    // offset when it fits the packet's remainder and otherwise bumps it
    // to a fresh packet (zero padding in between); mirror that placement
    // rule, using the shape header to tell a real shape from padding.
    const size_t cap = static_cast<size_t>(packet_capacity);
    constexpr size_t kShapeHeader = 3 * sizeof(uint16_t);
    int spkt = pkt + 1;
    size_t soff = 0;
    for (const WireEntry& e : entries) {
      uint16_t sptr = 0, nverts = 0;
      bool placed = false;
      for (int attempt = 0; attempt < 2 && !placed; ++attempt) {
        if (--budget < 0) {
          return Status::DataLoss("r*-tree decode budget exhausted");
        }
        if (soff + kShapeHeader > cap) {  // header never straddles
          ++spkt;
          soff = 0;
          continue;
        }
        bcast::PacketReader sr(packets, packet_capacity, framed, spkt, soff,
                               packets_read);
        uint16_t sbid;
        DTREE_RETURN_IF_ERROR(sr.ReadU16(&sbid));
        DTREE_RETURN_IF_ERROR(sr.ReadU16(&sptr));
        DTREE_RETURN_IF_ERROR(sr.ReadU16(&nverts));
        const size_t size = kShapeHeader + nverts * 2 * sizeof(float);
        // A shape at a nonzero offset always fits its packet's
        // remainder; anything else here is the writer's padding (or
        // corruption) and means the shape was bumped.
        if (sptr != e.ptr || nverts < 3 ||
            static_cast<size_t>(nverts) > max_verts ||
            (soff != 0 && size > cap - soff)) {
          if (soff == 0) {
            return Status::DataLoss(
                "shape header does not match its leaf entry");
          }
          ++spkt;
          soff = 0;
          continue;
        }
        const bool want = e.box.Contains(p);
        std::vector<Point> ring;
        if (want) ring.reserve(nverts);
        for (int v = 0; v < nverts; ++v) {
          float x, y;
          DTREE_RETURN_IF_ERROR(sr.ReadF32(&x));
          DTREE_RETURN_IF_ERROR(sr.ReadF32(&y));
          if (want) ring.push_back(Point{x, y});
        }
        // Advance the cursor past this shape exactly as the writer did.
        if (soff == 0) {
          size_t rest = size;
          while (rest > cap) {
            rest -= cap;
            ++spkt;
          }
          soff = rest;
        } else {
          soff += size;
        }
        placed = true;
        if (!want) continue;
        const int region = sptr;
        if (region >= num_regions) {
          return Status::DataLoss("data pointer to out-of-range region " +
                                  std::to_string(region));
        }
        const geom::Polygon poly(std::move(ring));
        if (poly.Contains(p)) return region;
        const double d = poly.DistanceToBoundary(p);
        if (d < best_dist) {
          best_dist = d;
          best_fallback = region;
        }
      }
      if (!placed) {
        return Status::DataLoss(
            "shape header does not match its leaf entry");
      }
    }
  }
  if (best_fallback >= 0) return best_fallback;
  return Status::DataLoss("query point escaped every leaf MBR");
}

int RStarTree::Locate(const geom::Point& p) const {
  Result<bcast::ProbeTrace> r = Probe(p);
  DTREE_CHECK(r.ok());
  return r.value().region;
}

Result<bcast::ProbeTrace> RStarTree::Probe(const geom::Point& p) const {
  bcast::ProbeTrace trace;
  auto touch = [&trace](int packet) {
    if (trace.packets.empty() || trace.packets.back() != packet) {
      trace.packets.push_back(packet);
    }
  };

  int best_fallback = -1;
  double best_fallback_dist = std::numeric_limits<double>::infinity();

  std::vector<int> stack{root_};
  int steps = 0;
  while (!stack.empty()) {
    if (++steps > bcast::kProbeStepBudget) {
      return Status::Internal("r*-tree descent exceeded the probe budget");
    }
    const int id = stack.back();
    stack.pop_back();
    touch(node_packet_[id]);
    const Node& node = nodes_[id];
    if (node.level > 0) {
      // Depth-first: push matching children in reverse so the leftmost
      // (earliest on the channel) is explored first.
      for (auto it = node.entries.rbegin(); it != node.entries.rend();
           ++it) {
        if (it->box.Contains(p)) stack.push_back(it->child);
      }
      continue;
    }
    for (const Entry& e : node.entries) {
      if (!e.box.Contains(p)) continue;
      const bcast::NodeSpan& span = shape_span_[e.region];
      for (int k = 0; k < span.num_packets; ++k) touch(span.first_packet + k);
      const geom::Polygon& poly = shapes_[e.region];
      if (poly.Contains(p)) {
        trace.region = e.region;
        return trace;
      }
      const double d = poly.DistanceToBoundary(p);
      if (d < best_fallback_dist) {
        best_fallback_dist = d;
        best_fallback = e.region;
      }
    }
  }
  if (best_fallback >= 0) {
    // Numeric gap between adjacent shapes: resolve to the nearest tested
    // region (the answer is ambiguous within tolerance anyway).
    trace.region = best_fallback;
    return trace;
  }
  return Status::Internal("query point escaped every leaf MBR");
}

double RStarTree::LeafOverlapArea() const {
  double overlap = 0.0;
  for (const Node& node : nodes_) {
    if (node.level != 0) continue;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      for (size_t j = i + 1; j < node.entries.size(); ++j) {
        overlap +=
            node.entries[i].box.IntersectionArea(node.entries[j].box);
      }
    }
  }
  return overlap;
}

}  // namespace dtree::baselines
