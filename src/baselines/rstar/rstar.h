// R*-tree baseline (Beckmann & Kriegel, SIGMOD'90) adapted to the air as
// in §3.2/§5 of the paper:
//  * full R* insertion — ChooseSubtree with overlap enlargement at the
//    leaf level, margin-driven split-axis selection, minimum-overlap
//    split distribution, and forced reinsertion (30%);
//  * an added bottom "shape layer" holding each region's exact polygon so
//    containment tests do not require fetching the 1 KB data instance;
//  * nodes sized to the packet (entry = 16 B MBR + 2 B pointer, 2 B bid),
//    one node per packet;
//  * depth-first broadcast order with the shape objects of each leaf
//    emitted right after it, so the DFS backtracking search only ever
//    jumps forward on the channel.

#ifndef DTREE_BASELINES_RSTAR_RSTAR_H_
#define DTREE_BASELINES_RSTAR_RSTAR_H_

#include <string>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/pager.h"
#include "common/status.h"
#include "geom/polygon.h"
#include "subdivision/subdivision.h"

namespace dtree::baselines {

class RStarTree final : public bcast::AirIndex {
 public:
  struct Options {
    int packet_capacity = 128;
    /// Fraction of entries reinserted on first overflow of a level (R*
    /// default 30%).
    int reinsert_percent = 30;
  };

  static Result<RStarTree> Build(const sub::Subdivision& sub,
                                 const Options& options);

  // --- AirIndex -----------------------------------------------------------
  std::string name() const override { return "r*-tree"; }
  int NumIndexPackets() const override { return num_packets_; }
  size_t IndexBytes() const override { return index_bytes_; }
  int PacketCapacity() const override { return options_.packet_capacity; }
  Result<bcast::ProbeTrace> Probe(const geom::Point& p) const override;

  /// In-memory point location (DFS with containment tests), no packet
  /// accounting.
  int Locate(const geom::Point& p) const;

  // --- byte-level broadcast form -------------------------------------------
  // Wire format (little-endian; sizes per Table 2). Tree node, one per
  // packet at offset 0:
  //   u16  bid      — bit 15: 1 = leaf, 0 = internal; bits 0..14: entry
  //                   count
  //   count x entry — 4 x f32 MBR (min_x min_y max_x max_y, rounded
  //                   OUTWARD to f32 so no containment test is lost to
  //                   narrowing) + u16 pointer: child packet id for an
  //                   internal entry, region id for a leaf entry
  // Shape object (streamed after its leaf; a leaf's shapes start at the
  // packet right after the leaf's, offset 0, and follow each other in
  // entry order — each placed at the current fill offset when it fits the
  // packet's remainder and otherwise bumped to a fresh packet, with zero
  // padding in between; only a shape starting at offset 0 spans packets):
  //   u16  bid      — region id (diagnostic)
  //   u16  ptr      — region id (the data pointer)
  //   u16  count    — vertex count
  //   count x (f32 x, f32 y) — the polygon ring, first vertex not repeated
  // The root node is always the first DFS node, i.e. packet 0.

  /// One broadcast cycle's worth of index packets, each exactly
  /// `packet_capacity` bytes (zero-padded).
  Result<std::vector<std::vector<uint8_t>>> SerializePackets() const;

  /// Hardened client-side query straight from (untrusted) packet bytes:
  /// every read is bounds-checked, every pointer field range-checked
  /// (child packets must move strictly forward, so no pointer cycle is
  /// possible), and total decode work is bounded by bcast::DecodeBudget —
  /// malformed or corrupted packets yield a Status (kDataLoss), never a
  /// crash or hang. With `framed` (bcast::FramePackets output) each
  /// packet's CRC-32 is verified on first touch. Returns the region id.
  static Result<int> QueryFromPackets(
      const std::vector<std::vector<uint8_t>>& packets, int packet_capacity,
      bool framed, int num_regions, const geom::Point& p,
      std::vector<int>* packets_read);

  // --- introspection -------------------------------------------------------
  int max_entries() const { return max_entries_; }
  int min_entries() const { return min_entries_; }
  int num_tree_nodes() const { return static_cast<int>(nodes_.size()); }
  int height() const { return height_; }
  /// Total leaf-MBR overlap area (diagnostic: why the R*-tree tunes badly
  /// on adjacent regions).
  double LeafOverlapArea() const;

 private:
  struct Entry {
    geom::BBox box;
    int child = -1;   ///< internal: child node id
    int region = -1;  ///< leaf: region id (-> shape object)
  };
  struct Node {
    int level = 0;  ///< 0 = leaf
    std::vector<Entry> entries;
  };

  RStarTree() = default;

  geom::BBox NodeBox(int id) const;
  int ChooseSubtree(int node_id, const geom::BBox& box, int target_level,
                    std::vector<int>* path) const;
  void SplitNode(int node_id, Entry* new_node_entry);
  void Insert(Entry e, int target_level);
  void InsertImpl(Entry e, int target_level, bool allow_reinsert);

  /// Assigns packets: DFS over the tree, shape objects after their leaf.
  Status Layout(const sub::Subdivision& sub);

  Options options_;
  int max_entries_ = 0;
  int min_entries_ = 0;
  int root_ = -1;
  int height_ = 0;
  std::vector<Node> nodes_;
  /// Reinsertion bookkeeping for the current top-level insert.
  std::vector<bool> reinserted_level_;

  // Broadcast layout.
  std::vector<int> node_packet_;             ///< node id -> packet
  std::vector<bcast::NodeSpan> shape_span_;  ///< region id -> packets
  std::vector<geom::Polygon> shapes_;        ///< region id -> polygon
  int num_packets_ = 0;
  size_t index_bytes_ = 0;
};

}  // namespace dtree::baselines

#endif  // DTREE_BASELINES_RSTAR_RSTAR_H_
