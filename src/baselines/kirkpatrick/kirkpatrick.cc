#include "baselines/kirkpatrick/kirkpatrick.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "broadcast/frame.h"
#include "broadcast/params.h"
#include "common/bytes.h"
#include "common/check.h"
#include "geom/predicates.h"
#include "subdivision/extent.h"
#include "subdivision/triangulate.h"

namespace dtree::baselines {

namespace {

using geom::Point;
using geom::Triangle;

uint64_t PointKey(const Point& p) {
  uint64_t xb, yb;
  std::memcpy(&xb, &p.x, sizeof(xb));
  std::memcpy(&yb, &p.y, sizeof(yb));
  return xb * 0x9e3779b97f4a7c15ULL ^ yb;
}

/// Serialized node size: bid + triangle + one 4 B pointer per child (base
/// triangles carry a single data pointer). Header is 0 per Table 2.
size_t NodeSize(size_t num_children) {
  return bcast::kBidSize + 6 * bcast::kCoordinateSize +
         std::max<size_t>(1, num_children) * bcast::kPointerSize;
}

/// Mesh bookkeeping during hierarchy construction.
struct Mesh {
  std::unordered_map<uint64_t, int> vid;  ///< coordinate bits -> vertex id
  std::vector<Point> coords;
  std::vector<std::vector<int>> incident;  ///< vertex -> active triangles
  std::vector<bool> corner;                ///< unremovable (box corners)

  int Intern(const Point& p) {
    const uint64_t key = PointKey(p);
    auto it = vid.find(key);
    if (it != vid.end()) return it->second;
    const int id = static_cast<int>(coords.size());
    vid.emplace(key, id);
    coords.push_back(p);
    incident.emplace_back();
    corner.push_back(false);
    return id;
  }
};

}  // namespace

Result<TrianTree> TrianTree::Build(const sub::Subdivision& sub,
                                   const Options& options) {
  if (options.packet_capacity < static_cast<int>(NodeSize(8))) {
    return Status::InvalidArgument(
        "packet capacity cannot hold a trian-tree node");
  }
  if (options.t_min < 1 || options.max_degree < 3) {
    return Status::InvalidArgument("invalid trian-tree parameters");
  }
  if (sub.NumRegions() < 1) {
    return Status::InvalidArgument("empty subdivision");
  }

  TrianTree tree;
  tree.options_ = options;

  // ---- 1. Base triangulation: regions + bounding-rectangle annulus. ----
  std::vector<std::pair<Triangle, int>> base;  // triangle, region
  for (int r = 0; r < sub.NumRegions(); ++r) {
    std::vector<Point> ring;
    for (int v : sub.Ring(r)) ring.push_back(sub.vertices()[v]);
    std::vector<Triangle> tris;
    DTREE_RETURN_IF_ERROR(sub::EarClipTriangulate(ring, &tris));
    for (const Triangle& t : tris) base.emplace_back(t, r);
  }
  {
    std::vector<int> all(sub.NumRegions());
    for (int i = 0; i < sub.NumRegions(); ++i) all[i] = i;
    Result<std::vector<geom::Polyline>> boundary_r =
        sub::ComputeExtent(sub, all);
    if (!boundary_r.ok()) return boundary_r.status();
    if (boundary_r.value().size() != 1) {
      return Status::Internal("subdivision boundary is not a single loop");
    }
    const geom::BBox& area = sub.service_area();
    const double mx = std::max(area.width(), area.height()) * 0.1;
    const geom::BBox outer{area.min_x - mx, area.min_y - mx,
                           area.max_x + mx, area.max_y + mx};
    std::vector<Triangle> gap;
    DTREE_RETURN_IF_ERROR(sub::TriangulateRectAnnulus(
        outer, area, boundary_r.value()[0].pts, &gap));
    for (const Triangle& t : gap) base.emplace_back(t, -1);
  }

  // ---- 2. Mesh + coarsening hierarchy. ----
  Mesh mesh;
  std::vector<std::array<int, 3>> tri_verts;
  auto add_triangle = [&](const Triangle& t, int region, int level) {
    TriNode node;
    node.tri = t;
    node.region = region;
    node.level = level;
    const int id = static_cast<int>(tree.tris_.size());
    tree.tris_.push_back(std::move(node));
    std::array<int, 3> vs;
    for (int i = 0; i < 3; ++i) {
      vs[i] = mesh.Intern(t.v[i]);
      mesh.incident[vs[i]].push_back(id);
    }
    tri_verts.push_back(vs);
    return id;
  };

  std::vector<bool> active;
  int active_count = 0;
  for (const auto& [t, region] : base) {
    Triangle ccw = t;
    ccw.EnsureCCW();
    if (ccw.Area() <= 0.0) {
      return Status::Internal("degenerate base triangle");
    }
    add_triangle(ccw, region, 0);
    ++active_count;
  }
  active.assign(tree.tris_.size(), true);
  // Box corners are unremovable.
  {
    const geom::BBox& area = sub.service_area();
    const double mx = std::max(area.width(), area.height()) * 0.1;
    for (const Point& c :
         {Point{area.min_x - mx, area.min_y - mx},
          Point{area.max_x + mx, area.min_y - mx},
          Point{area.max_x + mx, area.max_y + mx},
          Point{area.min_x - mx, area.max_y + mx}}) {
      auto it = mesh.vid.find(PointKey(c));
      if (it == mesh.vid.end()) {
        return Status::Internal("bounding-box corner missing from mesh");
      }
      mesh.corner[it->second] = true;
    }
  }

  auto active_incident = [&](int v) {
    std::vector<int>& inc = mesh.incident[v];
    inc.erase(std::remove_if(inc.begin(), inc.end(),
                             [&](int t) { return !active[t]; }),
              inc.end());
    return inc;
  };

  int level = 0;
  while (active_count > options.t_min) {
    ++level;
    // Greedy independent set of removable low-degree vertices. Visiting
    // vertices in ascending degree yields larger sets (and smaller star
    // holes), which keeps the hierarchy shallow.
    std::vector<std::pair<int, int>> eligible;  // (degree, vertex)
    for (size_t v = 0; v < mesh.coords.size(); ++v) {
      if (mesh.corner[v]) continue;
      const std::vector<int>& inc = active_incident(static_cast<int>(v));
      if (inc.empty() ||
          static_cast<int>(inc.size()) > options.max_degree) {
        continue;
      }
      eligible.emplace_back(static_cast<int>(inc.size()),
                            static_cast<int>(v));
    }
    std::sort(eligible.begin(), eligible.end());
    std::vector<int> chosen;
    std::vector<bool> blocked(mesh.coords.size(), false);
    for (const auto& [deg, v] : eligible) {
      if (blocked[v]) continue;
      chosen.push_back(v);
      for (int t : mesh.incident[v]) {
        for (int u : tri_verts[t]) blocked[u] = true;
      }
    }
    if (chosen.empty()) break;

    for (int v : chosen) {
      const std::vector<int> star = active_incident(v);
      if (static_cast<int>(star.size()) > options.max_degree ||
          star.empty()) {
        continue;  // degree changed due to earlier removals this round
      }
      // Link polygon: chain the edges opposite v, oriented CCW around v.
      std::unordered_map<int, int> next;
      for (int t : star) {
        const std::array<int, 3>& vs = tri_verts[t];
        int a = -1, b = -1;
        for (int i = 0; i < 3; ++i) {
          if (vs[i] == v) {
            a = vs[(i + 1) % 3];
            b = vs[(i + 2) % 3];
            break;
          }
        }
        DTREE_CHECK(a >= 0 && b >= 0);
        next[a] = b;
      }
      if (next.size() != star.size()) {
        return Status::Internal("inconsistent star around mesh vertex");
      }
      std::vector<int> ring_ids;
      int cur = next.begin()->first;
      for (size_t i = 0; i < next.size(); ++i) {
        ring_ids.push_back(cur);
        auto it = next.find(cur);
        if (it == next.end()) {
          return Status::Internal("open star link around interior vertex");
        }
        cur = it->second;
      }
      if (cur != ring_ids.front()) {
        return Status::Internal("star link does not close");
      }
      std::vector<Point> ring;
      for (int u : ring_ids) ring.push_back(mesh.coords[u]);

      std::vector<Triangle> retris;
      DTREE_RETURN_IF_ERROR(sub::EarClipTriangulate(ring, &retris));
      // Deactivate the star.
      for (int t : star) {
        DTREE_CHECK(active[t]);
        active[t] = false;
        --active_count;
      }
      for (const Triangle& t : retris) {
        const int id = add_triangle(t, -1, level);
        active.push_back(true);
        ++active_count;
        for (int old : star) {
          if (t.OverlapsInterior(tree.tris_[old].tri)) {
            tree.tris_[id].children.push_back(old);
          }
        }
        if (tree.tris_[id].children.empty()) {
          return Status::Internal("hierarchy triangle with no children");
        }
      }
      mesh.incident[v].clear();
    }
  }
  tree.num_levels_ = level + 1;
  for (size_t t = 0; t < tree.tris_.size(); ++t) {
    if (active[t]) tree.roots_.push_back(static_cast<int>(t));
  }

  DTREE_RETURN_IF_ERROR(tree.Page());
  return tree;
}

Status TrianTree::Page() {
  // Top-down broadcast order: coarsest level first. Since every DAG edge
  // goes from a higher level to a strictly lower one, level-descending
  // order guarantees the client only ever jumps forward on the channel —
  // a breadth-first order from the roots would not (shared children can
  // precede a later parent).
  bfs_order_.clear();
  bfs_order_.reserve(tris_.size());
  for (size_t t = 0; t < tris_.size(); ++t) {
    bfs_order_.push_back(static_cast<int>(t));
  }
  std::stable_sort(bfs_order_.begin(), bfs_order_.end(),
                   [&](int a, int b) { return tris_[a].level > tris_[b].level; });
  tri_bfs_pos_.assign(tris_.size(), -1);
  for (size_t pos = 0; pos < bfs_order_.size(); ++pos) {
    tri_bfs_pos_[bfs_order_[pos]] = static_cast<int>(pos);
  }
  // Scan the root list and every node's children in broadcast order so the
  // probe never rewinds (a node's children may span several levels).
  std::stable_sort(roots_.begin(), roots_.end(), [&](int a, int b) {
    return tri_bfs_pos_[a] < tri_bfs_pos_[b];
  });
  for (TriNode& node : tris_) {
    std::stable_sort(node.children.begin(), node.children.end(),
                     [&](int a, int b) {
                       return tri_bfs_pos_[a] < tri_bfs_pos_[b];
                     });
  }
  std::vector<size_t> sizes;
  sizes.reserve(bfs_order_.size());
  for (int id : bfs_order_) {
    sizes.push_back(NodeSize(tris_[id].children.size()));
  }
  Result<bcast::PagingResult> r =
      bcast::GreedyPage(sizes, options_.packet_capacity);
  if (!r.ok()) return r.status();
  paging_ = std::move(r).value();
  return Status::OK();
}

namespace {

double DistanceToTriangle(const Triangle& t, const Point& p) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 3; ++i) {
    best = std::min(best,
                    geom::DistanceToSegment(t.v[i], t.v[(i + 1) % 3], p));
  }
  return best;
}

}  // namespace

Result<bcast::ProbeTrace> TrianTree::Probe(const geom::Point& p) const {
  bcast::ProbeTrace trace;
  auto touch = [&](int tri_id) {
    const bcast::NodeSpan& span = paging_.spans[tri_bfs_pos_[tri_id]];
    for (int k = 0; k < span.num_packets; ++k) {
      const int packet = span.first_packet + k;
      if (trace.packets.empty() || trace.packets.back() != packet) {
        trace.packets.push_back(packet);
      }
    }
  };

  const std::vector<int>* candidates = &roots_;
  for (int depth = 0; depth < bcast::kProbeStepBudget; ++depth) {
    int found = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    int nearest = -1;
    for (int c : *candidates) {
      touch(c);
      if (tris_[c].tri.Contains(p)) {
        found = c;
        break;
      }
      const double d = DistanceToTriangle(tris_[c].tri, p);
      if (d < best_dist) {
        best_dist = d;
        nearest = c;
      }
    }
    if (found < 0) {
      // Numeric crack between adjacent triangles: take the nearest.
      if (nearest < 0) {
        return Status::Internal("query point escaped the triangulation");
      }
      found = nearest;
    }
    if (tris_[found].children.empty()) {
      trace.region = tris_[found].region;
      if (trace.region < 0) {
        return Status::NotFound("query point outside the service area");
      }
      return trace;
    }
    candidates = &tris_[found].children;
  }
  return Status::Internal("trian-tree descent did not terminate");
}

int TrianTree::Locate(const geom::Point& p) const {
  Result<bcast::ProbeTrace> r = Probe(p);
  if (!r.ok()) return -1;
  return r.value().region;
}

Result<std::vector<std::vector<uint8_t>>> TrianTree::SerializePackets()
    const {
  const int capacity = options_.packet_capacity;
  std::vector<std::vector<uint8_t>> packets(
      paging_.num_packets,
      std::vector<uint8_t>(static_cast<size_t>(capacity), 0));
  for (size_t bfs = 0; bfs < bfs_order_.size(); ++bfs) {
    const int id = bfs_order_[bfs];
    const TriNode& n = tris_[id];
    const bcast::NodeSpan& s = paging_.spans[bfs];
    if (n.children.size() > 15) {
      return Status::InvalidArgument(
          "trian-tree node with " + std::to_string(n.children.size()) +
          " children does not fit the 4-bit count field");
    }
    ByteWriter w;
    w.PutU16(static_cast<uint16_t>((n.children.size() << 12) |
                                   (bfs & 0xfff)));
    for (int i = 0; i < 3; ++i) {
      w.PutF32(static_cast<float>(n.tri.v[i].x));
      w.PutF32(static_cast<float>(n.tri.v[i].y));
    }
    if (n.children.empty()) {
      w.PutU32(n.region >= 0 ? bcast::EncodeDataPointer(n.region)
                             : bcast::kOutsideRegionPtr);
    } else {
      for (int c : n.children) {
        const bcast::NodeSpan& cs = paging_.spans[tri_bfs_pos_[c]];
        if (cs.offset > bcast::kOffsetMask) {
          return Status::InvalidArgument(
              "node offset exceeds the 12-bit pointer field");
        }
        if (cs.first_packet >= (1 << bcast::kPacketBits)) {
          return Status::InvalidArgument(
              "index packet exceeds the 19-bit pointer field");
        }
        w.PutU32(bcast::EncodeNodePointer(cs.first_packet, cs.offset));
      }
    }
    if (w.size() != NodeSize(n.children.size())) {
      return Status::Internal("serialized size " + std::to_string(w.size()) +
                              " != accounted size " +
                              std::to_string(NodeSize(n.children.size())));
    }
    bcast::PacketCursor cursor(&packets, capacity, s.first_packet, s.offset);
    cursor.Write(w.bytes());
  }
  return packets;
}

std::vector<std::pair<int, size_t>> TrianTree::RootLocations() const {
  std::vector<std::pair<int, size_t>> roots;
  roots.reserve(roots_.size());
  for (int r : roots_) {
    const bcast::NodeSpan& s = paging_.spans[tri_bfs_pos_[r]];
    roots.emplace_back(s.first_packet, s.offset);
  }
  return roots;
}

Result<int> TrianTree::QueryFromPackets(
    const std::vector<std::vector<uint8_t>>& packets, int packet_capacity,
    bool framed, const std::vector<std::pair<int, size_t>>& roots,
    int num_regions, const geom::Point& p, std::vector<int>* packets_read) {
  if (packets.empty()) return Status::InvalidArgument("no packets");
  if (packet_capacity < 1) {
    return Status::InvalidArgument("packet capacity must be positive");
  }
  if (roots.empty()) return Status::InvalidArgument("no root locations");
  for (const auto& [pkt, off] : roots) {
    if (pkt < 0 || pkt >= static_cast<int>(packets.size()) ||
        off >= static_cast<size_t>(packet_capacity)) {
      return Status::InvalidArgument("root location outside the stream");
    }
  }

  // One decoded node's routing payload.
  struct DecodedNode {
    int count = 0;
    std::vector<uint32_t> ptrs;
  };
  // Reads and validates the node at (packet, offset).
  auto decode = [&](int packet, size_t offset, Triangle* tri,
                    DecodedNode* node) -> Status {
    bcast::PacketReader r(packets, packet_capacity, framed, packet, offset,
                          packets_read);
    uint16_t bid;
    DTREE_RETURN_IF_ERROR(r.ReadU16(&bid));
    node->count = bid >> 12;
    for (int i = 0; i < 3; ++i) {
      float x, y;
      DTREE_RETURN_IF_ERROR(r.ReadF32(&x));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&y));
      tri->v[i] = Point{x, y};
    }
    // f32 rounding can flip the orientation of a sliver triangle;
    // Contains() assumes CCW.
    tri->EnsureCCW();
    const int nptrs = std::max(1, node->count);
    node->ptrs.resize(static_cast<size_t>(nptrs));
    for (int i = 0; i < nptrs; ++i) {
      DTREE_RETURN_IF_ERROR(r.ReadU32(&node->ptrs[static_cast<size_t>(i)]));
    }
    return Status::OK();
  };

  std::vector<std::pair<int, size_t>> candidates(roots.begin(), roots.end());
  int budget = bcast::DecodeBudget(packets.size());
  for (;;) {
    int found_count = -1;
    std::vector<uint32_t> found_ptrs;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto& [pkt, off] : candidates) {
      if (--budget < 0) {
        return Status::DataLoss("trian-tree decode budget exhausted");
      }
      Triangle tri;
      DecodedNode node;
      DTREE_RETURN_IF_ERROR(decode(pkt, off, &tri, &node));
      if (tri.Contains(p)) {
        found_count = node.count;
        found_ptrs = std::move(node.ptrs);
        break;
      }
      // Numeric crack between adjacent triangles: remember the nearest
      // (same fallback the in-memory Probe applies).
      const double d = DistanceToTriangle(tri, p);
      if (d < best_dist) {
        best_dist = d;
        found_count = node.count;
        found_ptrs = std::move(node.ptrs);
      }
    }
    if (found_count < 0) {
      return Status::DataLoss("query point escaped the triangulation");
    }
    if (found_count == 0) {
      const uint32_t ptr = found_ptrs[0];
      if (!bcast::IsDataPointer(ptr)) {
        return Status::DataLoss("base triangle without a data pointer");
      }
      if (ptr == bcast::kOutsideRegionPtr) {
        return Status::NotFound("query point outside the service area");
      }
      const int region = bcast::DataPointerRegion(ptr);
      if (region >= num_regions) {
        return Status::DataLoss("data pointer to out-of-range region " +
                                std::to_string(region));
      }
      return region;
    }
    candidates.clear();
    for (uint32_t ptr : found_ptrs) {
      if (bcast::IsDataPointer(ptr)) {
        return Status::DataLoss("unexpected data pointer in an internal "
                                "trian-tree node");
      }
      const int pkt = bcast::NodePointerPacket(ptr);
      const size_t off = bcast::NodePointerOffset(ptr);
      if (pkt >= static_cast<int>(packets.size())) {
        return Status::DataLoss("node pointer outside the packet stream");
      }
      if (off >= static_cast<size_t>(packet_capacity)) {
        return Status::DataLoss("node pointer offset outside the packet");
      }
      candidates.emplace_back(pkt, off);
    }
  }
}

}  // namespace dtree::baselines
