#include "baselines/kirkpatrick/arena.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "geom/predicates.h"

namespace dtree::baselines {

namespace {

using bcast::kDataPtrBit;
using bcast::kOffsetBits;
using bcast::kOffsetMask;

/// Smallest node on the wire: bid + three f32 vertices + one pointer.
constexpr size_t kMinNodeBytes = 2 + 24 + 4;

double DistanceToTriangle(const geom::Triangle& t, const geom::Point& p) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 3; ++i) {
    best = std::min(best,
                    geom::DistanceToSegment(t.v[i], t.v[(i + 1) % 3], p));
  }
  return best;
}

}  // namespace

Result<TrianTreeArena> TrianTreeArena::Build(
    bcast::PacketSource packets, int packet_capacity, bool framed,
    const std::vector<std::pair<int, size_t>>& roots, int num_regions) {
  if (packets.num_packets() == 0) {
    return Status::InvalidArgument("no packets");
  }
  if (packet_capacity < 1) {
    return Status::InvalidArgument("packet capacity must be positive");
  }
  if (roots.empty()) return Status::InvalidArgument("no root locations");

  TrianTreeArena a;
  a.budget_ = bcast::DecodeBudget(packets.num_packets());
  a.child_begin_.push_back(0);

  const size_t max_nodes =
      packets.num_packets() * static_cast<size_t>(packet_capacity) /
          kMinNodeBytes +
      16;
  std::unordered_map<uint32_t, uint32_t> index_of;  // wire key -> arena id
  std::deque<uint32_t> pending;
  auto intern = [&](int pkt, size_t off) -> Result<uint32_t> {
    const uint32_t key = static_cast<uint32_t>(pkt) << kOffsetBits |
                         static_cast<uint32_t>(off);
    const auto [it, inserted] =
        index_of.emplace(key, static_cast<uint32_t>(index_of.size()));
    if (inserted) {
      if (index_of.size() > max_nodes) {
        return Status::DataLoss(
            "decoded node count exceeds what the cycle can hold");
      }
      pending.push_back(key);
    }
    return it->second;
  };

  for (const auto& [pkt, off] : roots) {
    if (pkt < 0 || pkt >= static_cast<int>(packets.num_packets()) ||
        off >= static_cast<size_t>(packet_capacity)) {
      return Status::InvalidArgument("root location outside the stream");
    }
    Result<uint32_t> id = intern(pkt, off);
    if (!id.ok()) return id.status();
    a.roots_.push_back(id.value());
  }

  // Discovered nodes are appended to `pending` in arena-index order, so
  // processing the queue in order keeps per-node records aligned.
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> raw_children;
  while (!pending.empty()) {
    const uint32_t key = pending.front();
    pending.pop_front();
    const int packet = static_cast<int>(key >> kOffsetBits);
    const size_t offset = key & kOffsetMask;

    bcast::PacketReader r(packets, packet_capacity, framed, packet, offset,
                          nullptr);
    uint16_t bid;
    DTREE_RETURN_IF_ERROR(r.ReadU16(&bid));
    const int count = bid >> 12;
    geom::Triangle tri;
    for (int i = 0; i < 3; ++i) {
      float x, y;
      DTREE_RETURN_IF_ERROR(r.ReadF32(&x));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&y));
      tri.v[i] = geom::Point{x, y};
    }
    // f32 rounding can flip the orientation of a sliver triangle;
    // Contains() assumes CCW (exactly as the per-probe decoder).
    tri.EnsureCCW();
    a.tri_.push_back(tri);
    a.count_.push_back(count);

    const int nptrs = std::max(1, count);
    std::vector<uint32_t> ptrs(static_cast<size_t>(nptrs));
    for (int i = 0; i < nptrs; ++i) {
      DTREE_RETURN_IF_ERROR(r.ReadU32(&ptrs[static_cast<size_t>(i)]));
    }
    const size_t node_bytes = 2 + 24 + 4 * static_cast<size_t>(nptrs);
    a.first_packet_.push_back(packet);
    a.last_packet_.push_back(
        packet + static_cast<int>((offset + node_bytes - 1) /
                                  static_cast<size_t>(packet_capacity)));

    if (count == 0) {
      const uint32_t ptr = ptrs[0];
      if (!bcast::IsDataPointer(ptr)) {
        return Status::DataLoss("base triangle without a data pointer");
      }
      if (ptr != bcast::kOutsideRegionPtr) {
        const int region = bcast::DataPointerRegion(ptr);
        if (region >= num_regions) {
          return Status::DataLoss("data pointer to out-of-range region " +
                                  std::to_string(region));
        }
      }
      a.data_ptr_.push_back(ptr);
    } else {
      a.data_ptr_.push_back(0);
      std::vector<uint32_t> kids;
      kids.reserve(ptrs.size());
      for (uint32_t ptr : ptrs) {
        if (bcast::IsDataPointer(ptr)) {
          return Status::DataLoss(
              "unexpected data pointer in an internal trian-tree node");
        }
        const int cpkt = bcast::NodePointerPacket(ptr);
        const size_t coff = bcast::NodePointerOffset(ptr);
        if (cpkt >= static_cast<int>(packets.num_packets())) {
          return Status::DataLoss("node pointer outside the packet stream");
        }
        if (coff >= static_cast<size_t>(packet_capacity)) {
          return Status::DataLoss("node pointer offset outside the packet");
        }
        Result<uint32_t> id = intern(cpkt, coff);
        if (!id.ok()) return id.status();
        kids.push_back(id.value());
      }
      raw_children.emplace_back(
          static_cast<uint32_t>(a.count_.size()) - 1, std::move(kids));
    }
  }

  // Second pass: flatten children now that every node has its index.
  size_t ri = 0;
  for (size_t id = 0; id < a.count_.size(); ++id) {
    if (a.count_[id] > 0) {
      DTREE_CHECK(ri < raw_children.size() &&
                  raw_children[ri].first == static_cast<uint32_t>(id));
      for (uint32_t c : raw_children[ri].second) a.child_.push_back(c);
      ++ri;
    }
    a.child_begin_.push_back(static_cast<uint32_t>(a.child_.size()));
  }
  return a;
}

Status TrianTreeArena::ProbeInto(const geom::Point& p,
                                 bcast::ProbeTrace* trace) const {
  trace->region = -1;
  trace->packets.clear();
  trace->origins.clear();
  const uint32_t* cand = roots_.data();
  size_t ncand = roots_.size();
  int budget = budget_;
  for (;;) {
    int64_t found = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < ncand; ++i) {
      const uint32_t c = cand[i];
      if (--budget < 0) {
        return Status::DataLoss("trian-tree decode budget exhausted");
      }
      // The wire decoder always reads the whole node, so the read-log
      // gains the node's full packet span whether or not it matches.
      for (int k = first_packet_[c]; k <= last_packet_[c]; ++k) {
        if (trace->packets.empty() || trace->packets.back() != k) {
          trace->packets.push_back(k);
        }
      }
      if (tri_[c].Contains(p)) {
        found = c;
        break;
      }
      // Numeric crack between adjacent triangles: remember the nearest
      // (same fallback the per-probe decoder applies).
      const double d = DistanceToTriangle(tri_[c], p);
      if (d < best_dist) {
        best_dist = d;
        found = c;
      }
    }
    if (found < 0) {
      return Status::DataLoss("query point escaped the triangulation");
    }
    const uint32_t f = static_cast<uint32_t>(found);
    if (count_[f] == 0) {
      const uint32_t ptr = data_ptr_[f];
      if (ptr == bcast::kOutsideRegionPtr) {
        return Status::NotFound("query point outside the service area");
      }
      trace->region = bcast::DataPointerRegion(ptr);
      return Status::OK();
    }
    cand = child_.data() + child_begin_[f];
    ncand = static_cast<size_t>(count_[f]);
  }
}

size_t TrianTreeArena::ArenaBytes() const {
  return sizeof(geom::Triangle) * tri_.capacity() +
         sizeof(int32_t) * (count_.capacity() + first_packet_.capacity() +
                            last_packet_.capacity()) +
         sizeof(uint32_t) * (data_ptr_.capacity() + child_begin_.capacity() +
                             child_.capacity() + roots_.capacity());
}

Result<bcast::ArenaIndex> BuildTrianTreeArenaIndex(const TrianTree& tree,
                                                   int num_regions) {
  Result<std::vector<std::vector<uint8_t>>> packets = tree.SerializePackets();
  if (!packets.ok()) return packets.status();
  Result<TrianTreeArena> arena =
      TrianTreeArena::Build(packets.value(), tree.PacketCapacity(),
                            /*framed=*/false, tree.RootLocations(),
                            num_regions);
  if (!arena.ok()) return arena.status();
  return bcast::ArenaIndex(
      tree, std::make_unique<TrianTreeArena>(std::move(arena).value()));
}

}  // namespace dtree::baselines
