// Flat-arena probe engine for the Kirkpatrick triangulation baseline
// (DESIGN.md §12): every reachable node decoded once — CRC-verified in
// framed mode — into contiguous triangle / child-pointer arrays, so the
// per-level candidate scan runs over typed memory instead of re-parsing
// wire bytes. ProbeInto replicates TrianTree::QueryFromPackets' exact
// arithmetic: the promoted-f32 triangles after EnsureCCW, the same
// Contains-then-nearest candidate scan, the same decode budget, and the
// same packet log (a candidate's full node span, deduplicated when
// consecutive).

#ifndef DTREE_BASELINES_KIRKPATRICK_ARENA_H_
#define DTREE_BASELINES_KIRKPATRICK_ARENA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "baselines/kirkpatrick/kirkpatrick.h"
#include "broadcast/arena.h"
#include "broadcast/frame.h"
#include "common/status.h"
#include "geom/triangle.h"

namespace dtree::baselines {

class TrianTreeArena final : public bcast::FlatProbeEngine {
 public:
  /// Decodes every node reachable from the root locations (the trusted
  /// metadata a client holds, mirroring QueryFromPackets' roots
  /// argument). In framed mode each packet's CRC is verified as the
  /// build first touches it; malformed pointers, non-data leaf pointers,
  /// or out-of-range region labels fail with kDataLoss, so the arena is
  /// never built over unverified bytes.
  static Result<TrianTreeArena> Build(
      bcast::PacketSource packets, int packet_capacity, bool framed,
      const std::vector<std::pair<int, size_t>>& roots, int num_regions);

  Status ProbeInto(const geom::Point& p,
                   bcast::ProbeTrace* trace) const override;
  size_t ArenaBytes() const override;

  int num_nodes() const { return static_cast<int>(count_.size()); }

 private:
  TrianTreeArena() = default;

  int budget_ = 0;  ///< DecodeBudget(num_packets), as the wire decoder

  std::vector<uint32_t> roots_;  ///< arena indices of the root candidates

  // --- per-node records (index = arena node id) -------------------------
  std::vector<geom::Triangle> tri_;  ///< promoted f32 verts, post-EnsureCCW
  std::vector<int32_t> count_;       ///< child count; 0 = base triangle
  std::vector<uint32_t> data_ptr_;   ///< leaves: wire data pointer verbatim
  std::vector<int32_t> first_packet_, last_packet_;  ///< full node span

  // --- children, flattened across all internal nodes --------------------
  std::vector<uint32_t> child_begin_;  ///< size num_nodes + 1
  std::vector<uint32_t> child_;        ///< arena indices

  friend class TrianTreeArenaTestPeer;
};

/// Server-side arena for a built trian-tree: serializes and decodes back
/// using the tree's own RootLocations(). The ArenaIndex reports the
/// tree's identity, so experiment output is byte-identical with the
/// arena enabled.
Result<bcast::ArenaIndex> BuildTrianTreeArenaIndex(const TrianTree& tree,
                                                   int num_regions);

}  // namespace dtree::baselines

#endif  // DTREE_BASELINES_KIRKPATRICK_ARENA_H_
