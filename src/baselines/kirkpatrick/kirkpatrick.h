// Kirkpatrick planar point-location hierarchy (the paper's "trian-tree"
// baseline, §3.1 / Figure 3).
//
// Construction:
//  1. Triangulate the subdivision: each (convex) Voronoi region is
//     ear-clipped, and the gap between the service area and an enclosing
//     bounding rectangle is triangulated with corner fans (see
//     subdivision/triangulate.h). Every base triangle carries its data
//     region (-1 for gap triangles).
//  2. Repeatedly remove an independent set of interior vertices of degree
//     <= 8, re-triangulating each star hole by ear clipping, and linking
//     every new triangle to the removed triangles it overlaps.
//  3. Stop when no removable vertex remains or the top level has fewer
//     than `t_min` triangles. The DAG root is the list of surviving
//     triangles, probed sequentially (Figure 3(d) has a multi-child root).
//
// Query: scan the root triangles for one containing p, then repeatedly
// descend to the overlapping child triangle containing p until reaching a
// base triangle; its region label answers the query.
//
// On the air: node = bid (2 B) + 3 vertices (24 B) + 4 B pointers, one per
// child (Table 2; header 0). Nodes are paged greedily in breadth-first
// order — a DAG node has several parents, so the top-down parent-packet
// heuristic does not apply (§5).

#ifndef DTREE_BASELINES_KIRKPATRICK_KIRKPATRICK_H_
#define DTREE_BASELINES_KIRKPATRICK_KIRKPATRICK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/pager.h"
#include "common/status.h"
#include "geom/triangle.h"
#include "subdivision/subdivision.h"

namespace dtree::baselines {

class TrianTree final : public bcast::AirIndex {
 public:
  struct Options {
    int packet_capacity = 128;
    /// Stop coarsening when the top level has fewer triangles than this
    /// (the paper's example uses 5).
    int t_min = 5;
    /// Maximum degree of a removable vertex (Kirkpatrick's constant).
    int max_degree = 8;
  };

  static Result<TrianTree> Build(const sub::Subdivision& sub,
                                 const Options& options);

  // --- AirIndex -----------------------------------------------------------
  std::string name() const override { return "trian-tree"; }
  int NumIndexPackets() const override { return paging_.num_packets; }
  size_t IndexBytes() const override { return paging_.used_bytes; }
  int PacketCapacity() const override { return options_.packet_capacity; }
  Result<bcast::ProbeTrace> Probe(const geom::Point& p) const override;

  /// In-memory query without packet accounting.
  int Locate(const geom::Point& p) const;

  // --- byte-level broadcast form -------------------------------------------
  // Node wire format (little-endian; sizes per Table 2, header 0):
  //   u16  bid      — bits 12..15: child count (0 = base triangle);
  //                   bits 0..11: broadcast position mod 4096 (diagnostic)
  //   6 x f32       — triangle vertices v0.x v0.y v1.x v1.y v2.x v2.y
  //   max(1, count) x u32 pointers (broadcast/frame.h encoding):
  //     count = 0   one data pointer: region id, or kOutsideRegionPtr for
  //                 gap triangles outside the service area
  //     count > 0   one node pointer (packet, offset) per child

  /// One broadcast cycle's worth of index packets, each exactly
  /// `packet_capacity` bytes (zero-padded). InvalidArgument when a node
  /// has more children than the 4-bit count field can carry.
  Result<std::vector<std::vector<uint8_t>>> SerializePackets() const;

  /// Decoder entry points: (packet, byte offset) of every root triangle
  /// node, in probe order. The roots are not contiguous on the channel
  /// (broadcast order is level-descending and the surviving top-level
  /// triangles span levels), so a real client learns these locations from
  /// the broadcast schedule header — trusted metadata, unlike the packet
  /// bytes themselves.
  std::vector<std::pair<int, size_t>> RootLocations() const;

  /// Hardened client-side query straight from (untrusted) packet bytes:
  /// every read is bounds-checked, every pointer field range-checked, and
  /// the total node-decode work is bounded by bcast::DecodeBudget, so
  /// malformed or corrupted packets yield a Status (kDataLoss), never a
  /// crash or hang. With `framed` (bcast::FramePackets output) each
  /// packet's CRC-32 is verified on first touch. Returns the region id;
  /// NotFound for points outside the service area.
  static Result<int> QueryFromPackets(
      const std::vector<std::vector<uint8_t>>& packets, int packet_capacity,
      bool framed, const std::vector<std::pair<int, size_t>>& roots,
      int num_regions, const geom::Point& p, std::vector<int>* packets_read);

  // --- introspection -------------------------------------------------------
  int num_triangles() const { return static_cast<int>(tris_.size()); }
  int num_root_triangles() const { return static_cast<int>(roots_.size()); }
  int num_levels() const { return num_levels_; }

 private:
  struct TriNode {
    geom::Triangle tri;
    int region = -1;             ///< base triangles: data region
    std::vector<int> children;   ///< finer triangles this one overlaps
    int level = 0;               ///< 0 = base triangulation
  };

  TrianTree() = default;

  Status Page();

  Options options_;
  std::vector<TriNode> tris_;
  std::vector<int> roots_;  ///< surviving top-level triangles
  int num_levels_ = 1;
  std::vector<int> bfs_order_;     ///< bfs position -> triangle id
  std::vector<int> tri_bfs_pos_;   ///< triangle id -> bfs position
  bcast::PagingResult paging_;
};

}  // namespace dtree::baselines

#endif  // DTREE_BASELINES_KIRKPATRICK_KIRKPATRICK_H_
