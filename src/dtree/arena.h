// Flat-arena probe engine for the D-tree (DESIGN.md §12).
//
// DTreeArena decodes a serialized cycle ONCE — in framed mode every
// packet's CRC is verified during the build, so the arena is only ever
// constructed from verified frames — into a structure-of-arrays image:
// node records in contiguous typed arrays, child links as 32-bit arena
// indices, and partition segments as four contiguous endpoint arrays so
// the per-query ray-crossing parity runs as a branch-light loop over
// doubles instead of re-parsing wire bytes.
//
// Bit-identity contract: ProbeInto replicates the packet decoder's exact
// arithmetic — the same f32→double promotions (exact), the same §4.4
// early-termination comparisons in the same order, the same
// division-based ray-crossing intercept, the same reconstructed-bound
// rule — and the same packet accounting the wire read-log produces, which
// equals DTree::Probe's span accounting. tests/arena_test pins both.

#ifndef DTREE_DTREE_ARENA_H_
#define DTREE_DTREE_ARENA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "broadcast/arena.h"
#include "broadcast/frame.h"
#include "common/status.h"
#include "dtree/dtree.h"

namespace dtree::core {

class DTreeArena final : public bcast::FlatProbeEngine {
 public:
  /// (packet << kOffsetBits | offset) -> origin annotation, used by the
  /// server-side build to attribute packet reads to tree nodes exactly as
  /// DTree::Probe does. Client-side builds have no such map and emit
  /// traces with empty origins.
  using OriginMap = std::unordered_map<uint32_t, bcast::ProbePacketOrigin>;

  /// Decodes every node reachable from (packet 0, offset 0) into the
  /// arena. In framed mode each packet's CRC is verified as the build
  /// first touches it, so corruption surfaces as kDataLoss here and the
  /// arena is never built over unverified bytes. Malformed input (bad
  /// pointers, overlapping nodes run amok) also fails with kDataLoss.
  static Result<DTreeArena> Build(bcast::PacketSource packets,
                                  int packet_capacity, bool framed,
                                  bool early_termination, int num_regions,
                                  const OriginMap* origins = nullptr);

  Status ProbeInto(const geom::Point& p,
                   bcast::ProbeTrace* trace) const override;
  size_t ArenaBytes() const override;

  int num_nodes() const { return static_cast<int>(left_.size()); }

 private:
  DTreeArena() = default;

  bool has_origins_ = false;
  int num_regions_ = 0;
  int budget_ = 0;  ///< DecodeBudget(num_packets), as the wire decoder uses

  // --- per-node records (structure of arrays, index = arena node id) ----
  std::vector<uint8_t> x_dim_;        ///< 1 = kXDim partition
  std::vector<uint8_t> shortcut_ok_;  ///< explicit bounds + early term.
  std::vector<double> lmc_, rmc_;     ///< promoted f32 shortcut bounds
  std::vector<double> near_b_, far_b_;  ///< full-test (Algorithm 2) bounds
  std::vector<uint32_t> left_, right_;  ///< kDataPtrBit kept; else index
  std::vector<int32_t> first_packet_;
  std::vector<int32_t> full_last_;    ///< last packet of a full node read
  std::vector<int32_t> origin_node_, origin_depth_;

  // --- partition segments, flattened across all nodes ------------------
  std::vector<uint32_t> seg_begin_;  ///< size num_nodes + 1
  std::vector<double> ax_, ay_, bx_, by_;
};

/// Server-side arena for a built D-tree: serializes the tree (flat) and
/// decodes the bytes back, annotating nodes with origins so probe traces
/// — region, packets, AND origins — are identical to tree.Probe's. The
/// returned ArenaIndex reports the tree's own name/packet/byte identity,
/// making experiment output byte-identical with the arena enabled.
Result<bcast::ArenaIndex> BuildDTreeArenaIndex(const DTree& tree);

/// Client-side arena straight from received CRC-framed packets (the
/// re-tune recovery path): every frame is verified during the build.
Result<DTreeArena> DTreeArenaFromFrames(bcast::PacketSource frames,
                                        int packet_capacity,
                                        bool early_termination,
                                        int num_regions);

}  // namespace dtree::core

#endif  // DTREE_DTREE_ARENA_H_
