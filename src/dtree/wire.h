// Shared D-tree wire-format decode helpers, used by the per-probe packet
// decoder (serialize.cc) and the flat-arena builder (arena.cc). Keeping
// the byte-level parse in one place is what lets the arena guarantee
// bit-identical results: both paths read the same fields in the same
// order with the same f32→double promotions and the same hardening
// checks.

#ifndef DTREE_DTREE_WIRE_H_
#define DTREE_DTREE_WIRE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "broadcast/frame.h"
#include "common/status.h"
#include "dtree/partition.h"
#include "geom/point.h"

namespace dtree::core {

/// Fixed-size leading fields of a serialized node (Table 2). When
/// `has_bounds`, the RMC/LMC shortcut bounds follow the pointers and are
/// included here; the variable-length partition polylines come after.
struct WireNodePrefix {
  uint16_t bid = 0;
  PartitionDim dim = PartitionDim::kYDim;
  bool has_bounds = false;
  int total_coords = 0;  ///< partition size in scalar coordinates
  uint32_t left_ptr = 0;
  uint32_t right_ptr = 0;
  float rmc = 0.0f;  ///< far shortcut bound (valid when has_bounds)
  float lmc = 0.0f;  ///< near shortcut bound (valid when has_bounds)
};

inline Status ReadWireNodePrefix(bcast::PacketReader* r,
                                 WireNodePrefix* out) {
  uint16_t header;
  DTREE_RETURN_IF_ERROR(r->ReadU16(&out->bid));
  DTREE_RETURN_IF_ERROR(r->ReadU16(&header));
  out->dim = (header & 1) ? PartitionDim::kXDim : PartitionDim::kYDim;
  out->has_bounds = (header & 2) != 0;
  out->total_coords = header >> 2;
  DTREE_RETURN_IF_ERROR(r->ReadU32(&out->left_ptr));
  DTREE_RETURN_IF_ERROR(r->ReadU32(&out->right_ptr));
  if (out->has_bounds) {
    DTREE_RETURN_IF_ERROR(r->ReadF32(&out->rmc));
    DTREE_RETURN_IF_ERROR(r->ReadF32(&out->lmc));
  }
  return Status::OK();
}

/// Streams the node's partition polylines out of the reader. Points land
/// in the caller-provided scratch arrays (reused across calls, so the hot
/// path never reallocates once warmed); after each chain is read — and
/// its closing vertex popped when it repeats the first one within
/// kGeomEps, exactly as the decoder always has — `on_polyline(xs, ys, n,
/// closed)` is invoked with the chain's points. `min_c`/`max_c`
/// accumulate the partition-dimension extreme over EVERY point read,
/// including a popped closing vertex (the bound-reconstruction rule the
/// serializer counts on).
template <typename F>
Status ReadWirePolylines(bcast::PacketReader* r, PartitionDim dim,
                         int total_coords, std::vector<double>* sx,
                         std::vector<double>* sy, double* min_c,
                         double* max_c, F&& on_polyline) {
  *min_c = 1e300;
  *max_c = -1e300;
  int coords = 0;
  while (coords < total_coords) {
    uint16_t count;
    DTREE_RETURN_IF_ERROR(r->ReadU16(&count));
    if (count < 2) return Status::DataLoss("polyline with < 2 points");
    if (coords + 2 * static_cast<int>(count) > total_coords) {
      return Status::DataLoss(
          "polyline overruns the node's coordinate count");
    }
    sx->clear();
    sy->clear();
    sx->reserve(count);
    sy->reserve(count);
    for (int i = 0; i < count; ++i) {
      float x, y;
      DTREE_RETURN_IF_ERROR(r->ReadF32(&x));
      DTREE_RETURN_IF_ERROR(r->ReadF32(&y));
      sx->push_back(x);
      sy->push_back(y);
      const double c = static_cast<double>(dim == PartitionDim::kYDim ? x : y);
      *min_c = std::min(*min_c, c);
      *max_c = std::max(*max_c, c);
    }
    coords += 2 * count;
    bool closed = false;
    size_t n = sx->size();
    if (n > 3 &&
        geom::NearlyEqual({(*sx)[0], (*sy)[0]},
                          {(*sx)[n - 1], (*sy)[n - 1]}, geom::kGeomEps)) {
      --n;  // pop the repeated closing vertex
      closed = true;
    }
    on_polyline(sx->data(), sy->data(), n, closed);
  }
  if (coords != total_coords) {
    return Status::DataLoss("partition coordinate count mismatch");
  }
  return Status::OK();
}

/// Shortcut bounds for the full Algorithm 2 test: explicit when the
/// header carried them, otherwise reconstructed from the partition's
/// extreme coordinates (valid — the encoder sets the explicit-bounds flag
/// exactly when they would not be recoverable this way).
inline std::pair<double, double> WireShortcutBounds(
    const WireNodePrefix& prefix, double min_c, double max_c) {
  if (prefix.has_bounds) return {prefix.lmc, prefix.rmc};
  if (prefix.dim == PartitionDim::kYDim) return {min_c, max_c};
  return {max_c, min_c};  // lower_umc (max y), upper_lwc (min y)
}

}  // namespace dtree::core

#endif  // DTREE_DTREE_WIRE_H_
