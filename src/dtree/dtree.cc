#include "dtree/dtree.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>

#include "common/check.h"

namespace dtree::core {

namespace {

/// Transient child descriptor during recursive construction.
struct ChildRef {
  int node = -1;
  int region = -1;
};

}  // namespace

size_t DTree::NodeByteSize(DTreeNode* node, const Options& options) {
  // bid + header + left_ptr + right_ptr (Figure 7, Table 2).
  size_t size = bcast::kBidSize + bcast::kDTreeHeaderSize +
                2 * bcast::kPointerSize;
  for (const geom::Polyline& pl : node->polylines) {
    const size_t points = pl.pts.size() + (pl.closed ? 1 : 0);
    size += 2;                                   // per-polyline point count
    size += points * 2 * bcast::kCoordinateSize; // vertices
  }

  // Is the near shortcut bound recoverable as the partition's extreme
  // coordinate? (See the explicit_bounds comment in dtree.h.)
  double extreme = node->dim == PartitionDim::kYDim
                       ? std::numeric_limits<double>::infinity()
                       : -std::numeric_limits<double>::infinity();
  for (const geom::Polyline& pl : node->polylines) {
    for (const geom::Point& p : pl.pts) {
      if (node->dim == PartitionDim::kYDim) {
        extreme = std::min(extreme, p.x);
      } else {
        extreme = std::max(extreme, p.y);
      }
    }
  }
  const bool near_recoverable =
      std::abs(extreme - node->near_bound) <= geom::kMergeEps;

  node->explicit_bounds = !near_recoverable;
  node->large = size + (node->explicit_bounds ? 2 * bcast::kCoordinateSize
                                              : size_t{0}) >
                static_cast<size_t>(options.packet_capacity);
  if (node->large && options.early_termination) {
    // §4.4 arrangement: RMC/LMC up front so D1/D3 queries resolve from the
    // node's first packet.
    node->explicit_bounds = true;
  }
  if (node->explicit_bounds) size += 2 * bcast::kCoordinateSize;
  node->large = size > static_cast<size_t>(options.packet_capacity);
  node->byte_size = size;
  return size;
}

Result<DTree> DTree::Build(const sub::Subdivision& sub,
                           const Options& options) {
  return Build(sub, options, nullptr);
}

Result<DTree> DTree::Build(const sub::Subdivision& sub, const Options& options,
                           BuildTimings* timings) {
  const auto phase_start = std::chrono::steady_clock::now();
  const auto seconds_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  if (options.packet_capacity < 24) {
    // A node's fixed prefix (bid + header + two pointers + RMC/LMC) must
    // fit in the first packet for the access protocol to work.
    return Status::InvalidArgument(
        "packet capacity too small for a D-tree node prefix");
  }
  if (sub.NumRegions() < 1) {
    return Status::InvalidArgument("empty subdivision");
  }
  if (!options.access_weights.empty() &&
      options.access_weights.size() !=
          static_cast<size_t>(sub.NumRegions())) {
    return Status::InvalidArgument(
        "access_weights must have one entry per region");
  }

  DTree tree;
  tree.options_ = options;
  tree.num_regions_ = sub.NumRegions();

  if (sub.NumRegions() == 1) {
    // Degenerate index: no nodes; every probe resolves to region 0.
    tree.root_ = -1;
    tree.height_ = 0;
    return tree;
  }

  // Recursive construction (explicit because N can be large).
  Status build_status = Status::OK();
  auto build = [&](auto&& self, const std::vector<int>& regions,
                   int depth) -> ChildRef {
    if (!build_status.ok()) return {};
    if (regions.size() == 1) return ChildRef{-1, regions[0]};
    Result<Partition> part_r =
        ChooseBestPartition(sub, regions, options.interprob_tiebreak,
                            options.access_weights);
    if (!part_r.ok()) {
      build_status = part_r.status();
      return {};
    }
    Partition part = std::move(part_r).value();
    const int id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.emplace_back();
    {
      DTreeNode& n = tree.nodes_[id];
      n.dim = part.style.dim;
      n.near_bound = part.near_bound;
      n.far_bound = part.far_bound;
      n.polylines = std::move(part.polylines);
      n.depth = depth;
    }
    const ChildRef left = self(self, part.first_group, depth + 1);
    const ChildRef right = self(self, part.second_group, depth + 1);
    if (!build_status.ok()) return {};
    DTreeNode& n = tree.nodes_[id];
    n.left_node = left.node;
    n.left_region = left.region;
    n.right_node = right.node;
    n.right_region = right.region;
    NodeByteSize(&n, options);
    return ChildRef{id, -1};
  };

  std::vector<int> all(sub.NumRegions());
  for (int i = 0; i < sub.NumRegions(); ++i) all[i] = i;
  const ChildRef root = build(build, all, 0);
  if (!build_status.ok()) return build_status;
  DTREE_CHECK(root.node >= 0);
  tree.root_ = root.node;
  for (const DTreeNode& n : tree.nodes_) {
    tree.height_ = std::max(tree.height_, n.depth + 1);
  }

  // Breadth-first broadcast order.
  tree.bfs_order_.reserve(tree.nodes_.size());
  std::deque<int> queue{tree.root_};
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    tree.bfs_order_.push_back(id);
    const DTreeNode& n = tree.nodes_[id];
    if (n.left_node >= 0) queue.push_back(n.left_node);
    if (n.right_node >= 0) queue.push_back(n.right_node);
  }
  DTREE_CHECK(tree.bfs_order_.size() == tree.nodes_.size());
  tree.bfs_pos_.assign(tree.nodes_.size(), -1);
  for (size_t pos = 0; pos < tree.bfs_order_.size(); ++pos) {
    tree.bfs_pos_[tree.bfs_order_[pos]] = static_cast<int>(pos);
  }

  if (timings != nullptr) timings->partition_seconds = seconds_since(phase_start);
  const auto paging_start = std::chrono::steady_clock::now();

  // Page into packets (Algorithm 3).
  bcast::PagingInput input;
  input.sizes.reserve(tree.nodes_.size());
  input.parent.assign(tree.nodes_.size(), -1);
  input.is_leaf.reserve(tree.nodes_.size());
  for (int id : tree.bfs_order_) {
    input.sizes.push_back(tree.nodes_[id].byte_size);
    input.is_leaf.push_back(tree.nodes_[id].IsLeaf());
  }
  for (size_t pos = 0; pos < tree.bfs_order_.size(); ++pos) {
    const DTreeNode& n = tree.nodes_[tree.bfs_order_[pos]];
    if (n.left_node >= 0) {
      input.parent[tree.bfs_pos_[n.left_node]] = static_cast<int>(pos);
    }
    if (n.right_node >= 0) {
      input.parent[tree.bfs_pos_[n.right_node]] = static_cast<int>(pos);
    }
  }
  Result<bcast::PagingResult> paging_r = bcast::TopDownPage(
      input, options.packet_capacity, options.merge_leaf_packets);
  if (!paging_r.ok()) return paging_r.status();
  tree.paging_ = std::move(paging_r).value();
  if (timings != nullptr) timings->paging_seconds = seconds_since(paging_start);
  return tree;
}

int DTree::Locate(const geom::Point& p) const {
  if (root_ < 0) return num_regions_ == 1 ? 0 : -1;
  int id = root_;
  for (;;) {
    const DTreeNode& n = nodes_[id];
    if (PointInSubspaceTest(n.dim, n.near_bound, n.far_bound, n.polylines,
                            p)) {
      if (n.left_node < 0) return n.left_region;
      id = n.left_node;
    } else {
      if (n.right_node < 0) return n.right_region;
      id = n.right_node;
    }
  }
}

Result<bcast::ProbeTrace> DTree::Probe(const geom::Point& p) const {
  bcast::ProbeTrace trace;
  if (root_ < 0) {
    if (num_regions_ != 1) return Status::FailedPrecondition("empty tree");
    trace.region = 0;
    return trace;
  }
  int id = root_;
  for (;;) {
    const DTreeNode& n = nodes_[id];
    bool via_shortcut = false;
    const bool first = PointInSubspaceTest(n.dim, n.near_bound, n.far_bound,
                                           n.polylines, p, &via_shortcut);

    // Packet accounting for reading this node.
    const bcast::NodeSpan& s = paging_.spans[bfs_pos_[id]];
    int packets_read;
    if (s.num_packets == 1) {
      packets_read = 1;
    } else if (options_.early_termination && via_shortcut) {
      packets_read = 1;  // pointers + RMC/LMC live in the first packet
    } else {
      packets_read = s.num_packets;
    }
    for (int k = 0; k < packets_read; ++k) {
      const int packet = s.first_packet + k;
      if (trace.packets.empty() || trace.packets.back() != packet) {
        trace.packets.push_back(packet);
        trace.origins.push_back({id, n.depth});
      }
    }

    if (first) {
      if (n.left_node < 0) {
        trace.region = n.left_region;
        return trace;
      }
      id = n.left_node;
    } else {
      if (n.right_node < 0) {
        trace.region = n.right_region;
        return trace;
      }
      id = n.right_node;
    }
  }
}

}  // namespace dtree::core
