#include "dtree/program.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "dtree/serialize.h"

namespace dtree::core {

namespace {

void PutU32(uint8_t* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
  }
}

uint32_t GetU32(const uint8_t* buf) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  }
  return v;
}

}  // namespace

Result<BroadcastProgram> BroadcastProgram::Materialize(
    const DTree& tree, const bcast::BroadcastChannel& channel,
    uint16_t epoch) {
  if (channel.index_packets() != tree.NumIndexPackets()) {
    return Status::InvalidArgument(
        "channel layout does not match the tree's packet count");
  }
  Result<bcast::PacketBuffer> index_r = SerializeDTreeFlat(tree);
  if (!index_r.ok()) return index_r.status();
  const bcast::PacketBuffer& index_packets = index_r.value();

  BroadcastProgram prog;
  prog.capacity_ = tree.PacketCapacity();
  prog.epoch_ = epoch;
  prog.m_ = channel.m();
  prog.index_packets_ = channel.index_packets();
  prog.bucket_packets_ = channel.bucket_packets();
  prog.num_regions_ = channel.num_regions();
  prog.early_termination_ = tree.options().early_termination;

  const size_t cap = static_cast<size_t>(prog.capacity_);
  const int64_t cycle = channel.cycle_packets();
  prog.frames_ =
      bcast::PacketBuffer(static_cast<size_t>(cycle), kHeaderSize + cap);
  prog.bucket_starts_.assign(prog.num_regions_, -1);

  for (int j = 0; j < prog.m_; ++j) {
    prog.segment_starts_.push_back(channel.IndexSegmentStart(j));
  }

  // Lay down index segments.
  for (int j = 0; j < prog.m_; ++j) {
    const int64_t base = channel.IndexSegmentStart(j);
    for (int k = 0; k < prog.index_packets_; ++k) {
      uint8_t* f = prog.frames_.packet(static_cast<size_t>(base + k));
      f[0] = kIndexFrame;
      std::memcpy(f + kHeaderSize,
                  index_packets.packet(static_cast<size_t>(k)), cap);
    }
  }
  // Lay down data buckets: each 1 KB instance is stamped with its region
  // id every 4 bytes so the client can verify what it downloaded.
  for (int r = 0; r < prog.num_regions_; ++r) {
    const int64_t base = channel.BucketStart(r);
    prog.bucket_starts_[r] = base;
    for (int k = 0; k < prog.bucket_packets_; ++k) {
      uint8_t* f = prog.frames_.packet(static_cast<size_t>(base + k));
      f[0] = kDataFrame;
      for (size_t off = kHeaderSize; off + 4 <= kHeaderSize + cap; off += 4) {
        PutU32(f + off, static_cast<uint32_t>(r));
      }
    }
  }
  // Next-index pointers and the epoch stamp: for every frame, frames until
  // the next segment start strictly after it (wrapping into the next
  // cycle), plus the cycle's broadcast epoch.
  for (int64_t i = 0; i < cycle; ++i) {
    int64_t next = -1;
    for (int64_t s : prog.segment_starts_) {
      if (s > i) {
        next = s;
        break;
      }
    }
    if (next < 0) next = cycle + prog.segment_starts_[0];
    uint8_t* f = prog.frames_.packet(static_cast<size_t>(i));
    PutU32(f + 1, static_cast<uint32_t>(next - i));
    f[5] = static_cast<uint8_t>(epoch & 0xff);
    f[6] = static_cast<uint8_t>(epoch >> 8);
  }
  return prog;
}

Status BroadcastProgram::ParseHeader(int64_t frame, uint8_t* type,
                                     uint32_t* next_index) const {
  if (frame < 0 || frame >= num_frames()) {
    return Status::OutOfRange("frame index outside the cycle");
  }
  const uint8_t* f = frames_.packet(static_cast<size_t>(frame));
  *type = f[0];
  *next_index = GetU32(f + 1);
  const uint16_t stamp =
      static_cast<uint16_t>(f[5] | (static_cast<uint16_t>(f[6]) << 8));
  if (stamp != epoch_) {
    return Status::FailedPrecondition("frame epoch stamp mismatch");
  }
  return Status::OK();
}

Result<BroadcastProgram::SessionResult> BroadcastProgram::RunClient(
    const geom::Point& p, double arrival) const {
  const int64_t cycle = num_frames();
  if (arrival < 0.0 || arrival >= static_cast<double>(cycle)) {
    return Status::InvalidArgument("arrival outside the broadcast cycle");
  }
  SessionResult out;

  // --- Initial probe.
  const int64_t probe = static_cast<int64_t>(std::ceil(arrival));
  uint8_t type;
  uint32_t delta;
  DTREE_RETURN_IF_ERROR(ParseHeader(probe % cycle, &type, &delta));
  out.tuning_probe = 1;
  const int64_t seg_start = probe + delta;
  int64_t pos = probe + 1;
  DTREE_CHECK(seg_start >= pos);

  // --- Index search from the raw frames of that segment, read in place:
  // a strided view exposes each frame's body without materializing
  // per-packet copies.
  const int64_t seg_in_cycle = seg_start % cycle;
  const size_t cap = static_cast<size_t>(capacity_);
  for (int k = 0; k < index_packets_; ++k) {
    if (frames_.packet(static_cast<size_t>(seg_in_cycle + k))[0] !=
        kIndexFrame) {
      return Status::Internal("expected an index frame inside the segment");
    }
  }
  const bcast::PacketSource bodies = bcast::PacketSource::Strided(
      frames_.packet(static_cast<size_t>(seg_in_cycle)),
      static_cast<size_t>(index_packets_), frames_.packet_bytes(),
      kHeaderSize, cap);
  thread_local std::vector<int> read;
  read.clear();
  Result<int> region_r =
      QueryFromPackets(bodies, capacity_, early_termination_, p, &read);
  if (!region_r.ok()) return region_r.status();
  const int region = region_r.value();
  if (region < 0 || region >= num_regions_) {
    return Status::Internal("index resolved to an invalid region");
  }
  for (int id : read) {
    const int64_t at = seg_start + id;
    DTREE_CHECK(at >= pos - 1);
    pos = std::max(pos, at + 1);
    ++out.tuning_index;
  }

  // --- Data retrieval: wait for the bucket, verify every frame's stamp.
  const int64_t bucket_in_cycle = bucket_starts_[region];
  int64_t data_at = (pos / cycle) * cycle + bucket_in_cycle;
  if (data_at < pos) data_at += cycle;
  for (int k = 0; k < bucket_packets_; ++k) {
    const uint8_t* f =
        frames_.packet(static_cast<size_t>((data_at + k) % cycle));
    if (f[0] != kDataFrame) {
      return Status::Internal("expected a data frame in the bucket");
    }
    for (size_t off = kHeaderSize; off + 4 <= kHeaderSize + cap; off += 4) {
      if (GetU32(f + off) != static_cast<uint32_t>(region)) {
        return Status::Internal("data payload stamp mismatch");
      }
    }
    ++out.tuning_data;
  }
  out.region = region;
  out.latency = static_cast<double>(data_at + bucket_packets_) - arrival;
  return out;
}

}  // namespace dtree::core
