// Versioned broadcast server: live dataset updates published as immutable
// broadcast epochs.
//
// The broadcaster owns a mutable site set (hospitals opening, parks
// closing) but the air interface is an immutable cycle: clients descend a
// pointer-based index, so the subdivision, index layout, and bucket
// numbering must never change under a client mid-cycle. VersionedProgram
// resolves the tension with rebuild-per-epoch: updates queue between
// cycles, CommitEpoch applies the batch and rebuilds the *entire*
// pipeline from scratch — Voronoi subdivision, D-tree, channel layout,
// byte-level program, every frame stamped with the new epoch id — then
// publishes the result with one atomic pointer swap. The previous epoch's
// arena stays resident (clients tuned into it are still draining their
// cycles; the fleet engine replays both), so the server always holds the
// last two epochs.
//
// The from-scratch rebuild is the correctness oracle: an epoch published
// by CommitEpoch is bit-identical to BuildEpoch run cold on the same site
// set — there is no incremental repair path whose drift could go
// unnoticed — and tests/epoch_test.cc holds CI to exactly that contract.
//
// Concurrency: Enqueue / Acquire / previous are safe from any thread.
// CommitEpoch is single-writer (the broadcaster's cycle boundary); it
// never blocks readers — they hold shared_ptrs to immutable state. A
// failed commit (e.g. an insert within sub::kMinSiteSeparation of an
// existing site, or a delete batch leaving too few sites) discards the
// offending batch and leaves the live epoch untouched.

#ifndef DTREE_DTREE_VERSIONED_H_
#define DTREE_DTREE_VERSIONED_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "dtree/dtree.h"
#include "dtree/program.h"
#include "geom/point.h"
#include "subdivision/subdivision.h"

namespace dtree::core {

/// One pending dataset mutation.
struct SiteUpdate {
  enum class Kind : uint8_t {
    kInsert,  ///< add site at p
    kDelete,  ///< remove the site nearest to p (lowest index on ties)
  };
  Kind kind = Kind::kInsert;
  geom::Point p;

  static SiteUpdate Insert(geom::Point p) {
    return SiteUpdate{Kind::kInsert, p};
  }
  static SiteUpdate Delete(geom::Point p) {
    return SiteUpdate{Kind::kDelete, p};
  }
};

/// Everything one epoch broadcasts, immutable once built: the site set,
/// its Voronoi valid scopes, the paged D-tree, the (1, m) channel layout,
/// and the byte-level cycle with every frame stamped `epoch`.
struct EpochState {
  uint16_t epoch = 0;
  std::vector<geom::Point> sites;
  sub::Subdivision subdivision;
  DTree tree;
  bcast::BroadcastChannel channel;
  BroadcastProgram program;
};

class VersionedProgram {
 public:
  struct Options {
    geom::BBox service_area;
    bcast::ChannelOptions channel;  ///< capacity / m / loss template
    DTree::Options tree;
  };

  /// Floor on the live site count: deletes that would leave fewer sites
  /// are rejected (a broadcast of fewer regions than this is a degenerate
  /// configuration no experiment uses).
  static constexpr size_t kMinSites = 3;

  /// Builds epoch 0 from `sites` and publishes it.
  static Result<std::unique_ptr<VersionedProgram>> Create(
      std::vector<geom::Point> sites, const Options& options);

  /// The oracle: one epoch built cold — subdivision, tree, channel,
  /// program — with every frame stamped `epoch`. CommitEpoch publishes
  /// exactly this (same code path), which is the CI bit-identity contract.
  static Result<std::shared_ptr<const EpochState>> BuildEpoch(
      std::vector<geom::Point> sites, const Options& options, uint16_t epoch);

  /// Applies `updates` to `sites` in order. Pure; fails on a delete with
  /// no sites left or a batch ending below kMinSites (insert validity —
  /// service area, site separation — surfaces from the Voronoi build).
  static Result<std::vector<geom::Point>> ApplyUpdates(
      std::vector<geom::Point> sites,
      const std::vector<SiteUpdate>& updates);

  /// Queues an update for the next commit. Thread-safe.
  void Enqueue(SiteUpdate update);
  /// Queued updates not yet committed. Thread-safe.
  size_t pending() const;

  /// Drains the queue, rebuilds from scratch on the updated site set, and
  /// atomically publishes the new epoch (id = current + 1, wrapping with
  /// uint16). On error the live epoch is untouched and the drained batch
  /// is discarded. Single-writer.
  Result<std::shared_ptr<const EpochState>> CommitEpoch();

  /// The live epoch. Never null; the snapshot stays valid (immutable)
  /// for as long as the caller holds it, across any number of commits.
  /// The snapshot lock is held only for the pointer copy — readers never
  /// wait on a rebuild in progress.
  std::shared_ptr<const EpochState> Acquire() const {
    std::lock_guard<std::mutex> lock(snap_mu_);
    return current_;
  }
  /// The epoch before the live one (resident for clients still draining
  /// it); null until the first commit.
  std::shared_ptr<const EpochState> previous() const {
    std::lock_guard<std::mutex> lock(snap_mu_);
    return previous_;
  }

 private:
  explicit VersionedProgram(Options options)
      : options_(std::move(options)) {}

  Options options_;
  mutable std::mutex mu_;  ///< guards queue_
  std::vector<SiteUpdate> queue_;
  /// Guards the published snapshot pair. A plain mutex over shared_ptr
  /// copies instead of std::atomic<std::shared_ptr>: the critical section
  /// is two pointer copies, and libstdc++'s lock-bit _Sp_atomic protocol
  /// is opaque to ThreadSanitizer (the CI TSan job runs these paths).
  mutable std::mutex snap_mu_;
  std::shared_ptr<const EpochState> current_;
  std::shared_ptr<const EpochState> previous_;
};

}  // namespace dtree::core

#endif  // DTREE_DTREE_VERSIONED_H_
