// The D-tree air index — the paper's primary contribution.
//
// A binary height-balanced tree over the data regions. Each internal node
// stores the division polylines between two complementary subspaces; a
// query descends by testing which side of the division it falls on
// (Algorithm 2) until it reaches a data pointer. Nodes are laid out into
// broadcast packets with the paper's top-down paging (Algorithm 3) and
// broadcast in breadth-first order.

#ifndef DTREE_DTREE_DTREE_H_
#define DTREE_DTREE_DTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/pager.h"
#include "broadcast/params.h"
#include "common/status.h"
#include "dtree/partition.h"
#include "subdivision/subdivision.h"

namespace dtree::core {

/// One node of the binary D-tree (Figure 7 / Table 1 of the paper).
struct DTreeNode {
  PartitionDim dim = PartitionDim::kYDim;
  double near_bound = 0.0;  ///< right_lmc (kYDim) / lower_umc (kXDim)
  double far_bound = 0.0;   ///< left_rmc / upper_lwc
  std::vector<geom::Polyline> polylines;

  /// Child links: exactly one of {x_node, x_region} is set per side.
  int left_node = -1;
  int right_node = -1;
  int left_region = -1;
  int right_region = -1;

  int depth = 0;
  size_t byte_size = 0;  ///< serialized size, capacity-dependent
  bool large = false;    ///< node larger than one packet
  /// The wire format carries RMC/LMC explicitly. This is required (a) for
  /// large nodes under early termination (§4.4) and (b) whenever the near
  /// shortcut bound is not recoverable as the partition's extreme
  /// coordinate — which happens when the complementary subspace touches
  /// the service-area border, a case Algorithm 2's "leftmost x-coordinate
  /// of the partition" reading would misroute.
  bool explicit_bounds = false;

  bool IsLeaf() const { return left_node < 0 && right_node < 0; }
};

class DTree final : public bcast::AirIndex {
 public:
  struct Options {
    int packet_capacity = 128;
    /// Break partition-size ties by the inter-prob criterion (§4.2).
    bool interprob_tiebreak = true;
    /// §4.4 arrangement for multi-packet nodes: pointers first plus
    /// explicit RMC/LMC bounds, so D1/D3 queries resolve after the first
    /// packet. Disabling it removes the extra fields and forces the client
    /// to read every packet of a large node (ablation).
    bool early_termination = true;
    /// Greedy merging of partial leaf-level packets (Algorithm 3 lines
    /// 19-25), constrained to preserve forward-only broadcast access.
    bool merge_leaf_packets = true;
    /// Optional per-region access probabilities (any non-negative scale;
    /// indexed by region id; empty = uniform). When set, partitions split
    /// at equal access mass instead of equal cardinality, shortening the
    /// paths of hot regions — the skew-aware variant discussed in
    /// DESIGN.md (§ extensions). The tree is then weight-balanced rather
    /// than height-balanced.
    std::vector<double> access_weights;
  };

  /// Wall-clock breakdown of Build, for the build-scaling bench: the
  /// recursive partition phase (ChooseBestPartition tree construction +
  /// BFS numbering) versus the packet-paging phase (Algorithm 3).
  struct BuildTimings {
    double partition_seconds = 0.0;
    double paging_seconds = 0.0;
  };

  /// Builds and pages the D-tree for a stitched subdivision. `timings`,
  /// when non-null, receives the per-phase wall-clock breakdown.
  static Result<DTree> Build(const sub::Subdivision& sub,
                             const Options& options);
  static Result<DTree> Build(const sub::Subdivision& sub,
                             const Options& options, BuildTimings* timings);

  // --- AirIndex interface -------------------------------------------------
  std::string name() const override { return "d-tree"; }
  int NumIndexPackets() const override { return paging_.num_packets; }
  size_t IndexBytes() const override { return paging_.used_bytes; }
  int PacketCapacity() const override { return options_.packet_capacity; }
  Result<bcast::ProbeTrace> Probe(const geom::Point& p) const override;

  // --- direct (in-memory) query -------------------------------------------
  /// Region containing p; pure tree descent, no packet accounting.
  int Locate(const geom::Point& p) const;

  // --- introspection -------------------------------------------------------
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const DTreeNode& node(int i) const { return nodes_[i]; }
  int root() const { return root_; }
  /// Max node depth + 1; 0 for a single-region tree.
  int height() const { return height_; }
  const bcast::PagingResult& paging() const { return paging_; }
  const bcast::NodeSpan& span(int node) const { return paging_.spans[bfs_pos_[node]]; }
  const Options& options() const { return options_; }
  int num_regions() const { return num_regions_; }
  /// Nodes in broadcast (breadth-first) order.
  const std::vector<int>& bfs_order() const { return bfs_order_; }

 private:
  DTree() = default;

  /// Serialized size of a node under the given options; sets `large`.
  static size_t NodeByteSize(DTreeNode* node, const Options& options);

  Options options_;
  int num_regions_ = 0;
  int root_ = -1;
  int height_ = 0;
  std::vector<DTreeNode> nodes_;
  std::vector<int> bfs_order_;  ///< bfs position -> node id
  std::vector<int> bfs_pos_;    ///< node id -> bfs position
  bcast::PagingResult paging_;  ///< spans indexed by bfs position
};

}  // namespace dtree::core

#endif  // DTREE_DTREE_DTREE_H_
