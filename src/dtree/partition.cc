#include "dtree/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "geom/predicates.h"
#include "subdivision/extent.h"

namespace dtree::core {

namespace {

using geom::Point;
using geom::Polyline;

constexpr double kLineTol = 1e-9;

/// Sort coordinate of a region for the given style.
double StyleKey(const sub::Subdivision& sub, int region,
                const PartitionStyle& style) {
  const geom::BBox& b = sub.RegionBounds(region);
  if (style.dim == PartitionDim::kYDim) {
    return style.key == SortKey::kMinCoord ? b.min_x : b.max_x;
  }
  return style.key == SortKey::kMinCoord ? b.min_y : b.max_y;
}

/// Clips segment [a, b] to the kept half-space of the partition: x >=
/// bound for kYDim, y <= bound for kXDim. Returns false when nothing is
/// kept. Endpoints within kLineTol of the line count as kept.
bool ClipSegmentToKeptSide(PartitionDim dim, double bound, Point a, Point b,
                           Point* out_a, Point* out_b) {
  auto coord = [&](const Point& p) {
    return dim == PartitionDim::kYDim ? p.x : p.y;
  };
  // Signed "inside" amount: >= 0 means kept.
  auto inside = [&](const Point& p) {
    return dim == PartitionDim::kYDim ? coord(p) - bound : bound - coord(p);
  };
  double ia = inside(a);
  double ib = inside(b);
  if (ia < -kLineTol && ib < -kLineTol) return false;  // fully pruned
  if (ia >= -kLineTol && ib >= -kLineTol) {            // fully kept
    *out_a = a;
    *out_b = b;
    return true;
  }
  // Crossing: truncate at the line (Algorithm 1 lines 9-15).
  const double t = ia / (ia - ib);
  Point cut{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
  if (dim == PartitionDim::kYDim) {
    cut.x = bound;  // pin exactly onto the line
  } else {
    cut.y = bound;
  }
  if (ia >= -kLineTol) {
    *out_a = a;
    *out_b = cut;
  } else {
    *out_a = cut;
    *out_b = b;
  }
  // An edge leaving the kept side exactly at the line clips to a point;
  // treat it as pruned.
  return !geom::NearlyEqual(*out_a, *out_b, geom::kGeomEps);
}

/// Counts the scalar coordinates a polyline occupies on the air (closed
/// polylines repeat their first vertex).
int ScalarCoords(const Polyline& pl) {
  const int v = static_cast<int>(pl.pts.size()) + (pl.closed ? 1 : 0);
  return 2 * v;
}

/// Splits/keeps the extent loops against the pruning line and chains the
/// surviving pieces into maximal polylines.
std::vector<Polyline> PruneExtent(const std::vector<Polyline>& loops,
                                  PartitionDim dim, double bound) {
  std::vector<Polyline> out;
  for (const Polyline& loop : loops) {
    DTREE_CHECK(loop.closed);
    std::vector<Polyline> chains;
    Polyline cur;
    bool cur_open_started_at_cut = false;
    const size_t nseg = loop.NumSegments();
    for (size_t i = 0; i < nseg; ++i) {
      Point a, b, ka, kb;
      loop.Segment(i, &a, &b);
      if (!ClipSegmentToKeptSide(dim, bound, a, b, &ka, &kb)) {
        // Segment fully pruned: close the running chain.
        if (cur.pts.size() >= 2) chains.push_back(std::move(cur));
        cur = Polyline{};
        continue;
      }
      if (cur.pts.empty()) {
        cur.pts.push_back(ka);
        cur.pts.push_back(kb);
        cur_open_started_at_cut = !geom::NearlyEqual(ka, a, geom::kGeomEps);
        (void)cur_open_started_at_cut;
      } else if (geom::NearlyEqual(cur.pts.back(), ka, geom::kMergeEps)) {
        cur.pts.push_back(kb);
      } else {
        // Discontinuity (segment was truncated at its start).
        if (cur.pts.size() >= 2) chains.push_back(std::move(cur));
        cur = Polyline{};
        cur.pts.push_back(ka);
        cur.pts.push_back(kb);
      }
    }
    if (cur.pts.size() >= 2) chains.push_back(std::move(cur));
    if (chains.empty()) continue;
    // The walk started mid-loop; if the loop survived in one piece wrap
    // first/last chains together, or mark fully closed.
    if (chains.size() == 1 &&
        geom::NearlyEqual(chains[0].pts.front(), chains[0].pts.back(),
                          geom::kMergeEps)) {
      chains[0].pts.pop_back();
      chains[0].closed = true;
    } else if (chains.size() >= 2 &&
               geom::NearlyEqual(chains.back().pts.back(),
                                 chains.front().pts.front(),
                                 geom::kMergeEps)) {
      Polyline& last = chains.back();
      last.pts.insert(last.pts.end(), chains.front().pts.begin() + 1,
                      chains.front().pts.end());
      chains.front() = std::move(last);
      chains.pop_back();
    }
    for (Polyline& c : chains) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

std::vector<PartitionStyle> EnumerateStyles(int n) {
  std::vector<PartitionStyle> styles;
  const bool odd = (n % 2) != 0;
  for (PartitionDim dim : {PartitionDim::kYDim, PartitionDim::kXDim}) {
    for (SortKey key : {SortKey::kMaxCoord, SortKey::kMinCoord}) {
      if (odd) {
        styles.push_back({dim, key, false});
        styles.push_back({dim, key, true});
      } else {
        styles.push_back({dim, key, false});
      }
    }
  }
  return styles;
}

Result<Partition> ComputePartition(const sub::Subdivision& sub,
                                   const std::vector<int>& regions,
                                   const PartitionStyle& style,
                                   const std::vector<double>& access_weights) {
  const int n = static_cast<int>(regions.size());
  if (n < 2) {
    return Status::InvalidArgument("partitioning needs at least two regions");
  }

  // Phase 1 (Algorithm 1 lines 1-3): sort and split the regions.
  std::vector<int> sorted = regions;
  std::stable_sort(sorted.begin(), sorted.end(), [&](int a, int b) {
    const double ka = StyleKey(sub, a, style);
    const double kb = StyleKey(sub, b, style);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  int k;
  if (access_weights.empty()) {
    k = style.first_group_larger ? (n + 1) / 2 : n / 2;
  } else {
    // Skew-aware split: cut where the cumulative access mass is closest
    // to half, so both subtrees answer about half the query load.
    double total = 0.0;
    for (int r : sorted) {
      if (r >= static_cast<int>(access_weights.size()) ||
          access_weights[r] < 0.0) {
        return Status::InvalidArgument("invalid access weight for region " +
                                       std::to_string(r));
      }
      total += access_weights[r];
    }
    if (total <= 0.0) {
      return Status::InvalidArgument("access weights sum to zero");
    }
    k = 1;
    double best_diff = std::numeric_limits<double>::infinity();
    double prefix = 0.0;
    for (int i = 0; i < n - 1; ++i) {
      prefix += access_weights[sorted[i]];
      const double diff = std::abs(prefix - total / 2.0);
      if (diff < best_diff) {
        best_diff = diff;
        k = i + 1;
      }
    }
  }
  DTREE_CHECK(k >= 1 && k < n);

  Partition part;
  part.style = style;
  if (style.dim == PartitionDim::kYDim) {
    // Ascending x keys: the first k regions form the LEFT (first) group.
    part.first_group.assign(sorted.begin(), sorted.begin() + k);
    part.second_group.assign(sorted.begin() + k, sorted.end());
  } else {
    // Ascending y keys: the first k regions are the LOWER (second) group;
    // the paper's left child is the UPPER subspace.
    part.second_group.assign(sorted.begin(), sorted.begin() + k);
    part.first_group.assign(sorted.begin() + k, sorted.end());
  }

  // Shortcut bounds from the complementary group's bounding boxes.
  if (style.dim == PartitionDim::kYDim) {
    double right_lmc = std::numeric_limits<double>::infinity();
    for (int r : part.second_group) {
      right_lmc = std::min(right_lmc, sub.RegionBounds(r).min_x);
    }
    double left_rmc = -std::numeric_limits<double>::infinity();
    for (int r : part.first_group) {
      left_rmc = std::max(left_rmc, sub.RegionBounds(r).max_x);
    }
    part.near_bound = right_lmc;
    part.far_bound = left_rmc;
  } else {
    double lower_umc = -std::numeric_limits<double>::infinity();
    for (int r : part.second_group) {
      lower_umc = std::max(lower_umc, sub.RegionBounds(r).max_y);
    }
    double upper_lwc = std::numeric_limits<double>::infinity();
    for (int r : part.first_group) {
      upper_lwc = std::min(upper_lwc, sub.RegionBounds(r).min_y);
    }
    part.near_bound = lower_umc;
    part.far_bound = upper_lwc;
  }

  // Phase 2 (lines 4-16): extent of the first group, pruned + truncated.
  Result<std::vector<Polyline>> extent_r =
      sub::ComputeExtent(sub, part.first_group);
  if (!extent_r.ok()) return extent_r.status();
  part.polylines = PruneExtent(extent_r.value(), style.dim, part.near_bound);
  // An empty partition is legal: when the two groups are not even adjacent
  // (possible for sort-based grouping of a disconnected subtree), the
  // whole extent lies beyond the pruning line and the shortcut bounds
  // alone decide every query that can reach this node.
  part.num_scalar_coords = 0;
  for (const Polyline& pl : part.polylines) {
    part.num_scalar_coords += ScalarCoords(pl);
  }
  return part;
}

double InterProb(const sub::Subdivision& sub, const std::vector<int>& regions,
                 const Partition& partition) {
  double band_area = 0.0;
  double total_area = 0.0;
  for (int r : regions) {
    const geom::Polygon poly = sub.RegionPolygon(r);
    total_area += poly.Area();
    if (partition.style.dim == PartitionDim::kYDim) {
      band_area += geom::AreaInVerticalBand(poly, partition.near_bound,
                                            partition.far_bound);
    } else {
      band_area += geom::AreaInHorizontalBand(poly, partition.far_bound,
                                              partition.near_bound);
    }
  }
  if (total_area <= 0.0) return 0.0;
  return band_area / total_area;
}

Result<Partition> ChooseBestPartition(const sub::Subdivision& sub,
                                      const std::vector<int>& regions,
                                      bool interprob_tiebreak,
                                      const std::vector<double>& access_weights) {
  std::vector<Partition> candidates;
  // Weighted splits pick their own cut, so the even/odd group-size styles
  // collapse; enumerate as if N were even to avoid duplicate work.
  const int style_n = access_weights.empty()
                          ? static_cast<int>(regions.size())
                          : 2 * static_cast<int>((regions.size() + 1) / 2);
  for (const PartitionStyle& style : EnumerateStyles(style_n)) {
    Result<Partition> p =
        ComputePartition(sub, regions, style, access_weights);
    if (!p.ok()) return p.status();
    candidates.push_back(std::move(p).value());
  }
  DTREE_CHECK(!candidates.empty());

  int best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].num_scalar_coords <
        candidates[best].num_scalar_coords) {
      best = static_cast<int>(i);
    }
  }
  if (interprob_tiebreak) {
    double best_prob = -1.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].num_scalar_coords !=
          candidates[best].num_scalar_coords) {
        continue;
      }
      const double prob = InterProb(sub, regions, candidates[i]);
      if (best_prob < 0.0 || prob < best_prob) {
        best_prob = prob;
        best = static_cast<int>(i);
      }
    }
  }
  return std::move(candidates[best]);
}

bool PointInFirstSubspace(const Partition& partition, const geom::Point& p,
                          bool* via_shortcut) {
  return PointInSubspaceTest(partition.style.dim, partition.near_bound,
                             partition.far_bound, partition.polylines, p,
                             via_shortcut);
}

bool PointInSubspaceTest(PartitionDim dim, double near_bound,
                         double far_bound,
                         const std::vector<Polyline>& polylines,
                         const geom::Point& p, bool* via_shortcut) {
  if (via_shortcut != nullptr) *via_shortcut = true;
  int crossings = 0;
  if (dim == PartitionDim::kYDim) {
    if (p.x <= near_bound) return true;   // D1: all-left
    if (p.x >= far_bound) return false;   // D3: all-right
    if (via_shortcut != nullptr) *via_shortcut = false;
    for (const Polyline& pl : polylines) {
      const size_t nseg = pl.NumSegments();
      for (size_t i = 0; i < nseg; ++i) {
        Point a, b;
        pl.Segment(i, &a, &b);
        if (geom::RayRightCrossesSegment(p, a, b)) ++crossings;
      }
    }
  } else {
    if (p.y >= near_bound) return true;   // all-upper
    if (p.y <= far_bound) return false;   // all-lower
    if (via_shortcut != nullptr) *via_shortcut = false;
    for (const Polyline& pl : polylines) {
      const size_t nseg = pl.NumSegments();
      for (size_t i = 0; i < nseg; ++i) {
        Point a, b;
        pl.Segment(i, &a, &b);
        if (geom::RayDownCrossesSegment(p, a, b)) ++crossings;
      }
    }
  }
  return (crossings % 2) == 1;
}

}  // namespace dtree::core
