// Byte-level serialization of the paged D-tree into broadcast packets, and
// a packet-side decoder that answers queries straight from the bytes —
// exactly what a mobile client would do with the frames it receives.
//
// Node wire format (little-endian; sizes per Table 2):
//   u16  bid      — node id (breadth-first position)
//   u16  header   — bit0: partition dim (0 = y-dimensional, 1 = x-dim);
//                   bit1: large (node spans > 1 packet);
//                   bits2..15: partition size in scalar coordinates
//   u32  left_ptr  \  bit31: 1 = data pointer (low bits: region id),
//   u32  right_ptr /  0 = node pointer (bits12..30: packet, bits0..11:
//                      byte offset within that packet)
//   [large nodes, when early termination is enabled:]
//   f32  RMC      — far shortcut bound (left_rmc / upper_lwc)
//   f32  LMC      — near shortcut bound (right_lmc / lower_umc)
//   per polyline: u16 point count, then count * (f32 x, f32 y); closed
//   rings repeat their first point.
//
// Every decoder entry point is hardened: counts are range-checked on the
// way in (InvalidArgument instead of silent truncation) and every read on
// the way out is bounds-checked (a truncated or malformed stream yields a
// Status, never out-of-bounds access). For transmission over a lossy
// medium the packets can additionally be framed: FramePackets appends a
// CRC-32 trailer to each packet and the framed decoder verifies it on
// first touch, so corruption is *detected* (Status kDataLoss) rather than
// silently misrouting the query.

#ifndef DTREE_DTREE_SERIALIZE_H_
#define DTREE_DTREE_SERIALIZE_H_

#include <cstdint>
#include <vector>

#include "broadcast/frame.h"
#include "common/status.h"
#include "dtree/dtree.h"

namespace dtree::core {

// The CRC-32 framing layer (FramePackets / VerifyFrame / UnframePackets,
// trailer size kFrameCrcBytes) started here and now lives in
// broadcast/frame.h, shared by every air index and by data buckets.
// Re-exported so existing dtree::core callers keep compiling.
using bcast::kFrameCrcBytes;
using bcast::FramePackets;
using bcast::VerifyFrame;
using bcast::UnframePackets;

/// One broadcast cycle's worth of index packets in flat storage: a single
/// contiguous allocation of `NumIndexPackets() * packet_capacity` bytes
/// (zero-padded), packet i at byte offset i * capacity.
Result<bcast::PacketBuffer> SerializeDTreeFlat(const DTree& tree);

/// Legacy vector-of-vectors form of the same bytes (copies out of the
/// flat buffer).
Result<std::vector<std::vector<uint8_t>>> SerializeDTree(const DTree& tree);

/// Client-side query over raw packets: descends from packet 0 offset 0,
/// decoding nodes as it goes. Returns the region id and (out parameter)
/// the ordered list of packet ids read, applying the same early-
/// termination rule a real client would. Accepts any packet
/// representation PacketSource can view (vector-of-vectors and
/// PacketBuffer convert implicitly). Intended for round-trip tests and as
/// the flat-arena engines' bit-identical oracle.
Result<int> QueryFromPackets(bcast::PacketSource packets,
                             int packet_capacity, bool early_termination,
                             const geom::Point& p,
                             std::vector<int>* packets_read);

/// Same descent over CRC-framed packets (FramePackets output): each
/// packet's CRC is verified when the decoder first touches it, so any
/// corruption on the read path surfaces as kDataLoss — the signal the
/// lossy-channel client uses to trigger re-tune recovery.
Result<int> QueryFromFramedPackets(bcast::PacketSource frames,
                                   int packet_capacity,
                                   bool early_termination,
                                   const geom::Point& p,
                                   std::vector<int>* packets_read);

}  // namespace dtree::core

#endif  // DTREE_DTREE_SERIALIZE_H_
