#include "dtree/arena.h"

#include <deque>
#include <memory>
#include <utility>

#include "dtree/serialize.h"
#include "dtree/wire.h"
#include "geom/predicates.h"

namespace dtree::core {

namespace {

using bcast::kDataPtrBit;
using bcast::kOffsetBits;
using bcast::kOffsetMask;

/// Fixed node-prefix bytes: bid + header + two pointers.
constexpr size_t kNodePrefixBytes = 12;

}  // namespace

Result<DTreeArena> DTreeArena::Build(bcast::PacketSource packets,
                                     int packet_capacity, bool framed,
                                     bool early_termination, int num_regions,
                                     const OriginMap* origins) {
  if (packet_capacity < 1) {
    return Status::InvalidArgument("packet capacity must be positive");
  }
  DTreeArena a;
  a.has_origins_ = origins != nullptr;
  a.num_regions_ = num_regions;
  a.budget_ = bcast::DecodeBudget(packets.num_packets());
  a.seg_begin_.push_back(0);
  if (packets.num_packets() == 0) return a;  // single-region: empty index

  // Genuine nodes are at least kNodePrefixBytes long and do not overlap,
  // so this caps how many a well-formed cycle can hold; corrupted-but-
  // CRC-valid bytes whose pointer graph exceeds it fail the build.
  const size_t max_nodes =
      packets.num_packets() * static_cast<size_t>(packet_capacity) /
          kNodePrefixBytes +
      16;

  std::unordered_map<uint32_t, uint32_t> index_of;  // wire key -> arena id
  std::deque<uint32_t> pending;
  index_of.emplace(0u, 0u);
  pending.push_back(0u);

  std::vector<double> sx, sy;  // polyline point scratch
  while (!pending.empty()) {
    const uint32_t key = pending.front();
    pending.pop_front();
    const int packet = static_cast<int>(key >> kOffsetBits);
    const size_t offset = key & kOffsetMask;

    bcast::PacketReader r(packets, packet_capacity, framed, packet, offset,
                          nullptr);
    WireNodePrefix n;
    DTREE_RETURN_IF_ERROR(ReadWireNodePrefix(&r, &n));

    a.x_dim_.push_back(n.dim == PartitionDim::kXDim ? 1 : 0);
    a.shortcut_ok_.push_back(n.has_bounds && early_termination ? 1 : 0);
    a.lmc_.push_back(n.lmc);
    a.rmc_.push_back(n.rmc);

    double min_c, max_c;
    size_t num_chains = 0;
    DTREE_RETURN_IF_ERROR(ReadWirePolylines(
        &r, n.dim, n.total_coords, &sx, &sy, &min_c, &max_c,
        [&](const double* xs, const double* ys, size_t cnt, bool closed) {
          ++num_chains;
          if (cnt < 2) return;
          const size_t nseg = closed ? cnt : cnt - 1;
          for (size_t i = 0; i < nseg; ++i) {
            const size_t j = (i + 1) % cnt;
            a.ax_.push_back(xs[i]);
            a.ay_.push_back(ys[i]);
            a.bx_.push_back(xs[j]);
            a.by_.push_back(ys[j]);
          }
        }));
    a.seg_begin_.push_back(static_cast<uint32_t>(a.ax_.size()));

    const auto [near_b, far_b] = WireShortcutBounds(n, min_c, max_c);
    a.near_b_.push_back(near_b);
    a.far_b_.push_back(far_b);

    // Packet span of a full node read, from the node's wire size: the
    // read-log gains exactly the packets [first, first + (offset + size
    // - 1) / capacity] because the decoder consumes the bytes in order.
    const size_t node_bytes = kNodePrefixBytes + (n.has_bounds ? 8 : 0) +
                              2 * num_chains +
                              4 * static_cast<size_t>(n.total_coords);
    a.first_packet_.push_back(packet);
    a.full_last_.push_back(
        packet + static_cast<int>((offset + node_bytes - 1) /
                                  static_cast<size_t>(packet_capacity)));

    if (origins != nullptr) {
      const auto it = origins->find(key);
      const bcast::ProbePacketOrigin o =
          it != origins->end() ? it->second : bcast::ProbePacketOrigin{};
      a.origin_node_.push_back(o.node);
      a.origin_depth_.push_back(o.depth);
    }

    // Remap the child pointers: data pointers pass through verbatim; node
    // pointers are validated exactly as the per-probe decoder validates
    // them, then become arena indices (discovering new nodes as we go).
    auto remap = [&](uint32_t ptr) -> Result<uint32_t> {
      if (ptr & kDataPtrBit) return ptr;
      const int cpkt = static_cast<int>(ptr >> kOffsetBits);
      const size_t coff = ptr & kOffsetMask;
      if (cpkt >= static_cast<int>(packets.num_packets())) {
        return Status::DataLoss("node pointer outside the packet stream");
      }
      if (coff >= static_cast<size_t>(packet_capacity)) {
        return Status::DataLoss("node pointer offset outside the packet");
      }
      const auto [it, inserted] =
          index_of.emplace(ptr, static_cast<uint32_t>(index_of.size()));
      if (inserted) {
        if (index_of.size() > max_nodes) {
          return Status::DataLoss(
              "decoded node count exceeds what the cycle can hold");
        }
        pending.push_back(ptr);
      }
      return it->second;
    };
    Result<uint32_t> left = remap(n.left_ptr);
    if (!left.ok()) return left.status();
    Result<uint32_t> right = remap(n.right_ptr);
    if (!right.ok()) return right.status();
    a.left_.push_back(left.value());
    a.right_.push_back(right.value());
  }
  return a;
}

Status DTreeArena::ProbeInto(const geom::Point& p,
                             bcast::ProbeTrace* trace) const {
  trace->region = -1;
  trace->packets.clear();
  trace->origins.clear();
  if (left_.empty()) {
    if (num_regions_ != 1) return Status::FailedPrecondition("empty tree");
    trace->region = 0;
    return Status::OK();
  }
  uint32_t cur = 0;
  for (int hops = 0; hops < budget_; ++hops) {
    const bool x_dim = x_dim_[cur] != 0;
    bool go_left = false;
    bool decided = false;
    if (shortcut_ok_[cur] != 0) {
      // §4.4 early termination against the explicit bounds in the node's
      // first packet (promoted from the same wire f32s the decoder reads).
      if (!x_dim) {
        if (p.x <= lmc_[cur]) {
          go_left = true;
          decided = true;
        } else if (p.x >= rmc_[cur]) {
          go_left = false;
          decided = true;
        }
      } else {
        if (p.y >= lmc_[cur]) {
          go_left = true;
          decided = true;
        } else if (p.y <= rmc_[cur]) {
          go_left = false;
          decided = true;
        }
      }
    }
    if (!decided) {
      const size_t sb = seg_begin_[cur];
      const size_t nseg = seg_begin_[cur + 1] - sb;
      if (!x_dim) {
        if (p.x <= near_b_[cur]) {
          go_left = true;   // D1: all-left
        } else if (p.x >= far_b_[cur]) {
          go_left = false;  // D3: all-right
        } else {
          go_left = (geom::CountRayRightCrossings(
                         ax_.data() + sb, ay_.data() + sb, bx_.data() + sb,
                         by_.data() + sb, nseg, p) %
                     2) == 1;
        }
      } else {
        if (p.y >= near_b_[cur]) {
          go_left = true;   // all-upper
        } else if (p.y <= far_b_[cur]) {
          go_left = false;  // all-lower
        } else {
          go_left = (geom::CountRayDownCrossings(
                         ax_.data() + sb, ay_.data() + sb, bx_.data() + sb,
                         by_.data() + sb, nseg, p) %
                     2) == 1;
        }
      }
    }

    // Packet accounting: a decided read stops inside the node's first
    // packet; a full read walks every packet the node occupies.
    const int last = decided ? first_packet_[cur] : full_last_[cur];
    for (int k = first_packet_[cur]; k <= last; ++k) {
      if (trace->packets.empty() || trace->packets.back() != k) {
        trace->packets.push_back(k);
        if (has_origins_) {
          trace->origins.push_back({origin_node_[cur], origin_depth_[cur]});
        }
      }
    }

    const uint32_t ref = go_left ? left_[cur] : right_[cur];
    if (ref & kDataPtrBit) {
      trace->region = static_cast<int>(ref & ~kDataPtrBit);
      return Status::OK();
    }
    cur = ref;
  }
  return Status::DataLoss("decode descent did not terminate");
}

size_t DTreeArena::ArenaBytes() const {
  return x_dim_.capacity() + shortcut_ok_.capacity() +
         sizeof(double) * (lmc_.capacity() + rmc_.capacity() +
                           near_b_.capacity() + far_b_.capacity() +
                           ax_.capacity() + ay_.capacity() +
                           bx_.capacity() + by_.capacity()) +
         sizeof(uint32_t) * (left_.capacity() + right_.capacity() +
                             seg_begin_.capacity()) +
         sizeof(int32_t) * (first_packet_.capacity() + full_last_.capacity() +
                            origin_node_.capacity() +
                            origin_depth_.capacity());
}

Result<bcast::ArenaIndex> BuildDTreeArenaIndex(const DTree& tree) {
  Result<bcast::PacketBuffer> flat = SerializeDTreeFlat(tree);
  if (!flat.ok()) return flat.status();

  DTreeArena::OriginMap origins;
  origins.reserve(static_cast<size_t>(tree.num_nodes()));
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const bcast::NodeSpan& s = tree.span(id);
    const uint32_t key = bcast::EncodeNodePointer(s.first_packet, s.offset);
    origins.emplace(key,
                    bcast::ProbePacketOrigin{id, tree.node(id).depth});
  }

  Result<DTreeArena> arena = DTreeArena::Build(
      flat.value(), tree.PacketCapacity(), /*framed=*/false,
      tree.options().early_termination, tree.num_regions(), &origins);
  if (!arena.ok()) return arena.status();
  return bcast::ArenaIndex(
      tree, std::make_unique<DTreeArena>(std::move(arena).value()));
}

Result<DTreeArena> DTreeArenaFromFrames(bcast::PacketSource frames,
                                        int packet_capacity,
                                        bool early_termination,
                                        int num_regions) {
  return DTreeArena::Build(frames, packet_capacity, /*framed=*/true,
                           early_termination, num_regions);
}

}  // namespace dtree::core
