// Space-partition computation for the D-tree (Algorithm 1 of the paper).
//
// A partition splits a set of data regions into two complementary groups of
// (almost) equal cardinality and represents the division between them as a
// set of polylines: the extent (union boundary) of the first group, pruned
// of segments lying beyond the complementary group's extreme coordinate and
// truncated at that line.
//
// Terminology mapping (see DESIGN.md §4):
//  * kYDim — the paper's "y-dimensional" partition: an overall vertical
//    polyline separating LEFT (first child) from RIGHT, produced by sorting
//    regions on x-extents. `near_bound` = right_lmc (leftmost x of the
//    right subspace), `far_bound` = left_rmc (rightmost x of the left
//    subspace).
//  * kXDim — "x-dimensional": horizontal polyline separating UPPER (first
//    child) from LOWER. `near_bound` = lower_umc (uppermost y of the lower
//    subspace), `far_bound` = upper_lwc (lowest y of the upper subspace).

#ifndef DTREE_DTREE_PARTITION_H_
#define DTREE_DTREE_PARTITION_H_

#include <vector>

#include "common/status.h"
#include "geom/polygon.h"
#include "subdivision/subdivision.h"

namespace dtree::core {

enum class PartitionDim {
  kYDim,  ///< vertical-ish polyline; first child = lefthand subspace
  kXDim,  ///< horizontal-ish polyline; first child = upper subspace
};

enum class SortKey {
  kMinCoord,  ///< leftmost x (kYDim) / lowest y (kXDim)
  kMaxCoord,  ///< rightmost x / uppermost y
};

/// One of the 4 (even N) or 8 (odd N) candidate partition styles (§4.2).
struct PartitionStyle {
  PartitionDim dim = PartitionDim::kYDim;
  SortKey key = SortKey::kMaxCoord;
  /// When N is odd, whether the first group takes ceil(N/2) regions
  /// (ignored for even N).
  bool first_group_larger = false;
};

/// All candidate styles for a group of n regions.
std::vector<PartitionStyle> EnumerateStyles(int n);

/// A computed partition of a region group.
struct Partition {
  PartitionStyle style;
  /// First child's regions: lefthand (kYDim) or upper (kXDim) subspace.
  std::vector<int> first_group;
  std::vector<int> second_group;
  /// Pruned + truncated division polylines.
  std::vector<geom::Polyline> polylines;
  /// Shortcut bounds; see file comment. For kYDim: a query with
  /// p.x <= near_bound goes to the first group, p.x >= far_bound to the
  /// second; for kXDim: p.y >= near_bound first, p.y <= far_bound second.
  double near_bound = 0.0;
  double far_bound = 0.0;
  /// Partition size counted in scalar coordinates (a vertex = 2; closed
  /// polylines repeat their first vertex on the air).
  int num_scalar_coords = 0;
};

/// Runs Algorithm 1 for one style over `regions` (>= 2 region ids).
///
/// `access_weights` (indexed by region id, empty = uniform) switches the
/// split point from equal cardinality to equal access-probability mass —
/// the skew-aware variant inspired by imbalanced broadcast indexing
/// (Chen, Yu & Wu, ICDCS'97, the paper's reference [6]): frequently
/// queried regions end up on shorter root-to-leaf paths, trading the
/// strict height balance of §4.1 property 3 for lower expected tuning
/// time. With weights supplied, `style.first_group_larger` is ignored
/// (the mass split determines the cut).
Result<Partition> ComputePartition(
    const sub::Subdivision& sub, const std::vector<int>& regions,
    const PartitionStyle& style,
    const std::vector<double>& access_weights = {});

/// Probability proxy that a uniform query over the group's area lands in
/// the interlocking band D2 (used for tie-breaking, §4.2/§4.4).
double InterProb(const sub::Subdivision& sub, const std::vector<int>& regions,
                 const Partition& partition);

/// Evaluates every style and picks the smallest partition (ties broken by
/// inter-prob when `interprob_tiebreak`, else by enumeration order).
Result<Partition> ChooseBestPartition(
    const sub::Subdivision& sub, const std::vector<int>& regions,
    bool interprob_tiebreak, const std::vector<double>& access_weights = {});

/// Query-side test: does point p belong to the partition's first group's
/// subspace? (D1/D3 shortcuts plus the D2 ray-crossing parity test of
/// Algorithm 2.) When `via_shortcut` is non-null it is set to true when
/// the D1/D3 coordinate comparison decided without ray casting — for
/// multi-packet nodes that is the paper's early-termination case (§4.4):
/// the client resolves the child pointer from the node's first packet.
bool PointInFirstSubspace(const Partition& partition, const geom::Point& p,
                          bool* via_shortcut = nullptr);

/// Same test over raw node fields (no Partition wrapper); used by the
/// D-tree's hot query path.
bool PointInSubspaceTest(PartitionDim dim, double near_bound,
                         double far_bound,
                         const std::vector<geom::Polyline>& polylines,
                         const geom::Point& p, bool* via_shortcut = nullptr);

}  // namespace dtree::core

#endif  // DTREE_DTREE_PARTITION_H_
