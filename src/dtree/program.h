// Byte-level broadcast program: one full (1, m) cycle materialized as
// radio frames — the "air storage" of Imielinski et al. made concrete.
//
// Frame layout (one frame per packet slot of the cycle):
//   u8   type        0 = index, 1 = data
//   u32  next_index  frames from this one to the start of the next index
//                    segment (the pointer every segment carries, §2)
//   u16  epoch       broadcast epoch this cycle was built for — the
//                    version stamp a client checks against its tune-in
//                    epoch (broadcast/versioned.h)
//   u8[capacity]     body: a paged index packet (from SerializeDTree) or a
//                    slice of a 1 KB data instance
//
// The 7-byte frame header models link-layer overhead and deliberately sits
// outside the packet capacity, so the index layouts paged for `capacity`
// bytes are broadcast unchanged (Table 2 accounts payload bytes only).
//
// RunClient executes the full access protocol against the raw frames —
// initial probe, byte-level index decoding, doze, data retrieval with
// payload verification — and must agree with the analytic channel
// simulator packet for packet (asserted in tests).

#ifndef DTREE_DTREE_PROGRAM_H_
#define DTREE_DTREE_PROGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/packet_buffer.h"
#include "common/status.h"
#include "dtree/dtree.h"

namespace dtree::core {

class BroadcastProgram {
 public:
  /// Materializes the cycle for a built D-tree over `channel`'s layout,
  /// stamping every frame header with `epoch`. The channel must have been
  /// created for this tree's packet count and capacity.
  static Result<BroadcastProgram> Materialize(
      const DTree& tree, const bcast::BroadcastChannel& channel,
      uint16_t epoch = 0);

  int capacity() const { return capacity_; }
  uint16_t epoch() const { return epoch_; }
  int64_t num_frames() const {
    return static_cast<int64_t>(frames_.num_packets());
  }
  /// One radio frame (header + body), in place inside the flat cycle
  /// buffer — the whole cycle is a single contiguous allocation.
  std::span<const uint8_t> frame(int64_t i) const {
    return {frames_.packet(static_cast<size_t>(i)), frames_.packet_bytes()};
  }

  /// Frame-header constants (u8 type + u32 next_index + u16 epoch).
  static constexpr size_t kHeaderSize = 7;
  static constexpr uint8_t kIndexFrame = 0;
  static constexpr uint8_t kDataFrame = 1;

  struct SessionResult {
    int region = -1;
    double latency = 0.0;   ///< frames, query issue -> data complete
    int tuning_probe = 0;
    int tuning_index = 0;
    int tuning_data = 0;
    int tuning_total() const {
      return tuning_probe + tuning_index + tuning_data;
    }
  };

  /// Runs a complete client session from the bytes: tunes in at `arrival`
  /// (continuous, within one cycle), reads the probe frame's next-index
  /// pointer, decodes the D-tree from index frames, waits for the data
  /// bucket, and verifies the payload stamp. Fails on any byte-level
  /// inconsistency.
  Result<SessionResult> RunClient(const geom::Point& p,
                                  double arrival) const;

 private:
  BroadcastProgram() = default;

  Status ParseHeader(int64_t frame, uint8_t* type,
                     uint32_t* next_index) const;

  int capacity_ = 0;
  uint16_t epoch_ = 0;
  int m_ = 1;
  int index_packets_ = 0;
  int bucket_packets_ = 0;
  int num_regions_ = 0;
  bool early_termination_ = true;
  bcast::PacketBuffer frames_;  ///< one contiguous kHeaderSize+capacity
                                ///< record per packet slot of the cycle
  std::vector<int64_t> segment_starts_;
  std::vector<int64_t> bucket_starts_;  ///< region -> first data frame
};

}  // namespace dtree::core

#endif  // DTREE_DTREE_PROGRAM_H_
