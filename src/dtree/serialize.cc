#include "dtree/serialize.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/check.h"
#include "common/crc32.h"

namespace dtree::core {

namespace {

using bcast::kDataPtrBit;
using bcast::kOffsetBits;
using bcast::kOffsetMask;
using bcast::kPacketBits;
using bcast::PacketReader;

constexpr int kMaxScalarCoords = (1 << 14) - 1;

Result<int> QueryImpl(const std::vector<std::vector<uint8_t>>& packets,
                      int packet_capacity, bool framed, bool early_termination,
                      const geom::Point& p, std::vector<int>* packets_read) {
  if (packets.empty()) return Status::InvalidArgument("no packets");
  if (packet_capacity < 1) {
    return Status::InvalidArgument("packet capacity must be positive");
  }
  int packet = 0;
  size_t offset = 0;
  const int budget = bcast::DecodeBudget(packets.size());
  for (int hops = 0; hops < budget; ++hops) {
    PacketReader r(packets, packet_capacity, framed, packet, offset,
                   packets_read);
    uint16_t bid, header;
    DTREE_RETURN_IF_ERROR(r.ReadU16(&bid));
    DTREE_RETURN_IF_ERROR(r.ReadU16(&header));
    const PartitionDim dim =
        (header & 1) ? PartitionDim::kXDim : PartitionDim::kYDim;
    const bool has_bounds = (header & 2) != 0;
    const int total_coords = header >> 2;
    uint32_t left_ptr, right_ptr;
    DTREE_RETURN_IF_ERROR(r.ReadU32(&left_ptr));
    DTREE_RETURN_IF_ERROR(r.ReadU32(&right_ptr));

    bool go_left = false;
    bool decided = false;
    bool bounds_known = false;
    float rmc = 0.0f, lmc = 0.0f;
    if (has_bounds) {
      DTREE_RETURN_IF_ERROR(r.ReadF32(&rmc));
      DTREE_RETURN_IF_ERROR(r.ReadF32(&lmc));
      bounds_known = true;
      // Only stop reading mid-node when early termination is enabled —
      // otherwise fall through and read the whole node like a client
      // without the §4.4 arrangement would.
      if (early_termination) {
        if (dim == PartitionDim::kYDim) {
          if (p.x <= lmc) {
            go_left = true;
            decided = true;
          } else if (p.x >= rmc) {
            go_left = false;
            decided = true;
          }
        } else {
          if (p.y >= lmc) {
            go_left = true;
            decided = true;
          } else if (p.y <= rmc) {
            go_left = false;
            decided = true;
          }
        }
      }
    }
    if (!decided) {
      // Read the partition and run Algorithm 2 in full.
      std::vector<geom::Polyline> polylines;
      polylines.reserve(4);  // partitions are nearly always a few chains
      int coords = 0;
      double min_c = 1e300, max_c = -1e300;
      while (coords < total_coords) {
        uint16_t count;
        DTREE_RETURN_IF_ERROR(r.ReadU16(&count));
        if (count < 2) return Status::DataLoss("polyline with < 2 points");
        if (coords + 2 * static_cast<int>(count) > total_coords) {
          return Status::DataLoss(
              "polyline overruns the node's coordinate count");
        }
        geom::Polyline pl;
        pl.pts.reserve(count);
        for (int i = 0; i < count; ++i) {
          float x, y;
          DTREE_RETURN_IF_ERROR(r.ReadF32(&x));
          DTREE_RETURN_IF_ERROR(r.ReadF32(&y));
          pl.pts.push_back({x, y});
          const double c = dim == PartitionDim::kYDim ? x : y;
          min_c = std::min(min_c, c);
          max_c = std::max(max_c, c);
        }
        coords += 2 * count;
        if (pl.pts.size() > 3 &&
            geom::NearlyEqual(pl.pts.front(), pl.pts.back(),
                              geom::kGeomEps)) {
          pl.pts.pop_back();
          pl.closed = true;
        }
        polylines.push_back(std::move(pl));
      }
      if (coords != total_coords) {
        return Status::DataLoss("partition coordinate count mismatch");
      }
      // Shortcut bounds: explicit when the header carried them, otherwise
      // reconstructed from the partition's extreme coordinates (valid —
      // the encoder sets the explicit-bounds flag exactly when they would
      // not be recoverable this way).
      double near_b, far_b;
      if (bounds_known) {
        near_b = lmc;
        far_b = rmc;
      } else if (dim == PartitionDim::kYDim) {
        near_b = min_c;
        far_b = max_c;
      } else {
        near_b = max_c;  // lower_umc: the truncation line (max y)
        far_b = min_c;   // upper_lwc
      }
      go_left = PointInSubspaceTest(dim, near_b, far_b, polylines, p);
    }

    const uint32_t ptr = go_left ? left_ptr : right_ptr;
    if (ptr & kDataPtrBit) {
      return static_cast<int>(ptr & ~kDataPtrBit);
    }
    packet = static_cast<int>(ptr >> kOffsetBits);
    offset = ptr & kOffsetMask;
    if (packet >= static_cast<int>(packets.size())) {
      return Status::DataLoss("node pointer outside the packet stream");
    }
    if (offset >= static_cast<size_t>(packet_capacity)) {
      return Status::DataLoss("node pointer offset outside the packet");
    }
  }
  return Status::DataLoss("decode descent did not terminate");
}

}  // namespace

Result<std::vector<std::vector<uint8_t>>> SerializeDTree(const DTree& tree) {
  const int capacity = tree.PacketCapacity();
  std::vector<std::vector<uint8_t>> packets(
      tree.NumIndexPackets(),
      std::vector<uint8_t>(static_cast<size_t>(capacity), 0));
  if (tree.root() < 0) return packets;  // single-region: empty index

  for (int bfs = 0; bfs < tree.num_nodes(); ++bfs) {
    const int id = tree.bfs_order()[bfs];
    const DTreeNode& n = tree.node(id);
    const bcast::NodeSpan& s = tree.span(id);

    int total_coords = 0;
    for (const geom::Polyline& pl : n.polylines) {
      total_coords += 2 * static_cast<int>(pl.pts.size() + (pl.closed ? 1 : 0));
    }
    if (total_coords > kMaxScalarCoords) {
      return Status::InvalidArgument(
          "partition too large for the 14-bit header size field");
    }

    ByteWriter w;
    w.Reserve(n.byte_size);
    // The on-air node id is self-identification only (clients read and
    // discard it; descent uses packet/offset pointers). Table 2 gives it
    // two bytes, so at SCALE sizes (> 64Ki internal nodes) the BFS number
    // wraps rather than failing the whole build.
    w.PutU16(static_cast<uint16_t>(bfs & 0xffff));
    uint16_t header = 0;
    if (n.dim == PartitionDim::kXDim) header |= 1;
    if (n.explicit_bounds) header |= 2;
    header |= static_cast<uint16_t>(total_coords) << 2;
    w.PutU16(header);

    auto encode_child = [&](int child_node,
                            int child_region) -> Result<uint32_t> {
      if (child_node >= 0) {
        const bcast::NodeSpan& cs = tree.span(child_node);
        if (cs.offset > kOffsetMask) {
          return Status::InvalidArgument(
              "node offset " + std::to_string(cs.offset) +
              " exceeds the 12-bit pointer field");
        }
        if (cs.first_packet >= (1 << kPacketBits)) {
          return Status::InvalidArgument(
              "index packet " + std::to_string(cs.first_packet) +
              " exceeds the 19-bit pointer field");
        }
        return bcast::EncodeNodePointer(cs.first_packet, cs.offset);
      }
      if (child_region < 0) {
        return Status::Internal("child is neither a node nor a region");
      }
      return bcast::EncodeDataPointer(child_region);
    };
    Result<uint32_t> left = encode_child(n.left_node, n.left_region);
    if (!left.ok()) return left.status();
    Result<uint32_t> right = encode_child(n.right_node, n.right_region);
    if (!right.ok()) return right.status();
    w.PutU32(left.value());
    w.PutU32(right.value());

    if (n.explicit_bounds) {
      w.PutF32(static_cast<float>(n.far_bound));   // RMC
      w.PutF32(static_cast<float>(n.near_bound));  // LMC
    }
    for (const geom::Polyline& pl : n.polylines) {
      const size_t points = pl.pts.size() + (pl.closed ? 1 : 0);
      DTREE_RETURN_IF_ERROR(w.PutU16Checked(points, "polyline point count"));
      for (const geom::Point& p : pl.pts) {
        w.PutF32(static_cast<float>(p.x));
        w.PutF32(static_cast<float>(p.y));
      }
      if (pl.closed) {
        w.PutF32(static_cast<float>(pl.pts.front().x));
        w.PutF32(static_cast<float>(pl.pts.front().y));
      }
    }
    if (w.size() != n.byte_size) {
      return Status::Internal("serialized size " + std::to_string(w.size()) +
                              " != accounted size " +
                              std::to_string(n.byte_size));
    }
    bcast::PacketCursor cursor(&packets, capacity, s.first_packet, s.offset);
    cursor.Write(w.bytes());
  }
  return packets;
}

Result<int> QueryFromPackets(const std::vector<std::vector<uint8_t>>& packets,
                             int packet_capacity, bool early_termination,
                             const geom::Point& p,
                             std::vector<int>* packets_read) {
  return QueryImpl(packets, packet_capacity, /*framed=*/false,
                   early_termination, p, packets_read);
}

Result<int> QueryFromFramedPackets(
    const std::vector<std::vector<uint8_t>>& frames, int packet_capacity,
    bool early_termination, const geom::Point& p,
    std::vector<int>* packets_read) {
  return QueryImpl(frames, packet_capacity, /*framed=*/true,
                   early_termination, p, packets_read);
}

}  // namespace dtree::core
