#include "dtree/serialize.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/check.h"
#include "common/crc32.h"
#include "dtree/wire.h"
#include "geom/predicates.h"

namespace dtree::core {

namespace {

using bcast::kDataPtrBit;
using bcast::kOffsetBits;
using bcast::kOffsetMask;
using bcast::kPacketBits;
using bcast::PacketReader;

constexpr int kMaxScalarCoords = (1 << 14) - 1;

Result<int> QueryImpl(bcast::PacketSource packets, int packet_capacity,
                      bool framed, bool early_termination,
                      const geom::Point& p, std::vector<int>* packets_read) {
  if (packets.num_packets() == 0) return Status::InvalidArgument("no packets");
  if (packet_capacity < 1) {
    return Status::InvalidArgument("packet capacity must be positive");
  }
  int packet = 0;
  size_t offset = 0;
  const int budget = bcast::DecodeBudget(packets.num_packets());
  // Polyline point scratch, reused across chains, nodes, and queries:
  // the descent itself never heap-allocates once the scratch is warm.
  thread_local std::vector<double> sx, sy;
  for (int hops = 0; hops < budget; ++hops) {
    PacketReader r(packets, packet_capacity, framed, packet, offset,
                   packets_read);
    WireNodePrefix n;
    DTREE_RETURN_IF_ERROR(ReadWireNodePrefix(&r, &n));

    bool go_left = false;
    bool decided = false;
    // Only stop reading mid-node when early termination is enabled —
    // otherwise fall through and read the whole node like a client
    // without the §4.4 arrangement would.
    if (n.has_bounds && early_termination) {
      if (n.dim == PartitionDim::kYDim) {
        if (p.x <= n.lmc) {
          go_left = true;
          decided = true;
        } else if (p.x >= n.rmc) {
          go_left = false;
          decided = true;
        }
      } else {
        if (p.y >= n.lmc) {
          go_left = true;
          decided = true;
        } else if (p.y <= n.rmc) {
          go_left = false;
          decided = true;
        }
      }
    }
    if (!decided) {
      // Read the partition and run Algorithm 2 in full. The ray-crossing
      // parity accumulates per chain while streaming; the D1/D3 shortcut
      // against the (possibly reconstructed) bounds is applied after,
      // exactly as PointInSubspaceTest orders its checks.
      double min_c, max_c;
      int crossings = 0;
      DTREE_RETURN_IF_ERROR(ReadWirePolylines(
          &r, n.dim, n.total_coords, &sx, &sy, &min_c, &max_c,
          [&](const double* xs, const double* ys, size_t cnt, bool closed) {
            if (cnt < 2) return;
            const size_t nseg = closed ? cnt : cnt - 1;
            for (size_t i = 0; i < nseg; ++i) {
              const size_t j = (i + 1) % cnt;
              const geom::Point a{xs[i], ys[i]}, b{xs[j], ys[j]};
              if (n.dim == PartitionDim::kYDim) {
                crossings += geom::RayRightCrossesSegment(p, a, b) ? 1 : 0;
              } else {
                crossings += geom::RayDownCrossesSegment(p, a, b) ? 1 : 0;
              }
            }
          }));
      const auto [near_b, far_b] = WireShortcutBounds(n, min_c, max_c);
      if (n.dim == PartitionDim::kYDim) {
        if (p.x <= near_b) {
          go_left = true;   // D1: all-left
        } else if (p.x >= far_b) {
          go_left = false;  // D3: all-right
        } else {
          go_left = (crossings % 2) == 1;
        }
      } else {
        if (p.y >= near_b) {
          go_left = true;   // all-upper
        } else if (p.y <= far_b) {
          go_left = false;  // all-lower
        } else {
          go_left = (crossings % 2) == 1;
        }
      }
    }

    const uint32_t ptr = go_left ? n.left_ptr : n.right_ptr;
    if (ptr & kDataPtrBit) {
      return static_cast<int>(ptr & ~kDataPtrBit);
    }
    packet = static_cast<int>(ptr >> kOffsetBits);
    offset = ptr & kOffsetMask;
    if (packet >= static_cast<int>(packets.num_packets())) {
      return Status::DataLoss("node pointer outside the packet stream");
    }
    if (offset >= static_cast<size_t>(packet_capacity)) {
      return Status::DataLoss("node pointer offset outside the packet");
    }
  }
  return Status::DataLoss("decode descent did not terminate");
}

}  // namespace

Result<bcast::PacketBuffer> SerializeDTreeFlat(const DTree& tree) {
  const int capacity = tree.PacketCapacity();
  bcast::PacketBuffer packets(static_cast<size_t>(tree.NumIndexPackets()),
                              static_cast<size_t>(capacity));
  if (tree.root() < 0) return packets;  // single-region: empty index

  for (int bfs = 0; bfs < tree.num_nodes(); ++bfs) {
    const int id = tree.bfs_order()[bfs];
    const DTreeNode& n = tree.node(id);
    const bcast::NodeSpan& s = tree.span(id);

    int total_coords = 0;
    for (const geom::Polyline& pl : n.polylines) {
      total_coords += 2 * static_cast<int>(pl.pts.size() + (pl.closed ? 1 : 0));
    }
    if (total_coords > kMaxScalarCoords) {
      return Status::InvalidArgument(
          "partition too large for the 14-bit header size field");
    }

    ByteWriter w;
    w.Reserve(n.byte_size);
    // The on-air node id is self-identification only (clients read and
    // discard it; descent uses packet/offset pointers). Table 2 gives it
    // two bytes, so at SCALE sizes (> 64Ki internal nodes) the BFS number
    // wraps rather than failing the whole build.
    w.PutU16(static_cast<uint16_t>(bfs & 0xffff));
    uint16_t header = 0;
    if (n.dim == PartitionDim::kXDim) header |= 1;
    if (n.explicit_bounds) header |= 2;
    header |= static_cast<uint16_t>(total_coords) << 2;
    w.PutU16(header);

    auto encode_child = [&](int child_node,
                            int child_region) -> Result<uint32_t> {
      if (child_node >= 0) {
        const bcast::NodeSpan& cs = tree.span(child_node);
        if (cs.offset > kOffsetMask) {
          return Status::InvalidArgument(
              "node offset " + std::to_string(cs.offset) +
              " exceeds the 12-bit pointer field");
        }
        if (cs.first_packet >= (1 << kPacketBits)) {
          return Status::InvalidArgument(
              "index packet " + std::to_string(cs.first_packet) +
              " exceeds the 19-bit pointer field");
        }
        return bcast::EncodeNodePointer(cs.first_packet, cs.offset);
      }
      if (child_region < 0) {
        return Status::Internal("child is neither a node nor a region");
      }
      return bcast::EncodeDataPointer(child_region);
    };
    Result<uint32_t> left = encode_child(n.left_node, n.left_region);
    if (!left.ok()) return left.status();
    Result<uint32_t> right = encode_child(n.right_node, n.right_region);
    if (!right.ok()) return right.status();
    w.PutU32(left.value());
    w.PutU32(right.value());

    if (n.explicit_bounds) {
      w.PutF32(static_cast<float>(n.far_bound));   // RMC
      w.PutF32(static_cast<float>(n.near_bound));  // LMC
    }
    for (const geom::Polyline& pl : n.polylines) {
      const size_t points = pl.pts.size() + (pl.closed ? 1 : 0);
      DTREE_RETURN_IF_ERROR(w.PutU16Checked(points, "polyline point count"));
      for (const geom::Point& p : pl.pts) {
        w.PutF32(static_cast<float>(p.x));
        w.PutF32(static_cast<float>(p.y));
      }
      if (pl.closed) {
        w.PutF32(static_cast<float>(pl.pts.front().x));
        w.PutF32(static_cast<float>(pl.pts.front().y));
      }
    }
    if (w.size() != n.byte_size) {
      return Status::Internal("serialized size " + std::to_string(w.size()) +
                              " != accounted size " +
                              std::to_string(n.byte_size));
    }
    // Packets are contiguous in the flat buffer, so a node that spills
    // into the following packet(s) is still one straight copy.
    packets.Write(static_cast<size_t>(s.first_packet), s.offset,
                  w.bytes().data(), w.size());
  }
  return packets;
}

Result<std::vector<std::vector<uint8_t>>> SerializeDTree(const DTree& tree) {
  Result<bcast::PacketBuffer> flat = SerializeDTreeFlat(tree);
  if (!flat.ok()) return flat.status();
  return flat.value().ToVectors();
}

Result<int> QueryFromPackets(bcast::PacketSource packets, int packet_capacity,
                             bool early_termination, const geom::Point& p,
                             std::vector<int>* packets_read) {
  return QueryImpl(packets, packet_capacity, /*framed=*/false,
                   early_termination, p, packets_read);
}

Result<int> QueryFromFramedPackets(bcast::PacketSource frames,
                                   int packet_capacity,
                                   bool early_termination,
                                   const geom::Point& p,
                                   std::vector<int>* packets_read) {
  return QueryImpl(frames, packet_capacity, /*framed=*/true,
                   early_termination, p, packets_read);
}

}  // namespace dtree::core
