#include "dtree/versioned.h"

#include <limits>
#include <utility>

#include "subdivision/voronoi.h"

namespace dtree::core {

Result<std::vector<geom::Point>> VersionedProgram::ApplyUpdates(
    std::vector<geom::Point> sites, const std::vector<SiteUpdate>& updates) {
  for (const SiteUpdate& u : updates) {
    switch (u.kind) {
      case SiteUpdate::Kind::kInsert:
        sites.push_back(u.p);
        break;
      case SiteUpdate::Kind::kDelete: {
        if (sites.empty()) {
          return Status::InvalidArgument("delete from an empty site set");
        }
        size_t best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < sites.size(); ++i) {
          const double dx = sites[i].x - u.p.x;
          const double dy = sites[i].y - u.p.y;
          const double d = dx * dx + dy * dy;
          if (d < best_d) {  // strict: lowest index wins ties
            best_d = d;
            best = i;
          }
        }
        sites.erase(sites.begin() + static_cast<ptrdiff_t>(best));
        break;
      }
    }
  }
  if (sites.size() < kMinSites) {
    return Status::InvalidArgument(
        "update batch leaves fewer than " + std::to_string(kMinSites) +
        " sites");
  }
  return sites;
}

Result<std::shared_ptr<const EpochState>> VersionedProgram::BuildEpoch(
    std::vector<geom::Point> sites, const Options& options, uint16_t epoch) {
  Result<sub::Subdivision> sub_r =
      sub::BuildVoronoiSubdivision(sites, options.service_area);
  if (!sub_r.ok()) return sub_r.status();

  Result<DTree> tree_r = DTree::Build(sub_r.value(), options.tree);
  if (!tree_r.ok()) return tree_r.status();

  Result<bcast::BroadcastChannel> ch_r = bcast::BroadcastChannel::Create(
      tree_r.value().NumIndexPackets(), sub_r.value().NumRegions(),
      options.channel);
  if (!ch_r.ok()) return ch_r.status();

  Result<BroadcastProgram> prog_r =
      BroadcastProgram::Materialize(tree_r.value(), ch_r.value(), epoch);
  if (!prog_r.ok()) return prog_r.status();

  return std::shared_ptr<const EpochState>(new EpochState{
      epoch, std::move(sites), std::move(sub_r.value()),
      std::move(tree_r.value()), std::move(ch_r.value()),
      std::move(prog_r.value())});
}

Result<std::unique_ptr<VersionedProgram>> VersionedProgram::Create(
    std::vector<geom::Point> sites, const Options& options) {
  if (sites.size() < kMinSites) {
    return Status::InvalidArgument("versioned program needs at least " +
                                   std::to_string(kMinSites) + " sites");
  }
  Result<std::shared_ptr<const EpochState>> epoch0 =
      BuildEpoch(std::move(sites), options, 0);
  if (!epoch0.ok()) return epoch0.status();
  std::unique_ptr<VersionedProgram> prog(new VersionedProgram(options));
  prog->current_ = std::move(epoch0.value());
  return prog;
}

void VersionedProgram::Enqueue(SiteUpdate update) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(update);
}

size_t VersionedProgram::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

Result<std::shared_ptr<const EpochState>> VersionedProgram::CommitEpoch() {
  std::vector<SiteUpdate> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(queue_);
  }
  const std::shared_ptr<const EpochState> cur = Acquire();

  Result<std::vector<geom::Point>> sites_r =
      ApplyUpdates(cur->sites, batch);
  if (!sites_r.ok()) return sites_r.status();

  const uint16_t next = static_cast<uint16_t>(cur->epoch + 1);
  Result<std::shared_ptr<const EpochState>> built =
      BuildEpoch(std::move(sites_r.value()), options_, next);
  if (!built.ok()) return built.status();

  // Publish: the old current becomes the resident previous arena; the
  // epoch before *that* is released (at most two epochs stay live). Both
  // pointers move under one lock, so no reader can observe the new
  // current paired with an older previous.
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    previous_ = cur;
    current_ = built.value();
  }
  return built;
}

}  // namespace dtree::core
