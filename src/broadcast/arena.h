// Flat-arena probe engines: cache-conscious decoded form of an air index.
//
// The packet decoders (dtree/serialize.h, baselines/*) re-parse wire bytes
// on every probe — correct, hardened, and the bit-identical oracle, but
// slow: each query re-reads headers, re-promotes f32 coordinates and
// chases per-packet heap allocations. A FlatProbeEngine decodes the
// CRC-verified cycle ONCE into a structure-of-arrays arena (node records
// in contiguous typed arrays, child links as 32-bit indices, partition
// coordinates in separate x[]/y[] arrays) and serves every subsequent
// probe from that arena. Engines replicate the wire decoder's exact
// arithmetic — same f32→double promotions, same comparison order, same
// ray-crossing formula — so an arena probe returns byte-identical results
// to the per-probe decoder (enforced by tests/arena_test and by the
// bench_micro verification guard).
//
// ArenaIndex adapts an engine back to the AirIndex interface while
// reporting the wrapped index's identity (name, packet count, byte size),
// so BroadcastChannel::Simulate and bcast::RunExperiment produce
// byte-identical output with the arena enabled. See DESIGN.md §12.

#ifndef DTREE_BROADCAST_ARENA_H_
#define DTREE_BROADCAST_ARENA_H_

#include <memory>
#include <string>
#include <utility>

#include "broadcast/air_index.h"
#include "common/check.h"
#include "common/status.h"
#include "geom/point.h"

namespace dtree::bcast {

/// A decoded, immutable, probe-only form of one air index. Thread-safe
/// for concurrent ProbeInto calls (same contract as AirIndex::Probe).
class FlatProbeEngine {
 public:
  virtual ~FlatProbeEngine() = default;

  /// Fills `*trace` with the same region and packet log the wire decoder
  /// (and the wrapped index's Probe) would produce for p. Must clear any
  /// previous contents of the trace's vectors without shrinking them.
  virtual Status ProbeInto(const geom::Point& p,
                           ProbeTrace* trace) const = 0;

  /// Resident size of the arena's typed arrays, for the memory/throughput
  /// tradeoff table in EXPERIMENTS.md E14.
  virtual size_t ArenaBytes() const = 0;
};

/// AirIndex adapter over a FlatProbeEngine. Reports the wrapped index's
/// identity so experiment results (index name, packet counts, index bytes)
/// are byte-identical whether probes run through the base index or the
/// arena.
class ArenaIndex final : public AirIndex {
 public:
  ArenaIndex(std::string name, int num_index_packets, size_t index_bytes,
             int packet_capacity, std::unique_ptr<FlatProbeEngine> engine)
      : name_(std::move(name)), num_index_packets_(num_index_packets),
        index_bytes_(index_bytes), packet_capacity_(packet_capacity),
        engine_(std::move(engine)) {
    DTREE_CHECK(engine_ != nullptr);
  }

  /// Convenience: capture `base`'s identity around `engine`.
  ArenaIndex(const AirIndex& base, std::unique_ptr<FlatProbeEngine> engine)
      : ArenaIndex(base.name(), base.NumIndexPackets(), base.IndexBytes(),
                   base.PacketCapacity(), std::move(engine)) {}

  std::string name() const override { return name_; }
  int NumIndexPackets() const override { return num_index_packets_; }
  size_t IndexBytes() const override { return index_bytes_; }
  int PacketCapacity() const override { return packet_capacity_; }

  Result<ProbeTrace> Probe(const geom::Point& p) const override;
  Status ProbeInto(const geom::Point& p, ProbeTrace* trace) const override {
    return engine_->ProbeInto(p, trace);
  }

  const FlatProbeEngine& engine() const { return *engine_; }

 private:
  std::string name_;
  int num_index_packets_;
  size_t index_bytes_;
  int packet_capacity_;
  std::unique_ptr<FlatProbeEngine> engine_;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_ARENA_H_
