#include "broadcast/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "broadcast/frame.h"
#include "broadcast/telemetry.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace dtree::bcast {

namespace {

/// Protocol phase a dozing client wakes up into. Probe bursts, bucket
/// retrievals and the fallback scan are contiguous listening, so each is
/// processed inside a single wake-up; the index descent dozes between
/// packets (the paper's core energy mechanism), so each index read is its
/// own wake-up.
enum class Phase : uint8_t {
  kJoin,        ///< session start; issue the first query
  kProbe,       ///< initial probe burst at floor(arrival) + 1
  kIndexRead,   ///< read packets[step] of the current descent
  kBucketRead,  ///< contiguous bucket retrieval
  /// Query answered from the client's region cache at issue time; the
  /// wake-up completes it at its arrival (zero latency, zero tuning).
  /// Completion goes through the queue, not recursion, so an unbroken
  /// run of hits cannot grow the stack.
  kCacheHit,
  kDone,        ///< retired (horizon reached); never scheduled again
};

/// One client slot. The per-query protocol state mirrors the locals of
/// BroadcastChannel::Simulate; everything else is the client's identity
/// and arrival process. Kept small on purpose: a million clients is a few
/// hundred MB. The fault processes are NOT resident (a mt19937_64 is
/// ~2.5 KB): every draw sequence is reconstructed from its (seed, client,
/// purpose) stream key exactly when needed — see FirstFailure below.
struct Client {
  uint64_t key = 0;          ///< FleetClientKey(seed, client_id)
  uint64_t id = 0;           ///< slot + generation * num_clients
  uint64_t loss_stream = 0;  ///< FleetQueryLossStream of in-flight query
  double arrival = 0.0;      ///< absolute arrival of in-flight query
  double px = 0.0;           ///< in-flight query point (for re-probes
  double py = 0.0;           ///< after an epoch switch)
  int64_t pos = 0;           ///< Simulate's `pos` (re-tune restart point)
  int64_t seg_start = 0;     ///< current index-segment start
  int64_t probe_packet = 0;  ///< next probe read position
  BroadcastChannel::QueryOutcome out;
  std::vector<int> packets;  ///< current descent's index packet ids
  /// Probe-path annotation, filled only when tracing (empty otherwise).
  std::vector<ProbePacketOrigin> origins;
  /// In-flight query's trace; allocated per query only when tracing.
  std::unique_ptr<QueryTrace> qt;
  /// Mobility walk state (FleetOptions::mobility); reset on churn.
  workload::MobilityState walk;
  /// Region cache (FleetOptions::cache); allocated lazily on the first
  /// issued query when enabled, Clear()ed on churn so the next occupant
  /// starts cold.
  std::unique_ptr<RegionCache> cache;
  uint32_t generation = 0;   ///< churn generation occupying this slot
  uint32_t query_index = 0;  ///< queries issued by this session
  int32_t region = -1;
  /// Read ordinal (0-based, within the current attempt's fixed draw
  /// sequence) of the first failed read; -1 = attempt fully succeeds.
  int32_t fail_at = -1;
  int32_t reads_done = 0;    ///< successful reads so far this attempt
  int32_t step = 0;          ///< next index of `packets` to read
  /// Restart ordinal keying LossProcess::AttemptStream: incremented for
  /// fault re-tunes AND epoch switches (one stream per restart, exactly
  /// as BroadcastTimeline::Simulate keys them). Equal to out.retries in
  /// a single-epoch run.
  int32_t attempt = 0;
  int32_t span = 0;          ///< epoch span the client currently trusts
  bool fail_corrupt = false; ///< failing read is a CRC reject, not a loss
  Phase phase = Phase::kJoin;
};

/// Private per-shard accumulator, merged in shard order (the same
/// determinism pattern as RunExperiment's ShardSums).
struct FleetShard {
  double latency = 0.0;
  double tuning_index = 0.0;
  double tuning_total = 0.0;
  int64_t retries = 0;
  int64_t lost_packets = 0;
  int64_t corrupted_packets = 0;
  int64_t unrecoverable = 0;
  int64_t fallback = 0;
  int64_t epoch_switches = 0;
  int64_t epoch_churn = 0;
  int64_t queries = 0;
  int64_t sessions = 0;
  int64_t departures = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
  MetricsRegistry metrics;
  std::vector<QueryTrace> traces;
  Status error = Status::OK();
};

/// Everything the engine needs about one epoch span, precomputed once
/// and shared read-only across shards. Span s occupies absolute packets
/// [start, next span's start); the last span is open-ended. A legacy
/// RunFleet is exactly one span starting at 0.
struct SpanContext {
  const AirIndex* index = nullptr;
  const QuerySampler* sampler = nullptr;
  const BroadcastChannel* channel = nullptr;
  uint16_t epoch = 0;
  int64_t start = 0;  ///< absolute packet position the span begins at
  int64_t cycle = 0;  ///< this epoch's cycle_packets
  std::vector<int64_t> segment_start;  ///< in-cycle index segment starts
  std::vector<int64_t> bucket_start;   ///< in-cycle bucket starts, by region
  geom::BBox area;  ///< service area (mobility walk bounds)
  /// Region cell polygons, materialized once and shared read-only: the
  /// valid scope a client caches after answering a query in this epoch.
  /// Empty unless FleetOptions::cache is enabled.
  std::vector<geom::Polygon> region_polys;
};

SpanContext MakeSpanContext(const AirIndex& index, const BroadcastChannel& ch,
                            const QuerySampler& sampler,
                            const sub::Subdivision& subdivision,
                            uint16_t epoch, int64_t start,
                            bool cache_enabled) {
  SpanContext sc;
  sc.index = &index;
  sc.sampler = &sampler;
  sc.channel = &ch;
  sc.epoch = epoch;
  sc.start = start;
  sc.cycle = ch.cycle_packets();
  sc.segment_start.reserve(static_cast<size_t>(ch.m()));
  for (int j = 0; j < ch.m(); ++j) {
    sc.segment_start.push_back(ch.IndexSegmentStart(j));
  }
  sc.bucket_start.reserve(static_cast<size_t>(ch.num_regions()));
  for (int r = 0; r < ch.num_regions(); ++r) {
    sc.bucket_start.push_back(ch.BucketStart(r));
  }
  sc.area = subdivision.service_area();
  if (cache_enabled) {
    sc.region_polys.reserve(static_cast<size_t>(subdivision.NumRegions()));
    for (int r = 0; r < subdivision.NumRegions(); ++r) {
      sc.region_polys.push_back(subdivision.RegionPolygon(r));
    }
  }
  return sc;
}

/// Wake-up entry; min-heap by (time, slot). The slot tie-break pins the
/// pop order when many clients wake at the same packet start, so shard
/// sums accumulate in one fixed order regardless of anything external.
struct WakeUp {
  double t = 0.0;
  int32_t slot = 0;  ///< shard-local client index
};
struct WakeUpLater {
  bool operator()(const WakeUp& a, const WakeUp& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.slot > b.slot;
  }
};

/// Read ordinal of the first failed read in one attempt's fixed draw
/// sequence, or -1 when all `num_reads` reads succeed. Reconstructs the
/// fault processes from their stream keys and replays Simulate's exact
/// draw order (loss first; corruption only for delivered packets; no
/// draws after the first failure — which is also why the attempt's
/// remaining draws never being made keeps this equivalent to drawing
/// lazily at each read). Valid because LossProcess::StartStream fully
/// re-keys the process: its state is a pure function of (options, query
/// stream, sub-stream), never of what an earlier phase drew.
int FirstFailure(const LossOptions& lopt, int frame_bits,
                 uint64_t query_stream, uint64_t sub_stream, int num_reads,
                 bool* fail_corrupt) {
  LossProcess loss(lopt, query_stream);
  CorruptionProcess corrupt(lopt.corruption, frame_bits, query_stream);
  loss.StartStream(sub_stream);
  corrupt.StartStream(sub_stream);
  for (int i = 0; i < num_reads; ++i) {
    if (loss.enabled() && loss.NextLost()) {
      *fail_corrupt = false;
      return i;
    }
    if (corrupt.enabled() && corrupt.NextCorrupted()) {
      *fail_corrupt = true;
      return i;
    }
  }
  return -1;
}

/// Everything one shard needs to run its event loop. Shards never share
/// mutable state; the channels, indexes and samplers are probed
/// concurrently under AirIndex's const-probe contract.
class ShardEngine {
 public:
  ShardEngine(const std::vector<SpanContext>& spans, bool versioned,
              const FleetOptions& options, double horizon,
              int64_t shard_first, int64_t shard_clients, FleetShard* sums,
              TelemetryShard* tel)
      : spans_(spans),
        opt_(options),
        lopt_(options.loss),
        horizon_(horizon),
        shard_first_(shard_first),
        shard_clients_(shard_clients),
        sums_(sums),
        tel_(tel),
        cycle_(spans[0].cycle),
        frame_bits_(FrameBits(options.packet_capacity)),
        faults_(options.loss.any_fault()),
        versioned_(versioned),
        mobility_on_(options.mobility.enabled),
        cache_on_(options.cache.enabled),
        mean_think_(static_cast<double>(spans[0].cycle) /
                    options.queries_per_cycle),
        tracing_(options.trace_sink != nullptr) {
    starts_.reserve(spans.size());
    for (const SpanContext& sc : spans) starts_.push_back(sc.start);
    h_latency_ = sums_->metrics.histogram(kLatencyHist);
    h_tuning_index_ = sums_->metrics.histogram(kTuningIndexHist);
    h_tuning_total_ = sums_->metrics.histogram(kTuningTotalHist);
    h_retries_ = sums_->metrics.histogram(kRetriesHist);
    h_lost_ = sums_->metrics.histogram(kLostPacketsHist);
    h_corrupted_ = sums_->metrics.histogram(kCorruptedPacketsHist);
    if (versioned_) {
      h_epoch_switches_ = sums_->metrics.histogram(kEpochSwitchesHist);
    }
  }

  void Run() {
    clients_.resize(static_cast<size_t>(shard_clients_));
    for (int32_t i = 0; i < shard_clients_; ++i) {
      Client& c = clients_[static_cast<size_t>(i)];
      c.key = FleetClientKey(opt_.seed, ClientId(i, /*generation=*/0));
      // Generation 0 joins at a uniform point of the first cycle — the
      // steady-state phase distribution of a population that has been
      // listening forever.
      Rng rng = Rng::ForStream(c.key, FleetJoinStream());
      const double t_join =
          rng.Uniform(0.0, static_cast<double>(cycle_));
      if (t_join >= horizon_) {
        c.phase = Phase::kDone;
        continue;
      }
      c.phase = Phase::kJoin;
      queue_.push({t_join, i});
    }
    while (!queue_.empty() && sums_->error.ok()) {
      const WakeUp w = queue_.top();
      queue_.pop();
      Client& c = clients_[static_cast<size_t>(w.slot)];
      switch (c.phase) {
        case Phase::kJoin:
          ++sums_->sessions;
          if (tel_ != nullptr) tel_->SessionJoin(w.t);
          IssueQuery(w.slot, c, w.t);
          break;
        case Phase::kProbe:
          HandleProbe(w.slot, c);
          break;
        case Phase::kIndexRead:
          HandleIndexRead(w.slot, c, static_cast<int64_t>(w.t));
          break;
        case Phase::kBucketRead:
          HandleBucketRead(w.slot, c, static_cast<int64_t>(w.t));
          break;
        case Phase::kCacheHit:
          // Outcome was synthesized at issue time; complete at arrival.
          CompleteQuery(w.slot, c, c.arrival);
          break;
        case Phase::kDone:
          DTREE_CHECK(false);  // retired clients are never scheduled
          break;
      }
    }
  }

 private:
  uint64_t ClientId(int32_t slot, uint32_t generation) const {
    return static_cast<uint64_t>(shard_first_ + slot) +
           static_cast<uint64_t>(generation) *
               static_cast<uint64_t>(opt_.num_clients);
  }

  const SpanContext& Span(const Client& c) const {
    return spans_[static_cast<size_t>(c.span)];
  }

  /// Epoch span containing absolute packet position pos.
  int SpanAt(int64_t pos) const {
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
    return static_cast<int>(it - starts_.begin()) - 1;
  }

  /// One past the last packet of span s (INT64_MAX for the last span).
  int64_t SpanEnd(int s) const {
    return static_cast<size_t>(s) + 1 < starts_.size()
               ? starts_[static_cast<size_t>(s) + 1]
               : std::numeric_limits<int64_t>::max();
  }

  /// Smallest index-segment start >= t within the client's span layout;
  /// BroadcastTimeline::Simulate's next_segment_start (and, with one span
  /// starting at 0, BroadcastChannel::Simulate's, verbatim). Positions
  /// beyond the span extrapolate its layout; the frames actually
  /// broadcast there belong to the next epoch and the reads will say so.
  int64_t NextSegmentStart(const Client& c, int64_t t) const {
    const SpanContext& sc = Span(c);
    const int64_t local = t - sc.start;
    DTREE_CHECK(local >= 0);
    const int64_t base = (local / sc.cycle) * sc.cycle;
    const int64_t in_cycle = local - base;
    for (size_t j = 0; j < sc.segment_start.size(); ++j) {
      if (sc.segment_start[j] >= in_cycle) {
        return sc.start + base + sc.segment_start[j];
      }
    }
    return sc.start + base + sc.cycle + sc.segment_start[0];
  }

  // --- Trace/telemetry emitters, mirroring Simulate's event order.
  // Each is a no-op per disabled layer: tracing and telemetry attach
  // independently and neither perturbs the protocol arithmetic.
  void EmitDoze(Client& c, int64_t resume_at, double dur) {
    if (c.qt != nullptr && dur > 0.0) {
      TraceEvent e;
      e.kind = TraceEventKind::kDoze;
      e.pos = resume_at;
      e.dur = dur;
      c.qt->events.push_back(e);
    }
    if (tel_ != nullptr && dur > 0.0) {
      tel_->Doze(static_cast<double>(resume_at), dur,
                 static_cast<int64_t>(c.id), c.query_index);
    }
  }
  /// kProbe reads plus kLoss / kCorruption fault marks.
  void EmitRead(Client& c, TraceEventKind kind, int64_t pos) {
    if (c.qt != nullptr) {
      TraceEvent e;
      e.kind = kind;
      e.pos = pos;
      c.qt->events.push_back(e);
    }
    if (tel_ != nullptr) {
      if (kind == TraceEventKind::kProbe) {
        tel_->Read(kind, pos, 1, /*data_read=*/false,
                   static_cast<int64_t>(c.id), c.query_index);
      } else {
        tel_->Fault(kind, pos, static_cast<int64_t>(c.id), c.query_index);
      }
    }
  }
  /// Bucket retrieval of `bucket_read` contiguous packets at data_at.
  void EmitBucket(Client& c, int64_t data_at, int bucket_read) {
    if (c.qt != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kBucketRead;
      e.pos = data_at;
      e.packet = bucket_read;
      c.qt->events.push_back(e);
    }
    if (tel_ != nullptr) {
      tel_->Read(TraceEventKind::kBucketRead, data_at, bucket_read,
                 /*data_read=*/true, static_cast<int64_t>(c.id),
                 c.query_index);
    }
  }

  /// Issues the next query of client c arriving at absolute time A, or
  /// retires the client when A falls past the horizon. Draws the query
  /// point, runs the index probe, and schedules the initial-probe wake-up
  /// at floor(A) + 1 (Simulate's packet-boundary rule).
  void IssueQuery(int32_t slot, Client& c, double arrival) {
    if (arrival >= horizon_) {
      c.phase = Phase::kDone;
      return;
    }
    const uint64_t q = c.query_index;
    // Issue-time span: the one broadcasting at the first probe position.
    // The probe itself may establish a different tune-in span (probe
    // retries can cross a boundary); HandleProbe re-probes then.
    c.span = versioned_
                 ? SpanAt(static_cast<int64_t>(std::floor(arrival)) + 1)
                 : 0;
    const SpanContext& sc = Span(c);
    geom::Point p;
    if (mobility_on_) {
      // The walk owns its stream family; the point stream stays untouched
      // so mobility-off sessions draw exactly what they always did.
      Rng rng = Rng::ForStream(c.key, FleetMobilityStream(q));
      p = workload::MobilityStep(opt_.mobility, sc.area, &c.walk, &rng);
    } else {
      Rng rng = Rng::ForStream(c.key, FleetPointStream(q));
      p = sc.sampler->Draw(&rng);
    }

    if (cache_on_) {
      if (c.cache == nullptr) {
        c.cache = std::make_unique<RegionCache>(opt_.cache);
      }
      const RegionCache::Entry* hit = c.cache->Lookup(p);
      if (tel_ != nullptr) tel_->CacheLookup(arrival, hit != nullptr);
      if (hit != nullptr) {
        ++sums_->cache_hits;
        if (opt_.cache.verify_hits) {
          // Differential guard: the hit's answer must equal what a cold
          // probe of the span on the air would return. (Latency / tuning
          // legitimately differ — zeroing them is the point.)
          const Status probe_st =
              sc.index->ProbeInto(p, &probe_scratch_);
          if (!probe_st.ok()) {
            sums_->error = probe_st;
            return;
          }
          if (probe_scratch_.region != hit->region) {
            sums_->error = Status::Internal(
                "fleet region cache hit diverges from cold probe: cached "
                "region " + std::to_string(hit->region) + " vs probed " +
                std::to_string(probe_scratch_.region));
            return;
          }
        }
        c.arrival = arrival;
        c.px = p.x;
        c.py = p.y;
        c.out = BroadcastChannel::QueryOutcome{};
        c.out.cache_hit = true;
        c.out.epoch = hit->epoch;
        c.region = hit->region;
        c.id = ClientId(slot, c.generation);
        if (tel_ != nullptr) tel_->QueryIssued(arrival);
        if (tracing_) {
          c.qt = std::make_unique<QueryTrace>();
          c.qt->query_index = q;
          c.qt->client_id = static_cast<int64_t>(c.id);
          c.qt->x = p.x;
          c.qt->y = p.y;
          c.qt->region = c.region;
          c.qt->arrival = arrival;
          c.qt->cache_hit = true;
          TraceEvent e;
          e.kind = TraceEventKind::kCacheHit;
          e.pos = static_cast<int64_t>(std::floor(arrival)) + 1;
          e.packet = static_cast<int>(hit->epoch);
          c.qt->events.push_back(e);
          c.origins.clear();
        }
        c.phase = Phase::kCacheHit;
        queue_.push({arrival, slot});
        return;
      }
      ++sums_->cache_misses;
    }

    const Status probe_st = sc.index->ProbeInto(p, &probe_scratch_);
    if (!probe_st.ok()) {
      sums_->error = probe_st;
      return;
    }
    const Status trace_st = ValidateTrace(
        probe_scratch_, std::max(sc.channel->index_packets(), 1),
        sc.channel->num_regions(), /*require_forward=*/false);
    if (!trace_st.ok()) {
      sums_->error = trace_st;
      return;
    }
    c.arrival = arrival;
    c.px = p.x;
    c.py = p.y;
    c.out = BroadcastChannel::QueryOutcome{};
    c.region = probe_scratch_.region;
    c.packets.assign(probe_scratch_.packets.begin(),
                     probe_scratch_.packets.end());
    c.loss_stream = FleetQueryLossStream(c.key, q);
    c.id = ClientId(slot, c.generation);
    if (tel_ != nullptr) tel_->QueryIssued(arrival);
    if (tracing_) {
      c.qt = std::make_unique<QueryTrace>();
      c.qt->query_index = q;
      c.qt->client_id = static_cast<int64_t>(c.id);
      c.qt->x = p.x;
      c.qt->y = p.y;
      c.qt->region = c.region;
      c.qt->arrival = arrival;
      c.origins = probe_scratch_.origins;
    }
    c.probe_packet = static_cast<int64_t>(std::floor(arrival)) + 1;
    EmitDoze(c, c.probe_packet,
             static_cast<double>(c.probe_packet) - arrival);
    c.phase = Phase::kProbe;
    queue_.push({static_cast<double>(c.probe_packet), slot});
  }

  /// Re-runs the in-flight query's point through the client's current
  /// span's index (pointers cached from another epoch are worthless).
  /// Pure — no RNG draws — so attaching it to span changes preserves the
  /// determinism contract. Returns false on a probe/validation failure
  /// (sums_->error set; the shard's event loop stops).
  bool ReprobeSpan(Client& c) {
    const SpanContext& sc = Span(c);
    const Status probe_st =
        sc.index->ProbeInto({c.px, c.py}, &probe_scratch_);
    if (!probe_st.ok()) {
      sums_->error = probe_st;
      return false;
    }
    const Status trace_st = ValidateTrace(
        probe_scratch_, std::max(sc.channel->index_packets(), 1),
        sc.channel->num_regions(), /*require_forward=*/false);
    if (!trace_st.ok()) {
      sums_->error = trace_st;
      return false;
    }
    c.region = probe_scratch_.region;
    c.packets.assign(probe_scratch_.packets.begin(),
                     probe_scratch_.packets.end());
    if (c.qt != nullptr) {
      c.qt->region = c.region;
      c.origins = probe_scratch_.origins;
    } else {
      c.origins.clear();
    }
    return true;
  }

  /// Adopts the span broadcasting at `pos` as the client's tune-in epoch
  /// — how the probe *learns* the current epoch, without consuming a
  /// switch. Re-probes when it differs from the issue-time span.
  bool AdoptSpan(Client& c, int64_t pos) {
    const int s = SpanAt(pos);
    c.out.epoch = spans_[static_cast<size_t>(s)].epoch;
    if (s == c.span) return true;
    c.span = s;
    return ReprobeSpan(c);
  }

  /// Registers the epoch switch a delivered read at `at` revealed (the
  /// packet belongs to span s != c.span): counts it, emits the trace /
  /// telemetry events, adopts the new span, and re-probes the query point
  /// under the new epoch's index. Returns false when the caller must stop
  /// driving the query — either the switch budget is exhausted (the query
  /// completed with GiveUpStage::kEpochChurn; latency runs through the
  /// revealing read) or the re-probe failed (shard error set).
  bool RegisterSwitch(int32_t slot, Client& c, int64_t at, int s) {
    ++c.out.epoch_switches;
    if (c.qt != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kEpochSwitch;
      e.pos = at;
      e.packet = static_cast<int>(spans_[static_cast<size_t>(s)].epoch);
      e.attempt = c.out.epoch_switches;
      c.qt->events.push_back(e);
    }
    if (tel_ != nullptr) {
      tel_->Fault(TraceEventKind::kEpochSwitch, at,
                  static_cast<int64_t>(c.id), c.query_index);
    }
    c.span = s;
    c.out.epoch = spans_[static_cast<size_t>(s)].epoch;
    if (cache_on_ && c.cache != nullptr) {
      // The delivered frame is a trusted stamp of the new epoch: version
      // skew flushes the cache mid-query (loss / corruption never get
      // here — a failed read carries no epoch evidence).
      const int inv = c.cache->OnEpochObserved(c.out.epoch);
      sums_->cache_invalidations += inv;
      if (tel_ != nullptr) {
        tel_->CacheInvalidated(static_cast<double>(at), inv);
      }
    }
    if (c.out.epoch_switches > lopt_.max_epoch_switches) {
      c.out.unrecoverable = true;
      c.out.give_up = GiveUpStage::kEpochChurn;
      c.out.latency = static_cast<double>(at + 1) - c.arrival;
      CompleteQuery(slot, c, static_cast<double>(at + 1));
      return false;
    }
    return ReprobeSpan(c);
  }

  /// Initial probe burst: consecutive packets are read back to back (the
  /// client is awake throughout), so the whole burst — and, on budget
  /// exhaustion, the fallback conclusion — runs inside this one wake-up.
  /// The fault processes live only for this frame, reconstructed from the
  /// query's stream key (kProbeStream is their construction state).
  void HandleProbe(int32_t slot, Client& c) {
    c.out.tuning_probe = 1;
    EmitRead(c, TraceEventKind::kProbe, c.probe_packet);
    if (faults_) {
      LossProcess loss(lopt_, c.loss_stream);
      CorruptionProcess corrupt(lopt_.corruption, frame_bits_,
                                c.loss_stream);
      auto read_failed = [&](int64_t at) {
        if (loss.enabled() && loss.NextLost()) {
          ++c.out.lost_packets;
          EmitRead(c, TraceEventKind::kLoss, at);
          return true;
        }
        if (corrupt.enabled() && corrupt.NextCorrupted()) {
          ++c.out.corrupted_packets;
          EmitRead(c, TraceEventKind::kCorruption, at);
          return true;
        }
        return false;
      };
      while (read_failed(c.probe_packet)) {
        if (c.out.tuning_probe > lopt_.max_retries) {
          // Never heard a single frame; the scan itself will reveal the
          // epoch, but the conclusion starts from the span on the air.
          if (versioned_ && !AdoptSpan(c, c.probe_packet + 1)) return;
          Conclude(slot, c, c.probe_packet + 1, GiveUpStage::kProbeBudget);
          return;
        }
        ++c.out.tuning_probe;
        ++c.probe_packet;
        EmitRead(c, TraceEventKind::kProbe, c.probe_packet);
      }
    }
    // The last successful probe read is the first delivered frame: its
    // span becomes the tune-in epoch (no switch consumed).
    if (versioned_ && !AdoptSpan(c, c.probe_packet)) return;
    c.pos = c.probe_packet + 1;
    c.attempt = 0;
    StartAttempt(slot, c, /*after_fault=*/false);
  }

  /// Begins restart `c.attempt` at position c.pos: precomputes where the
  /// restart's fixed read sequence first fails, locates the next index
  /// segment, and schedules the first wake-up of the descent (or goes
  /// straight to the bucket for an empty index). `after_fault` restarts
  /// are fault re-tunes and count toward out.retries; epoch-switch
  /// restarts re-key the draw streams without consuming retry budget.
  void StartAttempt(int32_t slot, Client& c, bool after_fault) {
    if (after_fault) {
      ++c.out.retries;
      if (c.qt != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kRetune;
        e.pos = c.pos;
        e.attempt = c.out.retries;
        c.qt->events.push_back(e);
      }
      if (tel_ != nullptr) {
        tel_->Fault(TraceEventKind::kRetune, c.pos,
                    static_cast<int64_t>(c.id), c.query_index);
      }
    }
    c.reads_done = 0;
    c.fail_at = -1;
    if (faults_) {
      c.fail_at = FirstFailure(
          lopt_, frame_bits_, c.loss_stream,
          LossProcess::AttemptStream(c.attempt),
          static_cast<int>(c.packets.size()) +
              Span(c).channel->bucket_packets(),
          &c.fail_corrupt);
    }
    int64_t p = c.pos;
    c.seg_start = NextSegmentStart(c, p);
    DTREE_CHECK(c.seg_start >= p);
    c.step = 0;
    if (c.packets.empty()) {
      p = std::max(p, c.seg_start);  // degenerate: empty index
      ScheduleBucket(slot, c, p);
      return;
    }
    ScheduleIndexRead(slot, c, p);
  }

  /// Schedules the wake-up for packets[c.step], handling a backward
  /// pointer by waiting for the next index repetition (Simulate's
  /// DAG-shaped-index rule, including the p - packet_id positivity
  /// argument audited there).
  void ScheduleIndexRead(int32_t slot, Client& c, int64_t p) {
    const int packet_id = c.packets[c.step];
    int64_t at = c.seg_start + packet_id;
    if (at < p) {
      c.seg_start = NextSegmentStart(c, p - packet_id);
      at = c.seg_start + packet_id;
      DTREE_CHECK(at >= p);
    }
    EmitDoze(c, at, static_cast<double>(at - p));
    c.phase = Phase::kIndexRead;
    queue_.push({static_cast<double>(at), slot});
  }

  void HandleIndexRead(int32_t slot, Client& c, int64_t at) {
    const int packet_id = c.packets[c.step];
    if (c.qt != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kIndexRead;
      e.pos = at;
      e.packet = packet_id;
      if (c.origins.size() == c.packets.size()) {
        e.node = c.origins[c.step].node;
        e.depth = c.origins[c.step].depth;
      }
      c.qt->events.push_back(e);
    }
    if (tel_ != nullptr) {
      tel_->Read(TraceEventKind::kIndexRead, at, 1, /*data_read=*/false,
                 static_cast<int64_t>(c.id), c.query_index);
    }
    const int64_t p = at + 1;
    ++c.out.tuning_index;
    if (c.fail_at >= 0 && c.reads_done == c.fail_at) {
      if (c.fail_corrupt) {
        ++c.out.corrupted_packets;
        EmitRead(c, TraceEventKind::kCorruption, at);
      } else {
        ++c.out.lost_packets;
        EmitRead(c, TraceEventKind::kLoss, at);
      }
      FailAttempt(slot, c, p);
      return;
    }
    // Delivered frame: fault draws first, then the epoch check (a lost
    // or corrupted frame never reveals an epoch stamp).
    if (versioned_ && SpanAt(at) != c.span) {
      if (!RegisterSwitch(slot, c, at, SpanAt(at))) return;
      c.pos = at + 1;
      ++c.attempt;  // fresh draw streams; not a fault retry
      StartAttempt(slot, c, /*after_fault=*/false);
      return;
    }
    ++c.reads_done;
    ++c.step;
    if (static_cast<size_t>(c.step) < c.packets.size()) {
      ScheduleIndexRead(slot, c, p);
    } else {
      ScheduleBucket(slot, c, p);
    }
  }

  /// Next occurrence of the client's bucket at or after p, in the
  /// client's span's layout.
  void ScheduleBucket(int32_t slot, Client& c, int64_t p) {
    const SpanContext& sc = Span(c);
    const int64_t bucket_in_cycle =
        sc.bucket_start[static_cast<size_t>(c.region)];
    const int64_t cycle_base = ((p - sc.start) / sc.cycle) * sc.cycle;
    int64_t data_at = sc.start + cycle_base + bucket_in_cycle;
    if (data_at < p) data_at += sc.cycle;
    EmitDoze(c, data_at, static_cast<double>(data_at - p));
    c.phase = Phase::kBucketRead;
    queue_.push({static_cast<double>(data_at), slot});
  }

  /// Bucket retrieval: contiguous reads, one wake-up.
  void HandleBucketRead(int32_t slot, Client& c, int64_t data_at) {
    const int bucket_packets = Span(c).channel->bucket_packets();
    int bucket_read = 0;
    bool lost = false;
    bool corrupted_here = false;
    bool switched = false;
    int64_t switch_at = 0;
    int64_t p = 0;
    for (int b = 0; b < bucket_packets; ++b) {
      ++c.out.tuning_data;
      ++bucket_read;
      if (c.fail_at >= 0 && c.reads_done == c.fail_at) {
        if (c.fail_corrupt) {
          ++c.out.corrupted_packets;
          corrupted_here = true;
        } else {
          ++c.out.lost_packets;
        }
        lost = true;
        p = data_at + b + 1;  // failure detected at the packet's end
        break;
      }
      if (versioned_ && SpanAt(data_at + b) != c.span) {
        switched = true;  // delivered frame from a newer epoch
        switch_at = data_at + b;
        break;
      }
      ++c.reads_done;
    }
    EmitBucket(c, data_at, bucket_read);
    if (lost) {
      EmitRead(c,
               corrupted_here ? TraceEventKind::kCorruption
                              : TraceEventKind::kLoss,
               data_at + bucket_read - 1);
    }
    if (switched) {
      // The bucket belonged to the old epoch: its packets are not an
      // answer. Adopt the new epoch and restart the descent.
      if (!RegisterSwitch(slot, c, switch_at, SpanAt(switch_at))) return;
      c.pos = switch_at + 1;
      ++c.attempt;
      StartAttempt(slot, c, /*after_fault=*/false);
      return;
    }
    if (!lost) {
      const int64_t done = data_at + bucket_packets;
      c.out.latency = static_cast<double>(done) - c.arrival;
      CompleteQuery(slot, c, static_cast<double>(done));
      return;
    }
    FailAttempt(slot, c, p);
  }

  /// A read of the current attempt failed at position p - 1: re-tune to
  /// the next index repetition, or fall off the retry rung. The budget
  /// check is on out.retries (not the restart ordinal) so epoch-switch
  /// restarts never consume retry budget; with one span out.retries
  /// equals the restart count and this is the legacy condition verbatim.
  void FailAttempt(int32_t slot, Client& c, int64_t p) {
    c.pos = p;
    if (c.out.retries >= lopt_.max_retries) {
      Conclude(slot, c, c.pos, GiveUpStage::kRetryBudget);
      return;
    }
    ++c.attempt;
    StartAttempt(slot, c, /*after_fault=*/true);
  }

  /// Degradation ladder, final rung — Simulate's `conclude` (the
  /// epoch-aware form of BroadcastTimeline::Simulate when versioned), run
  /// inside the current wake-up (the fallback scan is continuous
  /// listening). Only ever reached under faults. The scan listens to
  /// every packet, so the first packet of a new span reveals a switch
  /// mid-lump; bucket packets are checked after their fault draws. An
  /// epoch-truncated scan does not consume a fallback cycle (the cycle
  /// budget bounds fault failures; the switch budget bounds truncations).
  void Conclude(int32_t slot, Client& c, int64_t give_up_pos,
                GiveUpStage stage) {
    if (lopt_.fallback_scan_cycles > 0) {
      LossProcess loss(lopt_, c.loss_stream);
      CorruptionProcess corrupt(lopt_.corruption, frame_bits_,
                                c.loss_stream);
      int cycle = 0;
      while (cycle < lopt_.fallback_scan_cycles) {
        c.out.fallback_scan = true;
        loss.StartStream(LossProcess::FallbackStream(cycle));
        corrupt.StartStream(LossProcess::FallbackStream(cycle));
        const SpanContext& sc = Span(c);
        const int bucket_packets = sc.channel->bucket_packets();
        const int64_t bucket_in_cycle =
            sc.bucket_start[static_cast<size_t>(c.region)];
        const int64_t cycle_base =
            ((give_up_pos - sc.start) / sc.cycle) * sc.cycle;
        int64_t data_at = sc.start + cycle_base + bucket_in_cycle;
        if (data_at < give_up_pos) data_at += sc.cycle;
        if (versioned_) {
          // Epoch boundary inside the listening lump: the first listened
          // packet beyond the span reveals the switch before the bucket
          // is ever reached.
          const int64_t reveal = std::max(give_up_pos, SpanEnd(c.span));
          if (reveal < data_at) {
            const int listened =
                static_cast<int>(reveal + 1 - give_up_pos);
            c.out.tuning_index += listened;
            if (c.qt != nullptr) {
              TraceEvent e;
              e.kind = TraceEventKind::kFallbackScan;
              e.pos = give_up_pos;
              e.packet = listened;
              e.attempt = cycle;
              c.qt->events.push_back(e);
            }
            if (tel_ != nullptr) {
              tel_->Read(TraceEventKind::kFallbackScan, give_up_pos,
                         listened, /*data_read=*/false,
                         static_cast<int64_t>(c.id), c.query_index);
            }
            if (!RegisterSwitch(slot, c, reveal, SpanAt(reveal))) return;
            give_up_pos = reveal + 1;
            continue;  // re-scan in the new epoch; no cycle consumed
          }
        }
        const int64_t listened = data_at - give_up_pos;
        c.out.tuning_index += static_cast<int>(listened);
        if (c.qt != nullptr) {
          TraceEvent e;
          e.kind = TraceEventKind::kFallbackScan;
          e.pos = give_up_pos;
          e.packet = static_cast<int>(listened);
          e.attempt = cycle;
          c.qt->events.push_back(e);
        }
        if (tel_ != nullptr) {
          tel_->Read(TraceEventKind::kFallbackScan, give_up_pos,
                     static_cast<int>(listened), /*data_read=*/false,
                     static_cast<int64_t>(c.id), c.query_index);
        }
        bool lost = false;
        bool corrupted_here = false;
        bool switched = false;
        int64_t switch_at = 0;
        int bucket_read = 0;
        for (int b = 0; b < bucket_packets; ++b) {
          ++c.out.tuning_data;
          ++bucket_read;
          if (loss.enabled() && loss.NextLost()) {
            ++c.out.lost_packets;
            lost = true;
            break;
          }
          if (corrupt.enabled() && corrupt.NextCorrupted()) {
            ++c.out.corrupted_packets;
            corrupted_here = true;
            lost = true;
            break;
          }
          if (versioned_ && SpanAt(data_at + b) != c.span) {
            switched = true;  // delivered frame from a newer epoch
            switch_at = data_at + b;
            break;
          }
        }
        EmitBucket(c, data_at, bucket_read);
        if (lost) {
          EmitRead(c,
                   corrupted_here ? TraceEventKind::kCorruption
                                  : TraceEventKind::kLoss,
                   data_at + bucket_read - 1);
        }
        if (switched) {
          if (!RegisterSwitch(slot, c, switch_at, SpanAt(switch_at))) {
            return;
          }
          give_up_pos = switch_at + 1;
          continue;  // bucket was the old epoch's; rescan, same cycle
        }
        if (!lost) {
          c.out.latency =
              static_cast<double>(data_at + bucket_packets) - c.arrival;
          CompleteQuery(slot, c,
                        static_cast<double>(data_at + bucket_packets));
          return;
        }
        give_up_pos = data_at + bucket_read;  // listen past the bad packet
        ++cycle;
      }
    }
    c.out.unrecoverable = true;
    c.out.give_up =
        c.out.fallback_scan ? GiveUpStage::kFallbackBudget : stage;
    c.out.latency = static_cast<double>(give_up_pos) - c.arrival;
    CompleteQuery(slot, c, static_cast<double>(give_up_pos));
  }

  /// The query is over (answered or explicitly given up) at absolute time
  /// `done`: account it, then advance the client's arrival process —
  /// possibly through churn, which retires this session and seats the
  /// next generation in the slot after a re-join delay.
  void CompleteQuery(int32_t slot, Client& c, double done) {
    const auto& out = c.out;
    if (c.qt != nullptr) {
      c.qt->latency = out.latency;
      c.qt->tuning_total = out.tuning_total();
      c.qt->retries = out.retries;
      c.qt->lost_packets = out.lost_packets;
      c.qt->corrupted_packets = out.corrupted_packets;
      c.qt->fallback_scan = out.fallback_scan;
      c.qt->unrecoverable = out.unrecoverable;
      if (versioned_) {
        c.qt->versioned = true;
        c.qt->epoch = out.epoch;
        c.qt->epoch_switches = out.epoch_switches;
      }
      sums_->traces.push_back(std::move(*c.qt));
      c.qt.reset();
    }
    sums_->latency += out.latency;
    sums_->tuning_index += out.tuning_index;
    sums_->tuning_total += out.tuning_total();
    sums_->retries += out.retries;
    sums_->lost_packets += out.lost_packets;
    sums_->corrupted_packets += out.corrupted_packets;
    if (out.unrecoverable) ++sums_->unrecoverable;
    if (out.fallback_scan) ++sums_->fallback;
    ++sums_->queries;
    h_latency_->Add(out.latency);
    h_tuning_index_->Add(out.tuning_index);
    h_tuning_total_->Add(out.tuning_total());
    h_retries_->Add(out.retries);
    h_lost_->Add(out.lost_packets);
    h_corrupted_->Add(out.corrupted_packets);
    if (versioned_) {
      sums_->epoch_switches += out.epoch_switches;
      if (out.unrecoverable && out.give_up == GiveUpStage::kEpochChurn) {
        ++sums_->epoch_churn;
      }
      h_epoch_switches_->Add(out.epoch_switches);
    }
    if (tel_ != nullptr) {
      QueryOutcomeSummary summary;
      summary.latency = out.latency;
      summary.tuning_total = out.tuning_total();
      summary.retries = out.retries;
      summary.lost_packets = out.lost_packets;
      summary.corrupted_packets = out.corrupted_packets;
      summary.fallback_scan = out.fallback_scan;
      summary.unrecoverable = out.unrecoverable;
      summary.versioned = versioned_;
      summary.epoch = out.epoch;
      summary.epoch_switches = out.epoch_switches;
      if (out.unrecoverable) summary.give_up = GiveUpStageName(out.give_up);
      tel_->QueryDone(done, static_cast<int64_t>(c.id), c.query_index,
                      summary);
    }

    if (cache_on_ && !out.cache_hit && !out.unrecoverable &&
        c.region >= 0) {
      // A completed answer carries a trusted epoch stamp: flush on skew
      // first, then cache the answer's valid scope under that epoch.
      const int inv = c.cache->OnEpochObserved(out.epoch);
      sums_->cache_invalidations += inv;
      const int ev = c.cache->Insert(
          Span(c).region_polys[static_cast<size_t>(c.region)], c.region,
          out.epoch);
      sums_->cache_evictions += ev;
      if (tel_ != nullptr) {
        tel_->CacheInvalidated(done, inv);
        tel_->CacheEvicted(done, ev);
      }
    }

    Rng rng = Rng::ForStream(c.key, FleetScheduleStream(c.query_index));
    ++c.query_index;
    const double u_churn = rng.Uniform(0.0, 1.0);
    if (u_churn < opt_.churn) {
      ++sums_->departures;
      if (tel_ != nullptr) tel_->Departure(done);
      const double delay = DrawExp(&rng);
      c.generation += 1;
      c.query_index = 0;
      c.key = FleetClientKey(opt_.seed, ClientId(slot, c.generation));
      // The departing client takes its cache and walk with it: the next
      // occupant starts cold (Clear is not an invalidation — nothing the
      // new client trusted was dropped).
      if (c.cache != nullptr) c.cache->Clear();
      c.walk = workload::MobilityState{};
      const double t_join = done + delay;
      if (t_join >= horizon_) {
        c.phase = Phase::kDone;
        return;
      }
      c.phase = Phase::kJoin;
      queue_.push({t_join, slot});
      return;
    }
    // Poisson thinking time from the *previous arrival* (an open-loop
    // arrival process), clamped so the next query never starts before
    // this one finished.
    const double think = DrawExp(&rng);
    IssueQuery(slot, c, std::max(c.arrival + think, done));
  }

  /// Exponential with mean mean_think_; u < 1 so the draw is finite.
  double DrawExp(Rng* rng) {
    return -mean_think_ * std::log1p(-rng->Uniform(0.0, 1.0));
  }

  const std::vector<SpanContext>& spans_;
  const FleetOptions& opt_;
  const LossOptions& lopt_;
  const double horizon_;
  const int64_t shard_first_;
  const int64_t shard_clients_;
  FleetShard* sums_;
  TelemetryShard* const tel_;  ///< null unless FleetOptions::telemetry
  const int64_t cycle_;  ///< span 0's cycle (join / think-time base)
  const int frame_bits_;
  const bool faults_;
  const bool versioned_;
  const bool mobility_on_;
  const bool cache_on_;
  const double mean_think_;
  const bool tracing_;
  std::vector<int64_t> starts_;  ///< starts_[s] = spans_[s].start
  std::vector<Client> clients_;
  std::priority_queue<WakeUp, std::vector<WakeUp>, WakeUpLater> queue_;
  ProbeTrace probe_scratch_;
  Histogram* h_latency_ = nullptr;
  Histogram* h_tuning_index_ = nullptr;
  Histogram* h_tuning_total_ = nullptr;
  Histogram* h_retries_ = nullptr;
  Histogram* h_lost_ = nullptr;
  Histogram* h_corrupted_ = nullptr;
  Histogram* h_epoch_switches_ = nullptr;  ///< non-null iff versioned_
};

/// Option checks shared by RunFleet and RunFleetVersioned.
Status ValidateFleetOptions(const FleetOptions& options) {
  if (options.num_clients < 1) {
    return Status::InvalidArgument("fleet needs at least one client");
  }
  if (!(options.sim_cycles > 0.0) || !std::isfinite(options.sim_cycles)) {
    return Status::InvalidArgument("sim_cycles must be positive and finite");
  }
  if (!(options.queries_per_cycle > 0.0) ||
      !std::isfinite(options.queries_per_cycle)) {
    return Status::InvalidArgument(
        "queries_per_cycle must be positive and finite");
  }
  if (!(options.churn >= 0.0 && options.churn <= 1.0)) {
    return Status::InvalidArgument("churn must be in [0, 1]");
  }
  DTREE_RETURN_IF_ERROR(workload::ValidateMobilityOptions(options.mobility));
  DTREE_RETURN_IF_ERROR(ValidateCacheOptions(options.cache));
  return Status::OK();
}

/// The shared engine driver: shard layout, parallel event loops,
/// shard-ordered merge, result assembly. `spans` is one entry for
/// RunFleet, one per epoch for RunFleetVersioned; horizon and the
/// channel-shape result fields are measured against span 0.
Result<FleetResult> RunFleetImpl(const std::vector<SpanContext>& spans,
                                 bool versioned,
                                 const FleetOptions& options,
                                 std::string index_name) {
  const BroadcastChannel& ch0 = *spans[0].channel;
  const double horizon =
      options.sim_cycles * static_cast<double>(ch0.cycle_packets());

  // Shard layout: fixed count, contiguous slot ranges, shard s always
  // owning the same slots regardless of threads.
  const int num_shards = static_cast<int>(
      std::min<int64_t>(kFleetShards, options.num_clients));
  const int64_t per_shard = options.num_clients / num_shards;
  const int64_t remainder = options.num_clients % num_shards;

  if (options.telemetry != nullptr) {
    options.telemetry->Reset(ch0.cycle_packets(), num_shards);
    options.telemetry->set_cache_enabled(options.cache.enabled);
  }

  std::vector<FleetShard> shards(static_cast<size_t>(num_shards));
  auto run_shard = [&](int s) {
    const int64_t shard_clients = per_shard + (s < remainder ? 1 : 0);
    const int64_t shard_first =
        s * per_shard + std::min<int64_t>(s, remainder);
    ShardEngine engine(spans, versioned, options, horizon, shard_first,
                       shard_clients, &shards[static_cast<size_t>(s)],
                       options.telemetry != nullptr
                           ? options.telemetry->shard(s)
                           : nullptr);
    engine.Run();
  };
  ThreadPool pool(options.num_threads);
  pool.ParallelFor(num_shards, run_shard);

  // Merge in shard order; first failing shard (by id) wins.
  FleetShard total;
  MetricsRegistry merged;
  for (const FleetShard& sums : shards) {
    if (!sums.error.ok()) return sums.error;
    total.latency += sums.latency;
    total.tuning_index += sums.tuning_index;
    total.tuning_total += sums.tuning_total;
    total.retries += sums.retries;
    total.lost_packets += sums.lost_packets;
    total.corrupted_packets += sums.corrupted_packets;
    total.unrecoverable += sums.unrecoverable;
    total.fallback += sums.fallback;
    total.epoch_switches += sums.epoch_switches;
    total.epoch_churn += sums.epoch_churn;
    total.queries += sums.queries;
    total.sessions += sums.sessions;
    total.departures += sums.departures;
    total.cache_hits += sums.cache_hits;
    total.cache_misses += sums.cache_misses;
    total.cache_evictions += sums.cache_evictions;
    total.cache_invalidations += sums.cache_invalidations;
    merged.MergeOrdered(sums.metrics);
  }
  if (options.trace_sink != nullptr) {
    for (const FleetShard& sums : shards) {
      for (const QueryTrace& qt : sums.traces) {
        options.trace_sink->Consume(qt);
      }
    }
  }
  if (options.telemetry != nullptr) options.telemetry->MergeShards();

  FleetResult res;
  res.index_name = std::move(index_name);
  res.packet_capacity = options.packet_capacity;
  res.m = ch0.m();
  res.index_packets = ch0.index_packets();
  res.data_packets = ch0.data_packets();
  res.cycle_packets = ch0.cycle_packets();
  res.horizon_packets = static_cast<int64_t>(std::llround(horizon));
  res.num_clients = options.num_clients;
  res.sessions = total.sessions;
  res.departures = total.departures;
  res.queries = total.queries;
  const double n = static_cast<double>(total.queries);
  const auto mean = [&](double sum) { return n > 0.0 ? sum / n : 0.0; };
  res.mean_latency = mean(total.latency);
  res.mean_tuning_index = mean(total.tuning_index);
  res.mean_tuning_total = mean(total.tuning_total);
  res.mean_retries = mean(static_cast<double>(total.retries));
  res.mean_lost_packets = mean(static_cast<double>(total.lost_packets));
  res.mean_corrupted_packets =
      mean(static_cast<double>(total.corrupted_packets));
  res.total_retries = total.retries;
  res.total_lost_packets = total.lost_packets;
  res.total_corrupted_packets = total.corrupted_packets;
  res.unrecoverable_queries = total.unrecoverable;
  res.fallback_queries = total.fallback;
  res.total_epoch_switches = total.epoch_switches;
  res.epoch_churn_queries = total.epoch_churn;
  res.mean_epoch_switches = mean(static_cast<double>(total.epoch_switches));
  res.cache_enabled = options.cache.enabled;
  res.cache_hits = total.cache_hits;
  res.cache_misses = total.cache_misses;
  res.cache_evictions = total.cache_evictions;
  res.cache_invalidations = total.cache_invalidations;
  res.min_latency = merged.histogram(kLatencyHist)->Min();
  res.max_latency = merged.histogram(kLatencyHist)->Max();
  res.min_tuning_total = merged.histogram(kTuningTotalHist)->Min();
  res.max_tuning_total = merged.histogram(kTuningTotalHist)->Max();
  res.metrics = std::move(merged);
  return res;
}

}  // namespace

Result<FleetResult> RunFleet(const AirIndex& index,
                             const sub::Subdivision& subdivision,
                             const FleetOptions& options) {
  DTREE_RETURN_IF_ERROR(ValidateFleetOptions(options));
  ChannelOptions copt;
  copt.packet_capacity = options.packet_capacity;
  copt.data_instance_size = options.data_instance_size;
  copt.m = options.m;
  copt.loss = options.loss;
  Result<BroadcastChannel> channel_r = BroadcastChannel::Create(
      index.NumIndexPackets(), subdivision.NumRegions(), copt);
  if (!channel_r.ok()) return channel_r.status();

  Result<QuerySampler> sampler_r = QuerySampler::Create(
      subdivision, options.distribution, options.region_weights);
  if (!sampler_r.ok()) return sampler_r.status();

  std::vector<SpanContext> spans;
  spans.push_back(MakeSpanContext(index, channel_r.value(),
                                  sampler_r.value(), subdivision,
                                  /*epoch=*/0, /*start=*/0,
                                  options.cache.enabled));
  return RunFleetImpl(spans, /*versioned=*/false, options, index.name());
}

Result<FleetResult> RunFleetVersioned(const std::vector<FleetEpoch>& epochs,
                                      const FleetOptions& options) {
  DTREE_RETURN_IF_ERROR(ValidateFleetOptions(options));
  if (epochs.empty()) {
    return Status::InvalidArgument(
        "versioned fleet needs at least one epoch");
  }
  for (size_t i = 0; i < epochs.size(); ++i) {
    if (epochs[i].index == nullptr || epochs[i].subdivision == nullptr) {
      return Status::InvalidArgument("epoch without an index/subdivision");
    }
    if (i + 1 < epochs.size() && epochs[i].cycles < 1) {
      return Status::InvalidArgument(
          "every epoch but the last needs cycles >= 1");
    }
  }

  // Channels and samplers are owned here and borrowed by the spans; the
  // wire format (packet capacity / instance size) is shared, so every
  // epoch's channel is built from the same ChannelOptions.
  std::vector<BroadcastChannel> channels;
  std::vector<QuerySampler> samplers;
  channels.reserve(epochs.size());
  samplers.reserve(epochs.size());
  for (const FleetEpoch& e : epochs) {
    ChannelOptions copt;
    copt.packet_capacity = options.packet_capacity;
    copt.data_instance_size = options.data_instance_size;
    copt.m = options.m;
    copt.loss = options.loss;
    Result<BroadcastChannel> ch_r = BroadcastChannel::Create(
        e.index->NumIndexPackets(), e.subdivision->NumRegions(), copt);
    if (!ch_r.ok()) return ch_r.status();
    channels.push_back(std::move(ch_r.value()));
    Result<QuerySampler> sampler_r = QuerySampler::Create(
        *e.subdivision, options.distribution, options.region_weights);
    if (!sampler_r.ok()) return sampler_r.status();
    samplers.push_back(std::move(sampler_r.value()));
  }

  std::vector<SpanContext> spans;
  spans.reserve(epochs.size());
  int64_t start = 0;
  for (size_t i = 0; i < epochs.size(); ++i) {
    spans.push_back(MakeSpanContext(*epochs[i].index, channels[i],
                                    samplers[i], *epochs[i].subdivision,
                                    epochs[i].epoch, start,
                                    options.cache.enabled));
    start += epochs[i].cycles * channels[i].cycle_packets();
  }
  return RunFleetImpl(spans, /*versioned=*/true, options,
                      epochs[0].index->name());
}

}  // namespace dtree::bcast
