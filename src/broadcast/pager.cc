#include "broadcast/pager.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace dtree::bcast {

namespace {

/// Mutable packet fill state during allocation.
struct PacketFill {
  size_t used = 0;
};

}  // namespace

Result<PagingResult> TopDownPage(const PagingInput& input, int capacity,
                                 bool merge_leaf_packets) {
  const size_t n = input.sizes.size();
  if (capacity < 1) return Status::InvalidArgument("capacity must be >= 1");
  if (input.parent.size() != n || input.is_leaf.size() != n) {
    return Status::InvalidArgument("paging input arrays disagree in length");
  }
  const size_t cap = static_cast<size_t>(capacity);

  PagingResult out;
  out.spans.assign(n, NodeSpan{});
  std::vector<PacketFill> packets;

  auto allocate_new = [&](size_t size) {
    NodeSpan span;
    span.first_packet = static_cast<int>(packets.size());
    span.offset = 0;
    // A node larger than one packet spans ceil(size/cap) packets. The last
    // packet can host descendants only when it is partially filled: when
    // `size` is an exact multiple of the capacity it is left completely
    // full (used == cap), which makes the anchor test below fail for every
    // child (size >= 1), so children start a fresh packet instead of being
    // given a zero-byte residency in a full one. Covered by the exact-fit
    // regression in tests/pager_property_test.cc.
    while (size > cap) {
      packets.push_back(PacketFill{cap});
      size -= cap;
    }
    packets.push_back(PacketFill{size});
    span.num_packets = static_cast<int>(packets.size()) - span.first_packet;
    return span;
  };

  for (size_t i = 0; i < n; ++i) {
    const size_t size = input.sizes[i];
    if (size == 0) return Status::InvalidArgument("zero-sized node");
    const int parent = input.parent[i];
    if (parent >= static_cast<int>(i)) {
      return Status::InvalidArgument("node precedes its parent");
    }
    if (parent >= 0) {
      // Anchor packet: the parent's packet — or, for DAG nodes with
      // several parents, the latest parent's packet, so the node is never
      // broadcast before one of the pointers that reference it.
      const NodeSpan& pspan = out.spans[parent];
      DTREE_CHECK(pspan.first_packet >= 0);
      int anchor = pspan.last_packet();
      if (i < input.all_parents.size()) {
        for (int extra : input.all_parents[i]) {
          DTREE_CHECK(extra >= 0 && extra < static_cast<int>(i));
          anchor = std::max(anchor, out.spans[extra].last_packet());
        }
      }
      if (packets[anchor].used + size <= cap) {
        // size >= 1, so the anchor had spare room: a span must never start
        // at offset == capacity (a zero-byte residency in a full packet).
        DTREE_DCHECK(packets[anchor].used < cap);
        out.spans[i] = NodeSpan{anchor, 1, packets[anchor].used};
        packets[anchor].used += size;
        continue;
      }
    }
    out.spans[i] = allocate_new(size);
  }

  if (merge_leaf_packets && !packets.empty()) {
    // Greedy partial-packet merging (Algorithm 3 lines 19-25, generalized
    // from leaf-level packets to any packet whose nodes all fit — without
    // it, large capacities fragment badly: every overflowing child opens a
    // fresh packet its small subtree never fills). Packets containing a
    // multi-packet node stay put.
    std::vector<bool> mergeable(packets.size(), true);
    std::vector<std::vector<size_t>> nodes_in(packets.size());
    for (size_t i = 0; i < n; ++i) {
      const NodeSpan& s = out.spans[i];
      for (int p = s.first_packet; p <= s.last_packet(); ++p) {
        nodes_in[p].push_back(i);
        if (s.num_packets > 1) mergeable[p] = false;
      }
    }
    int prev = -1;  // last retained mergeable packet
    std::vector<bool> deleted(packets.size(), false);
    for (size_t p = 0; p < packets.size(); ++p) {
      if (!mergeable[p] || nodes_in[p].empty()) continue;
      // Moving nodes to an earlier packet must not move them before their
      // parents, or the broadcast pointer would point backwards and the
      // client would have to wait a whole index repetition.
      bool forward_safe = true;
      if (prev >= 0) {
        auto parent_blocks = [&](int parent, size_t packet) {
          if (parent < 0) return false;
          // A parent inside this same packet moves along with the node.
          if (out.spans[parent].first_packet == static_cast<int>(packet)) {
            return false;
          }
          return out.spans[parent].last_packet() > prev;
        };
        for (size_t node : nodes_in[p]) {
          if (parent_blocks(input.parent[node], p)) {
            forward_safe = false;
            break;
          }
          if (node < input.all_parents.size()) {
            for (int extra : input.all_parents[node]) {
              if (parent_blocks(extra, p)) {
                forward_safe = false;
                break;
              }
            }
          }
          if (!forward_safe) break;
        }
      }
      if (prev >= 0 && forward_safe &&
          packets[prev].used + packets[p].used <= cap) {
        // Move this packet's nodes to the end of `prev`.
        for (size_t node : nodes_in[p]) {
          out.spans[node].first_packet = prev;
          out.spans[node].offset =
              packets[prev].used + out.spans[node].offset;
        }
        packets[prev].used += packets[p].used;
        deleted[p] = true;
      } else {
        prev = static_cast<int>(p);
      }
    }
    // Renumber surviving packets.
    std::vector<int> remap(packets.size(), -1);
    int next_id = 0;
    std::vector<PacketFill> kept;
    for (size_t p = 0; p < packets.size(); ++p) {
      if (deleted[p]) continue;
      remap[p] = next_id++;
      kept.push_back(packets[p]);
    }
    for (NodeSpan& s : out.spans) {
      DTREE_CHECK(remap[s.first_packet] >= 0);
      s.first_packet = remap[s.first_packet];
    }
    packets = std::move(kept);
  }

  out.num_packets = static_cast<int>(packets.size());
  out.used_bytes = std::accumulate(input.sizes.begin(), input.sizes.end(),
                                   size_t{0});
  return out;
}

Result<PagingResult> GreedyPage(const std::vector<size_t>& sizes,
                                int capacity) {
  if (capacity < 1) return Status::InvalidArgument("capacity must be >= 1");
  const size_t cap = static_cast<size_t>(capacity);
  PagingResult out;
  out.spans.reserve(sizes.size());
  size_t cur_used = 0;
  int cur_packet = -1;
  for (size_t size : sizes) {
    if (size == 0) return Status::InvalidArgument("zero-sized node");
    if (cur_packet < 0 || cur_used + size > cap) {
      // Start at a fresh packet.
      NodeSpan span;
      span.first_packet = cur_packet + 1;
      span.offset = 0;
      size_t rest = size;
      int count = 0;
      while (rest > cap) {
        rest -= cap;
        ++count;
      }
      span.num_packets = count + 1;
      cur_packet = span.first_packet + count;
      cur_used = rest;
      out.spans.push_back(span);
    } else {
      out.spans.push_back(NodeSpan{cur_packet, 1, cur_used});
      cur_used += size;
    }
    out.used_bytes += size;
  }
  out.num_packets = cur_packet + 1;
  return out;
}

}  // namespace dtree::bcast
