#include "broadcast/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "broadcast/fleet.h"
#include "common/check.h"

namespace dtree::bcast {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[160];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  DTREE_DCHECK(n >= 0 && n < static_cast<int>(sizeof(buf)));
  out->append(buf, static_cast<size_t>(std::max(n, 0)));
}

/// Escapes a label for embedding in a JSON string (same contract as the
/// trace writer: labels are cell ids, printable ASCII, but quotes and
/// backslashes must not break the line format).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      AppendF(out, "\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

/// Per-window histogram summary object: {"count": …, "sum": …, "min": …,
/// "max": …, "p50": …, "p95": …, "p99": …}. An absent histogram writes
/// the all-zero shape so every window line carries the same keys.
void AppendHistJson(std::string* out, const char* key, const Histogram* h) {
  AppendF(out, ", \"%s\": {\"count\": %" PRIu64, key,
          h == nullptr ? 0 : h->TotalCount());
  if (h == nullptr || h->empty()) {
    out->append(
        ", \"sum\": 0, \"min\": 0, \"max\": 0, \"p50\": 0, \"p95\": 0, "
        "\"p99\": 0}");
    return;
  }
  AppendF(out, ", \"sum\": %.10g, \"min\": %.10g, \"max\": %.10g", h->Sum(),
          h->Min(), h->Max());
  AppendF(out, ", \"p50\": %.10g, \"p95\": %.10g, \"p99\": %.10g}",
          h->Percentile(0.50), h->Percentile(0.95), h->Percentile(0.99));
}

void AppendInt64Array(std::string* out, const std::vector<int64_t>& v) {
  out->push_back('[');
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out->append(", ");
    AppendF(out, "%lld", static_cast<long long>(v[i]));
  }
  out->push_back(']');
}

void AppendTotalsJson(std::string* out, const TelemetryTotals& t) {
  AppendF(out, "{\"queries\": %lld, \"sessions\": %lld, \"departures\": %lld",
          static_cast<long long>(t.queries),
          static_cast<long long>(t.sessions),
          static_cast<long long>(t.departures));
  AppendF(out, ", \"retries\": %lld, \"lost\": %lld, \"corrupted\": %lld",
          static_cast<long long>(t.retries),
          static_cast<long long>(t.lost_packets),
          static_cast<long long>(t.corrupted_packets));
  AppendF(out, ", \"unrecoverable\": %lld, \"fallback\": %lld",
          static_cast<long long>(t.unrecoverable),
          static_cast<long long>(t.fallback));
  AppendF(out, ", \"epoch_switches\": %lld",
          static_cast<long long>(t.epoch_switches));
  if (t.cache) {
    AppendF(out,
            ", \"cache_hits\": %lld, \"cache_misses\": %lld, "
            "\"cache_evictions\": %lld, \"cache_invalidations\": %lld",
            static_cast<long long>(t.cache_hits),
            static_cast<long long>(t.cache_misses),
            static_cast<long long>(t.cache_evictions),
            static_cast<long long>(t.cache_invalidations));
  }
  out->push_back('}');
}

/// Folds the named per-window histograms into one run-total histogram,
/// in ascending window order (deterministic sums).
Histogram FoldWindows(const TimeSeries& series, const std::string& name) {
  Histogram total;
  const auto it = series.histograms().find(name);
  if (it == series.histograms().end()) return total;
  for (const auto& [window, h] : it->second) total.Merge(h);
  return total;
}

void AppendPromCounter(std::string* out, const char* name, uint64_t value) {
  AppendF(out, "# TYPE %s counter\n%s %" PRIu64 "\n", name, name, value);
}

/// Prometheus histogram exposition from a log-bucketed Histogram:
/// cumulative bucket counts at each non-empty bucket's upper bound, then
/// the mandatory +Inf / _sum / _count triple.
void AppendPromHistogram(std::string* out, const char* name,
                         const Histogram& h) {
  AppendF(out, "# TYPE %s histogram\n", name);
  uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    const uint64_t c = h.BucketCount(i);
    if (c == 0) continue;
    cumulative += c;
    AppendF(out, "%s_bucket{le=\"%.10g\"} %" PRIu64 "\n", name,
            Histogram::BucketUpper(i), cumulative);
  }
  AppendF(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name, h.TotalCount());
  AppendF(out, "%s_sum %.10g\n", name, h.Sum());
  AppendF(out, "%s_count %" PRIu64 "\n", name, h.TotalCount());
}

}  // namespace

TelemetryTotals TotalsFromFleet(const FleetResult& result) {
  TelemetryTotals t;
  t.queries = result.queries;
  t.sessions = result.sessions;
  t.departures = result.departures;
  t.retries = result.total_retries;
  t.lost_packets = result.total_lost_packets;
  t.corrupted_packets = result.total_corrupted_packets;
  t.unrecoverable = result.unrecoverable_queries;
  t.fallback = result.fallback_queries;
  t.epoch_switches = result.total_epoch_switches;
  t.cache = result.cache_enabled;
  t.cache_hits = result.cache_hits;
  t.cache_misses = result.cache_misses;
  t.cache_evictions = result.cache_evictions;
  t.cache_invalidations = result.cache_invalidations;
  return t;
}

TelemetryShard::TelemetryShard(double window_width, int64_t cycle_packets,
                               int bins, int ring_capacity)
    : series_(window_width), cycle_packets_(cycle_packets), bins_(bins) {
  DTREE_CHECK(cycle_packets > 0);
  DTREE_CHECK(bins > 0);
  DTREE_CHECK(ring_capacity >= 0);
  ring_.resize(static_cast<size_t>(ring_capacity));
}

Counter* TelemetryShard::Cnt(CachedCounter* slot, const char* name,
                             int64_t window) {
  if (slot->window != window) {
    slot->c = series_.counter(name, window);
    slot->window = window;
  }
  return slot->c;
}

Histogram* TelemetryShard::Hist(CachedHistogram* slot, const char* name,
                                int64_t window) {
  if (slot->window != window) {
    slot->h = series_.histogram(name, window);
    slot->window = window;
  }
  return slot->h;
}

HeatmapRow* TelemetryShard::Row(int64_t window) {
  if (heat_window_ != window) {
    HeatmapRow& row = heatmap_[window];
    if (row.index_reads.empty()) {
      row.index_reads.assign(static_cast<size_t>(bins_), 0);
      row.data_reads.assign(static_cast<size_t>(bins_), 0);
    }
    heat_row_ = &row;
    heat_window_ = window;
  }
  return heat_row_;
}

void TelemetryShard::RecordFlight(TraceEventKind kind, int64_t pos,
                                  int packets, double dur, int64_t client) {
  if (ring_.empty()) return;
  FlightEvent& e = ring_[ring_pos_];
  e.client = client;
  e.pos = pos;
  e.dur = dur;
  e.packets = packets;
  e.kind = kind;
  if (++ring_pos_ == ring_.size()) ring_pos_ = 0;
  ++ring_written_;
}

void TelemetryShard::SessionJoin(double t) {
  Cnt(&c_arrivals_, kTsArrivals, series_.WindowIndex(t))->Add(1);
}

void TelemetryShard::Departure(double t) {
  Cnt(&c_departures_, kTsDepartures, series_.WindowIndex(t))->Add(1);
}

void TelemetryShard::QueryIssued(double arrival) {
  const int64_t w = series_.WindowIndex(arrival);
  Cnt(&c_issued_, kTsQueriesIssued, w)->Add(1);
  ++inflight_;
  series_.gauge(kTsShardInflight, w)->Record(static_cast<double>(inflight_));
}

void TelemetryShard::Doze(double resume_at, double dur, int64_t client,
                          uint32_t q) {
  (void)q;
  if (!(dur > 0.0)) return;
  RecordFlight(TraceEventKind::kDoze,
               static_cast<int64_t>(std::floor(resume_at)), 0, dur, client);
  // Attribute the slept packets to every window the interval
  // [resume_at - dur, resume_at) overlaps, so per-window doze occupancy
  // integrates exactly to the total time slept.
  const double width = series_.window_width();
  double t = std::max(resume_at - dur, 0.0);
  int64_t w = series_.WindowIndex(t);
  while (t < resume_at) {
    const double window_end = static_cast<double>(w + 1) * width;
    const double seg_end = std::min(resume_at, window_end);
    if (seg_end > t) Hist(&h_doze_, kTsDoze, w)->Add(seg_end - t);
    t = window_end;
    ++w;
  }
}

void TelemetryShard::Read(TraceEventKind kind, int64_t pos, int packets,
                          bool data_read, int64_t client, uint32_t q) {
  (void)q;
  RecordFlight(kind, pos, packets, 0.0, client);
  // Per-packet attribution: a multi-packet retrieval (bucket read,
  // fallback-scan listening) may straddle a window boundary.
  for (int k = 0; k < packets; ++k) {
    const int64_t at = pos + k;
    const int64_t w = at / cycle_packets_;  // == WindowIndex(at), integer
    Counter* c = data_read ? Cnt(&c_data_reads_, kTsDataReads, w)
                           : Cnt(&c_index_reads_, kTsIndexReads, w);
    c->Add(1);
    HeatmapRow* row = Row(w);
    const int64_t in_cycle = at % cycle_packets_;
    const size_t bin =
        static_cast<size_t>(in_cycle * bins_ / cycle_packets_);
    if (data_read) {
      ++row->data_reads[bin];
    } else {
      ++row->index_reads[bin];
    }
  }
}

void TelemetryShard::Fault(TraceEventKind kind, int64_t pos, int64_t client,
                           uint32_t q) {
  (void)q;
  const int64_t w = pos / cycle_packets_;
  switch (kind) {
    case TraceEventKind::kLoss:
      Cnt(&c_lost_, kTsLostPackets, w)->Add(1);
      break;
    case TraceEventKind::kCorruption:
      Cnt(&c_corrupted_, kTsCorruptedPackets, w)->Add(1);
      break;
    case TraceEventKind::kRetune:
      Cnt(&c_retries_, kTsRetries, w)->Add(1);
      break;
    case TraceEventKind::kEpochSwitch:
      Cnt(&c_epoch_switches_, kTsEpochSwitches, w)->Add(1);
      break;
    default:
      DTREE_CHECK(false);  // not a fault / recovery event
  }
  RecordFlight(kind, pos, 0, 0.0, client);
}

void TelemetryShard::CacheLookup(double t, bool hit) {
  const int64_t w = series_.WindowIndex(t);
  if (hit) {
    Cnt(&c_cache_hits_, kTsCacheHits, w)->Add(1);
  } else {
    Cnt(&c_cache_misses_, kTsCacheMisses, w)->Add(1);
  }
}

void TelemetryShard::CacheEvicted(double t, int n) {
  if (n <= 0) return;
  Cnt(&c_cache_evictions_, kTsCacheEvictions, series_.WindowIndex(t))
      ->Add(static_cast<uint64_t>(n));
}

void TelemetryShard::CacheInvalidated(double t, int n) {
  if (n <= 0) return;
  Cnt(&c_cache_invalidations_, kTsCacheInvalidations, series_.WindowIndex(t))
      ->Add(static_cast<uint64_t>(n));
}

void TelemetryShard::QueryDone(double done, int64_t client, uint32_t q,
                               const QueryOutcomeSummary& out) {
  const int64_t w = series_.WindowIndex(done);
  Cnt(&c_completed_, kTsQueriesCompleted, w)->Add(1);
  if (out.unrecoverable) Cnt(&c_unrec_, kTsUnrecoverable, w)->Add(1);
  if (out.fallback_scan) Cnt(&c_fallback_, kTsFallback, w)->Add(1);
  Hist(&h_latency_, kTsLatency, w)->Add(out.latency);
  Hist(&h_tuning_, kTsTuning, w)->Add(static_cast<double>(out.tuning_total));
  --inflight_;
  series_.gauge(kTsShardInflight, w)->Record(static_cast<double>(inflight_));
  if (out.unrecoverable) DumpFlight(done, client, q, out);
}

void TelemetryShard::DumpFlight(double done, int64_t client, uint32_t q,
                                const QueryOutcomeSummary& out) {
  std::string& line = flight_;
  AppendF(&line, "{\"flight\": \"unrecoverable\", \"client\": %lld",
          static_cast<long long>(client));
  AppendF(&line, ", \"q\": %u, \"done\": %.10g, \"latency\": %.10g", q, done,
          out.latency);
  AppendF(&line, ", \"tuning\": %d, \"retries\": %d, \"lost\": %d",
          out.tuning_total, out.retries, out.lost_packets);
  AppendF(&line, ", \"corrupted\": %d, \"fallback\": %s",
          out.corrupted_packets, out.fallback_scan ? "true" : "false");
  if (out.versioned) {
    AppendF(&line, ", \"epoch\": %u, \"epoch_switches\": %d",
            static_cast<unsigned>(out.epoch), out.epoch_switches);
  }
  if (out.give_up != nullptr && out.give_up[0] != '\0') {
    AppendF(&line, ", \"give_up\": \"%s\"", out.give_up);
  }
  line += ", \"events\": [";
  // Ring replay, oldest surviving event first, filtered to this client.
  const size_t count = ring_written_ < ring_.size()
                           ? static_cast<size_t>(ring_written_)
                           : ring_.size();
  const size_t oldest =
      ring_written_ < ring_.size() ? 0 : ring_pos_;  // next overwrite slot
  bool first = true;
  for (size_t i = 0; i < count; ++i) {
    const FlightEvent& e = ring_[(oldest + i) % ring_.size()];
    if (e.client != client) continue;
    if (!first) line += ", ";
    first = false;
    AppendF(&line, "{\"t\": \"%s\", \"pos\": %lld",
            TraceEventKindName(e.kind), static_cast<long long>(e.pos));
    if (e.kind == TraceEventKind::kDoze) {
      AppendF(&line, ", \"dur\": %.10g", e.dur);
    } else if (e.packets > 0) {
      AppendF(&line, ", \"n\": %d", e.packets);
    }
    line.push_back('}');
  }
  line += "]}\n";
  ++flight_records_;
}

FleetTelemetry::FleetTelemetry(const TelemetryOptions& options)
    : options_(options) {
  DTREE_CHECK(options.heatmap_bins > 0);
  DTREE_CHECK(options.flight_recorder_capacity >= 0);
}

void FleetTelemetry::Reset(int64_t cycle_packets, int num_shards) {
  DTREE_CHECK(cycle_packets > 0);
  DTREE_CHECK(num_shards >= 1);
  cycle_packets_ = cycle_packets;
  shards_.clear();
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.emplace_back(new TelemetryShard(
        static_cast<double>(cycle_packets), cycle_packets,
        options_.heatmap_bins, options_.flight_recorder_capacity));
  }
  series_ = TimeSeries(static_cast<double>(cycle_packets));
  heatmap_.clear();
  flight_.clear();
  flight_records_ = 0;
  merged_ = false;
  cache_enabled_ = false;
}

void FleetTelemetry::MergeShards() {
  // Rebuilt from scratch each call (idempotent): shards are immutable
  // once the parallel section is over.
  series_ = TimeSeries(static_cast<double>(cycle_packets_));
  heatmap_.clear();
  flight_.clear();
  flight_records_ = 0;
  for (const auto& shard : shards_) {
    series_.MergeOrdered(shard->series_);
    for (const auto& [window, row] : shard->heatmap_) {
      HeatmapRow& mine = heatmap_[window];
      if (mine.index_reads.empty()) {
        mine.index_reads.assign(row.index_reads.size(), 0);
        mine.data_reads.assign(row.data_reads.size(), 0);
      }
      for (size_t i = 0; i < row.index_reads.size(); ++i) {
        mine.index_reads[i] += row.index_reads[i];
        mine.data_reads[i] += row.data_reads[i];
      }
    }
    flight_ += shard->flight_;
    flight_records_ += shard->flight_records_;
  }
  merged_ = true;
}

TelemetryTotals FleetTelemetry::Totals() const {
  DTREE_CHECK(merged_);
  TelemetryTotals t;
  t.queries = static_cast<int64_t>(series_.CounterTotal(kTsQueriesCompleted));
  t.sessions = static_cast<int64_t>(series_.CounterTotal(kTsArrivals));
  t.departures = static_cast<int64_t>(series_.CounterTotal(kTsDepartures));
  t.retries = static_cast<int64_t>(series_.CounterTotal(kTsRetries));
  t.lost_packets =
      static_cast<int64_t>(series_.CounterTotal(kTsLostPackets));
  t.corrupted_packets =
      static_cast<int64_t>(series_.CounterTotal(kTsCorruptedPackets));
  t.unrecoverable =
      static_cast<int64_t>(series_.CounterTotal(kTsUnrecoverable));
  t.fallback = static_cast<int64_t>(series_.CounterTotal(kTsFallback));
  t.epoch_switches =
      static_cast<int64_t>(series_.CounterTotal(kTsEpochSwitches));
  t.cache = cache_enabled_;
  t.cache_hits = static_cast<int64_t>(series_.CounterTotal(kTsCacheHits));
  t.cache_misses =
      static_cast<int64_t>(series_.CounterTotal(kTsCacheMisses));
  t.cache_evictions =
      static_cast<int64_t>(series_.CounterTotal(kTsCacheEvictions));
  t.cache_invalidations =
      static_cast<int64_t>(series_.CounterTotal(kTsCacheInvalidations));
  return t;
}

std::string FleetTelemetry::TimelineJsonl(
    const std::string& label, const TelemetryTotals* totals) const {
  DTREE_CHECK(merged_);
  const TelemetryTotals own = Totals();
  const TelemetryTotals& t = totals != nullptr ? *totals : own;
  const std::vector<int64_t> windows = series_.Windows();
  std::string out;
  out.reserve(256 + windows.size() * 640);

  out += "{\"meta\": \"fleet_telemetry\"";
  if (!label.empty()) {
    out += ", \"cell\": ";
    AppendJsonString(&out, label);
  }
  AppendF(&out, ", \"window_packets\": %lld, \"cycle_packets\": %lld",
          static_cast<long long>(cycle_packets_),
          static_cast<long long>(cycle_packets_));
  AppendF(&out, ", \"heatmap_bins\": %d, \"windows\": %zu",
          options_.heatmap_bins, windows.size());
  AppendF(&out, ", \"flight_records\": %lld",
          static_cast<long long>(flight_records_));
  out += ", \"totals\": ";
  AppendTotalsJson(&out, t);
  out += "}\n";

  static const std::vector<int64_t> kEmptyRow;
  for (const int64_t w : windows) {
    AppendF(&out, "{\"w\": %lld", static_cast<long long>(w));
    const auto cnt = [&](const char* key, const char* name) {
      AppendF(&out, ", \"%s\": %" PRIu64, key, series_.CounterValue(name, w));
    };
    cnt("issued", kTsQueriesIssued);
    cnt("completed", kTsQueriesCompleted);
    cnt("unrecoverable", kTsUnrecoverable);
    cnt("fallback", kTsFallback);
    cnt("retries", kTsRetries);
    cnt("lost", kTsLostPackets);
    cnt("corrupted", kTsCorruptedPackets);
    cnt("arrivals", kTsArrivals);
    cnt("departures", kTsDepartures);
    cnt("index_reads", kTsIndexReads);
    cnt("data_reads", kTsDataReads);
    cnt("epoch_switches", kTsEpochSwitches);
    if (cache_enabled_) {
      cnt("cache_hits", kTsCacheHits);
      cnt("cache_misses", kTsCacheMisses);
      cnt("cache_evictions", kTsCacheEvictions);
      cnt("cache_invalidations", kTsCacheInvalidations);
    }
    const Histogram* doze = series_.FindHistogram(kTsDoze, w);
    AppendF(&out, ", \"doze_packets\": %.10g, \"doze_count\": %" PRIu64,
            doze == nullptr ? 0.0 : doze->Sum(),
            doze == nullptr ? 0 : doze->TotalCount());
    const MinMaxGauge* g = series_.FindGauge(kTsShardInflight, w);
    AppendF(&out, ", \"inflight_min\": %.10g, \"inflight_max\": %.10g",
            g == nullptr ? 0.0 : g->min(), g == nullptr ? 0.0 : g->max());
    AppendHistJson(&out, "latency", series_.FindHistogram(kTsLatency, w));
    AppendHistJson(&out, "tuning", series_.FindHistogram(kTsTuning, w));
    const auto hit = heatmap_.find(w);
    out += ", \"heatmap_index\": ";
    AppendInt64Array(&out, hit != heatmap_.end() ? hit->second.index_reads
                                                 : kEmptyRow);
    out += ", \"heatmap_data\": ";
    AppendInt64Array(&out,
                     hit != heatmap_.end() ? hit->second.data_reads
                                           : kEmptyRow);
    out += "}\n";
  }
  return out;
}

std::string FleetTelemetry::PrometheusText() const {
  DTREE_CHECK(merged_);
  const TelemetryTotals t = Totals();
  std::string out;
  AppendPromCounter(&out, "fleet_queries_issued_total",
                    series_.CounterTotal(kTsQueriesIssued));
  AppendPromCounter(&out, "fleet_queries_completed_total",
                    static_cast<uint64_t>(t.queries));
  AppendPromCounter(&out, "fleet_unrecoverable_total",
                    static_cast<uint64_t>(t.unrecoverable));
  AppendPromCounter(&out, "fleet_fallback_total",
                    static_cast<uint64_t>(t.fallback));
  AppendPromCounter(&out, "fleet_retries_total",
                    static_cast<uint64_t>(t.retries));
  AppendPromCounter(&out, "fleet_lost_packets_total",
                    static_cast<uint64_t>(t.lost_packets));
  AppendPromCounter(&out, "fleet_corrupted_packets_total",
                    static_cast<uint64_t>(t.corrupted_packets));
  AppendPromCounter(&out, "fleet_sessions_total",
                    static_cast<uint64_t>(t.sessions));
  AppendPromCounter(&out, "fleet_departures_total",
                    static_cast<uint64_t>(t.departures));
  AppendPromCounter(&out, "fleet_index_reads_total",
                    series_.CounterTotal(kTsIndexReads));
  AppendPromCounter(&out, "fleet_data_reads_total",
                    series_.CounterTotal(kTsDataReads));
  AppendPromCounter(&out, "fleet_epoch_switches_total",
                    static_cast<uint64_t>(t.epoch_switches));
  if (cache_enabled_) {
    AppendPromCounter(&out, "fleet_cache_hits_total",
                      static_cast<uint64_t>(t.cache_hits));
    AppendPromCounter(&out, "fleet_cache_misses_total",
                      static_cast<uint64_t>(t.cache_misses));
    AppendPromCounter(&out, "fleet_cache_evictions_total",
                      static_cast<uint64_t>(t.cache_evictions));
    AppendPromCounter(&out, "fleet_cache_invalidations_total",
                      static_cast<uint64_t>(t.cache_invalidations));
  }
  AppendPromHistogram(&out, "fleet_latency_packets",
                      FoldWindows(series_, kTsLatency));
  AppendPromHistogram(&out, "fleet_tuning_packets",
                      FoldWindows(series_, kTsTuning));
  AppendPromHistogram(&out, "fleet_doze_packets",
                      FoldWindows(series_, kTsDoze));
  return out;
}

void TelemetryTraceSink::Consume(const QueryTrace& trace) {
  DTREE_CHECK(telemetry_->num_shards() >= 1);
  TelemetryShard* s = telemetry_->shard(0);
  const int64_t client = trace.client_id;
  const uint32_t q = static_cast<uint32_t>(trace.query_index);
  s->QueryIssued(trace.arrival);
  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case TraceEventKind::kProbe:
      case TraceEventKind::kIndexRead:
        s->Read(e.kind, e.pos, 1, /*data_read=*/false, client, q);
        break;
      case TraceEventKind::kBucketRead:
        s->Read(e.kind, e.pos, e.packet, /*data_read=*/true, client, q);
        break;
      case TraceEventKind::kFallbackScan:
        s->Read(e.kind, e.pos, e.packet, /*data_read=*/false, client, q);
        break;
      case TraceEventKind::kDoze:
        s->Doze(static_cast<double>(e.pos), e.dur, client, q);
        break;
      case TraceEventKind::kLoss:
      case TraceEventKind::kRetune:
      case TraceEventKind::kCorruption:
      case TraceEventKind::kEpochSwitch:
        s->Fault(e.kind, e.pos, client, q);
        break;
      case TraceEventKind::kCacheHit:
        // Counted once per query from the trace-level flag below, not
        // per event.
        break;
    }
  }
  if (telemetry_->cache_enabled()) {
    s->CacheLookup(trace.arrival, trace.cache_hit);
  }
  QueryOutcomeSummary out;
  out.latency = trace.latency;
  out.tuning_total = trace.tuning_total;
  out.retries = trace.retries;
  out.lost_packets = trace.lost_packets;
  out.corrupted_packets = trace.corrupted_packets;
  out.fallback_scan = trace.fallback_scan;
  out.unrecoverable = trace.unrecoverable;
  out.versioned = trace.versioned;
  out.epoch = trace.epoch;
  out.epoch_switches = trace.epoch_switches;
  s->QueryDone(trace.arrival + trace.latency, client, q, out);
}

}  // namespace dtree::bcast
