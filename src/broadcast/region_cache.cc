#include "broadcast/region_cache.h"

#include <cmath>

namespace dtree::bcast {

Status ValidateCacheOptions(const CacheOptions& options) {
  if (!options.enabled) return Status::OK();
  if (options.byte_budget == 0) {
    return Status::InvalidArgument("cache byte_budget must be > 0");
  }
  if (!(options.boundary_eps >= 0.0) ||
      !std::isfinite(options.boundary_eps)) {
    return Status::InvalidArgument(
        "cache boundary_eps must be finite and >= 0");
  }
  return Status::OK();
}

const RegionCache::Entry* RegionCache::Lookup(const geom::Point& p) {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (!it->cell.ContainsHalfOpen(p)) continue;
    if (it->cell.DistanceToBoundary(p) <= options_.boundary_eps) {
      // Ambiguity band: the point is (nearly) on the cell boundary, where
      // the cache's polygon and the index's own geometry could disagree
      // at floating-point granularity. Refuse to answer.
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    if (it != lru_.begin()) lru_.splice(lru_.begin(), lru_, it);
    return &lru_.front();
  }
  ++stats_.misses;
  return nullptr;
}

int RegionCache::Insert(const geom::Polygon& cell, int region,
                        uint16_t epoch) {
  epoch_ = epoch;
  // Refresh an existing entry for the same region in place.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->region != region) continue;
    bytes_ -= it->bytes;
    it->cell = cell;
    it->epoch = epoch;
    it->bytes = EntryBytes(cell);
    bytes_ += it->bytes;
    if (it != lru_.begin()) lru_.splice(lru_.begin(), lru_, it);
    break;
  }
  if (lru_.empty() || lru_.front().region != region) {
    Entry e;
    e.cell = cell;
    e.region = region;
    e.epoch = epoch;
    e.bytes = EntryBytes(cell);
    bytes_ += e.bytes;
    lru_.push_front(std::move(e));
  }
  int evicted = 0;
  while (bytes_ > options_.byte_budget && !lru_.empty()) {
    bytes_ -= lru_.back().bytes;
    lru_.pop_back();
    ++evicted;
  }
  stats_.evictions += evicted;
  return evicted;
}

int RegionCache::OnEpochObserved(uint16_t epoch) {
  if (epoch == epoch_) return 0;
  epoch_ = epoch;
  const int dropped = static_cast<int>(lru_.size());
  lru_.clear();
  bytes_ = 0;
  stats_.invalidations += dropped;
  return dropped;
}

void RegionCache::Clear() {
  lru_.clear();
  bytes_ = 0;
}

}  // namespace dtree::bcast
