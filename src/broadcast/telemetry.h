// Fleet-scale telemetry: windowed time-series metrics keyed by
// broadcast-cycle index, a per-cycle-position read heatmap, and a
// per-shard flight recorder — the continuous view of the paper's two
// headline metrics (tuning time and access latency) that a battery-
// powered receiver fleet must monitor, not just average at end-of-run.
//
// Architecture (same determinism contract as the fleet engine itself):
//   * FleetTelemetry owns one TelemetryShard per fleet shard. Each shard
//     engine records into its private shard single-threaded on the hot
//     path — plain counter bumps and histogram adds, no locking, no RNG,
//     no per-event allocation in the steady state (windowed maps allocate
//     on first touch of a window; the flight ring is preallocated).
//   * After the parallel section, MergeShards() folds the shards in shard
//     order; every exported byte (timeline JSONL, Prometheus text, flight
//     records) is therefore identical for any thread count.
//   * Telemetry is opt-in via FleetOptions::telemetry. When unset the
//     engine's hot loop pays one predicted null check per event site and
//     nothing else: FleetResult stays bit-identical to a run without the
//     telemetry layer compiled at all (golden-pinned in tests).
//
// What is recorded, per broadcast-cycle window:
//   counters   queries_issued / queries_completed / unrecoverable /
//              fallback / retries / lost_packets / corrupted_packets /
//              arrivals / departures / index_reads / data_reads
//   histograms latency, tuning (at the completion window), doze (packets
//              slept, split across the windows the doze overlaps — the
//              dozing-vs-active occupancy signal: doze_sum/window_width
//              is the mean number of dozing clients during the window,
//              (index_reads+data_reads)/window_width the mean number
//              actively listening)
//   gauges     shard_inflight — min/max in-flight queries observed in
//              any single shard (per-shard load-balance envelope)
//   heatmap    per window, index-class vs data-class packet reads binned
//              by position within the broadcast cycle — the demand signal
//              popularity-aware scheduling (ROADMAP item 3) consumes.
//
// Flight recorder: each shard keeps a fixed-size ring of recent events
// (reads, faults, dozes) tagged with the issuing client. When a query
// ends unrecoverable, the ring's surviving events for that client are
// dumped as one JSONL "black box" record, so post-mortems see the exact
// ladder walk that exhausted the budget without tracing every query.

#ifndef DTREE_BROADCAST_TELEMETRY_H_
#define DTREE_BROADCAST_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broadcast/trace.h"
#include "common/timeseries.h"

namespace dtree::bcast {

struct FleetResult;  // broadcast/fleet.h

/// Per-window metric names in FleetTelemetry::series().
inline constexpr char kTsQueriesIssued[] = "queries_issued";
inline constexpr char kTsQueriesCompleted[] = "queries_completed";
inline constexpr char kTsUnrecoverable[] = "unrecoverable";
inline constexpr char kTsFallback[] = "fallback";
inline constexpr char kTsRetries[] = "retries";
inline constexpr char kTsLostPackets[] = "lost_packets";
inline constexpr char kTsCorruptedPackets[] = "corrupted_packets";
inline constexpr char kTsArrivals[] = "arrivals";
inline constexpr char kTsDepartures[] = "departures";
inline constexpr char kTsIndexReads[] = "index_reads";
inline constexpr char kTsDataReads[] = "data_reads";
inline constexpr char kTsEpochSwitches[] = "epoch_switches";
// Region-cache activity (broadcast/region_cache.h); recorded only when
// the run has the cache enabled, and the exporters emit the cache keys
// only then, so cache-off telemetry bytes are unchanged.
inline constexpr char kTsCacheHits[] = "cache_hits";
inline constexpr char kTsCacheMisses[] = "cache_misses";
inline constexpr char kTsCacheEvictions[] = "cache_evictions";
inline constexpr char kTsCacheInvalidations[] = "cache_invalidations";
inline constexpr char kTsLatency[] = "latency";
inline constexpr char kTsTuning[] = "tuning";
inline constexpr char kTsDoze[] = "doze";
inline constexpr char kTsShardInflight[] = "shard_inflight";

struct TelemetryOptions {
  /// Cycle-position bins of the per-window read heatmap, > 0.
  int heatmap_bins = 32;
  /// Flight-recorder ring capacity (events) per shard, >= 0; 0 disables
  /// the recorder (unrecoverable queries still dump an event-less record).
  int flight_recorder_capacity = 512;
};

/// Run-level totals written into the timeline meta line — the anchor the
/// offline validator (tools/telemetry_report.py --check) sums windows
/// against. Callers with a FleetResult should derive them from it
/// (TotalsFromFleet) so the cross-check binds the timeline to the
/// engine's own aggregate, not to telemetry-internal counts.
struct TelemetryTotals {
  int64_t queries = 0;
  int64_t sessions = 0;
  int64_t departures = 0;
  int64_t retries = 0;
  int64_t lost_packets = 0;
  int64_t corrupted_packets = 0;
  int64_t unrecoverable = 0;
  int64_t fallback = 0;
  int64_t epoch_switches = 0;
  /// Region-cache totals; exported (and meaningful) only when `cache` —
  /// set for runs that had the cache enabled — so cache-off timeline
  /// bytes are unchanged.
  bool cache = false;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
};

TelemetryTotals TotalsFromFleet(const FleetResult& result);

/// Completed-query summary handed to TelemetryShard::QueryDone; mirrors
/// BroadcastChannel::QueryOutcome without depending on channel.h.
struct QueryOutcomeSummary {
  double latency = 0.0;
  int tuning_total = 0;
  int retries = 0;
  int lost_packets = 0;
  int corrupted_packets = 0;
  bool fallback_scan = false;
  bool unrecoverable = false;
  /// Versioned-broadcast summary (RunFleetVersioned / versioned traces):
  /// when `versioned` the flight record carries the query's final epoch
  /// and switch count; legacy runs omit the fields byte-for-byte.
  bool versioned = false;
  uint16_t epoch = 0;
  int epoch_switches = 0;
  /// Stable GiveUpStageName when unrecoverable; "" omits the field from
  /// the flight record (trace-driven feeds do not know the stage).
  const char* give_up = "";
};

/// Per-window read heatmap row: packets read per cycle-position bin,
/// split index-class (probe + index descent + fallback-scan listening)
/// vs data-class (bucket retrievals).
struct HeatmapRow {
  std::vector<int64_t> index_reads;
  std::vector<int64_t> data_reads;
};

/// One shard's private telemetry accumulator. All methods are called
/// from the owning shard's event loop only (single-threaded); windows
/// are derived from the timestamps passed in, never from shared state.
class TelemetryShard {
 public:
  /// A client session joined (generation 0 or a churn replacement).
  void SessionJoin(double t);
  /// A session left through churn at completion time t.
  void Departure(double t);
  /// A query was issued with the given absolute arrival time.
  void QueryIssued(double arrival);
  /// The client dozed for `dur` packets, resuming at `resume_at`; the
  /// slept packets are split across every window the doze overlaps.
  void Doze(double resume_at, double dur, int64_t client, uint32_t q);
  /// `packets` consecutive packet reads starting at `pos`;
  /// `data_read` selects the heatmap class (kProbe / kIndexRead /
  /// kFallbackScan listening are index-class, kBucketRead data-class).
  void Read(TraceEventKind kind, int64_t pos, int packets, bool data_read,
            int64_t client, uint32_t q);
  /// A fault or recovery event at `pos`: kLoss, kCorruption, kRetune or
  /// kEpochSwitch.
  void Fault(TraceEventKind kind, int64_t pos, int64_t client, uint32_t q);
  /// The query is over (answered or given up) at absolute time `done`.
  /// Unrecoverable queries dump the client's surviving flight-ring
  /// events as one JSONL black-box record.
  void QueryDone(double done, int64_t client, uint32_t q,
                 const QueryOutcomeSummary& out);
  /// Region-cache lookup outcome at time t (one per issued query when the
  /// cache is enabled). Not a Fault: losses and corruption never touch
  /// the cache, and cache activity has its own counters.
  void CacheLookup(double t, bool hit);
  /// `n` entries evicted by the byte budget at time t.
  void CacheEvicted(double t, int n);
  /// `n` entries flushed by an epoch change at time t.
  void CacheInvalidated(double t, int n);

 private:
  friend class FleetTelemetry;

  struct FlightEvent {
    int64_t client = -1;
    int64_t pos = 0;
    double dur = 0.0;     ///< kDoze only
    int32_t packets = 0;  ///< reads: packets covered
    TraceEventKind kind = TraceEventKind::kProbe;
  };

  /// Cached (window -> instance) so steady-state recording skips the
  /// name lookup; refreshed whenever the event's window moves.
  struct CachedCounter {
    int64_t window = INT64_MIN;
    Counter* c = nullptr;
  };
  struct CachedHistogram {
    int64_t window = INT64_MIN;
    Histogram* h = nullptr;
  };

  TelemetryShard(double window_width, int64_t cycle_packets, int bins,
                 int ring_capacity);

  Counter* Cnt(CachedCounter* slot, const char* name, int64_t window);
  Histogram* Hist(CachedHistogram* slot, const char* name, int64_t window);
  HeatmapRow* Row(int64_t window);
  void BinRead(int64_t pos, int packets, bool data_read);
  void RecordFlight(TraceEventKind kind, int64_t pos, int packets,
                    double dur, int64_t client);
  void DumpFlight(double done, int64_t client, uint32_t q,
                  const QueryOutcomeSummary& out);

  TimeSeries series_;
  int64_t cycle_packets_;
  int bins_;
  std::map<int64_t, HeatmapRow> heatmap_;
  int64_t heat_window_ = INT64_MIN;
  HeatmapRow* heat_row_ = nullptr;
  CachedCounter c_issued_, c_completed_, c_unrec_, c_fallback_, c_retries_,
      c_lost_, c_corrupted_, c_arrivals_, c_departures_, c_index_reads_,
      c_data_reads_, c_epoch_switches_, c_cache_hits_, c_cache_misses_,
      c_cache_evictions_, c_cache_invalidations_;
  CachedHistogram h_latency_, h_tuning_, h_doze_;
  int64_t inflight_ = 0;
  std::vector<FlightEvent> ring_;  ///< preallocated, ring_pos_ wraps
  size_t ring_pos_ = 0;
  uint64_t ring_written_ = 0;
  std::string flight_;  ///< this shard's black-box JSONL records
  int64_t flight_records_ = 0;
};

/// The fleet-run telemetry sink. Reset() -> per-shard recording ->
/// MergeShards() -> exporters; see the file comment for the contract.
class FleetTelemetry {
 public:
  explicit FleetTelemetry(const TelemetryOptions& options = {});

  const TelemetryOptions& options() const { return options_; }

  /// Clears all state and re-keys the window axis to one window per
  /// broadcast cycle. Called by RunFleet before the parallel section.
  /// Also resets cache_enabled() to false; a cache-enabled run must call
  /// set_cache_enabled(true) again after Reset.
  void Reset(int64_t cycle_packets, int num_shards);

  /// Declares whether the run being recorded has the region cache
  /// enabled. Gates the cache keys in every exporter so cache-off
  /// timeline / Prometheus bytes are unchanged. Set by RunFleet from
  /// FleetOptions::cache (benches driving TelemetryTraceSink set it
  /// directly after Reset).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  bool cache_enabled() const { return cache_enabled_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  TelemetryShard* shard(int s) { return shards_[static_cast<size_t>(s)].get(); }

  /// Folds every shard into the merged view, in shard order. Called by
  /// RunFleet after the parallel section (idempotent per Reset).
  void MergeShards();

  // --- Merged views; valid after MergeShards(). ---
  int64_t cycle_packets() const { return cycle_packets_; }
  const TimeSeries& series() const { return series_; }
  const std::map<int64_t, HeatmapRow>& heatmap() const { return heatmap_; }
  /// Concatenated black-box JSONL records, shard order.
  const std::string& flight_records() const { return flight_; }
  int64_t flight_record_count() const { return flight_records_; }
  /// Totals summed from the merged series (telemetry's own view; compare
  /// against TotalsFromFleet to cross-check the engine).
  TelemetryTotals Totals() const;

  /// Timeline export: a meta line (schema id, layout, run totals —
  /// `totals` should come from the FleetResult via TotalsFromFleet;
  /// nullptr falls back to Totals()), then one JSON line per window in
  /// ascending window order. Byte-identical for any thread count.
  std::string TimelineJsonl(const std::string& label = "",
                            const TelemetryTotals* totals = nullptr) const;

  /// Prometheus text exposition: run-total counters plus cumulative
  /// latency / tuning / doze histograms under the fleet_* namespace.
  std::string PrometheusText() const;

 private:
  TelemetryOptions options_;
  int64_t cycle_packets_ = 1;
  std::vector<std::unique_ptr<TelemetryShard>> shards_;
  TimeSeries series_{1.0};
  std::map<int64_t, HeatmapRow> heatmap_;
  std::string flight_;
  int64_t flight_records_ = 0;
  bool merged_ = false;
  bool cache_enabled_ = false;
};

/// Adapter feeding a FleetTelemetry from a per-query trace stream — the
/// single-query Simulate path (RunExperiment benches) gets the same
/// timeline, heatmap and flight-record output as the fleet engine
/// without touching the driver. The telemetry must have been Reset()
/// for the run's channel layout with num_shards >= 1; all traces are
/// recorded into shard 0 (trace sinks are fed single-threaded in global
/// query order, so the result is deterministic by construction). Call
/// MergeShards() after the run, before exporting. Experiment traces
/// carry no session lifecycle, so arrivals/departures stay zero and the
/// anonymous client id -1 tags the flight ring.
class TelemetryTraceSink : public TraceSink {
 public:
  explicit TelemetryTraceSink(FleetTelemetry* telemetry)
      : telemetry_(telemetry) {}

  void Consume(const QueryTrace& trace) override;

 private:
  FleetTelemetry* telemetry_;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_TELEMETRY_H_
