// Versioned broadcast: a timeline of epoch spans and the client access
// protocol that survives epoch switches (the version-skew rung of the
// degradation ladder).
//
// The server rebuilds its index between cycles when the dataset changes
// (src/dtree/versioned.h); on the air this appears as a sequence of
// *epoch spans*: span s broadcasts epoch e_s's cycle layout for a whole
// number of cycles, then the next span takes over at a cycle boundary.
// Every frame is stamped with its epoch (broadcast/frame.h), so a client
// that tuned in during epoch e and dozes across a switch discovers the
// skew on its next *delivered* read: the frame's CRC verifies but its
// epoch differs from the client's. Pointers cached from the old epoch are
// then worthless — the subdivision, index layout, and bucket numbering
// may all have changed — so the client abandons partial state, adopts the
// new epoch, and re-tunes to the next index segment. Each such switch
// consumes one unit of LossOptions::max_epoch_switches; a query that
// observes more switches than the budget gives up with
// GiveUpStage::kEpochChurn rather than risk a wrong answer.
//
// Ordering contract per delivered read: the fault processes draw first
// (a lost frame never arrives and a corrupted frame fails its CRC, so
// neither reveals an epoch), then the epoch check runs. On a single-span
// timeline the epoch check never fires and BroadcastTimeline::Simulate is
// bit-identical to BroadcastChannel::Simulate — field for field, draw for
// draw — which is the differential oracle in tests/epoch_test.cc.
//
// Determinism: restarts (fault re-tunes *and* epoch switches) share one
// ordinal keying LossProcess::AttemptStream, so the outcome is a pure
// function of (timeline, traces, arrival, loss_stream) — never of thread
// count. The fleet engine (broadcast/fleet.h) replays the same streams.

#ifndef DTREE_BROADCAST_VERSIONED_H_
#define DTREE_BROADCAST_VERSIONED_H_

#include <cstdint>
#include <vector>

#include "broadcast/channel.h"
#include "common/status.h"

namespace dtree::bcast {

/// One epoch's stretch of the broadcast schedule. The channel is borrowed
/// (not owned) and must outlive the timeline.
struct EpochSpan {
  const BroadcastChannel* channel = nullptr;
  uint16_t epoch = 0;
  /// Whole broadcast cycles this span lasts. Must be >= 1 for every span
  /// except the last, which runs forever (its value is ignored).
  int64_t cycles = 1;
};

/// An immutable sequence of epoch spans with cycle-aligned absolute start
/// positions. Span s occupies packets [start(s), end(s)); the last span is
/// open-ended (end == INT64_MAX).
class BroadcastTimeline {
 public:
  /// Validates and precomputes span starts. Requires at least one span,
  /// a channel on every span, matching packet capacities across spans
  /// (the frame wire format — and hence per-read corruption exposure —
  /// must not change mid-broadcast), and cycles >= 1 on all but the last
  /// span. Loss options are read from span 0's channel and apply to the
  /// whole timeline.
  static Result<BroadcastTimeline> Create(std::vector<EpochSpan> spans);

  int num_spans() const { return static_cast<int>(spans_.size()); }
  const EpochSpan& span(int s) const { return spans_[static_cast<size_t>(s)]; }
  const BroadcastChannel& channel(int s) const {
    return *spans_[static_cast<size_t>(s)].channel;
  }
  /// Absolute packet position where span s begins (span 0 starts at 0).
  int64_t span_start(int s) const { return start_[static_cast<size_t>(s)]; }
  /// One past the last packet of span s; INT64_MAX for the last span.
  int64_t span_end(int s) const { return start_[static_cast<size_t>(s) + 1]; }
  /// Span containing absolute packet position pos (pos >= 0).
  int SpanAt(int64_t pos) const;

  const LossOptions& loss_options() const {
    return spans_.front().channel->loss_options();
  }

  /// Simulates the full access protocol for a client arriving at absolute
  /// continuous time `arrival` >= 0, with `traces[s]` the index search the
  /// query point resolves to under span s's index (one trace per span —
  /// the client re-probes the *new* index after an epoch switch).
  ///
  /// Protocol: identical to BroadcastChannel::Simulate — initial probe,
  /// index descent, bucket retrieval, fault ladder — plus the version-skew
  /// rung described in the file comment. QueryOutcome::epoch reports the
  /// epoch the answer (or give-up) belongs to and epoch_switches the
  /// switches survived; a query exceeding loss.max_epoch_switches gives up
  /// with GiveUpStage::kEpochChurn. `trace_out`, when non-null, receives
  /// kEpochSwitch events and has `versioned` set so its JSONL line carries
  /// the epoch summary fields.
  Result<BroadcastChannel::QueryOutcome> Simulate(
      const std::vector<ProbeTrace>& traces, double arrival,
      uint64_t loss_stream, QueryTrace* trace_out = nullptr) const;

 private:
  BroadcastTimeline() = default;

  std::vector<EpochSpan> spans_;
  /// start_[s] = absolute start of span s; start_[num_spans] = INT64_MAX.
  std::vector<int64_t> start_;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_VERSIONED_H_
