#include "broadcast/channel.h"

#include <algorithm>
#include <cmath>

#include "broadcast/frame.h"
#include "broadcast/trace.h"
#include "common/check.h"

namespace dtree::bcast {

const char* GiveUpStageName(GiveUpStage stage) {
  switch (stage) {
    case GiveUpStage::kNone: return "none";
    case GiveUpStage::kProbeBudget: return "probe_budget";
    case GiveUpStage::kRetryBudget: return "retry_budget";
    case GiveUpStage::kFallbackBudget: return "fallback_budget";
    case GiveUpStage::kEpochChurn: return "epoch_churn";
  }
  return "unknown";
}

Result<BroadcastChannel> BroadcastChannel::Create(
    int index_packets, int num_regions, const ChannelOptions& options) {
  if (options.packet_capacity < 1) {
    return Status::InvalidArgument("packet capacity must be positive");
  }
  if (num_regions < 1) {
    return Status::InvalidArgument("channel needs at least one data bucket");
  }
  if (index_packets < 0) {
    return Status::InvalidArgument("negative index size");
  }
  DTREE_RETURN_IF_ERROR(ValidateLossOptions(options.loss));

  BroadcastChannel ch;
  ch.loss_ = options.loss;
  ch.packet_capacity_ = options.packet_capacity;
  ch.frame_bits_ = FrameBits(options.packet_capacity);
  ch.index_packets_ = index_packets;
  ch.num_regions_ = num_regions;
  ch.bucket_packets_ = static_cast<int>(
      (options.data_instance_size + options.packet_capacity - 1) /
      options.packet_capacity);
  ch.data_packets_ =
      static_cast<int64_t>(num_regions) * ch.bucket_packets_;

  int m = options.m;
  if (m == 0) {
    // Optimal index replication from "Data on air": m* = sqrt(Data/Index).
    if (index_packets == 0) {
      m = 1;
    } else {
      m = static_cast<int>(std::lround(std::sqrt(
          static_cast<double>(ch.data_packets_) / index_packets)));
    }
  }
  m = std::clamp(m, 1, num_regions);
  ch.m_ = m;

  // Split data buckets into m nearly equal contiguous chunks.
  ch.chunk_first_.resize(m + 1);
  for (int j = 0; j <= m; ++j) {
    ch.chunk_first_[j] =
        static_cast<int>((static_cast<int64_t>(num_regions) * j) / m);
  }
  ch.segment_start_.resize(m);
  for (int j = 0; j < m; ++j) {
    ch.segment_start_[j] =
        static_cast<int64_t>(j) * index_packets +
        static_cast<int64_t>(ch.chunk_first_[j]) * ch.bucket_packets_;
  }
  ch.cycle_packets_ =
      static_cast<int64_t>(m) * index_packets + ch.data_packets_;
  return ch;
}

int64_t BroadcastChannel::IndexSegmentStart(int j) const {
  DTREE_CHECK(j >= 0 && j < m_);
  return segment_start_[j];
}

int64_t BroadcastChannel::BucketStart(int r) const {
  DTREE_CHECK(r >= 0 && r < num_regions_);
  // Chunk containing bucket r.
  const auto it = std::upper_bound(chunk_first_.begin(), chunk_first_.end(),
                                   r);
  const int chunk = static_cast<int>(it - chunk_first_.begin()) - 1;
  DTREE_CHECK(chunk >= 0 && chunk < m_);
  return segment_start_[chunk] + index_packets_ +
         static_cast<int64_t>(r - chunk_first_[chunk]) * bucket_packets_;
}

Result<BroadcastChannel::QueryOutcome> BroadcastChannel::Simulate(
    const ProbeTrace& trace, double arrival, uint64_t loss_stream,
    QueryTrace* trace_out) const {
  // NaN compares false against both bounds, so the finiteness check is
  // load-bearing: without it a NaN arrival would flow into floor() and
  // int64 casts below (undefined behavior), not an error.
  if (!std::isfinite(arrival) || arrival < 0.0 ||
      arrival >= static_cast<double>(cycle_packets_)) {
    return Status::InvalidArgument("arrival outside the broadcast cycle");
  }
  DTREE_RETURN_IF_ERROR(ValidateTrace(trace, std::max(index_packets_, 1),
                                      num_regions_,
                                      /*require_forward=*/false));

  QueryOutcome out;
  LossProcess loss(loss_, loss_stream);
  // The corruption process draws from its own RNG streams (keyed by its
  // own seed), so enabling it never perturbs a loss draw and vice versa.
  CorruptionProcess corrupt(loss_.corruption, frame_bits_, loss_stream);
  const bool faults = loss.enabled() || corrupt.enabled();

  // Observability hooks: every emitter is a no-op (one predicted branch)
  // when tracing is off, and tracing never feeds back into the protocol.
  auto emit_doze = [&](int64_t resume_at, double dur) {
    if (trace_out != nullptr && dur > 0.0) {
      TraceEvent e;
      e.kind = TraceEventKind::kDoze;
      e.pos = resume_at;
      e.dur = dur;
      trace_out->events.push_back(e);
    }
  };
  auto emit_read = [&](TraceEventKind kind, int64_t pos) {
    if (trace_out != nullptr) {
      TraceEvent e;
      e.kind = kind;
      e.pos = pos;
      trace_out->events.push_back(e);
    }
  };
  auto finish = [&]() {
    if (trace_out != nullptr) {
      trace_out->latency = out.latency;
      trace_out->tuning_total = out.tuning_total();
      trace_out->retries = out.retries;
      trace_out->lost_packets = out.lost_packets;
      trace_out->corrupted_packets = out.corrupted_packets;
      trace_out->fallback_scan = out.fallback_scan;
      trace_out->unrecoverable = out.unrecoverable;
    }
  };
  // One packet read under faults: an erasure means the packet never
  // arrived; a delivered packet may still carry bit errors, which the
  // CRC-32 frame check detects. Either way the read is wasted and the
  // recovery ladder takes over. Loss is drawn first — a lost packet has
  // no bits to corrupt — and the corruption stream is advanced only for
  // delivered packets, keeping it aligned across loss configurations.
  auto read_failed = [&](int64_t at) {
    if (loss.enabled() && loss.NextLost()) {
      ++out.lost_packets;
      emit_read(TraceEventKind::kLoss, at);
      return true;
    }
    if (corrupt.enabled() && corrupt.NextCorrupted()) {
      ++out.corrupted_packets;
      emit_read(TraceEventKind::kCorruption, at);
      return true;
    }
    return false;
  };

  // --- Degradation ladder, final rung. Entered when a budget above it is
  // exhausted: with fallback disabled the query is simply unrecoverable
  // (bit-identical to the pre-ladder give-up), otherwise the client stops
  // trusting the index and listens to *every* packet until its bucket has
  // gone by — the indexless protocol of SimulateNoIndex, except on the
  // real (1, m) layout and still subject to faults on the bucket packets
  // themselves. The client recognizes its bucket by content (it verifies
  // the bucket bytes it wanted, cf. MakeDataBucketPackets), so scanned
  // packets are only counted — charged to tuning_index like the indexless
  // baseline — and the bucket packets to tuning_data. Either the data
  // completes or, after fallback_scan_cycles failed cycles, the query is
  // explicitly unrecoverable; it never dozes forever.
  auto conclude = [&](int64_t give_up_pos,
                      GiveUpStage stage) -> QueryOutcome {
    for (int cycle = 0; cycle < loss_.fallback_scan_cycles; ++cycle) {
      out.fallback_scan = true;
      loss.StartStream(LossProcess::FallbackStream(cycle));
      corrupt.StartStream(LossProcess::FallbackStream(cycle));
      const int64_t bucket_in_cycle = BucketStart(trace.region);
      const int64_t cycle_base =
          (give_up_pos / cycle_packets_) * cycle_packets_;
      int64_t data_at = cycle_base + bucket_in_cycle;
      if (data_at < give_up_pos) data_at += cycle_packets_;
      const int64_t listened = data_at - give_up_pos;
      out.tuning_index += static_cast<int>(listened);
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kFallbackScan;
        e.pos = give_up_pos;
        e.packet = static_cast<int>(listened);
        e.attempt = cycle;
        trace_out->events.push_back(e);
      }
      bool lost = false;
      bool corrupted_here = false;
      int bucket_read = 0;
      for (int b = 0; b < bucket_packets_; ++b) {
        ++out.tuning_data;
        ++bucket_read;
        if (loss.enabled() && loss.NextLost()) {
          ++out.lost_packets;
          lost = true;
          break;
        }
        if (corrupt.enabled() && corrupt.NextCorrupted()) {
          ++out.corrupted_packets;
          corrupted_here = true;
          lost = true;
          break;
        }
      }
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kBucketRead;
        e.pos = data_at;
        e.packet = bucket_read;
        trace_out->events.push_back(e);
        if (lost) {
          emit_read(corrupted_here ? TraceEventKind::kCorruption
                                   : TraceEventKind::kLoss,
                    data_at + bucket_read - 1);
        }
      }
      if (!lost) {
        out.latency =
            static_cast<double>(data_at + bucket_packets_) - arrival;
        finish();
        return out;
      }
      give_up_pos = data_at + bucket_read;  // listen past the bad packet
    }
    out.unrecoverable = true;
    out.give_up =
        out.fallback_scan ? GiveUpStage::kFallbackBudget : stage;
    out.latency = static_cast<double>(give_up_pos) - arrival;
    finish();
    return out;
  };

  // --- Initial probe: wait for the next packet *start*, read one packet
  // to learn where the next index segment starts. A packet whose
  // transmission began exactly at `arrival` is already in flight and
  // cannot be synchronized to, so the probe is floor(arrival) + 1 — for
  // non-integer arrivals this equals ceil(arrival), for exact packet
  // boundaries it is the next packet (the old ceil() read a packet that
  // had already started).
  int64_t probe_packet = static_cast<int64_t>(std::floor(arrival)) + 1;
  out.tuning_probe = 1;
  emit_doze(probe_packet, static_cast<double>(probe_packet) - arrival);
  emit_read(TraceEventKind::kProbe, probe_packet);
  // A failed probe costs one packet of listening and one of waiting; the
  // client simply reads the following packet (every packet carries the
  // next-index pointer). Bounded by the same retry budget as re-tunes.
  while (faults && read_failed(probe_packet)) {
    if (out.tuning_probe > loss_.max_retries) {
      return conclude(probe_packet + 1, GiveUpStage::kProbeBudget);
    }
    ++out.tuning_probe;
    ++probe_packet;
    emit_read(TraceEventKind::kProbe, probe_packet);
  }
  int64_t pos = probe_packet + 1;  // finished reading the probe packet

  // Smallest absolute index-segment start >= t. t is always positive here
  // (audited below at the backward-pointer call site); a negative t would
  // truncate t / cycle_packets_ toward zero and return a segment in
  // cycle 0 that may lie in the past.
  auto next_segment_start = [&](int64_t t) {
    DTREE_CHECK(t >= 0);
    const int64_t base = (t / cycle_packets_) * cycle_packets_;
    const int64_t in_cycle = t - base;
    for (int j = 0; j < m_; ++j) {
      if (segment_start_[j] >= in_cycle) return base + segment_start_[j];
    }
    return base + cycle_packets_ + segment_start_[0];
  };

  // --- Access attempts. Attempt 0 is the normal protocol; when a read is
  // lost the client re-tunes to the next index repetition after the
  // failure and restarts the index search there (the (1, m) recovery of
  // Imielinski et al.), up to max_retries re-tunes. On a lossless channel
  // the loop body runs exactly once and no loss draws are made, so the
  // outcome is bit-identical to the pre-loss-model simulator.
  const int max_attempts = faults ? loss_.max_retries + 1 : 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++out.retries;
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kRetune;
        e.pos = pos;
        e.attempt = attempt;
        trace_out->events.push_back(e);
      }
    }
    loss.StartStream(LossProcess::AttemptStream(attempt));
    corrupt.StartStream(LossProcess::AttemptStream(attempt));
    bool lost = false;

    // --- Index search: jump to the first index segment at or after pos.
    int64_t p = pos;
    int64_t seg_start = next_segment_start(p);
    DTREE_CHECK(seg_start >= p);

    const bool annotated = trace.origins.size() == trace.packets.size();
    for (size_t i = 0; i < trace.packets.size(); ++i) {
      const int packet_id = trace.packets[i];
      int64_t at = seg_start + packet_id;
      if (at < p) {
        // The referenced packet already went by (a backward pointer in a
        // DAG-shaped index): wait for the next repetition of the index
        // that still has this packet ahead of us.
        //
        // p - packet_id is provably positive: a backward jump can only
        // happen after a previous read, so p = seg_start' + prev_id + 1
        // for some seg_start' >= 0, and at < p forces
        // packet_id <= prev_id, hence p - packet_id >= seg_start' + 1.
        // The DTREE_CHECK in next_segment_start guards the invariant.
        seg_start = next_segment_start(p - packet_id);
        at = seg_start + packet_id;
        DTREE_CHECK(at >= p);
      }
      emit_doze(at, static_cast<double>(at - p));
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kIndexRead;
        e.pos = at;
        e.packet = packet_id;
        if (annotated) {
          e.node = trace.origins[i].node;
          e.depth = trace.origins[i].depth;
        }
        trace_out->events.push_back(e);
      }
      p = at + 1;
      ++out.tuning_index;
      if (faults && read_failed(at)) {
        lost = true;
        break;
      }
    }
    if (!lost) {
      if (trace.packets.empty()) {
        p = std::max(p, seg_start);  // degenerate: empty index
      }

      // --- Data retrieval: next occurrence of the bucket at or after p.
      const int64_t bucket_in_cycle = BucketStart(trace.region);
      const int64_t cycle_base = (p / cycle_packets_) * cycle_packets_;
      int64_t data_at = cycle_base + bucket_in_cycle;
      if (data_at < p) data_at += cycle_packets_;
      emit_doze(data_at, static_cast<double>(data_at - p));
      int bucket_read = 0;
      bool corrupted_here = false;
      for (int b = 0; b < bucket_packets_; ++b) {
        ++out.tuning_data;
        ++bucket_read;
        if (!faults) continue;
        if (loss.enabled() && loss.NextLost()) {
          ++out.lost_packets;
          lost = true;
          p = data_at + b + 1;  // loss detected at the end of this packet
          break;
        }
        if (corrupt.enabled() && corrupt.NextCorrupted()) {
          ++out.corrupted_packets;
          corrupted_here = true;
          lost = true;
          p = data_at + b + 1;  // CRC failure at the end of this packet
          break;
        }
      }
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kBucketRead;
        e.pos = data_at;
        e.packet = bucket_read;
        trace_out->events.push_back(e);
        if (lost) {
          emit_read(corrupted_here ? TraceEventKind::kCorruption
                                   : TraceEventKind::kLoss,
                    data_at + bucket_read - 1);
        }
      }
      if (!lost) {
        const int64_t done = data_at + bucket_packets_;
        out.latency = static_cast<double>(done) - arrival;
        finish();
        return out;
      }
    }
    pos = p;  // re-tune: the next attempt starts after the failed read
  }
  return conclude(pos, GiveUpStage::kRetryBudget);
}

BroadcastChannel::QueryOutcome BroadcastChannel::SimulateNoIndex(
    int region, double arrival, uint64_t loss_stream) const {
  DTREE_CHECK(region >= 0 && region < num_regions_);
  DTREE_CHECK(std::isfinite(arrival) && arrival >= 0.0);
  // Pure-data cycle: buckets back to back, no index segments. Same packet
  // boundary rule as Simulate: a packet that started exactly at the
  // arrival instant is already in flight, so listening begins at the next
  // packet start, floor(a) + 1.
  const int64_t cycle = data_packets_;
  const double a = std::fmod(arrival, static_cast<double>(cycle));
  const int64_t start_listen = static_cast<int64_t>(std::floor(a)) + 1;
  const int64_t bucket_at = static_cast<int64_t>(region) * bucket_packets_;
  int64_t data_at = bucket_at;
  if (data_at < start_listen) data_at += cycle;
  QueryOutcome out;
  out.tuning_probe = 0;
  if (!loss_.any_fault()) {
    // Reliable medium: the client listens to every packet until its
    // bucket completes. No RNG is constructed, so this path is
    // bit-identical to the pre-loss baseline.
    out.tuning_data = bucket_packets_;
    const int64_t done = data_at + bucket_packets_;
    out.tuning_index = static_cast<int>(data_at - start_listen);
    out.latency = static_cast<double>(done) - a;
    return out;
  }
  // Faulty medium: the indexless client is listening continuously, so a
  // lost or corrupted packet only matters when it is one of the client's
  // own bucket packets — everything else was going to be discarded
  // anyway. A failed bucket costs another full pure-data cycle of
  // listening until the bucket comes around again (counted in retries,
  // mirroring the indexed client's re-tunes), bounded by the same
  // max_retries budget. Each pass draws from its own sub-stream keyed by
  // (seed, loss_stream), like Simulate's attempts, so the baseline is a
  // pure function of (channel, region, arrival, loss_stream).
  LossProcess loss(loss_, loss_stream);
  CorruptionProcess corrupt(loss_.corruption, frame_bits_, loss_stream);
  int64_t listen_from = start_listen;
  for (int pass = 0; pass <= loss_.max_retries; ++pass) {
    if (pass > 0) ++out.retries;
    loss.StartStream(LossProcess::NoIndexStream(pass));
    corrupt.StartStream(LossProcess::NoIndexStream(pass));
    out.tuning_index += static_cast<int>(data_at - listen_from);
    bool failed = false;
    int bucket_read = 0;
    for (int b = 0; b < bucket_packets_; ++b) {
      ++out.tuning_data;
      ++bucket_read;
      if (loss.enabled() && loss.NextLost()) {
        ++out.lost_packets;
        failed = true;
        break;
      }
      if (corrupt.enabled() && corrupt.NextCorrupted()) {
        ++out.corrupted_packets;
        failed = true;
        break;
      }
    }
    if (!failed) {
      out.latency = static_cast<double>(data_at + bucket_packets_) - a;
      return out;
    }
    listen_from = data_at + bucket_read;  // listen past the bad packet
    data_at += cycle;
  }
  out.unrecoverable = true;
  out.give_up = GiveUpStage::kRetryBudget;
  out.latency = static_cast<double>(listen_from) - a;
  return out;
}

}  // namespace dtree::bcast
