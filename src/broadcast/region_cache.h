// Client-side semantic region cache.
//
// A client that answered a nearest-site query from point p did not just
// learn a site id — it learned the Voronoi cell in which that answer stays
// valid. This cache stores (cell polygon, region/bucket address == the
// answer, epoch) entries per client; a follow-up query whose point still
// lies inside a cached cell is answered WITHOUT tuning into the broadcast
// at all: zero probe, zero index reads, zero doze, zero latency. That is
// the strongest energy saving the paper's framing admits, and it is what
// makes spatially correlated (mobile) workloads cheap.
//
// Correctness rules, in order of importance:
//
//  * A hit may never disagree with a cold probe. Two guards enforce this:
//    (1) containment uses the half-open tie-break
//        (geom::Polygon::ContainsHalfOpen), so even a point exactly on a
//        shared Voronoi edge resolves to at most one cached cell; and
//    (2) points within `boundary_eps` of the cached cell's boundary are
//        treated as misses outright — the same ambiguity band the
//        experiment oracle skips — so floating-point disagreement between
//        the cache polygon and the index's own geometry cannot surface.
//  * Epoch invalidation: entries are only valid for the epoch that
//    produced them. Observing a *trusted* (CRC-valid) epoch stamp that
//    differs from the cache's epoch — the kFailedPrecondition-style
//    version skew of broadcast/versioned.h — flushes every entry.
//    Loss and corruption do NOT invalidate: a dropped or mangled frame
//    carries no trustworthy epoch evidence, and the cached geometry is
//    still correct.
//  * Churn: a departing client's cache dies with it (Clear()); a new
//    generation starts cold.
//
// Bookkeeping is deterministic and thread-free: the cache is a per-client
// (or per-shard) value, LRU order is maintained by an intrusive list over
// a small entry vector, and every byte of the budget is accounted from
// the polygon's vertex count. No RNG is consumed anywhere, so enabling
// the cache cannot perturb any existing random draw (stream hygiene).

#ifndef DTREE_BROADCAST_REGION_CACHE_H_
#define DTREE_BROADCAST_REGION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>

#include "common/status.h"
#include "geom/point.h"
#include "geom/polygon.h"

namespace dtree::bcast {

struct CacheOptions {
  /// Off by default: every consumer is bit-identical to today.
  bool enabled = false;
  /// Per-client budget for cached cell geometry, in bytes. Entries are
  /// evicted LRU-first until the cache fits. Must be > 0 when enabled.
  size_t byte_budget = 16 * 1024;
  /// Points closer than this to the cached cell's boundary are misses
  /// (ambiguity band; matches the experiment oracle's border skip,
  /// geom::kMergeEps * 100).
  double boundary_eps = geom::kMergeEps * 100.0;
  /// Differential mode: every hit is replayed against a forced cold
  /// tune-in (same query, same channel state) and any divergence is an
  /// error. Used by tests and bench_cache; costs the cold simulation.
  bool verify_hits = false;
};

/// Validates ranges; called by the experiment and fleet drivers.
Status ValidateCacheOptions(const CacheOptions& options);

struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;      ///< entries dropped by the byte budget
  int64_t invalidations = 0;  ///< entries dropped by epoch-change flushes
};

/// One client's region cache. Not thread-safe; clients are shard-local.
class RegionCache {
 public:
  explicit RegionCache(const CacheOptions& options) : options_(options) {}

  struct Entry {
    geom::Polygon cell;  ///< Voronoi valid scope of the answer
    int region = -1;     ///< site / bucket address — the answer itself
    uint16_t epoch = 0;  ///< broadcast epoch the answer was read from
    size_t bytes = 0;    ///< accounted footprint of this entry
  };

  /// Point-in-cached-region lookup, consulted *before* tuning in. On a
  /// hit the entry moves to the front of the LRU order and a pointer to
  /// it is returned (valid until the next mutating call); on a miss
  /// returns nullptr. Counts exactly one hit or miss in stats().
  const Entry* Lookup(const geom::Point& p);

  /// Caches `cell` as the valid scope of answer `region` read at `epoch`.
  /// Re-inserting a cached region refreshes its polygon and LRU position
  /// without double-counting bytes. Evicts LRU entries until the byte
  /// budget holds (a cell larger than the whole budget is dropped
  /// immediately and counts as an eviction). Returns evictions performed.
  int Insert(const geom::Polygon& cell, int region, uint16_t epoch);

  /// Reports a trusted epoch stamp (a CRC-valid read or a completed
  /// answer). A stamp differing from the cache's epoch is version skew:
  /// every entry is flushed and counted as an invalidation. Same-epoch
  /// stamps are no-ops (a retry under loss keeps the cache intact).
  /// Returns the number of entries invalidated.
  int OnEpochObserved(uint16_t epoch);

  /// Drops every entry with no stats impact beyond the entry count going
  /// to zero (churn: the client is gone, nothing was "invalidated").
  void Clear();

  const CacheStats& stats() const { return stats_; }
  size_t bytes() const { return bytes_; }
  size_t entries() const { return lru_.size(); }
  uint16_t epoch() const { return epoch_; }
  const CacheOptions& options() const { return options_; }

  /// Accounted footprint of a cached cell (entry header + ring vertices).
  static size_t EntryBytes(const geom::Polygon& cell) {
    return sizeof(Entry) + cell.NumVertices() * sizeof(geom::Point);
  }

 private:
  CacheOptions options_;
  /// MRU first. Lookups scan in recency order; caches are tens of
  /// entries, and the half-open tie-break guarantees at most one cached
  /// cell of the same tessellation contains any point, so first match is
  /// THE match.
  std::list<Entry> lru_;
  size_t bytes_ = 0;
  uint16_t epoch_ = 0;
  CacheStats stats_;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_REGION_CACHE_H_
