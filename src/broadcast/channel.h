// (1, m) broadcast-channel layout and client access-protocol simulation.
//
// The channel broadcasts, per cycle, m copies of the index segment
// interleaved with the data (Imielinski et al.'s (1, m) scheme, Figure 2 of
// the paper): [Index][Data 1/m][Index][Data 2/m]...[Index][Data m/m].
// Every packet carries a pointer to the start of the next index segment,
// which the client uses after its initial probe.
//
// Positions and latencies are measured in packets; query arrival times are
// continuous (a client may tune in mid-packet and must wait for the next
// packet boundary to synchronize).

#ifndef DTREE_BROADCAST_CHANNEL_H_
#define DTREE_BROADCAST_CHANNEL_H_

#include <cstdint>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/params.h"
#include "common/status.h"

namespace dtree::bcast {

struct ChannelOptions {
  int packet_capacity = 0;             ///< required, > 0
  size_t data_instance_size = kDataInstanceSize;
  /// Index repetitions per cycle; 0 selects the optimal
  /// m* = round(sqrt(data_packets / index_packets)) per Imielinski et al.
  int m = 0;
};

/// Immutable per-cycle layout for one index structure.
class BroadcastChannel {
 public:
  /// Builds the layout for `num_regions` data buckets and an index segment
  /// of `index_packets` packets.
  static Result<BroadcastChannel> Create(int index_packets, int num_regions,
                                         const ChannelOptions& options);

  int m() const { return m_; }
  int index_packets() const { return index_packets_; }
  int64_t data_packets() const { return data_packets_; }
  int64_t cycle_packets() const { return cycle_packets_; }
  int bucket_packets() const { return bucket_packets_; }
  int num_regions() const { return num_regions_; }

  /// Expected access latency with no index at all — half a pure-data cycle
  /// (the paper's "optimal access latency" used for normalization).
  double OptimalLatency() const { return data_packets_ / 2.0; }

  /// Absolute position (within the cycle) of the first packet of index
  /// segment j, j in [0, m).
  int64_t IndexSegmentStart(int j) const;

  /// Absolute position of the first packet of data bucket r.
  int64_t BucketStart(int r) const;

  struct QueryOutcome {
    double latency = 0.0;        ///< packets, query issue -> data complete
    int tuning_probe = 0;        ///< initial-probe packets (always 1)
    int tuning_index = 0;        ///< index-search packets (the paper's
                                 ///< tuning-time measure)
    int tuning_data = 0;         ///< data-retrieval packets
    int tuning_total() const {
      return tuning_probe + tuning_index + tuning_data;
    }
  };

  /// Simulates the full access protocol for a client arriving at continuous
  /// time `arrival` in [0, cycle) whose index search produced `trace`.
  Result<QueryOutcome> Simulate(const ProbeTrace& trace,
                                double arrival) const;

  /// Baseline without any index: the client listens from arrival until its
  /// bucket has gone by, on a pure-data cycle of the same database.
  QueryOutcome SimulateNoIndex(int region, double arrival) const;

 private:
  BroadcastChannel() = default;

  int packet_capacity_ = 0;
  int m_ = 1;
  int index_packets_ = 0;
  int num_regions_ = 0;
  int bucket_packets_ = 0;
  int64_t data_packets_ = 0;
  int64_t cycle_packets_ = 0;
  /// First data-bucket id of each of the m data chunks (size m + 1,
  /// chunk_first_[m] == num_regions).
  std::vector<int> chunk_first_;
  /// Precomputed segment start positions (size m).
  std::vector<int64_t> segment_start_;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_CHANNEL_H_
