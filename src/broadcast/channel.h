// (1, m) broadcast-channel layout and client access-protocol simulation.
//
// The channel broadcasts, per cycle, m copies of the index segment
// interleaved with the data (Imielinski et al.'s (1, m) scheme, Figure 2 of
// the paper): [Index][Data 1/m][Index][Data 2/m]...[Index][Data m/m].
// Every packet carries a pointer to the start of the next index segment,
// which the client uses after its initial probe.
//
// Positions and latencies are measured in packets; query arrival times are
// continuous (a client may tune in mid-packet and must wait for the next
// packet start to synchronize — a packet whose transmission began exactly
// at the arrival instant is already in flight and cannot be read).
//
// ChannelOptions::loss selects an optional packet-loss model (loss.h);
// Simulate then plays the client's re-tune recovery protocol and reports
// retries and unrecoverable failures in the QueryOutcome.

#ifndef DTREE_BROADCAST_CHANNEL_H_
#define DTREE_BROADCAST_CHANNEL_H_

#include <cstdint>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/loss.h"
#include "broadcast/params.h"
#include "common/status.h"

namespace dtree::bcast {

struct QueryTrace;  // broadcast/trace.h

/// Which rung of the degradation ladder a query gave up on (kNone while
/// the query succeeded). Always set when QueryOutcome::unrecoverable.
enum class GiveUpStage : uint8_t {
  kNone = 0,          ///< query completed
  kProbeBudget,       ///< every initial-probe read failed
  kRetryBudget,       ///< re-tune budget exhausted, fallback disabled
  kFallbackBudget,    ///< linear-scan fallback also exhausted its cycles
  kEpochChurn,        ///< version-skew rung: the broadcast switched epochs
                      ///< more times than the epoch-retry budget allows
};

/// Stable human-readable name for a GiveUpStage.
const char* GiveUpStageName(GiveUpStage stage);

struct ChannelOptions {
  int packet_capacity = 0;             ///< required, > 0
  size_t data_instance_size = kDataInstanceSize;
  /// Index repetitions per cycle; 0 selects the optimal
  /// m* = round(sqrt(data_packets / index_packets)) per Imielinski et al.
  int m = 0;
  /// Packet-loss model; kNone reproduces the paper's reliable medium.
  LossOptions loss;
};

/// Immutable per-cycle layout for one index structure.
class BroadcastChannel {
 public:
  /// Builds the layout for `num_regions` data buckets and an index segment
  /// of `index_packets` packets.
  static Result<BroadcastChannel> Create(int index_packets, int num_regions,
                                         const ChannelOptions& options);

  int m() const { return m_; }
  int packet_capacity() const { return packet_capacity_; }
  int index_packets() const { return index_packets_; }
  int64_t data_packets() const { return data_packets_; }
  int64_t cycle_packets() const { return cycle_packets_; }
  int bucket_packets() const { return bucket_packets_; }
  int num_regions() const { return num_regions_; }

  /// Expected access latency with no index at all — half a pure-data cycle
  /// (the paper's "optimal access latency" used for normalization).
  double OptimalLatency() const { return data_packets_ / 2.0; }

  /// Absolute position (within the cycle) of the first packet of index
  /// segment j, j in [0, m).
  int64_t IndexSegmentStart(int j) const;

  /// Absolute position of the first packet of data bucket r.
  int64_t BucketStart(int r) const;

  struct QueryOutcome {
    double latency = 0.0;        ///< packets, query issue -> data complete
                                 ///< (or -> giving up when unrecoverable)
    int tuning_probe = 0;        ///< initial-probe packets (1 on a clean
                                 ///< channel; +1 per lost probe)
    int tuning_index = 0;        ///< index-search packets, including
                                 ///< re-reads after a re-tune (the paper's
                                 ///< tuning-time measure)
    int tuning_data = 0;         ///< data-retrieval packets, including
                                 ///< partial buckets cut short by a loss
    int retries = 0;             ///< failed attempts that forced a re-tune
                                 ///< to a later index repetition
    int lost_packets = 0;        ///< reads that never arrived (erasures)
    int corrupted_packets = 0;   ///< delivered reads whose CRC check
                                 ///< failed (bit corruption)
    bool fallback_scan = false;  ///< the client exhausted its retries and
                                 ///< fell back to linearly scanning the
                                 ///< broadcast for its bucket
    bool unrecoverable = false;  ///< every ladder rung exhausted; latency
                                 ///< then measures time until giving up
    GiveUpStage give_up = GiveUpStage::kNone;  ///< which rung gave up
    /// Broadcast epoch the answer (or give-up) belongs to: the last epoch
    /// whose frames the client trusted. Single-version simulations leave
    /// it at the tune-in epoch (0 for an unversioned channel).
    uint16_t epoch = 0;
    /// Version-skew rung: observed-epoch changes that forced the client
    /// to abandon partial state and re-tune (broadcast/versioned.h).
    int epoch_switches = 0;
    /// Answered from the client's semantic region cache
    /// (broadcast/region_cache.h) without tuning in: every tuning field
    /// and the latency are zero. Never set by Simulate itself — the cache
    /// layer in the experiment / fleet drivers synthesizes hit outcomes.
    bool cache_hit = false;
    int tuning_total() const {
      return tuning_probe + tuning_index + tuning_data;
    }
  };

  /// Simulates the full access protocol for a client arriving at continuous
  /// time `arrival` in [0, cycle) whose index search produced `trace`.
  /// The precondition is validated: a non-finite arrival (NaN, ±inf) or one
  /// outside [0, cycle) returns InvalidArgument — callers replaying
  /// absolute fleet time must wrap with fmod(t, cycle_packets()) first.
  ///
  /// When ChannelOptions::loss is enabled, each packet read may be lost;
  /// when loss.corruption is enabled, each *delivered* read may carry bit
  /// errors, which the CRC-32 frame trailer detects (counted separately
  /// in corrupted_packets). Either failure drives the degradation ladder:
  /// retry the probe / re-tune to the next index repetition and restart
  /// the index search there, for at most loss.max_retries re-tunes; then,
  /// if loss.fallback_scan_cycles > 0, abandon the index and linearly
  /// scan the broadcast for the bucket for at most that many cycles;
  /// only then report unrecoverable (with the rung in give_up). The
  /// client therefore always terminates with an answer or an explicit
  /// failure. `loss_stream` keys the query's private fault sub-streams
  /// (pass the query's global index); the outcome is a pure function of
  /// (channel, trace, arrival, loss_stream).
  ///
  /// `trace_out` is the observability hook (broadcast/trace.h): when
  /// non-null, every probe / doze / index-read / bucket-read / loss /
  /// re-tune event is appended to it and the outcome summary fields are
  /// mirrored into it. The default is null — the hot path then pays one
  /// predicted branch per event site — and tracing is purely
  /// observational: the returned QueryOutcome is bit-identical with and
  /// without it.
  Result<QueryOutcome> Simulate(const ProbeTrace& trace, double arrival,
                                uint64_t loss_stream,
                                QueryTrace* trace_out = nullptr) const;

  /// Convenience overload: loss stream 0.
  Result<QueryOutcome> Simulate(const ProbeTrace& trace,
                                double arrival) const {
    return Simulate(trace, arrival, 0);
  }

  /// Baseline without any index: the client listens from arrival until its
  /// bucket has gone by, on a pure-data cycle of the same database.
  ///
  /// `arrival` must be finite and non-negative (checked); it is canonically
  /// wrapped mod the pure-data cycle, so callers may pass absolute time.
  ///
  /// When ChannelOptions::loss is enabled the baseline plays the same
  /// erasure / corruption processes as the indexed client — the client
  /// listens continuously, so only its own bucket packets are exposed to
  /// faults; a failed bucket forces another full pure-data cycle of
  /// listening (counted in retries), up to loss.max_retries extra passes,
  /// after which the query is unrecoverable (give_up = kRetryBudget).
  /// Each pass draws from its own sub-stream
  /// (LossProcess::NoIndexStream(pass), keyed by `loss_stream` like
  /// Simulate), disjoint from every indexed-path stream. With loss and
  /// corruption disabled the outcome is bit-identical to the pre-loss
  /// baseline and no RNG is constructed.
  QueryOutcome SimulateNoIndex(int region, double arrival,
                               uint64_t loss_stream) const;

  /// Convenience overload: loss stream 0.
  QueryOutcome SimulateNoIndex(int region, double arrival) const {
    return SimulateNoIndex(region, arrival, 0);
  }

  const LossOptions& loss_options() const { return loss_; }

 private:
  BroadcastChannel() = default;

  int packet_capacity_ = 0;
  int m_ = 1;
  int index_packets_ = 0;
  int num_regions_ = 0;
  int bucket_packets_ = 0;
  int64_t data_packets_ = 0;
  int64_t cycle_packets_ = 0;
  /// Framed packet size in bits (payload + CRC trailer); the exposure of
  /// one packet read to the bit-corruption process.
  int frame_bits_ = 0;
  /// First data-bucket id of each of the m data chunks (size m + 1,
  /// chunk_first_[m] == num_regions).
  std::vector<int> chunk_first_;
  /// Precomputed segment start positions (size m).
  std::vector<int64_t> segment_start_;
  LossOptions loss_;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_CHANNEL_H_
