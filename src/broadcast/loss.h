// Deterministic packet-loss models for the broadcast channel.
//
// Real wireless broadcast media drop and corrupt frames; the (1, m)
// interleaving scheme exists precisely so a client can recover by waiting
// for the next index repetition. LossOptions selects a model:
//
//  * kNone            — the paper's perfectly reliable medium (default).
//  * kIid             — every packet read is lost independently with
//                       probability `loss_rate`.
//  * kGilbertElliott  — two-state Markov fading: a Good state with loss
//                       probability `loss_good` and a Bad state with
//                       `loss_bad`, switching with `p_good_to_bad` /
//                       `p_bad_to_good` per packet. Models burst loss.
//
// Determinism contract: every draw is keyed by (loss seed, query stream,
// read stream) through Rng::MixStream, so outcomes depend only on the
// seed and the query's global index — never on thread count or on what
// other queries did. Each *attempt* of a query's access protocol draws
// from its own sub-stream; because an attempt reads a fixed number of
// packets (trace length + bucket packets) regardless of where earlier
// attempts failed, the set of loss rates at which attempt k succeeds is
// downward-closed — which makes a query's retry count monotone
// non-decreasing in the i.i.d. loss rate for a fixed seed (property-tested
// in tests/lossy_channel_test.cc).

#ifndef DTREE_BROADCAST_LOSS_H_
#define DTREE_BROADCAST_LOSS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace dtree::bcast {

enum class LossModel {
  kNone,
  kIid,
  kGilbertElliott,
};

struct LossOptions {
  LossModel model = LossModel::kNone;
  /// kIid: per-packet loss probability in [0, 1].
  double loss_rate = 0.0;
  /// kGilbertElliott parameters; probabilities in [0, 1] and the two
  /// transition probabilities must not both be zero.
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.5;
  double loss_good = 0.0;
  double loss_bad = 0.75;
  /// Loss-process seed, independent of the query-stream seed so the same
  /// query load can be replayed under different channel conditions.
  uint64_t seed = 0;
  /// Failed attempts a client tolerates before giving up; the protocol
  /// runs at most max_retries + 1 attempts. Must be >= 0.
  int max_retries = 16;

  bool enabled() const { return model != LossModel::kNone; }
};

/// Validates ranges; called by BroadcastChannel::Create.
Status ValidateLossOptions(const LossOptions& options);

/// Per-query loss process. Construct with the query's stream id, call
/// StartStream at each protocol phase (kProbeStream for the initial probe,
/// AttemptStream(k) for attempt k), then NextLost() once per packet read.
class LossProcess {
 public:
  static constexpr uint64_t kProbeStream = 0;
  static constexpr uint64_t AttemptStream(int attempt) {
    return static_cast<uint64_t>(attempt) + 1;
  }

  LossProcess(const LossOptions& options, uint64_t query_stream)
      : options_(options),
        query_key_(Rng::MixStream(options.seed, query_stream)),
        rng_(0) {
    StartStream(kProbeStream);
  }

  bool enabled() const { return options_.enabled(); }

  /// Re-keys the process onto an independent sub-stream. For
  /// kGilbertElliott the channel state is redrawn from the stationary
  /// distribution (the time between attempts dwarfs the fade coherence
  /// time, so attempts see independent channel states).
  void StartStream(uint64_t stream);

  /// Whether the next packet read is lost/corrupted. Never true when the
  /// model is kNone; draws nothing when disabled.
  bool NextLost();

 private:
  LossOptions options_;
  uint64_t query_key_;
  Rng rng_;
  bool bad_ = false;  ///< kGilbertElliott channel state
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_LOSS_H_
