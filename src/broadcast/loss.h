// Deterministic packet-loss models for the broadcast channel.
//
// Real wireless broadcast media drop and corrupt frames; the (1, m)
// interleaving scheme exists precisely so a client can recover by waiting
// for the next index repetition. LossOptions selects a model:
//
//  * kNone            — the paper's perfectly reliable medium (default).
//  * kIid             — every packet read is lost independently with
//                       probability `loss_rate`.
//  * kGilbertElliott  — two-state Markov fading: a Good state with loss
//                       probability `loss_good` and a Bad state with
//                       `loss_bad`, switching with `p_good_to_bad` /
//                       `p_bad_to_good` per packet. Models burst loss.
//
// Determinism contract: every draw is keyed by (loss seed, query stream,
// read stream) through Rng::MixStream, so outcomes depend only on the
// seed and the query's global index — never on thread count or on what
// other queries did. Each *attempt* of a query's access protocol draws
// from its own sub-stream; because an attempt reads a fixed number of
// packets (trace length + bucket packets) regardless of where earlier
// attempts failed, the set of loss rates at which attempt k succeeds is
// downward-closed — which makes a query's retry count monotone
// non-decreasing in the i.i.d. loss rate for a fixed seed (property-tested
// in tests/lossy_channel_test.cc).

#ifndef DTREE_BROADCAST_LOSS_H_
#define DTREE_BROADCAST_LOSS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace dtree::bcast {

enum class LossModel {
  kNone,
  kIid,
  kGilbertElliott,
};

/// Bit-error models for *delivered* packets. A lost packet never arrives;
/// a corrupted one arrives with flipped bits, and the CRC-32 frame trailer
/// (broadcast/frame.h) is what turns that into a detectable kDataLoss
/// instead of a silently misrouted pointer chase. The simulator therefore
/// models corruption at packet granularity: a frame of b bits read under
/// bit-error rate e is corrupted with probability 1 - (1 - e)^b (CRC-32's
/// residual undetected-error probability, ~2^-32, is treated as zero).
enum class CorruptionModel {
  kNone,
  /// Every bit of a delivered frame flips independently with probability
  /// `bit_error_rate`.
  kIidBits,
  /// Two-state Markov fading over *bit*-error rates: `ber_good` /
  /// `ber_bad` per state, state switching per packet read with
  /// `p_good_to_bad` / `p_bad_to_good`. Models burst bit errors.
  kBurstBits,
};

struct CorruptionOptions {
  CorruptionModel model = CorruptionModel::kNone;
  /// kIidBits: per-bit flip probability in [0, 1].
  double bit_error_rate = 0.0;
  /// kBurstBits parameters; probabilities in [0, 1] and the two
  /// transition probabilities must not both be zero.
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.5;
  double ber_good = 0.0;
  double ber_bad = 1e-3;
  /// Corruption-process seed. Independent of both the query-stream seed
  /// and the loss seed: the corruption process draws from its own RNG
  /// sub-streams, so enabling it never perturbs a single loss draw (and
  /// a disabled or zero-rate model is bit-identical to today).
  uint64_t seed = 0;

  bool enabled() const { return model != CorruptionModel::kNone; }
};

struct LossOptions {
  LossModel model = LossModel::kNone;
  /// kIid: per-packet loss probability in [0, 1].
  double loss_rate = 0.0;
  /// kGilbertElliott parameters; probabilities in [0, 1] and the two
  /// transition probabilities must not both be zero.
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.5;
  double loss_good = 0.0;
  double loss_bad = 0.75;
  /// Loss-process seed, independent of the query-stream seed so the same
  /// query load can be replayed under different channel conditions.
  uint64_t seed = 0;
  /// Failed attempts a client tolerates before giving up; the protocol
  /// runs at most max_retries + 1 attempts. Must be >= 0.
  int max_retries = 16;
  /// Bit-corruption model applied to *delivered* packets (on top of, and
  /// independent from, the erasure model above).
  CorruptionOptions corruption;
  /// Degradation ladder, final rung: after the retry budget is exhausted
  /// the client may abandon the index and linearly scan the broadcast for
  /// its data bucket, for at most this many scan cycles, before reporting
  /// `unrecoverable`. 0 (the default) disables the fallback and preserves
  /// the pre-existing give-up behavior bit-for-bit.
  int fallback_scan_cycles = 0;
  /// Version-skew rung (broadcast/versioned.h): how many observed epoch
  /// switches a query tolerates — each switch abandons partial state and
  /// re-tunes into the new epoch's index — before giving up with
  /// GiveUpStage::kEpochChurn. Must be >= 0; irrelevant on a
  /// single-version broadcast.
  int max_epoch_switches = 8;

  bool enabled() const { return model != LossModel::kNone; }
  /// Any fault process active (erasures or bit corruption)?
  bool any_fault() const { return enabled() || corruption.enabled(); }
};

/// Validates ranges; called by BroadcastChannel::Create.
Status ValidateLossOptions(const LossOptions& options);

/// Validates ranges; called by ValidateLossOptions.
Status ValidateCorruptionOptions(const CorruptionOptions& options);

/// Per-query loss process. Construct with the query's stream id, call
/// StartStream at each protocol phase (kProbeStream for the initial probe,
/// AttemptStream(k) for attempt k), then NextLost() once per packet read.
class LossProcess {
 public:
  static constexpr uint64_t kProbeStream = 0;
  static constexpr uint64_t AttemptStream(int attempt) {
    return static_cast<uint64_t>(attempt) + 1;
  }
  /// Sub-stream for fallback-scan cycle k. Offset far above any attempt
  /// stream so the two families can never collide.
  static constexpr uint64_t FallbackStream(int cycle) {
    return (uint64_t{1} << 32) + static_cast<uint64_t>(cycle);
  }
  /// Sub-stream for pass k of the indexless baseline's bucket retrieval
  /// (BroadcastChannel::SimulateNoIndex). Its own family, disjoint from
  /// the probe / attempt / fallback streams, so a query's indexed and
  /// indexless simulations never share a draw.
  static constexpr uint64_t NoIndexStream(int pass) {
    return (uint64_t{1} << 33) + static_cast<uint64_t>(pass);
  }

  LossProcess(const LossOptions& options, uint64_t query_stream)
      : options_(options),
        query_key_(Rng::MixStream(options.seed, query_stream)),
        rng_(0) {
    StartStream(kProbeStream);
  }

  bool enabled() const { return options_.enabled(); }

  /// Re-keys the process onto an independent sub-stream. For
  /// kGilbertElliott the channel state is redrawn from the stationary
  /// distribution (the time between attempts dwarfs the fade coherence
  /// time, so attempts see independent channel states).
  void StartStream(uint64_t stream);

  /// Whether the next packet read is lost/corrupted. Never true when the
  /// model is kNone; draws nothing when disabled.
  bool NextLost();

 private:
  LossOptions options_;
  uint64_t query_key_;
  Rng rng_;
  bool bad_ = false;  ///< kGilbertElliott channel state
};

/// Per-query bit-corruption process, mirroring LossProcess but drawing
/// from its own RNG streams (keyed by the corruption seed) so the two
/// fault processes are statistically and bit-wise independent. Construct
/// with the framed packet size in bits; NextCorrupted() draws once per
/// *delivered* packet read and reports whether the frame arrived with at
/// least one flipped bit (which the CRC then detects).
class CorruptionProcess {
 public:
  CorruptionProcess(const CorruptionOptions& options, int frame_bits,
                    uint64_t query_stream);

  bool enabled() const { return options_.enabled(); }

  /// Re-keys onto an independent sub-stream; same stream ids as
  /// LossProcess (kProbeStream / AttemptStream / FallbackStream). For
  /// kBurstBits the fade state is redrawn from its stationary
  /// distribution.
  void StartStream(uint64_t stream);

  /// Whether the next delivered frame carries bit errors. Never true when
  /// the model is kNone; draws nothing when disabled.
  bool NextCorrupted();

 private:
  CorruptionOptions options_;
  uint64_t query_key_;
  Rng rng_;
  bool bad_ = false;        ///< kBurstBits fade state
  double p_frame_ = 0.0;      ///< kIidBits: per-frame corruption probability
  double p_frame_good_ = 0.0; ///< kBurstBits per-state frame probabilities
  double p_frame_bad_ = 0.0;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_LOSS_H_
