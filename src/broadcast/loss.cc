#include "broadcast/loss.h"

#include <cmath>
#include <string>

namespace dtree::bcast {

namespace {

Status CheckProbability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {  // negated to also catch NaN
    return Status::InvalidArgument(std::string(what) + " = " +
                                   std::to_string(p) +
                                   " is not a probability in [0, 1]");
  }
  return Status::OK();
}

/// P(at least one of `bits` independent flips at rate `ber`), computed as
/// -expm1(bits * log1p(-ber)) for accuracy at the tiny BERs radios see.
double FrameCorruptionProbability(double ber, int bits) {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  return -std::expm1(static_cast<double>(bits) * std::log1p(-ber));
}

}  // namespace

Status ValidateCorruptionOptions(const CorruptionOptions& options) {
  switch (options.model) {
    case CorruptionModel::kNone:
      return Status::OK();
    case CorruptionModel::kIidBits:
      return CheckProbability(options.bit_error_rate, "bit_error_rate");
    case CorruptionModel::kBurstBits:
      DTREE_RETURN_IF_ERROR(
          CheckProbability(options.p_good_to_bad, "corruption p_good_to_bad"));
      DTREE_RETURN_IF_ERROR(
          CheckProbability(options.p_bad_to_good, "corruption p_bad_to_good"));
      DTREE_RETURN_IF_ERROR(CheckProbability(options.ber_good, "ber_good"));
      DTREE_RETURN_IF_ERROR(CheckProbability(options.ber_bad, "ber_bad"));
      if (options.p_good_to_bad == 0.0 && options.p_bad_to_good == 0.0) {
        return Status::InvalidArgument(
            "burst-corruption chain needs a nonzero transition probability");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown corruption model");
}

Status ValidateLossOptions(const LossOptions& options) {
  if (options.max_retries < 0) {
    return Status::InvalidArgument("max_retries must be non-negative");
  }
  if (options.fallback_scan_cycles < 0) {
    return Status::InvalidArgument("fallback_scan_cycles must be non-negative");
  }
  if (options.max_epoch_switches < 0) {
    return Status::InvalidArgument("max_epoch_switches must be non-negative");
  }
  DTREE_RETURN_IF_ERROR(ValidateCorruptionOptions(options.corruption));
  switch (options.model) {
    case LossModel::kNone:
      return Status::OK();
    case LossModel::kIid:
      return CheckProbability(options.loss_rate, "loss_rate");
    case LossModel::kGilbertElliott:
      DTREE_RETURN_IF_ERROR(
          CheckProbability(options.p_good_to_bad, "p_good_to_bad"));
      DTREE_RETURN_IF_ERROR(
          CheckProbability(options.p_bad_to_good, "p_bad_to_good"));
      DTREE_RETURN_IF_ERROR(CheckProbability(options.loss_good, "loss_good"));
      DTREE_RETURN_IF_ERROR(CheckProbability(options.loss_bad, "loss_bad"));
      if (options.p_good_to_bad == 0.0 && options.p_bad_to_good == 0.0) {
        return Status::InvalidArgument(
            "Gilbert-Elliott chain needs a nonzero transition probability");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown loss model");
}

void LossProcess::StartStream(uint64_t stream) {
  if (!enabled()) return;
  rng_ = Rng(Rng::MixStream(query_key_, stream));
  if (options_.model == LossModel::kGilbertElliott) {
    // Stationary state occupancy: P(bad) = g2b / (g2b + b2g).
    const double denom = options_.p_good_to_bad + options_.p_bad_to_good;
    const double stationary_bad =
        denom > 0.0 ? options_.p_good_to_bad / denom : 0.0;
    bad_ = rng_.Uniform(0.0, 1.0) < stationary_bad;
  }
}

bool LossProcess::NextLost() {
  switch (options_.model) {
    case LossModel::kNone:
      return false;
    case LossModel::kIid:
      // Uniform() is in [0, 1): rate 0 never loses (and the draw keeps the
      // stream aligned with nonzero rates), rate 1 always loses.
      return rng_.Uniform(0.0, 1.0) < options_.loss_rate;
    case LossModel::kGilbertElliott: {
      const double p = bad_ ? options_.loss_bad : options_.loss_good;
      const bool lost = rng_.Uniform(0.0, 1.0) < p;
      const double flip =
          bad_ ? options_.p_bad_to_good : options_.p_good_to_bad;
      if (rng_.Uniform(0.0, 1.0) < flip) bad_ = !bad_;
      return lost;
    }
  }
  return false;
}

CorruptionProcess::CorruptionProcess(const CorruptionOptions& options,
                                     int frame_bits, uint64_t query_stream)
    : options_(options),
      query_key_(Rng::MixStream(options.seed, query_stream)),
      rng_(0) {
  p_frame_ = FrameCorruptionProbability(options_.bit_error_rate, frame_bits);
  p_frame_good_ = FrameCorruptionProbability(options_.ber_good, frame_bits);
  p_frame_bad_ = FrameCorruptionProbability(options_.ber_bad, frame_bits);
  StartStream(LossProcess::kProbeStream);
}

void CorruptionProcess::StartStream(uint64_t stream) {
  if (!enabled()) return;
  rng_ = Rng(Rng::MixStream(query_key_, stream));
  if (options_.model == CorruptionModel::kBurstBits) {
    const double denom = options_.p_good_to_bad + options_.p_bad_to_good;
    const double stationary_bad =
        denom > 0.0 ? options_.p_good_to_bad / denom : 0.0;
    bad_ = rng_.Uniform(0.0, 1.0) < stationary_bad;
  }
}

bool CorruptionProcess::NextCorrupted() {
  switch (options_.model) {
    case CorruptionModel::kNone:
      return false;
    case CorruptionModel::kIidBits:
      // Uniform() is in [0, 1): BER 0 never corrupts (and the draw keeps
      // the stream aligned with nonzero rates).
      return rng_.Uniform(0.0, 1.0) < p_frame_;
    case CorruptionModel::kBurstBits: {
      const double p = bad_ ? p_frame_bad_ : p_frame_good_;
      const bool corrupted = rng_.Uniform(0.0, 1.0) < p;
      const double flip =
          bad_ ? options_.p_bad_to_good : options_.p_good_to_bad;
      if (rng_.Uniform(0.0, 1.0) < flip) bad_ = !bad_;
      return corrupted;
    }
  }
  return false;
}

}  // namespace dtree::bcast
