// Experiment driver: runs a query load against an air index over a
// (1, m) broadcast channel and aggregates the paper's three metrics.
//
// The driver is parallel but deterministic: the query stream is split into
// a fixed number of shards (independent of thread count), each shard draws
// from its own RNG stream (Rng::ForStream(seed, shard)) and accumulates
// partial sums privately, and partials are merged in shard order. The same
// (seed, num_queries) therefore produces bit-identical ExperimentResults
// for any ExperimentOptions::num_threads.

#ifndef DTREE_BROADCAST_EXPERIMENT_H_
#define DTREE_BROADCAST_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/channel.h"
#include "broadcast/region_cache.h"
#include "broadcast/trace.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "subdivision/subdivision.h"
#include "workload/mobility.h"

namespace dtree::bcast {

/// How query points are drawn.
enum class QueryDistribution {
  /// Uniform over data regions (each region equally likely, point uniform
  /// inside it) — the paper's "uniform access distribution over the data
  /// regions".
  kUniformRegion,
  /// Uniform over the service area.
  kUniformArea,
  /// Regions drawn with the probabilities in
  /// ExperimentOptions::region_weights (skewed-access experiments).
  kWeightedRegion,
};

struct ExperimentOptions {
  int packet_capacity = 0;
  /// Queries to run. 0 is a legal degenerate load: the run returns the
  /// channel-layout fields with every sum, mean, min and max pinned to
  /// zero (never NaN). Negative is InvalidArgument.
  int num_queries = 100000;
  uint64_t seed = 42;
  QueryDistribution distribution = QueryDistribution::kUniformRegion;
  /// Per-region access weights for kWeightedRegion (any non-negative
  /// scale, one entry per region).
  std::vector<double> region_weights;
  size_t data_instance_size = kDataInstanceSize;
  int m = 0;  ///< 0 = optimal
  /// Threads to run query shards on; 0 = hardware concurrency. Results do
  /// not depend on this value — only wall-clock time does.
  int num_threads = 0;
  /// Channel fault injection. Each query's loss process is keyed by its
  /// global index (loss.seed, query i), which the owning shard computes
  /// locally, so lossy results stay bit-identical across thread counts;
  /// with the model disabled (or loss rate 0) every QueryOutcome matches
  /// the lossless path bit-for-bit.
  LossOptions loss;
  /// Opt-in per-query tracing (not owned). Each shard buffers its
  /// queries' traces privately; after the parallel section the driver
  /// replays them into the sink ordered by global query index, so the
  /// sink sees one identical, single-threaded event stream for any
  /// num_threads. Tracing is observational only: enabling it changes no
  /// metric bit (it draws nothing from any RNG).
  TraceSink* trace_sink = nullptr;
  /// Opt-in moving-client workload: each query shard becomes one mobile
  /// client whose consecutive query points follow a mobility walk
  /// (workload/mobility.h) instead of i.i.d. draws. The walk draws only
  /// from its dedicated stream family (kMobilityStreamBase + shard), so
  /// mobility-off runs are bit-identical to today.
  workload::MobilityOptions mobility;
  /// Opt-in per-shard semantic region cache (broadcast/region_cache.h):
  /// consulted before probing / tuning in; a hit costs zero latency and
  /// zero tuning. The cache draws no RNG, and with cache.enabled false
  /// the run is bit-identical to today.
  CacheOptions cache;
};

/// Histogram names under which RunExperiment records per-query
/// distributions in ExperimentResult::metrics.
inline constexpr char kLatencyHist[] = "latency";
inline constexpr char kTuningIndexHist[] = "tuning_index";
inline constexpr char kTuningTotalHist[] = "tuning_total";
inline constexpr char kRetriesHist[] = "retries";
inline constexpr char kLostPacketsHist[] = "lost_packets";
inline constexpr char kCorruptedPacketsHist[] = "corrupted_packets";

/// Draws query points for a distribution; precomputes the cumulative
/// weight table once so skewed loads sample in O(log N), and materializes
/// every region polygon once so the per-draw rejection loop never copies
/// vertices. Draw() is const and safe to call concurrently with distinct
/// Rngs.
class QuerySampler {
 public:
  /// Fails when kWeightedRegion is requested with a missing or malformed
  /// weight vector.
  static Result<QuerySampler> Create(const sub::Subdivision& subdivision,
                                     QueryDistribution distribution,
                                     std::vector<double> weights);

  geom::Point Draw(Rng* rng) const;

 private:
  QuerySampler(const sub::Subdivision& subdivision,
               QueryDistribution distribution, std::vector<double> cumulative,
               std::vector<geom::Polygon> polygons)
      : sub_(subdivision), distribution_(distribution),
        cumulative_(std::move(cumulative)), polygons_(std::move(polygons)) {}

  geom::Point DrawInRegion(int region, Rng* rng) const;

  const sub::Subdivision& sub_;
  QueryDistribution distribution_;
  std::vector<double> cumulative_;       ///< kWeightedRegion only
  std::vector<geom::Polygon> polygons_;  ///< cached; empty for kUniformArea
};

/// Aggregated results of one (index, dataset, packet-capacity) cell.
struct ExperimentResult {
  std::string index_name;
  int packet_capacity = 0;
  int m = 0;
  int index_packets = 0;
  size_t index_bytes = 0;
  int64_t data_packets = 0;
  int64_t cycle_packets = 0;

  double mean_latency = 0.0;            ///< packets
  double optimal_latency = 0.0;         ///< data_packets / 2
  double normalized_latency = 0.0;      ///< mean / optimal (Fig. 10)
  double mean_tuning_index = 0.0;       ///< packets, index search (Fig. 12)
  double mean_tuning_total = 0.0;       ///< probe + index + data
  double mean_tuning_noindex = 0.0;     ///< listening without an index
  /// (tuning saved) / (latency overhead) — Fig. 13.
  double indexing_efficiency = 0.0;
  /// Index size / database size (Fig. 11).
  double normalized_index_size = 0.0;

  // Lossy-channel statistics; all zero when ExperimentOptions::loss is
  // disabled (or never fires). Unrecoverable queries stay included in the
  // mean latency/tuning (their latency measures time until giving up).
  double mean_retries = 0.0;            ///< re-tunes per query
  double mean_lost_packets = 0.0;       ///< erased reads per query
  double mean_corrupted_packets = 0.0;  ///< CRC-rejected reads per query
  int64_t total_retries = 0;
  int64_t total_corrupted_packets = 0;
  int64_t unrecoverable_queries = 0;
  /// Queries answered (or abandoned) through the fallback linear scan.
  int64_t fallback_queries = 0;

  // Region-cache statistics (broadcast/region_cache.h); all zero when
  // ExperimentOptions::cache is disabled. Hits are counted in every mean
  // above with zero latency and zero tuning — that IS the saving.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;

  // Distribution statistics. The means above describe the average client;
  // a mobile client's energy budget is set by the tail, so the driver
  // also records per-query histograms (see the k*Hist names) from which
  // p50/p95/p99 are derived. Min/max are exact; histogram percentiles are
  // bucket-approximate (<= ~9% relative error) and, being derived from
  // integer bucket counts merged in shard order, identical for any thread
  // count and any shard execution order.
  double min_latency = 0.0;             ///< packets, exact
  double max_latency = 0.0;
  double min_tuning_total = 0.0;        ///< packets, exact
  double max_tuning_total = 0.0;
  /// Per-query distributions: kLatencyHist, kTuningIndexHist,
  /// kTuningTotalHist, kRetriesHist, kLostPacketsHist,
  /// kCorruptedPacketsHist.
  MetricsRegistry metrics;
};

/// Runs the experiment. Every query is answered through the index's Probe
/// and simulated on the channel; results are validated against the
/// brute-force locator when `oracle` is non-null (mismatches fail the run,
/// except for points within geom::kMergeEps*100 of a region border where
/// the answer is numerically ambiguous).
///
/// Queries run on options.num_threads threads; `index` must honor the
/// AirIndex::Probe concurrency contract (all four structures in this
/// repository do).
Result<ExperimentResult> RunExperiment(const AirIndex& index,
                                       const sub::Subdivision& subdivision,
                                       const sub::PointLocator* oracle,
                                       const ExperimentOptions& options);

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_EXPERIMENT_H_
