#include "broadcast/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>

#include "common/check.h"

namespace dtree::bcast {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kProbe:
      return "probe";
    case TraceEventKind::kDoze:
      return "doze";
    case TraceEventKind::kIndexRead:
      return "index";
    case TraceEventKind::kBucketRead:
      return "bucket";
    case TraceEventKind::kLoss:
      return "loss";
    case TraceEventKind::kRetune:
      return "retune";
    case TraceEventKind::kCorruption:
      return "corruption_detected";
    case TraceEventKind::kFallbackScan:
      return "fallback_scan";
    case TraceEventKind::kEpochSwitch:
      return "epoch_switch";
    case TraceEventKind::kCacheHit:
      return "cache_hit";
  }
  return "?";
}

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  DTREE_DCHECK(n >= 0 && n < static_cast<int>(sizeof(buf)));
  out->append(buf, static_cast<size_t>(std::max(n, 0)));
}

/// Escapes the label for embedding in a JSON string. Labels are cell ids
/// (dataset/index/capacity), so this only ever sees printable ASCII, but
/// quotes and backslashes must not break the line format.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      AppendF(out, "\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string FormatQueryTraceJson(const QueryTrace& trace,
                                 const std::string& label) {
  std::string out;
  out.reserve(128 + trace.events.size() * 48);
  AppendF(&out, "{\"q\": %" PRIu64, trace.query_index);
  if (trace.client_id >= 0) {
    AppendF(&out, ", \"client\": %lld",
            static_cast<long long>(trace.client_id));
  }
  if (!label.empty()) {
    out += ", \"cell\": ";
    AppendJsonString(&out, label);
  }
  AppendF(&out, ", \"x\": %.10g, \"y\": %.10g, \"region\": %d", trace.x,
          trace.y, trace.region);
  AppendF(&out, ", \"arrival\": %.10g, \"latency\": %.10g", trace.arrival,
          trace.latency);
  AppendF(&out, ", \"tuning\": %d, \"retries\": %d, \"lost\": %d",
          trace.tuning_total, trace.retries, trace.lost_packets);
  AppendF(&out, ", \"corrupted\": %d, \"fallback\": %s",
          trace.corrupted_packets, trace.fallback_scan ? "true" : "false");
  AppendF(&out, ", \"unrecoverable\": %s",
          trace.unrecoverable ? "true" : "false");
  if (trace.versioned) {
    AppendF(&out, ", \"epoch\": %u, \"epoch_switches\": %d",
            static_cast<unsigned>(trace.epoch), trace.epoch_switches);
  }
  if (trace.cache_hit) out += ", \"cache_hit\": true";
  out += ", \"events\": [";
  for (size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    if (i > 0) out += ", ";
    AppendF(&out, "{\"t\": \"%s\", \"pos\": %lld",
            TraceEventKindName(e.kind), static_cast<long long>(e.pos));
    switch (e.kind) {
      case TraceEventKind::kDoze:
        AppendF(&out, ", \"dur\": %.10g", e.dur);
        break;
      case TraceEventKind::kIndexRead:
        AppendF(&out, ", \"pkt\": %d", e.packet);
        if (e.node >= 0) {
          AppendF(&out, ", \"node\": %d, \"depth\": %d", e.node, e.depth);
        }
        break;
      case TraceEventKind::kBucketRead:
        AppendF(&out, ", \"n\": %d", e.packet);
        break;
      case TraceEventKind::kRetune:
        AppendF(&out, ", \"attempt\": %d", e.attempt);
        break;
      case TraceEventKind::kFallbackScan:
        AppendF(&out, ", \"n\": %d, \"attempt\": %d", e.packet, e.attempt);
        break;
      case TraceEventKind::kEpochSwitch:
        AppendF(&out, ", \"epoch\": %d, \"attempt\": %d", e.packet,
                e.attempt);
        break;
      case TraceEventKind::kCacheHit:
        AppendF(&out, ", \"epoch\": %d", e.packet);
        break;
      case TraceEventKind::kProbe:
      case TraceEventKind::kLoss:
      case TraceEventKind::kCorruption:
        break;
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    std::fprintf(stderr, "JsonlTraceSink: cannot write %s\n", path.c_str());
  }
}

JsonlTraceSink::~JsonlTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlTraceSink::Consume(const QueryTrace& trace) {
  const std::string line = FormatQueryTraceJson(trace, label_);
  if (out_ != nullptr) {
    *out_ += line;
    out_->push_back('\n');
  } else if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
  }
  ++lines_;
}

CycleProfiler::CycleProfiler(int64_t cycle_packets, int position_bins)
    : cycle_packets_(cycle_packets) {
  DTREE_CHECK(cycle_packets > 0);
  DTREE_CHECK(position_bins > 0);
  position_reads_.assign(static_cast<size_t>(position_bins), 0);
}

void CycleProfiler::BinPosition(int64_t pos, int64_t packets) {
  const int64_t bins = static_cast<int64_t>(position_reads_.size());
  for (int64_t k = 0; k < packets; ++k) {
    const int64_t in_cycle = (pos + k) % cycle_packets_;
    position_reads_[static_cast<size_t>(in_cycle * bins / cycle_packets_)]++;
  }
}

void CycleProfiler::Consume(const QueryTrace& trace) {
  ++queries_;
  latency_.Add(trace.latency);
  tuning_.Add(static_cast<double>(trace.tuning_total));
  retries_.Add(static_cast<double>(trace.retries));
  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case TraceEventKind::kProbe:
        BinPosition(e.pos, 1);
        break;
      case TraceEventKind::kDoze:
        doze_.Add(e.dur);
        break;
      case TraceEventKind::kIndexRead:
        BinPosition(e.pos, 1);
        if (e.depth >= 0) {
          if (static_cast<size_t>(e.depth) >= level_reads_.size()) {
            level_reads_.resize(static_cast<size_t>(e.depth) + 1, 0);
          }
          ++level_reads_[static_cast<size_t>(e.depth)];
        } else {
          ++unattributed_reads_;
        }
        break;
      case TraceEventKind::kBucketRead:
        BinPosition(e.pos, e.packet);
        break;
      case TraceEventKind::kFallbackScan:
        // Packets listened to while scanning for the bucket: awake time,
        // binned like any other read.
        BinPosition(e.pos, e.packet);
        break;
      case TraceEventKind::kLoss:
      case TraceEventKind::kRetune:
      case TraceEventKind::kCorruption:
      case TraceEventKind::kEpochSwitch:
      case TraceEventKind::kCacheHit:
        // A cache hit keeps the receiver asleep: no awake packets to bin.
        break;
    }
  }
}

}  // namespace dtree::bcast
