// System parameters from Table 2 of the paper.

#ifndef DTREE_BROADCAST_PARAMS_H_
#define DTREE_BROADCAST_PARAMS_H_

#include <cstddef>

namespace dtree::bcast {

/// Serialized field sizes, in bytes (Table 2).
inline constexpr size_t kBidSize = 2;           ///< node id, all indexes
inline constexpr size_t kDTreeHeaderSize = 2;   ///< D-tree only; others 0
inline constexpr size_t kPointerSize = 4;       ///< D-tree / trian / trap
inline constexpr size_t kRStarPointerSize = 2;  ///< R*-tree packet offsets
inline constexpr size_t kCoordinateSize = 4;    ///< one scalar coordinate
inline constexpr size_t kDataInstanceSize = 1024;  ///< 1 KB per instance

/// Packet capacities evaluated in the paper: 64 B .. 2 KB.
inline constexpr int kPacketCapacities[] = {64, 128, 256, 512, 1024, 2048};
inline constexpr int kMinPacketCapacity = 64;
inline constexpr int kMaxPacketCapacity = 2048;

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_PARAMS_H_
