// Event-driven fleet engine: millions of concurrent clients sharing one
// (1, m) broadcast cycle, simulated in a single process.
//
// The experiment driver (broadcast/experiment.h) replays independent
// queries through BroadcastChannel::Simulate one at a time — there is no
// notion of a population. RunFleet instead advances a single broadcast
// clock and a priority queue of client wake-ups; each client is a
// lightweight state machine that dozes between the packets it must hear
// (doze -> probe -> index descent -> bucket read, plus the existing
// retry / re-tune / fallback ladder rungs), issues queries from its own
// Poisson arrival process, and may churn (leave, with a fresh client
// re-occupying the slot).
//
// Protocol fidelity: the per-query state machine replays the exact packet
// arithmetic, RNG draw order and trace-event order of
// BroadcastChannel::Simulate, only spread across wake-up events in
// absolute broadcast time instead of one synchronous call. Every packet
// position of a query arriving at absolute time A is the position for
// arrival fmod(A, cycle) shifted by the same whole number of cycles, and
// both arithmetic forms are exact in double, so a fleet of one client
// issuing one query reproduces Simulate's QueryOutcome field-for-field —
// the differential anchor pinned in tests/fleet_test.cc.
//
// Determinism contract (same shape as RunExperiment's): clients are split
// into kFleetShards fixed shards owning contiguous slot ranges; every
// random draw comes from a stream keyed by (options.seed, client id,
// purpose) via Rng::MixStream, never from shared state; each shard runs
// its own event loop single-threaded and accumulates privately; shards
// are merged in shard order. FleetResult is therefore bit-identical for
// any num_threads. Client ids outlive churn: the g-th occupant of slot s
// has client_id = s + g * num_clients, so a session's draws depend only
// on (seed, slot, generation).

#ifndef DTREE_BROADCAST_FLEET_H_
#define DTREE_BROADCAST_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "broadcast/air_index.h"
#include "broadcast/channel.h"
#include "broadcast/experiment.h"
#include "broadcast/trace.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "subdivision/subdivision.h"

namespace dtree::bcast {

class FleetTelemetry;  // broadcast/telemetry.h

/// Fixed shard count for the fleet event loops; like the experiment
/// driver's kQueryShards, chosen once and never derived from thread
/// count, so shard s always owns the same slots and the merged result is
/// independent of how shards are scheduled onto threads.
inline constexpr int kFleetShards = 64;

struct FleetOptions {
  int packet_capacity = 0;      ///< required, > 0
  /// Concurrent client slots, >= 1. Memory is O(num_clients); one
  /// process comfortably holds millions (the per-client footprint is a
  /// few hundred bytes — see DESIGN.md §13).
  int64_t num_clients = 1;
  /// Simulation horizon in broadcast cycles, > 0. Queries *issued* before
  /// the horizon run to completion past it and count fully; a client
  /// whose next arrival falls at or beyond the horizon retires.
  double sim_cycles = 4.0;
  /// Mean queries a client issues per broadcast cycle, > 0: thinking
  /// time between a query's arrival and the next is exponential with
  /// mean cycle_packets / queries_per_cycle (clamped so a client never
  /// issues its next query before the previous one finished).
  double queries_per_cycle = 1.0;
  /// Churn: probability in [0, 1] that a client leaves after completing
  /// a query. The slot is re-occupied by a fresh client (next
  /// generation, new RNG identity) after an exponential re-join delay of
  /// the same mean as the thinking time.
  double churn = 0.0;
  uint64_t seed = 42;
  QueryDistribution distribution = QueryDistribution::kUniformRegion;
  /// Per-region access weights for kWeightedRegion.
  std::vector<double> region_weights;
  size_t data_instance_size = kDataInstanceSize;
  int m = 0;  ///< index repetitions per cycle; 0 = optimal
  /// Threads to run client shards on; 0 = hardware concurrency. Results
  /// do not depend on this value — only wall-clock time does.
  int num_threads = 0;
  /// Channel fault injection; every query plays the same degradation
  /// ladder as BroadcastChannel::Simulate.
  LossOptions loss;
  /// Opt-in per-query tracing (not owned). Each shard buffers privately;
  /// traces are replayed into the sink in shard order after the parallel
  /// section (ordered by slot, then by completion within the shard's
  /// event loop — deterministic for any thread count). Fleet traces
  /// carry QueryTrace::client_id and use the client's own query counter
  /// as query_index.
  TraceSink* trace_sink = nullptr;
  /// Opt-in windowed telemetry (not owned; broadcast/telemetry.h).
  /// RunFleet calls Reset(cycle_packets, num_shards) before the parallel
  /// section, each shard engine records into its private TelemetryShard,
  /// and MergeShards() runs after the shard-ordered merge — every
  /// exported byte is identical for any num_threads. When null the
  /// engine's event sites pay one predicted branch each and FleetResult
  /// is bit-identical to a run without telemetry (golden-pinned).
  FleetTelemetry* telemetry = nullptr;
  /// Opt-in moving clients: each client's consecutive query points follow
  /// a mobility walk (workload/mobility.h) instead of i.i.d. sampler
  /// draws. Query q's step draws from the dedicated stream
  /// FleetMobilityStream(q) on the client's key — disjoint from the
  /// 3q+{1,2,3} families — so mobility-off runs are bit-identical to
  /// today. The walk resets on churn (a new occupant starts fresh).
  workload::MobilityOptions mobility;
  /// Opt-in per-client semantic region cache (broadcast/region_cache.h),
  /// consulted before tuning in. A hit completes the query at its arrival
  /// time with zero latency and zero tuning. The cache persists across a
  /// client's queries within a generation, is flushed when the client
  /// observes an epoch switch (RunFleetVersioned), and dies on churn. It
  /// draws no RNG; cache.enabled false is bit-identical to today.
  CacheOptions cache;
};

/// Aggregated results of one fleet run. All means are per *completed*
/// (or given-up) query; a run whose horizon is too short for any query
/// to finish reports zero queries and all-zero means, never NaN.
struct FleetResult {
  std::string index_name;
  int packet_capacity = 0;
  int m = 0;
  int index_packets = 0;
  int64_t data_packets = 0;
  int64_t cycle_packets = 0;
  int64_t horizon_packets = 0;  ///< round(sim_cycles * cycle_packets)

  int64_t num_clients = 0;  ///< concurrent slots simulated
  int64_t sessions = 0;     ///< client sessions that joined (>= num_clients
                            ///< when churn replaces departures in time)
  int64_t departures = 0;   ///< sessions that left through churn
  int64_t queries = 0;      ///< queries completed or explicitly given up

  double mean_latency = 0.0;
  double mean_tuning_index = 0.0;
  double mean_tuning_total = 0.0;
  double mean_retries = 0.0;
  double mean_lost_packets = 0.0;
  double mean_corrupted_packets = 0.0;
  int64_t total_retries = 0;
  int64_t total_lost_packets = 0;
  int64_t total_corrupted_packets = 0;
  int64_t unrecoverable_queries = 0;
  int64_t fallback_queries = 0;
  /// Version-skew rung accounting (RunFleetVersioned; all zero for
  /// RunFleet): epoch switches observed across all queries, queries that
  /// gave up with GiveUpStage::kEpochChurn, and the per-query mean.
  int64_t total_epoch_switches = 0;
  int64_t epoch_churn_queries = 0;
  double mean_epoch_switches = 0.0;
  /// Region-cache accounting (FleetOptions::cache); cache_enabled echoes
  /// the option so exporters know whether zero counters mean "cache off"
  /// or "cache cold". Hits are counted in `queries` and in every mean
  /// with zero latency and zero tuning — that IS the saving.
  bool cache_enabled = false;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
  double min_latency = 0.0;
  double max_latency = 0.0;
  double min_tuning_total = 0.0;
  double max_tuning_total = 0.0;
  /// Per-query distributions under the same histogram names as
  /// RunExperiment (kLatencyHist, kTuningIndexHist, kTuningTotalHist,
  /// kRetriesHist, kLostPacketsHist, kCorruptedPacketsHist; versioned
  /// runs add kEpochSwitchesHist).
  MetricsRegistry metrics;
};

/// Per-query epoch-switch distribution, recorded only by
/// RunFleetVersioned (legacy RunFleet results stay bit-identical).
inline constexpr char kEpochSwitchesHist[] = "epoch_switches";

/// RNG identity of one client session: MixStream(seed, client_id) with
/// client_id = slot + generation * num_clients. Exposed so tests can
/// reproduce a fleet client's draws independently of the engine.
inline uint64_t FleetClientKey(uint64_t seed, uint64_t client_id) {
  return Rng::MixStream(seed, client_id);
}

/// Per-client sub-stream ids, all keyed off FleetClientKey. Stream 0 is
/// the generation-0 join draw; query q then owns streams 3q+1..3q+3:
///   3q+1 — query point (rejection sampling, private ephemeral Rng)
///   3q+2 — post-query schedule (thinking time, churn, re-join delay)
///   3q+3 — the loss_stream passed to the channel's fault processes
/// (the value Simulate would need to reproduce the query's ladder).
inline uint64_t FleetJoinStream() { return 0; }
inline uint64_t FleetPointStream(uint64_t query_index) {
  return 3 * query_index + 1;
}
inline uint64_t FleetScheduleStream(uint64_t query_index) {
  return 3 * query_index + 2;
}
inline uint64_t FleetQueryLossStream(uint64_t client_key,
                                     uint64_t query_index) {
  return Rng::MixStream(client_key, 3 * query_index + 3);
}
/// Mobility walk stream for query q, used instead of FleetPointStream
/// when FleetOptions::mobility is enabled. Based at
/// workload::kMobilityStreamBase (1 << 40), far above every 3q+k stream a
/// session can reach, so enabling mobility perturbs no other draw.
inline uint64_t FleetMobilityStream(uint64_t query_index) {
  return workload::kMobilityStreamBase + query_index;
}

/// Runs the fleet. `index` must honor the AirIndex::Probe concurrency
/// contract (shards probe from many threads at once); `subdivision` backs
/// the query sampler. Returns InvalidArgument on malformed options and
/// propagates any probe / trace-validation failure, first failing shard
/// wins — exactly like RunExperiment.
Result<FleetResult> RunFleet(const AirIndex& index,
                             const sub::Subdivision& subdivision,
                             const FleetOptions& options);

/// One epoch's stretch of a versioned fleet broadcast: the index and
/// subdivision the server published for that epoch (both borrowed, must
/// outlive the call) plus the span length in that epoch's own broadcast
/// cycles. Mirrors bcast::EpochSpan but at the fleet's level of
/// abstraction — the channel layout is derived from the index inside
/// RunFleetVersioned with the same ChannelOptions as RunFleet.
struct FleetEpoch {
  const AirIndex* index = nullptr;
  const sub::Subdivision* subdivision = nullptr;
  uint16_t epoch = 0;
  /// Whole cycles this epoch stays on the air; must be >= 1 for every
  /// epoch but the last, which broadcasts forever (value ignored).
  int64_t cycles = 1;
};

/// Runs the fleet over a timeline of broadcast epochs (the version-skew
/// rung of the degradation ladder — see broadcast/versioned.h for the
/// protocol contract). Clients that doze across an epoch boundary detect
/// the skew on their next delivered read, abandon partial state, re-probe
/// the new epoch's index, and re-tune; queries observing more than
/// LossOptions::max_epoch_switches give up with GiveUpStage::kEpochChurn
/// rather than risk answering from a stale layout. Determinism is the
/// same as RunFleet's: FleetResult, traces and telemetry are
/// bit-identical for any num_threads. With a single epoch the simulation
/// is exactly RunFleet's (every shared FleetResult field matches
/// bitwise); options.sim_cycles and FleetResult's channel-shape fields
/// are measured against epoch 0's cycle. All epochs must share
/// options.packet_capacity / data_instance_size (the frame wire format
/// cannot change mid-broadcast).
Result<FleetResult> RunFleetVersioned(const std::vector<FleetEpoch>& epochs,
                                      const FleetOptions& options);

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_FLEET_H_
