// Flat packet storage: one contiguous byte buffer holding every packet of
// a broadcast cycle, plus a non-owning view type the hardened readers use.
//
// The legacy representation — std::vector<std::vector<uint8_t>> — costs
// one heap allocation per packet and scatters consecutive packets across
// the heap, which the flat-arena probe work (DESIGN.md §12) measured as a
// real fraction of decode-per-probe time. PacketBuffer keeps the whole
// cycle in a single allocation (packet i occupies bytes
// [i * packet_bytes, (i+1) * packet_bytes)); PacketSource abstracts over
// both representations so decoders written against it serve either without
// copying. PacketSource also supports a strided view, letting a decoder
// read index packets in place inside larger framed records (e.g. the
// headered radio frames of dtree::core::BroadcastProgram) without
// materializing per-packet copies.

#ifndef DTREE_BROADCAST_PACKET_BUFFER_H_
#define DTREE_BROADCAST_PACKET_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dtree::bcast {

/// Owning flat packet store: `num_packets` packets of exactly
/// `packet_bytes` bytes each, contiguous and zero-initialized.
class PacketBuffer {
 public:
  PacketBuffer() = default;
  PacketBuffer(size_t num_packets, size_t packet_bytes)
      : packet_bytes_(packet_bytes), num_packets_(num_packets),
        bytes_(num_packets * packet_bytes, 0) {}

  size_t num_packets() const { return num_packets_; }
  size_t packet_bytes() const { return packet_bytes_; }
  size_t size_bytes() const { return bytes_.size(); }
  bool empty() const { return num_packets_ == 0; }

  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* packet(size_t i) const {
    DTREE_DCHECK(i < num_packets_);
    return bytes_.data() + i * packet_bytes_;
  }
  uint8_t* packet(size_t i) {
    DTREE_DCHECK(i < num_packets_);
    return bytes_.data() + i * packet_bytes_;
  }

  /// Writes `n` bytes starting at (packet, offset), spilling across packet
  /// boundaries exactly like PacketCursor (packets are contiguous, so the
  /// spill is a single memcpy). The target range is trusted
  /// (serialization-side); overruns are CHECK-failures.
  void Write(size_t packet, size_t offset, const uint8_t* src, size_t n);

  /// Legacy-format adapters (copying), for call sites that still exchange
  /// vector-of-vectors packet sets.
  std::vector<std::vector<uint8_t>> ToVectors() const;
  static PacketBuffer FromVectors(
      const std::vector<std::vector<uint8_t>>& packets);

 private:
  size_t packet_bytes_ = 0;
  size_t num_packets_ = 0;
  std::vector<uint8_t> bytes_;
};

/// Non-owning packet view over either representation. Cheap to copy; the
/// underlying storage must outlive the view.
class PacketSource {
 public:
  PacketSource() = default;

  /// View over the legacy vector-of-vectors representation (implicit: lets
  /// existing PacketReader call sites compile unchanged).
  PacketSource(const std::vector<std::vector<uint8_t>>& packets)  // NOLINT
      : vecs_(&packets), count_(packets.size()) {}

  /// View over a PacketBuffer.
  PacketSource(const PacketBuffer& buf)  // NOLINT
      : base_(buf.data()), packet_bytes_(buf.packet_bytes()),
        stride_(buf.packet_bytes()), count_(buf.num_packets()) {}

  /// Strided flat view: packet i is the `packet_bytes`-byte range at
  /// `base + i * stride + body_offset`. Lets decoders read packet bodies
  /// embedded in larger fixed-size records (radio frames) in place.
  static PacketSource Strided(const uint8_t* base, size_t count,
                              size_t stride, size_t body_offset,
                              size_t packet_bytes) {
    PacketSource s;
    s.base_ = base + body_offset;
    s.packet_bytes_ = packet_bytes;
    s.stride_ = stride;
    s.count_ = count;
    return s;
  }

  size_t num_packets() const { return count_; }

  const uint8_t* data(size_t i) const {
    DTREE_DCHECK(i < count_);
    return vecs_ != nullptr ? (*vecs_)[i].data() : base_ + i * stride_;
  }
  /// Actual byte size of packet i (flat views are fixed-size by
  /// construction; vector views report the real, possibly truncated,
  /// vector length so hardened readers can reject it).
  size_t size(size_t i) const {
    DTREE_DCHECK(i < count_);
    return vecs_ != nullptr ? (*vecs_)[i].size() : packet_bytes_;
  }

 private:
  const std::vector<std::vector<uint8_t>>* vecs_ = nullptr;
  const uint8_t* base_ = nullptr;
  size_t packet_bytes_ = 0;
  size_t stride_ = 0;
  size_t count_ = 0;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_PACKET_BUFFER_H_
