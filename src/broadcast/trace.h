// Per-query trace events for the broadcast-channel simulation, an opt-in
// TraceSink interface to consume them, and aggregating sinks (JSONL
// writer, broadcast-cycle profiler).
//
// BroadcastChannel::Simulate emits a QueryTrace when handed a non-null
// trace pointer; the default is null so the hot path pays one predictable
// branch per event site and nothing else. The experiment driver buffers
// each shard's traces privately and forwards them to the sink ordered by
// global query index after the parallel section, so a sink sees exactly
// the same event stream for any thread count (sinks therefore need no
// locking).
//
// Event model (one QueryTrace per query, events in wall-clock order):
//   kProbe      — initial-probe packet read; pos = absolute packet.
//   kDoze       — receiver sleeping; pos = packet where listening
//                 resumes, dur = time slept in packets (fractional for
//                 the initial sync wait).
//   kIndexRead  — one index-packet read; packet = id within the index
//                 segment; node/depth = originating tree node when the
//                 index annotates its probe path (the D-tree does),
//                 -1 otherwise.
//   kBucketRead — data-bucket read; packet = number of consecutive
//                 packets read (one event per retrieval, not per packet).
//   kLoss       — the immediately preceding read never arrived (erasure).
//   kRetune     — recovery: the client re-tunes to the next index
//                 repetition; attempt = 1-based retry number.
//   kCorruption — the immediately preceding read was delivered with bit
//                 errors and failed its CRC-32 frame check.
//   kFallbackScan — degradation-ladder fallback: the client abandoned the
//                 index and linearly scans for its bucket; pos = scan
//                 start, packet = packets listened to before the bucket,
//                 attempt = 0-based scan cycle.
//   kEpochSwitch — version-skew rung: a delivered frame carried a
//                 different broadcast epoch than the client's current one;
//                 the client abandons partial state and re-tunes into the
//                 new epoch. pos = the revealing read, packet = the newly
//                 observed epoch id, attempt = 1-based switch ordinal.
//   kCacheHit   — the query was answered from the client's semantic
//                 region cache (broadcast/region_cache.h) without tuning
//                 in at all: it is the ONLY event of its query, and the
//                 query's latency / tuning / doze are all zero. pos = the
//                 packet the client would otherwise have probed,
//                 packet = the cached epoch id.

#ifndef DTREE_BROADCAST_TRACE_H_
#define DTREE_BROADCAST_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace dtree::bcast {

enum class TraceEventKind : uint8_t {
  kProbe,
  kDoze,
  kIndexRead,
  kBucketRead,
  kLoss,
  kRetune,
  kCorruption,
  kFallbackScan,
  kEpochSwitch,
  kCacheHit,
};

/// Short stable name used in the JSONL encoding ("probe", "doze",
/// "index", "bucket", "loss", "retune", "corruption_detected",
/// "fallback_scan", "epoch_switch", "cache_hit").
const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kProbe;
  int64_t pos = 0;    ///< absolute packet position within the broadcast
  double dur = 0.0;   ///< kDoze: packets slept
  int packet = -1;    ///< kIndexRead: index packet id;
                      ///< kBucketRead: packets read;
                      ///< kFallbackScan: packets listened to while scanning;
                      ///< kEpochSwitch: newly observed epoch id
  int node = -1;      ///< kIndexRead: originating tree node, -1 unknown
  int depth = -1;     ///< kIndexRead: tree depth of that node, -1 unknown
  int attempt = 0;    ///< kRetune: 1-based retry number;
                      ///< kFallbackScan: 0-based scan cycle;
                      ///< kEpochSwitch: 1-based switch ordinal
};

/// Everything observable about one simulated query.
struct QueryTrace {
  uint64_t query_index = 0;  ///< global (thread-count-independent) index;
                             ///< fleet runs use the client's own query
                             ///< counter (unique per client, not global)
  /// Issuing client for fleet-engine traces (broadcast/fleet.h):
  /// slot + generation * num_clients, thread-count-independent. -1 for
  /// single-query simulations, which omits the "client" JSON field so
  /// pre-fleet trace bytes are unchanged.
  int64_t client_id = -1;
  double x = 0.0;            ///< query point
  double y = 0.0;
  int region = -1;
  double arrival = 0.0;
  // Outcome summary, mirrored from QueryOutcome by the simulator.
  double latency = 0.0;
  int tuning_total = 0;
  int retries = 0;
  int lost_packets = 0;
  int corrupted_packets = 0;
  bool fallback_scan = false;
  bool unrecoverable = false;
  /// Versioned-broadcast summary (broadcast/versioned.h). `versioned`
  /// gates the "epoch"/"epoch_switches" JSON fields so single-version
  /// trace bytes are unchanged.
  bool versioned = false;
  uint16_t epoch = 0;      ///< epoch the answer (or give-up) belongs to
  int epoch_switches = 0;  ///< epoch switches the query survived
  /// Answered from the semantic region cache without tuning in. Gates the
  /// "cache_hit" JSON field so cache-off trace bytes are unchanged.
  bool cache_hit = false;
  std::vector<TraceEvent> events;
};

/// Consumer of completed query traces. Called from one thread, in global
/// query order (see file comment); implementations need no locking.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Consume(const QueryTrace& trace) = 0;
};

/// One JSON object per line (see DESIGN.md §9 for the schema). The
/// optional label is written as "cell" into every line, letting several
/// experiment cells share one file.
std::string FormatQueryTraceJson(const QueryTrace& trace,
                                 const std::string& label);

/// Writes each trace as one JSONL line, to a file or an in-memory string.
class JsonlTraceSink : public TraceSink {
 public:
  /// Truncates and writes `path`; ok() reports whether the open worked.
  explicit JsonlTraceSink(const std::string& path);
  /// Appends lines to `*out` instead of a file (testing / in-memory use).
  explicit JsonlTraceSink(std::string* out) : out_(out) {}
  ~JsonlTraceSink() override;

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  bool ok() const { return out_ != nullptr || file_ != nullptr; }
  /// Sets the "cell" label stamped into subsequent lines.
  void set_label(std::string label) { label_ = std::move(label); }
  uint64_t lines_written() const { return lines_; }

  void Consume(const QueryTrace& trace) override;

 private:
  std::FILE* file_ = nullptr;
  std::string* out_ = nullptr;
  std::string label_;
  uint64_t lines_ = 0;
};

/// Forwards every trace to each registered sink, in order.
class TeeTraceSink : public TraceSink {
 public:
  explicit TeeTraceSink(std::vector<TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}
  void Consume(const QueryTrace& trace) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->Consume(trace);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Aggregates traces into the distributions the paper's means hide:
/// latency / tuning / retry histograms, index-packet reads attributed to
/// the originating tree level, and tuning packets attributed to their
/// position within the broadcast cycle (which part of the cycle costs the
/// client energy).
class CycleProfiler : public TraceSink {
 public:
  /// `cycle_packets` is the channel's cycle length; reads are binned by
  /// (pos mod cycle) into `position_bins` equal slices.
  CycleProfiler(int64_t cycle_packets, int position_bins = 16);

  void Consume(const QueryTrace& trace) override;

  uint64_t queries() const { return queries_; }
  const Histogram& latency_hist() const { return latency_; }
  const Histogram& tuning_hist() const { return tuning_; }
  const Histogram& retries_hist() const { return retries_; }
  const Histogram& doze_hist() const { return doze_; }

  /// Index-packet reads per tree depth (index = depth); reads whose
  /// origin the index did not annotate land in unattributed_reads().
  const std::vector<int64_t>& level_reads() const { return level_reads_; }
  int64_t unattributed_reads() const { return unattributed_reads_; }

  /// Tuning (awake) packets per cycle-position bin; all read kinds.
  const std::vector<int64_t>& position_reads() const {
    return position_reads_;
  }
  int64_t cycle_packets() const { return cycle_packets_; }

 private:
  void BinPosition(int64_t pos, int64_t packets);

  int64_t cycle_packets_;
  uint64_t queries_ = 0;
  Histogram latency_;
  Histogram tuning_;
  Histogram retries_;
  Histogram doze_;
  std::vector<int64_t> level_reads_;
  int64_t unattributed_reads_ = 0;
  std::vector<int64_t> position_reads_;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_TRACE_H_
