// Packet allocation ("paging") of index nodes into fixed-capacity packets.
//
// Implements the paper's top-down paging (Algorithm 3): nodes are visited
// in breadth-first order, each node joins its parent's packet when it fits,
// otherwise it starts a new packet (or a run of packets when the node is
// larger than one packet). Optionally, partial packets at the leaf level
// are merged greedily to save broadcast space. A greedy first-fit variant
// (used for the trian-tree, whose DAG nodes have several parents, and for
// the R*-tree shape layer) is also provided.

#ifndef DTREE_BROADCAST_PAGER_H_
#define DTREE_BROADCAST_PAGER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace dtree::bcast {

/// Where a node landed: `num_packets` consecutive packets starting at
/// `first_packet`; the node begins `offset` bytes into the first one.
struct NodeSpan {
  int first_packet = -1;
  int num_packets = 0;
  size_t offset = 0;

  int last_packet() const { return first_packet + num_packets - 1; }
};

/// Input to the pager. Nodes must be listed in the order they are to be
/// broadcast (breadth-first for the D-tree / trap-tree), with every
/// node's parent earlier in the order.
struct PagingInput {
  std::vector<size_t> sizes;   ///< serialized node sizes in bytes
  std::vector<int> parent;     ///< index of parent node, -1 for roots
  std::vector<bool> is_leaf;   ///< leaf nodes (eligible for merging)
  /// For DAG-shaped indexes: every parent of each node (used by the
  /// packet-merging forward-safety check; `parent` alone would miss
  /// secondary parents). Leave empty for trees.
  std::vector<std::vector<int>> all_parents;
};

struct PagingResult {
  std::vector<NodeSpan> spans;  ///< one per input node
  int num_packets = 0;
  size_t used_bytes = 0;        ///< sum of node sizes (excludes padding)
};

/// Algorithm 3: top-down paging with optional greedy leaf-packet merging.
/// Fails with InvalidArgument on malformed input (children before parents,
/// zero-sized nodes, capacity < 1).
Result<PagingResult> TopDownPage(const PagingInput& input, int capacity,
                                 bool merge_leaf_packets);

/// Greedy paging: nodes fill packets first-fit in the given order; a node
/// larger than one packet spans consecutive packets.
Result<PagingResult> GreedyPage(const std::vector<size_t>& sizes,
                                int capacity);

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_PAGER_H_
