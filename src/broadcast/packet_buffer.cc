#include "broadcast/packet_buffer.h"

#include <cstring>

namespace dtree::bcast {

void PacketBuffer::Write(size_t packet, size_t offset, const uint8_t* src,
                         size_t n) {
  DTREE_CHECK(packet < num_packets_ && offset <= packet_bytes_);
  const size_t at = packet * packet_bytes_ + offset;
  DTREE_CHECK(at + n <= bytes_.size());
  std::memcpy(bytes_.data() + at, src, n);
}

std::vector<std::vector<uint8_t>> PacketBuffer::ToVectors() const {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(num_packets_);
  for (size_t i = 0; i < num_packets_; ++i) {
    out.emplace_back(packet(i), packet(i) + packet_bytes_);
  }
  return out;
}

PacketBuffer PacketBuffer::FromVectors(
    const std::vector<std::vector<uint8_t>>& packets) {
  size_t packet_bytes = 0;
  for (const auto& p : packets) {
    packet_bytes = std::max(packet_bytes, p.size());
  }
  PacketBuffer buf(packets.size(), packet_bytes);
  for (size_t i = 0; i < packets.size(); ++i) {
    DTREE_CHECK(packets[i].size() == packet_bytes);
    std::memcpy(buf.packet(i), packets[i].data(), packet_bytes);
  }
  return buf;
}

}  // namespace dtree::bcast
