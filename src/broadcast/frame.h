// Link-layer packet framing and hardened byte access shared by every air
// index (D-tree, Kirkpatrick, trapezoidal map, R*-tree) and by data
// buckets.
//
// A broadcast packet is `packet_capacity` payload bytes; FramePackets
// appends a little-endian u16 broadcast *epoch* (the cycle version the
// frame was materialized under) followed by a little-endian CRC-32 of
// payload + epoch (the frame check sequence), exactly as a radio FCS
// rides outside the MAC payload. The framed decoders verify the CRC the
// first time they touch a packet, so a corrupted frame surfaces as Status
// kDataLoss — the signal the client protocol uses to trigger re-tune
// recovery — rather than silently misrouting the query. Covering the
// epoch with the CRC means a client can trust the version stamp of every
// delivered frame: a frame whose epoch differs from the client's tune-in
// epoch is *valid but stale/new* (kFailedPrecondition from the
// epoch-checking entry points), which drives the version-skew rung of the
// degradation ladder instead of being mistaken for corruption. CRC-32
// detects every burst of <= 32 bits and any 1-3 bit error at our frame
// sizes; the residual undetected-error probability (~2^-32 for random
// corruption) is treated as zero by the simulator.
//
// The shared packet-pointer wire encoding (Table 2's 32-bit pointers):
//   bit31        1 = data pointer, low 31 bits are the region (bucket) id
//   bits12..30   packet id   \  0 = node pointer into the index segment
//   bits0..11    byte offset /
//
// PacketReader is the hardened read path: every byte is bounds-checked
// against the actual packet vector (never the caller-claimed capacity
// alone), truncated or oversized packets surface as kDataLoss, and in
// framed mode each packet's CRC is verified on first entry. Decoders built
// on it return Status on malformed input — never CHECK-crash, read out of
// bounds, or loop forever (see DecodeBudget).

#ifndef DTREE_BROADCAST_FRAME_H_
#define DTREE_BROADCAST_FRAME_H_

#include <cstdint>
#include <vector>

#include "broadcast/packet_buffer.h"
#include "common/status.h"

namespace dtree::bcast {

/// Bytes the CRC-32 frame trailer adds to each packet.
inline constexpr size_t kFrameCrcBytes = 4;

/// Bytes the little-endian u16 broadcast-epoch stamp adds to each packet
/// (between the payload and the CRC trailer; covered by the CRC).
inline constexpr size_t kFrameEpochBytes = 2;

/// Total link-layer overhead per frame: epoch stamp + CRC trailer.
inline constexpr size_t kFrameOverheadBytes = kFrameEpochBytes + kFrameCrcBytes;

/// Framed packet size in bits for a given payload capacity — the exposure
/// of one packet read to the bit-corruption process (loss.h).
inline constexpr int FrameBits(int packet_capacity) {
  return static_cast<int>(
      8 * (static_cast<size_t>(packet_capacity) + kFrameOverheadBytes));
}

/// Packet-pointer field layout (shared by all index wire formats).
inline constexpr uint32_t kDataPtrBit = 0x80000000u;
inline constexpr int kOffsetBits = 12;
inline constexpr uint32_t kOffsetMask = (1u << kOffsetBits) - 1;
inline constexpr int kPacketBits = 19;

/// Region id stored in a data pointer to mean "outside the service area".
inline constexpr uint32_t kOutsideRegionPtr = kDataPtrBit | ~kDataPtrBit;

uint32_t EncodeDataPointer(int region);
uint32_t EncodeNodePointer(int packet, size_t offset);
inline bool IsDataPointer(uint32_t ptr) { return (ptr & kDataPtrBit) != 0; }
inline int DataPointerRegion(uint32_t ptr) {
  return static_cast<int>(ptr & ~kDataPtrBit);
}
inline int NodePointerPacket(uint32_t ptr) {
  return static_cast<int>(ptr >> kOffsetBits);
}
inline size_t NodePointerOffset(uint32_t ptr) { return ptr & kOffsetMask; }

/// Hard budget on node/shape decodes for one query over untrusted bytes.
/// A correct descent reads far fewer nodes than this; corrupted pointers
/// that happen to form a cycle hit the budget and fail with kDataLoss
/// instead of looping forever.
inline int DecodeBudget(size_t num_packets) {
  return static_cast<int>(16 * num_packets) + 1024;
}

/// Link-layer framing: appends the little-endian u16 `epoch` stamp and a
/// little-endian CRC-32 of payload + epoch. Framed packets are
/// `payload + kFrameOverheadBytes` bytes; the index layout itself is
/// untouched. Epoch 0 reproduces the single-version broadcast.
std::vector<std::vector<uint8_t>> FramePackets(
    const std::vector<std::vector<uint8_t>>& packets, uint16_t epoch = 0);

/// Verifies one framed packet's CRC; kDataLoss on mismatch or short frame.
Status VerifyFrame(const std::vector<uint8_t>& frame);

/// Epoch stamp of a framed packet. Only meaningful after VerifyFrame (or
/// the PacketReader CRC check) passed; the frame must be at least
/// kFrameOverheadBytes long (checked).
uint16_t FrameEpoch(const uint8_t* frame, size_t frame_size);
uint16_t FrameEpoch(const std::vector<uint8_t>& frame);

/// Verifies and strips every frame; kDataLoss identifies the first
/// corrupted packet by id. When `expected_epoch` is >= 0, a frame whose
/// CRC passes but whose epoch stamp differs returns kFailedPrecondition —
/// the valid-but-version-skewed signal, deliberately distinct from
/// kDataLoss so the recovery ladder can take the epoch rung instead of
/// the corruption rung.
Result<std::vector<std::vector<uint8_t>>> UnframePackets(
    const std::vector<std::vector<uint8_t>>& frames,
    int expected_epoch = -1);

/// Flips one bit (0 = LSB of byte 0) in place. Test/bench helper for
/// injecting the bit errors the corruption model represents.
void FlipBit(std::vector<uint8_t>* frame, size_t bit);

/// Deterministic synthetic payload for one data bucket, split into
/// `ceil(data_instance_size / packet_capacity)` packets of exactly
/// `packet_capacity` bytes (zero-padded). Byte j of the instance is
/// ExpectedDataBucketByte(region, j), so a client can verify — after the
/// CRC passes — that a linearly-scanned bucket really is the one it
/// wanted.
std::vector<std::vector<uint8_t>> MakeDataBucketPackets(
    int region, size_t data_instance_size, int packet_capacity);
uint8_t ExpectedDataBucketByte(int region, size_t j);

/// Sequential reader over consecutive packets, hardened for untrusted
/// input: every byte is bounds-checked against the actual packet vector
/// (never the caller-claimed capacity alone), truncated packets surface
/// as kDataLoss, and in framed mode each packet's CRC-32 trailer is
/// verified the first time the reader enters it.
class PacketReader {
 public:
  /// `packets` is a PacketSource view; a vector-of-vectors packet set
  /// converts implicitly, so legacy call sites read exactly as before.
  /// `expected_epoch` >= 0 additionally verifies each framed packet's
  /// epoch stamp on entry; a CRC-valid frame from another epoch returns
  /// kFailedPrecondition (see UnframePackets). A non-positive `capacity`
  /// is rejected with kDataLoss on the first read: a zero-payload stream
  /// carries no index bytes, and silently walking into the frame trailer
  /// would hand the decoder epoch/CRC bytes as payload.
  PacketReader(PacketSource packets, int capacity, bool framed, int packet,
               size_t offset, std::vector<int>* read_log,
               int expected_epoch = -1)
      : packets_(packets), capacity_(capacity), framed_(framed),
        packet_(packet), offset_(offset), read_log_(read_log),
        expected_epoch_(expected_epoch) {}

  Status ReadU16(uint16_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadF32(float* out);

 private:
  Status ReadByte(uint8_t* out);

  /// Validates the packet the reader is about to consume: it must exist,
  /// carry exactly the advertised capacity (+ trailer when framed), and in
  /// framed mode its CRC must match. Also appends it to the read log and
  /// caches its payload pointer for the per-byte fast path.
  Status EnterPacket();

  PacketSource packets_;
  int capacity_;
  bool framed_;
  int packet_;
  size_t offset_;
  std::vector<int>* read_log_;
  int expected_epoch_;            ///< -1 = no epoch check
  const uint8_t* cur_ = nullptr;  ///< payload of the entered packet
};

/// Sequential byte sink that spills across consecutive packets.
/// Serialization-side counterpart of PacketReader; the packet vector is
/// trusted (we are building it), so overruns are CHECK-failures.
class PacketCursor {
 public:
  PacketCursor(std::vector<std::vector<uint8_t>>* packets, int capacity,
               int packet, size_t offset)
      : packets_(packets), capacity_(capacity), packet_(packet),
        offset_(offset) {}

  void Write(const std::vector<uint8_t>& bytes);

 private:
  std::vector<std::vector<uint8_t>>* packets_;
  int capacity_;
  int packet_;
  size_t offset_;
};

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_FRAME_H_
