#include "broadcast/air_index.h"

namespace dtree::bcast {

Status AirIndex::ProbeInto(const geom::Point& p, ProbeTrace* trace) const {
  Result<ProbeTrace> r = Probe(p);
  if (!r.ok()) return r.status();
  *trace = std::move(r).value();
  return Status::OK();
}

Status ValidateTrace(const ProbeTrace& trace, int num_index_packets,
                     int num_regions, bool require_forward) {
  if (trace.region < 0 || trace.region >= num_regions) {
    return Status::Internal("trace resolves to invalid region " +
                            std::to_string(trace.region));
  }
  if (!trace.origins.empty() &&
      trace.origins.size() != trace.packets.size()) {
    return Status::Internal("trace origin annotation size " +
                            std::to_string(trace.origins.size()) +
                            " does not match " +
                            std::to_string(trace.packets.size()) +
                            " packets");
  }
  if (trace.packets.size() >
      static_cast<size_t>(ProbePacketBudget(num_index_packets))) {
    return Status::Internal("trace touches " +
                            std::to_string(trace.packets.size()) +
                            " packets, over the budget of " +
                            std::to_string(
                                ProbePacketBudget(num_index_packets)));
  }
  int prev = -1;
  for (int id : trace.packets) {
    if (id < 0 || id >= num_index_packets) {
      return Status::Internal("trace accesses out-of-range packet " +
                              std::to_string(id));
    }
    if (require_forward && id < prev) {
      return Status::Internal("trace jumps backwards: packet " +
                              std::to_string(id) + " after " +
                              std::to_string(prev));
    }
    prev = id;
  }
  return Status::OK();
}

}  // namespace dtree::bcast
