#include "broadcast/frame.h"

#include <cstring>
#include <string>

#include "common/check.h"
#include "common/crc32.h"

namespace dtree::bcast {

namespace {

uint32_t FrameTrailer(const uint8_t* frame, size_t n) {
  return static_cast<uint32_t>(frame[n - 4]) |
         static_cast<uint32_t>(frame[n - 3]) << 8 |
         static_cast<uint32_t>(frame[n - 2]) << 16 |
         static_cast<uint32_t>(frame[n - 1]) << 24;
}

}  // namespace

uint32_t EncodeDataPointer(int region) {
  DTREE_DCHECK(region >= 0);
  return kDataPtrBit | static_cast<uint32_t>(region);
}

uint32_t EncodeNodePointer(int packet, size_t offset) {
  DTREE_DCHECK(offset <= kOffsetMask);
  DTREE_DCHECK(packet < (1 << kPacketBits));
  return (static_cast<uint32_t>(packet) << kOffsetBits) |
         static_cast<uint32_t>(offset);
}

std::vector<std::vector<uint8_t>> FramePackets(
    const std::vector<std::vector<uint8_t>>& packets, uint16_t epoch) {
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(packets.size());
  for (const std::vector<uint8_t>& pkt : packets) {
    std::vector<uint8_t> frame = pkt;
    frame.push_back(static_cast<uint8_t>(epoch & 0xff));
    frame.push_back(static_cast<uint8_t>(epoch >> 8));
    // The CRC covers payload + epoch, so a flipped epoch bit is caught
    // exactly like a flipped payload bit.
    const uint32_t crc = Crc32(frame.data(), frame.size());
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

Status VerifyFrame(const std::vector<uint8_t>& frame) {
  if (frame.size() < kFrameOverheadBytes) {
    return Status::DataLoss("frame shorter than its epoch + CRC trailer");
  }
  const size_t covered = frame.size() - kFrameCrcBytes;
  if (Crc32(frame.data(), covered) != FrameTrailer(frame.data(), frame.size())) {
    return Status::DataLoss("frame failed its CRC check");
  }
  return Status::OK();
}

uint16_t FrameEpoch(const uint8_t* frame, size_t frame_size) {
  DTREE_CHECK(frame_size >= kFrameOverheadBytes);
  const size_t at = frame_size - kFrameOverheadBytes;
  return static_cast<uint16_t>(frame[at]) |
         static_cast<uint16_t>(frame[at + 1]) << 8;
}

uint16_t FrameEpoch(const std::vector<uint8_t>& frame) {
  return FrameEpoch(frame.data(), frame.size());
}

Result<std::vector<std::vector<uint8_t>>> UnframePackets(
    const std::vector<std::vector<uint8_t>>& frames, int expected_epoch) {
  std::vector<std::vector<uint8_t>> packets;
  packets.reserve(frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    Status s = VerifyFrame(frames[i]);
    if (!s.ok()) {
      return Status::DataLoss("packet " + std::to_string(i) + ": " +
                              s.message());
    }
    if (expected_epoch >= 0 &&
        FrameEpoch(frames[i]) != static_cast<uint16_t>(expected_epoch)) {
      return Status::FailedPrecondition(
          "packet " + std::to_string(i) + " carries epoch " +
          std::to_string(FrameEpoch(frames[i])) + ", expected " +
          std::to_string(expected_epoch));
    }
    packets.emplace_back(frames[i].begin(),
                         frames[i].end() - kFrameOverheadBytes);
  }
  return packets;
}

void FlipBit(std::vector<uint8_t>* frame, size_t bit) {
  DTREE_CHECK(bit / 8 < frame->size());
  (*frame)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

uint8_t ExpectedDataBucketByte(int region, size_t j) {
  // Cheap byte mixer: distinct regions get visibly distinct streams, and
  // any single-byte swap between buckets is detectable.
  uint64_t v = (static_cast<uint64_t>(region) + 1) * 0x9e3779b97f4a7c15ull +
               static_cast<uint64_t>(j) * 0xbf58476d1ce4e5b9ull;
  v ^= v >> 31;
  return static_cast<uint8_t>(v & 0xff);
}

std::vector<std::vector<uint8_t>> MakeDataBucketPackets(
    int region, size_t data_instance_size, int packet_capacity) {
  DTREE_CHECK(packet_capacity > 0);
  const size_t cap = static_cast<size_t>(packet_capacity);
  const size_t num_packets = (data_instance_size + cap - 1) / cap;
  std::vector<std::vector<uint8_t>> packets(num_packets,
                                            std::vector<uint8_t>(cap, 0));
  for (size_t j = 0; j < data_instance_size; ++j) {
    packets[j / cap][j % cap] = ExpectedDataBucketByte(region, j);
  }
  return packets;
}

Status PacketReader::ReadU16(uint16_t* out) {
  uint8_t lo, hi;
  DTREE_RETURN_IF_ERROR(ReadByte(&lo));
  DTREE_RETURN_IF_ERROR(ReadByte(&hi));
  *out = static_cast<uint16_t>(lo) | static_cast<uint16_t>(hi) << 8;
  return Status::OK();
}

Status PacketReader::ReadU32(uint32_t* out) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    uint8_t b;
    DTREE_RETURN_IF_ERROR(ReadByte(&b));
    v |= static_cast<uint32_t>(b) << (8 * i);
  }
  *out = v;
  return Status::OK();
}

Status PacketReader::ReadF32(float* out) {
  uint32_t bits;
  DTREE_RETURN_IF_ERROR(ReadU32(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status PacketReader::ReadByte(uint8_t* out) {
  if (capacity_ <= 0) {
    // A zero-payload stream has no index bytes at all; advancing through
    // it would read the epoch/CRC trailer as payload (regression-pinned
    // in tests/failsafe_fuzz_test.cc).
    return Status::DataLoss("packet stream has zero payload capacity");
  }
  if (cur_ == nullptr) DTREE_RETURN_IF_ERROR(EnterPacket());
  if (offset_ == static_cast<size_t>(capacity_)) {
    ++packet_;
    offset_ = 0;
    DTREE_RETURN_IF_ERROR(EnterPacket());
  }
  *out = cur_[offset_];
  ++offset_;
  return Status::OK();
}

Status PacketReader::EnterPacket() {
  if (packet_ < 0 ||
      packet_ >= static_cast<int>(packets_.num_packets())) {
    return Status::OutOfRange("decoder ran off the packet stream");
  }
  const size_t pkt_size = packets_.size(static_cast<size_t>(packet_));
  const uint8_t* pkt = packets_.data(static_cast<size_t>(packet_));
  const size_t expect = static_cast<size_t>(capacity_) +
                        (framed_ ? kFrameOverheadBytes : 0);
  if (pkt_size != expect) {
    return Status::DataLoss("packet " + std::to_string(packet_) + " is " +
                            std::to_string(pkt_size) +
                            " bytes, expected " + std::to_string(expect));
  }
  if (framed_ &&
      Crc32(pkt, pkt_size - kFrameCrcBytes) != FrameTrailer(pkt, pkt_size)) {
    return Status::DataLoss("packet " + std::to_string(packet_) +
                            " failed its CRC check");
  }
  if (framed_ && expected_epoch_ >= 0 &&
      FrameEpoch(pkt, pkt_size) != static_cast<uint16_t>(expected_epoch_)) {
    return Status::FailedPrecondition(
        "packet " + std::to_string(packet_) + " carries epoch " +
        std::to_string(FrameEpoch(pkt, pkt_size)) + ", expected " +
        std::to_string(expected_epoch_));
  }
  cur_ = pkt;
  if (offset_ > static_cast<size_t>(capacity_)) {
    return Status::DataLoss("read offset " + std::to_string(offset_) +
                            " outside packet " + std::to_string(packet_));
  }
  if (read_log_ != nullptr &&
      (read_log_->empty() || read_log_->back() != packet_)) {
    read_log_->push_back(packet_);
  }
  return Status::OK();
}

void PacketCursor::Write(const std::vector<uint8_t>& bytes) {
  for (uint8_t b : bytes) {
    if (offset_ == static_cast<size_t>(capacity_)) {
      ++packet_;
      offset_ = 0;
    }
    DTREE_CHECK(packet_ < static_cast<int>(packets_->size()));
    (*packets_)[packet_][offset_++] = b;
  }
}

}  // namespace dtree::bcast
