#include "broadcast/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geom/polygon.h"

namespace dtree::bcast {

Result<QuerySampler> QuerySampler::Create(const sub::Subdivision& subdivision,
                                          QueryDistribution distribution,
                                          std::vector<double> weights) {
  std::vector<double> cumulative;
  if (distribution == QueryDistribution::kWeightedRegion) {
    if (weights.size() != static_cast<size_t>(subdivision.NumRegions())) {
      return Status::InvalidArgument(
          "kWeightedRegion needs one weight per region");
    }
    double total = 0.0;
    cumulative.reserve(weights.size());
    for (double w : weights) {
      if (w < 0.0 || !std::isfinite(w)) {
        return Status::InvalidArgument("negative or non-finite weight");
      }
      total += w;
      cumulative.push_back(total);
    }
    if (total <= 0.0) {
      return Status::InvalidArgument("weights sum to zero");
    }
  }
  return QuerySampler(subdivision, distribution, std::move(cumulative));
}

geom::Point QuerySampler::DrawInRegion(int region, Rng* rng) const {
  const geom::BBox& b = sub_.RegionBounds(region);
  const geom::Polygon poly = sub_.RegionPolygon(region);
  for (int attempt = 0; attempt < 4096; ++attempt) {
    geom::Point p{rng->Uniform(b.min_x, b.max_x),
                  rng->Uniform(b.min_y, b.max_y)};
    if (poly.Contains(p)) return p;
  }
  // Pathologically thin region: fall back to its centroid.
  return poly.Centroid();
}

geom::Point QuerySampler::Draw(Rng* rng) const {
  const geom::BBox& area = sub_.service_area();
  switch (distribution_) {
    case QueryDistribution::kUniformArea:
      return {rng->Uniform(area.min_x, area.max_x),
              rng->Uniform(area.min_y, area.max_y)};
    case QueryDistribution::kUniformRegion: {
      if (sub_.NumRegions() == 0) {
        return {rng->Uniform(area.min_x, area.max_x),
                rng->Uniform(area.min_y, area.max_y)};
      }
      const int r =
          static_cast<int>(rng->UniformInt(0, sub_.NumRegions() - 1));
      return DrawInRegion(r, rng);
    }
    case QueryDistribution::kWeightedRegion: {
      const double u = rng->Uniform(0.0, cumulative_.back());
      const auto it =
          std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
      const int r = static_cast<int>(
          std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                   cumulative_.size() - 1));
      return DrawInRegion(r, rng);
    }
  }
  DTREE_CHECK(false);
  return {};
}

geom::Point DrawQueryPoint(const sub::Subdivision& subdivision,
                           QueryDistribution distribution, Rng* rng) {
  Result<QuerySampler> s = QuerySampler::Create(subdivision, distribution, {});
  DTREE_CHECK(s.ok());
  return s.value().Draw(rng);
}

Result<ExperimentResult> RunExperiment(const AirIndex& index,
                                       const sub::Subdivision& subdivision,
                                       const sub::PointLocator* oracle,
                                       const ExperimentOptions& options) {
  if (options.num_queries < 1) {
    return Status::InvalidArgument("need at least one query");
  }
  ChannelOptions copt;
  copt.packet_capacity = options.packet_capacity;
  copt.data_instance_size = options.data_instance_size;
  copt.m = options.m;
  Result<BroadcastChannel> channel_r = BroadcastChannel::Create(
      index.NumIndexPackets(), subdivision.NumRegions(), copt);
  if (!channel_r.ok()) return channel_r.status();
  const BroadcastChannel& ch = channel_r.value();

  Result<QuerySampler> sampler_r = QuerySampler::Create(
      subdivision, options.distribution, options.region_weights);
  if (!sampler_r.ok()) return sampler_r.status();
  const QuerySampler& sampler = sampler_r.value();

  Rng rng(options.seed);
  double sum_latency = 0.0;
  double sum_tuning_index = 0.0;
  double sum_tuning_total = 0.0;
  double sum_tuning_noindex = 0.0;

  for (int q = 0; q < options.num_queries; ++q) {
    const geom::Point p = sampler.Draw(&rng);
    Result<ProbeTrace> trace_r = index.Probe(p);
    if (!trace_r.ok()) return trace_r.status();
    const ProbeTrace& trace = trace_r.value();

    if (oracle != nullptr) {
      const int expect = oracle->Locate(p);
      if (expect != trace.region &&
          subdivision.DistanceToNearestBorder(p) > geom::kMergeEps * 100.0) {
        return Status::Internal(
            index.name() + " located region " + std::to_string(trace.region) +
            " but oracle says " + std::to_string(expect));
      }
    }

    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    Result<BroadcastChannel::QueryOutcome> out_r =
        ch.Simulate(trace, arrival);
    if (!out_r.ok()) return out_r.status();
    const auto& out = out_r.value();
    sum_latency += out.latency;
    sum_tuning_index += out.tuning_index;
    sum_tuning_total += out.tuning_total();

    const auto base = ch.SimulateNoIndex(trace.region, arrival);
    sum_tuning_noindex += base.tuning_total();
  }

  const double n = static_cast<double>(options.num_queries);
  ExperimentResult res;
  res.index_name = index.name();
  res.packet_capacity = options.packet_capacity;
  res.m = ch.m();
  res.index_packets = index.NumIndexPackets();
  res.index_bytes = index.IndexBytes();
  res.data_packets = ch.data_packets();
  res.cycle_packets = ch.cycle_packets();
  res.mean_latency = sum_latency / n;
  res.optimal_latency = ch.OptimalLatency();
  res.normalized_latency = res.mean_latency / res.optimal_latency;
  res.mean_tuning_index = sum_tuning_index / n;
  res.mean_tuning_total = sum_tuning_total / n;
  res.mean_tuning_noindex = sum_tuning_noindex / n;
  const double saved = res.mean_tuning_noindex - res.mean_tuning_total;
  const double overhead = res.mean_latency - res.optimal_latency;
  res.indexing_efficiency = overhead > 0.0 ? saved / overhead : 0.0;
  const double db_bytes =
      static_cast<double>(subdivision.NumRegions()) *
      static_cast<double>(options.data_instance_size);
  res.normalized_index_size = static_cast<double>(res.index_bytes) / db_bytes;
  return res;
}

}  // namespace dtree::bcast
