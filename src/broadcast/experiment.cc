#include "broadcast/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "geom/polygon.h"

namespace dtree::bcast {

namespace {

/// Fixed shard count for the parallel query loop. Chosen once, never
/// derived from thread count: shard s always covers the same query indices
/// and always draws from RNG stream s, so the merged result is identical
/// whether shards run on 1 thread or 16. Small enough that per-shard
/// bookkeeping is negligible, large enough to load-balance a pool of any
/// realistic size.
constexpr int kQueryShards = 64;

/// Per-shard private accumulator; merged in shard order. The registry is
/// written lock-free by the owning shard and merged with MergeOrdered, so
/// histogram statistics inherit the partial-sum determinism contract.
struct ShardSums {
  double latency = 0.0;
  double tuning_index = 0.0;
  double tuning_total = 0.0;
  double tuning_noindex = 0.0;
  int64_t retries = 0;
  int64_t lost_packets = 0;
  int64_t corrupted_packets = 0;
  int64_t unrecoverable = 0;
  int64_t fallback = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
  MetricsRegistry metrics;
  /// Buffered per-query traces (trace_sink set only); replayed to the
  /// sink in shard order == global query order after the parallel run.
  std::vector<QueryTrace> traces;
  Status error = Status::OK();
};

}  // namespace

Result<QuerySampler> QuerySampler::Create(const sub::Subdivision& subdivision,
                                          QueryDistribution distribution,
                                          std::vector<double> weights) {
  std::vector<double> cumulative;
  if (distribution == QueryDistribution::kWeightedRegion) {
    if (weights.size() != static_cast<size_t>(subdivision.NumRegions())) {
      return Status::InvalidArgument(
          "kWeightedRegion needs one weight per region");
    }
    double total = 0.0;
    cumulative.reserve(weights.size());
    for (double w : weights) {
      if (w < 0.0 || !std::isfinite(w)) {
        return Status::InvalidArgument("negative or non-finite weight");
      }
      total += w;
      cumulative.push_back(total);
    }
    if (total <= 0.0) {
      return Status::InvalidArgument("weights sum to zero");
    }
  }
  std::vector<geom::Polygon> polygons;
  if (distribution != QueryDistribution::kUniformArea) {
    polygons.reserve(subdivision.NumRegions());
    for (int i = 0; i < subdivision.NumRegions(); ++i) {
      polygons.push_back(subdivision.RegionPolygon(i));
    }
  }
  return QuerySampler(subdivision, distribution, std::move(cumulative),
                      std::move(polygons));
}

geom::Point QuerySampler::DrawInRegion(int region, Rng* rng) const {
  const geom::BBox& b = sub_.RegionBounds(region);
  const geom::Polygon& poly = polygons_[region];
  for (int attempt = 0; attempt < 4096; ++attempt) {
    geom::Point p{rng->Uniform(b.min_x, b.max_x),
                  rng->Uniform(b.min_y, b.max_y)};
    if (poly.Contains(p)) return p;
  }
  // Pathologically thin region: fall back to its centroid.
  return poly.Centroid();
}

geom::Point QuerySampler::Draw(Rng* rng) const {
  const geom::BBox& area = sub_.service_area();
  switch (distribution_) {
    case QueryDistribution::kUniformArea:
      return {rng->Uniform(area.min_x, area.max_x),
              rng->Uniform(area.min_y, area.max_y)};
    case QueryDistribution::kUniformRegion: {
      if (sub_.NumRegions() == 0) {
        return {rng->Uniform(area.min_x, area.max_x),
                rng->Uniform(area.min_y, area.max_y)};
      }
      const int r =
          static_cast<int>(rng->UniformInt(0, sub_.NumRegions() - 1));
      return DrawInRegion(r, rng);
    }
    case QueryDistribution::kWeightedRegion: {
      const double u = rng->Uniform(0.0, cumulative_.back());
      const auto it =
          std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
      const int r = static_cast<int>(
          std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                                   cumulative_.size() - 1));
      return DrawInRegion(r, rng);
    }
  }
  DTREE_CHECK(false);
  return {};
}

Result<ExperimentResult> RunExperiment(const AirIndex& index,
                                       const sub::Subdivision& subdivision,
                                       const sub::PointLocator* oracle,
                                       const ExperimentOptions& options) {
  if (options.num_queries < 0) {
    return Status::InvalidArgument("negative query count");
  }
  DTREE_RETURN_IF_ERROR(workload::ValidateMobilityOptions(options.mobility));
  DTREE_RETURN_IF_ERROR(ValidateCacheOptions(options.cache));
  ChannelOptions copt;
  copt.packet_capacity = options.packet_capacity;
  copt.data_instance_size = options.data_instance_size;
  copt.m = options.m;
  copt.loss = options.loss;
  Result<BroadcastChannel> channel_r = BroadcastChannel::Create(
      index.NumIndexPackets(), subdivision.NumRegions(), copt);
  if (!channel_r.ok()) return channel_r.status();
  const BroadcastChannel& ch = channel_r.value();

  Result<QuerySampler> sampler_r = QuerySampler::Create(
      subdivision, options.distribution, options.region_weights);
  if (!sampler_r.ok()) return sampler_r.status();
  const QuerySampler& sampler = sampler_r.value();

  // Shard layout: fixed count, queries split as evenly as possible, shard
  // s always owning the same contiguous slice regardless of threads. At
  // least one (possibly empty) shard so the zero-query degenerate run
  // still produces a fully-formed result.
  const int num_shards =
      std::max(1, std::min(kQueryShards, options.num_queries));
  const int per_shard = options.num_queries / num_shards;
  const int remainder = options.num_queries % num_shards;

  // Cached-cell geometry, materialized once and shared read-only: the
  // valid scope inserted into a shard's cache after each answered query.
  std::vector<geom::Polygon> region_polys;
  if (options.cache.enabled) {
    region_polys.reserve(static_cast<size_t>(subdivision.NumRegions()));
    for (int i = 0; i < subdivision.NumRegions(); ++i) {
      region_polys.push_back(subdivision.RegionPolygon(i));
    }
  }

  std::vector<ShardSums> shards(num_shards);
  auto run_shard = [&](int s) {
    ShardSums& sums = shards[s];
    const int shard_queries = per_shard + (s < remainder ? 1 : 0);
    // Global index of this shard's first query — shard-local arithmetic,
    // identical for every thread count. Keys each query's loss process.
    const int64_t shard_first =
        static_cast<int64_t>(s) * per_shard + std::min(s, remainder);
    Rng rng = Rng::ForStream(options.seed, static_cast<uint64_t>(s));
    Histogram* h_latency = sums.metrics.histogram(kLatencyHist);
    Histogram* h_tuning_index = sums.metrics.histogram(kTuningIndexHist);
    Histogram* h_tuning_total = sums.metrics.histogram(kTuningTotalHist);
    Histogram* h_retries = sums.metrics.histogram(kRetriesHist);
    Histogram* h_lost = sums.metrics.histogram(kLostPacketsHist);
    Histogram* h_corrupted = sums.metrics.histogram(kCorruptedPacketsHist);
    const bool tracing = options.trace_sink != nullptr;
    if (tracing) sums.traces.reserve(static_cast<size_t>(shard_queries));
    // Hoisted out of the query loop: ProbeInto refills the same trace, so
    // arena-backed indexes run the loop without per-query heap churn.
    ProbeTrace trace;
    // Moving-client mode: the shard is one mobile client whose walk draws
    // only from the dedicated mobility stream family, so the shared `rng`
    // sequence is untouched by enabling it. The region cache draws no RNG
    // at all.
    const bool mobility_on = options.mobility.enabled;
    const bool cache_on = options.cache.enabled;
    workload::MobilityState walk;
    Rng walk_rng = Rng::ForStream(
        options.seed,
        workload::kMobilityStreamBase + static_cast<uint64_t>(s));
    RegionCache cache(options.cache);
    for (int q = 0; q < shard_queries; ++q) {
      const geom::Point p =
          mobility_on ? workload::MobilityStep(options.mobility,
                                               subdivision.service_area(),
                                               &walk, &walk_rng)
                      : sampler.Draw(&rng);

      if (cache_on) {
        const RegionCache::Entry* hit = cache.Lookup(p);
        if (hit != nullptr) {
          ++sums.cache_hits;
          // The arrival is still drawn (same stream, same order as a
          // miss), so the forced cold replay below sees exactly the
          // channel state this query would have tuned into.
          const double arrival =
              rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
          if (options.cache.verify_hits) {
            const Status probe_st = index.ProbeInto(p, &trace);
            if (!probe_st.ok()) {
              sums.error = probe_st;
              return;
            }
            Result<BroadcastChannel::QueryOutcome> cold_r = ch.Simulate(
                trace, arrival, static_cast<uint64_t>(shard_first + q));
            if (!cold_r.ok()) {
              sums.error = cold_r.status();
              return;
            }
            const auto& cold = cold_r.value();
            if (trace.region != hit->region ||
                (!cold.unrecoverable && cold.epoch != hit->epoch)) {
              sums.error = Status::Internal(
                  "region cache hit diverges from cold tune-in: cached "
                  "region " + std::to_string(hit->region) + " epoch " +
                  std::to_string(hit->epoch) + " vs cold region " +
                  std::to_string(trace.region) + " epoch " +
                  std::to_string(cold.epoch));
              return;
            }
          }
          if (tracing) {
            sums.traces.emplace_back();
            QueryTrace* qt = &sums.traces.back();
            qt->query_index = static_cast<uint64_t>(shard_first + q);
            qt->x = p.x;
            qt->y = p.y;
            qt->region = hit->region;
            qt->arrival = arrival;
            qt->cache_hit = true;
            TraceEvent ev;
            ev.kind = TraceEventKind::kCacheHit;
            ev.pos = static_cast<int64_t>(std::floor(arrival)) + 1;
            ev.packet = static_cast<int>(hit->epoch);
            qt->events.push_back(ev);
          }
          // The hit IS the energy win: the client never tunes in, so the
          // query contributes zero latency and zero tuning to every
          // aggregate (and nothing to the indexless baseline either).
          h_latency->Add(0.0);
          h_tuning_index->Add(0.0);
          h_tuning_total->Add(0.0);
          h_retries->Add(0.0);
          h_lost->Add(0.0);
          h_corrupted->Add(0.0);
          continue;
        }
        ++sums.cache_misses;
      }

      const Status probe_st = index.ProbeInto(p, &trace);
      if (!probe_st.ok()) {
        sums.error = probe_st;
        return;
      }

      if (oracle != nullptr) {
        const int expect = oracle->Locate(p);
        if (expect != trace.region &&
            subdivision.DistanceToNearestBorder(p) > geom::kMergeEps * 100.0) {
          sums.error = Status::Internal(
              index.name() + " located region " +
              std::to_string(trace.region) + " but oracle says " +
              std::to_string(expect));
          return;
        }
      }

      const double arrival =
          rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
      QueryTrace* qt = nullptr;
      if (tracing) {
        sums.traces.emplace_back();
        qt = &sums.traces.back();
        qt->query_index = static_cast<uint64_t>(shard_first + q);
        qt->x = p.x;
        qt->y = p.y;
        qt->region = trace.region;
        qt->arrival = arrival;
      }
      Result<BroadcastChannel::QueryOutcome> out_r = ch.Simulate(
          trace, arrival, static_cast<uint64_t>(shard_first + q), qt);
      if (!out_r.ok()) {
        sums.error = out_r.status();
        return;
      }
      const auto& out = out_r.value();
      sums.latency += out.latency;
      sums.tuning_index += out.tuning_index;
      sums.tuning_total += out.tuning_total();
      sums.retries += out.retries;
      sums.lost_packets += out.lost_packets;
      sums.corrupted_packets += out.corrupted_packets;
      if (out.unrecoverable) ++sums.unrecoverable;
      if (out.fallback_scan) ++sums.fallback;
      h_latency->Add(out.latency);
      h_tuning_index->Add(out.tuning_index);
      h_tuning_total->Add(out.tuning_total());
      h_retries->Add(out.retries);
      h_lost->Add(out.lost_packets);
      h_corrupted->Add(out.corrupted_packets);

      if (cache_on && !out.unrecoverable && trace.region >= 0) {
        // A completed answer carries a trusted epoch stamp: flush on skew
        // first, then cache the answer's valid scope under that epoch.
        sums.cache_invalidations += cache.OnEpochObserved(out.epoch);
        sums.cache_evictions += cache.Insert(
            region_polys[static_cast<size_t>(trace.region)], trace.region,
            out.epoch);
      }

      // The indexless strawman plays the same fault processes as the
      // indexed client, keyed by the same global query index (its draws
      // come from the disjoint NoIndexStream family, so neither
      // simulation perturbs the other).
      const auto base = ch.SimulateNoIndex(
          trace.region, arrival, static_cast<uint64_t>(shard_first + q));
      sums.tuning_noindex += base.tuning_total();
    }
  };

  ThreadPool pool(options.num_threads);
  pool.ParallelFor(num_shards, run_shard);

  // Merge in shard order: floating-point summation order is fixed, so the
  // result is bit-identical for every thread count. The first failing
  // shard (by id) wins, matching what a serial run would have reported.
  double sum_latency = 0.0;
  double sum_tuning_index = 0.0;
  double sum_tuning_total = 0.0;
  double sum_tuning_noindex = 0.0;
  int64_t sum_retries = 0;
  int64_t sum_lost = 0;
  int64_t sum_corrupted = 0;
  int64_t sum_unrecoverable = 0;
  int64_t sum_fallback = 0;
  int64_t sum_cache_hits = 0;
  int64_t sum_cache_misses = 0;
  int64_t sum_cache_evictions = 0;
  int64_t sum_cache_invalidations = 0;
  MetricsRegistry merged;
  for (const ShardSums& sums : shards) {
    if (!sums.error.ok()) return sums.error;
    sum_latency += sums.latency;
    sum_tuning_index += sums.tuning_index;
    sum_tuning_total += sums.tuning_total;
    sum_tuning_noindex += sums.tuning_noindex;
    sum_retries += sums.retries;
    sum_lost += sums.lost_packets;
    sum_corrupted += sums.corrupted_packets;
    sum_unrecoverable += sums.unrecoverable;
    sum_fallback += sums.fallback;
    sum_cache_hits += sums.cache_hits;
    sum_cache_misses += sums.cache_misses;
    sum_cache_evictions += sums.cache_evictions;
    sum_cache_invalidations += sums.cache_invalidations;
    merged.MergeOrdered(sums.metrics);
  }

  // Replay buffered traces into the sink. Shards own contiguous,
  // ascending query ranges, so iterating shards in order replays the
  // stream in global query order — the sink sees the exact same sequence
  // for any thread count.
  if (options.trace_sink != nullptr) {
    for (const ShardSums& sums : shards) {
      for (const QueryTrace& qt : sums.traces) {
        options.trace_sink->Consume(qt);
      }
    }
  }

  // num_queries == 0 is a legal degenerate run (an empty load is what a
  // fleet between arrivals looks like): every sum is zero, so every mean
  // below must be guarded against 0/0 — the pinned behavior is all-zero
  // means, not NaN. Min/max come from empty histograms, which report 0.
  const double n = static_cast<double>(options.num_queries);
  const auto mean = [&](double sum) { return n > 0.0 ? sum / n : 0.0; };
  ExperimentResult res;
  res.index_name = index.name();
  res.packet_capacity = options.packet_capacity;
  res.m = ch.m();
  res.index_packets = index.NumIndexPackets();
  res.index_bytes = index.IndexBytes();
  res.data_packets = ch.data_packets();
  res.cycle_packets = ch.cycle_packets();
  res.mean_latency = mean(sum_latency);
  res.optimal_latency = ch.OptimalLatency();
  res.normalized_latency = res.mean_latency / res.optimal_latency;
  res.mean_tuning_index = mean(sum_tuning_index);
  res.mean_tuning_total = mean(sum_tuning_total);
  res.mean_tuning_noindex = mean(sum_tuning_noindex);
  const double saved = res.mean_tuning_noindex - res.mean_tuning_total;
  const double overhead = res.mean_latency - res.optimal_latency;
  res.indexing_efficiency = overhead > 0.0 ? saved / overhead : 0.0;
  const double db_bytes =
      static_cast<double>(subdivision.NumRegions()) *
      static_cast<double>(options.data_instance_size);
  res.normalized_index_size = static_cast<double>(res.index_bytes) / db_bytes;
  res.total_retries = sum_retries;
  res.total_corrupted_packets = sum_corrupted;
  res.unrecoverable_queries = sum_unrecoverable;
  res.fallback_queries = sum_fallback;
  res.cache_hits = sum_cache_hits;
  res.cache_misses = sum_cache_misses;
  res.cache_evictions = sum_cache_evictions;
  res.cache_invalidations = sum_cache_invalidations;
  res.mean_retries = mean(static_cast<double>(sum_retries));
  res.mean_lost_packets = mean(static_cast<double>(sum_lost));
  res.mean_corrupted_packets = mean(static_cast<double>(sum_corrupted));
  res.min_latency = merged.histogram(kLatencyHist)->Min();
  res.max_latency = merged.histogram(kLatencyHist)->Max();
  res.min_tuning_total = merged.histogram(kTuningTotalHist)->Min();
  res.max_tuning_total = merged.histogram(kTuningTotalHist)->Max();
  res.metrics = std::move(merged);
  return res;
}

}  // namespace dtree::bcast
