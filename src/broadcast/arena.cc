#include "broadcast/arena.h"

namespace dtree::bcast {

Result<ProbeTrace> ArenaIndex::Probe(const geom::Point& p) const {
  ProbeTrace trace;
  DTREE_RETURN_IF_ERROR(engine_->ProbeInto(p, &trace));
  return trace;
}

}  // namespace dtree::bcast
