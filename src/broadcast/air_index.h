// The interface every air-index structure implements, plus the probe-trace
// type the broadcast-channel simulator consumes.
//
// An air index is a set of nodes allocated into fixed-capacity packets laid
// out in a fixed broadcast order (packet id == position within the index
// segment). Probing with a query point yields the data region id plus the
// ordered list of index packets the client had to listen to — the paper's
// tuning-time measure for the index search step.

#ifndef DTREE_BROADCAST_AIR_INDEX_H_
#define DTREE_BROADCAST_AIR_INDEX_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geom/point.h"

namespace dtree::bcast {

/// Hard budget on descent steps for one Probe. Every implementation's
/// probe loop is bounded by it (a correct descent takes orders of
/// magnitude fewer steps); on exhaustion Probe returns Status::Internal
/// instead of hanging, so a client always terminates.
inline constexpr int kProbeStepBudget = 1 << 20;

/// Hard budget on the packets a single probe trace may touch. A correct
/// search reads each level's packet once; even a DAG-shaped index revisits
/// a packet only a handful of times, so a trace materially longer than the
/// index itself indicates a defective descent. Enforced by ValidateTrace
/// (and hence by BroadcastChannel::Simulate) so a runaway trace can never
/// translate into an unbounded simulated doze.
inline constexpr int ProbePacketBudget(int num_index_packets) {
  return 4 * num_index_packets + 64;
}

/// Which tree node caused an index-packet read, and at what depth — the
/// annotation the observability layer uses to attribute tuning energy to
/// tree levels. -1 means unknown.
struct ProbePacketOrigin {
  int node = -1;
  int depth = -1;
};

/// Result of one index search over the air.
struct ProbeTrace {
  /// Data region (== data instance) the query resolves to.
  int region = -1;
  /// Index packet ids accessed, in access order. Ids are positions within
  /// the index segment. Tree-shaped indexes only ever jump forward
  /// (non-decreasing); a DAG-shaped index (the trap-tree) may reference an
  /// earlier packet, in which case the client must wait for the next index
  /// repetition to read it — the channel simulator charges that wait.
  std::vector<int> packets;
  /// Optional probe-path annotation, parallel to `packets` (same size or
  /// empty). When a packet holds several nodes the read is attributed to
  /// the first node the descent decoded from it. Filled by indexes that
  /// can attribute reads (the D-tree); empty elsewhere. Purely
  /// observational: the channel simulation never depends on it.
  std::vector<ProbePacketOrigin> origins;
};

/// Abstract paged air index.
class AirIndex {
 public:
  virtual ~AirIndex() = default;

  virtual std::string name() const = 0;

  /// Number of packets in one index segment.
  virtual int NumIndexPackets() const = 0;

  /// Total occupied bytes across index packets (<= packets * capacity).
  virtual size_t IndexBytes() const = 0;

  /// Packet capacity this index was paged for.
  virtual int PacketCapacity() const = 0;

  /// Simulates the client's index search for query point p.
  ///
  /// Concurrency contract: Probe must be safe to call from multiple
  /// threads at once on the same (fully built) index. Implementations may
  /// not mutate shared state — no lazy construction, no internal caches,
  /// no `mutable` members touched on the probe path. The parallel
  /// experiment driver (bcast::RunExperiment) shards its query stream
  /// across a thread pool and relies on this; all four structures in this
  /// repository (D-tree, R*-tree, trap-tree, trian-tree) satisfy it by
  /// being immutable after Build().
  virtual Result<ProbeTrace> Probe(const geom::Point& p) const = 0;

  /// Allocation-light variant: fills `*trace` (clearing any previous
  /// contents but keeping its vectors' capacity), so a caller probing many
  /// queries can reuse one trace instead of constructing fresh vectors per
  /// query. Same semantics and concurrency contract as Probe; `*trace` is
  /// unspecified on error. The default forwards to Probe; hot-path
  /// implementations override it.
  virtual Status ProbeInto(const geom::Point& p, ProbeTrace* trace) const;
};

/// Validates a trace: region resolved, packet ids within range, and — when
/// `require_forward` — non-decreasing. Shared by tests and the channel
/// simulator.
Status ValidateTrace(const ProbeTrace& trace, int num_index_packets,
                     int num_regions, bool require_forward = true);

}  // namespace dtree::bcast

#endif  // DTREE_BROADCAST_AIR_INDEX_H_
