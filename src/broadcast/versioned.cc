#include "broadcast/versioned.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "broadcast/frame.h"
#include "broadcast/trace.h"
#include "common/check.h"

namespace dtree::bcast {

Result<BroadcastTimeline> BroadcastTimeline::Create(
    std::vector<EpochSpan> spans) {
  if (spans.empty()) {
    return Status::InvalidArgument("timeline needs at least one epoch span");
  }
  for (size_t s = 0; s < spans.size(); ++s) {
    if (spans[s].channel == nullptr) {
      return Status::InvalidArgument("epoch span without a channel");
    }
    if (spans[s].channel->packet_capacity() !=
        spans[0].channel->packet_capacity()) {
      return Status::InvalidArgument(
          "epoch spans must share one packet capacity: the frame wire "
          "format cannot change mid-broadcast");
    }
    if (s + 1 < spans.size() && spans[s].cycles < 1) {
      return Status::InvalidArgument(
          "every epoch span but the last needs cycles >= 1");
    }
  }
  BroadcastTimeline tl;
  tl.start_.resize(spans.size() + 1);
  tl.start_[0] = 0;
  for (size_t s = 0; s + 1 < spans.size(); ++s) {
    tl.start_[s + 1] =
        tl.start_[s] + spans[s].cycles * spans[s].channel->cycle_packets();
  }
  tl.start_[spans.size()] = std::numeric_limits<int64_t>::max();
  tl.spans_ = std::move(spans);
  return tl;
}

int BroadcastTimeline::SpanAt(int64_t pos) const {
  DTREE_CHECK(pos >= 0);
  // First span whose start exceeds pos; pos lives in the one before it.
  const auto it = std::upper_bound(start_.begin(), start_.end(), pos);
  const int s = static_cast<int>(it - start_.begin()) - 1;
  DTREE_CHECK(s >= 0 && s < num_spans());
  return s;
}

Result<BroadcastChannel::QueryOutcome> BroadcastTimeline::Simulate(
    const std::vector<ProbeTrace>& traces, double arrival,
    uint64_t loss_stream, QueryTrace* trace_out) const {
  using QueryOutcome = BroadcastChannel::QueryOutcome;
  if (!std::isfinite(arrival) || arrival < 0.0) {
    return Status::InvalidArgument("arrival must be finite and non-negative");
  }
  if (traces.size() != spans_.size()) {
    return Status::InvalidArgument("need one probe trace per epoch span");
  }
  for (size_t s = 0; s < spans_.size(); ++s) {
    const BroadcastChannel& ch = *spans_[s].channel;
    DTREE_RETURN_IF_ERROR(ValidateTrace(traces[s],
                                        std::max(ch.index_packets(), 1),
                                        ch.num_regions(),
                                        /*require_forward=*/false));
  }

  const LossOptions& lopt = loss_options();
  QueryOutcome out;
  LossProcess loss(lopt, loss_stream);
  CorruptionProcess corrupt(
      lopt.corruption, FrameBits(spans_[0].channel->packet_capacity()),
      loss_stream);
  const bool faults = loss.enabled() || corrupt.enabled();

  // --- Observability hooks, mirroring BroadcastChannel::Simulate; the
  // epoch summary fields are the only addition.
  auto emit_doze = [&](int64_t resume_at, double dur) {
    if (trace_out != nullptr && dur > 0.0) {
      TraceEvent e;
      e.kind = TraceEventKind::kDoze;
      e.pos = resume_at;
      e.dur = dur;
      trace_out->events.push_back(e);
    }
  };
  auto emit_read = [&](TraceEventKind kind, int64_t pos) {
    if (trace_out != nullptr) {
      TraceEvent e;
      e.kind = kind;
      e.pos = pos;
      trace_out->events.push_back(e);
    }
  };
  auto finish = [&]() {
    if (trace_out != nullptr) {
      trace_out->latency = out.latency;
      trace_out->tuning_total = out.tuning_total();
      trace_out->retries = out.retries;
      trace_out->lost_packets = out.lost_packets;
      trace_out->corrupted_packets = out.corrupted_packets;
      trace_out->fallback_scan = out.fallback_scan;
      trace_out->unrecoverable = out.unrecoverable;
      trace_out->versioned = true;
      trace_out->epoch = out.epoch;
      trace_out->epoch_switches = out.epoch_switches;
    }
  };
  auto read_failed = [&](int64_t at) {
    if (loss.enabled() && loss.NextLost()) {
      ++out.lost_packets;
      emit_read(TraceEventKind::kLoss, at);
      return true;
    }
    if (corrupt.enabled() && corrupt.NextCorrupted()) {
      ++out.corrupted_packets;
      emit_read(TraceEventKind::kCorruption, at);
      return true;
    }
    return false;
  };

  // The span whose frames the client currently trusts. Established by the
  // first delivered read (the probe) and advanced on every observed epoch
  // switch; monotone because positions only move forward.
  int cur = 0;
  // Registers the epoch switch a delivered read at `at` revealed (the
  // packet belongs to span `s` != cur). Returns false when the switch
  // budget is exhausted — the caller must then stop: the query has given
  // up with kEpochChurn and `out` is final (latency runs through the
  // revealing read).
  auto observe_switch = [&](int64_t at, int s) {
    ++out.epoch_switches;
    if (trace_out != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kEpochSwitch;
      e.pos = at;
      e.packet = static_cast<int>(spans_[static_cast<size_t>(s)].epoch);
      e.attempt = out.epoch_switches;
      trace_out->events.push_back(e);
    }
    cur = s;
    out.epoch = spans_[static_cast<size_t>(s)].epoch;
    if (out.epoch_switches > lopt.max_epoch_switches) {
      out.unrecoverable = true;
      out.give_up = GiveUpStage::kEpochChurn;
      out.latency = static_cast<double>(at + 1) - arrival;
      finish();
      return false;
    }
    return true;
  };

  // --- Degradation ladder, final rung: linear scan, as in
  // BroadcastChannel::Simulate's conclude, except epoch-aware. The scan
  // listens to every packet, so the first packet of a new span reveals a
  // switch mid-lump; bucket packets are checked after their fault draws.
  // An epoch-truncated scan does not consume a fallback cycle (the cycle
  // budget bounds fault failures; the switch budget bounds truncations),
  // and the bucket position is recomputed from the *new* span's region —
  // the client recognizes its bucket by content.
  auto conclude = [&](int64_t give_up_pos,
                      GiveUpStage stage) -> QueryOutcome {
    int cycle = 0;
    while (cycle < lopt.fallback_scan_cycles) {
      out.fallback_scan = true;
      loss.StartStream(LossProcess::FallbackStream(cycle));
      corrupt.StartStream(LossProcess::FallbackStream(cycle));
      const BroadcastChannel& ch = *spans_[static_cast<size_t>(cur)].channel;
      const int64_t sstart = span_start(cur);
      const int64_t local = give_up_pos - sstart;
      DTREE_CHECK(local >= 0);
      const int64_t bucket_in_cycle =
          ch.BucketStart(traces[static_cast<size_t>(cur)].region);
      const int64_t cycle_base =
          (local / ch.cycle_packets()) * ch.cycle_packets();
      int64_t data_at = sstart + cycle_base + bucket_in_cycle;
      if (data_at < give_up_pos) data_at += ch.cycle_packets();
      // Epoch boundary inside the listening lump: the first listened
      // packet beyond the span reveals the switch before the bucket is
      // ever reached.
      const int64_t reveal = std::max(give_up_pos, span_end(cur));
      if (reveal < data_at) {
        const int listened = static_cast<int>(reveal + 1 - give_up_pos);
        out.tuning_index += listened;
        if (trace_out != nullptr) {
          TraceEvent e;
          e.kind = TraceEventKind::kFallbackScan;
          e.pos = give_up_pos;
          e.packet = listened;
          e.attempt = cycle;
          trace_out->events.push_back(e);
        }
        if (!observe_switch(reveal, SpanAt(reveal))) return out;
        give_up_pos = reveal + 1;
        continue;  // re-scan in the new epoch; no fallback cycle consumed
      }
      const int64_t listened = data_at - give_up_pos;
      out.tuning_index += static_cast<int>(listened);
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kFallbackScan;
        e.pos = give_up_pos;
        e.packet = static_cast<int>(listened);
        e.attempt = cycle;
        trace_out->events.push_back(e);
      }
      bool lost = false;
      bool corrupted_here = false;
      bool switched = false;
      int64_t switch_at = 0;
      int bucket_read = 0;
      for (int b = 0; b < ch.bucket_packets(); ++b) {
        ++out.tuning_data;
        ++bucket_read;
        const int64_t q = data_at + b;
        if (loss.enabled() && loss.NextLost()) {
          ++out.lost_packets;
          lost = true;
          break;
        }
        if (corrupt.enabled() && corrupt.NextCorrupted()) {
          ++out.corrupted_packets;
          corrupted_here = true;
          lost = true;
          break;
        }
        if (SpanAt(q) != cur) {
          switched = true;
          switch_at = q;
          break;
        }
      }
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kBucketRead;
        e.pos = data_at;
        e.packet = bucket_read;
        trace_out->events.push_back(e);
        if (lost) {
          emit_read(corrupted_here ? TraceEventKind::kCorruption
                                   : TraceEventKind::kLoss,
                    data_at + bucket_read - 1);
        }
      }
      if (switched) {
        if (!observe_switch(switch_at, SpanAt(switch_at))) return out;
        give_up_pos = switch_at + 1;
        continue;  // bucket belonged to the old epoch; rescan, same cycle
      }
      if (!lost) {
        out.latency =
            static_cast<double>(data_at + ch.bucket_packets()) - arrival;
        finish();
        return out;
      }
      give_up_pos = data_at + bucket_read;  // listen past the bad packet
      ++cycle;
    }
    out.unrecoverable = true;
    out.give_up =
        out.fallback_scan ? GiveUpStage::kFallbackBudget : stage;
    out.latency = static_cast<double>(give_up_pos) - arrival;
    finish();
    return out;
  };

  // --- Initial probe, identical to BroadcastChannel::Simulate. Probing is
  // how the client *learns* the current epoch, so the span of the last
  // successful probe read becomes the tune-in epoch without consuming a
  // switch; lost/corrupted probes reveal nothing.
  int64_t probe_packet = static_cast<int64_t>(std::floor(arrival)) + 1;
  out.tuning_probe = 1;
  emit_doze(probe_packet, static_cast<double>(probe_packet) - arrival);
  emit_read(TraceEventKind::kProbe, probe_packet);
  while (faults && read_failed(probe_packet)) {
    if (out.tuning_probe > lopt.max_retries) {
      // Never heard a single frame; the scan itself will reveal the epoch.
      cur = SpanAt(probe_packet + 1);
      out.epoch = spans_[static_cast<size_t>(cur)].epoch;
      return conclude(probe_packet + 1, GiveUpStage::kProbeBudget);
    }
    ++out.tuning_probe;
    ++probe_packet;
    emit_read(TraceEventKind::kProbe, probe_packet);
  }
  cur = SpanAt(probe_packet);
  out.epoch = spans_[static_cast<size_t>(cur)].epoch;
  int64_t pos = probe_packet + 1;

  // Smallest absolute index-segment start >= t within span cur's layout
  // (positions beyond the span extrapolate its layout; the frames actually
  // broadcast there belong to the next epoch and the reads will say so).
  auto next_segment_start = [&](int64_t t) {
    const BroadcastChannel& ch = *spans_[static_cast<size_t>(cur)].channel;
    const int64_t local = t - span_start(cur);
    DTREE_CHECK(local >= 0);
    const int64_t base = (local / ch.cycle_packets()) * ch.cycle_packets();
    const int64_t in_cycle = local - base;
    for (int j = 0; j < ch.m(); ++j) {
      if (ch.IndexSegmentStart(j) >= in_cycle) {
        return span_start(cur) + base + ch.IndexSegmentStart(j);
      }
    }
    return span_start(cur) + base + ch.cycle_packets() +
           ch.IndexSegmentStart(0);
  };

  // --- Access attempts. One restart ordinal keys the fault sub-streams
  // for *both* restart causes — fault re-tunes (counted in out.retries,
  // bounded by max_retries) and epoch switches (counted in
  // out.epoch_switches, bounded by max_epoch_switches) — so the draw
  // streams match BroadcastChannel::Simulate attempt-for-attempt until
  // the first switch.
  int restarts = 0;
  bool fault_restart = false;  // this restart re-tunes after a fault
  for (;;) {
    if (fault_restart) {
      ++out.retries;
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kRetune;
        e.pos = pos;
        e.attempt = out.retries;
        trace_out->events.push_back(e);
      }
      fault_restart = false;
    }
    loss.StartStream(LossProcess::AttemptStream(restarts));
    corrupt.StartStream(LossProcess::AttemptStream(restarts));
    bool lost = false;
    bool switched = false;
    int64_t switch_at = 0;

    const BroadcastChannel& ch = *spans_[static_cast<size_t>(cur)].channel;
    const ProbeTrace& trace = traces[static_cast<size_t>(cur)];

    // --- Index search on the current epoch's index.
    int64_t p = pos;
    int64_t seg_start = next_segment_start(p);
    DTREE_CHECK(seg_start >= p);

    const bool annotated = trace.origins.size() == trace.packets.size();
    for (size_t i = 0; i < trace.packets.size(); ++i) {
      const int packet_id = trace.packets[i];
      int64_t at = seg_start + packet_id;
      if (at < p) {
        // Backward pointer (DAG-shaped index): wait for the next index
        // repetition that still has this packet ahead. p - packet_id is
        // positive for the same reason as in BroadcastChannel::Simulate.
        seg_start = next_segment_start(p - packet_id);
        at = seg_start + packet_id;
        DTREE_CHECK(at >= p);
      }
      emit_doze(at, static_cast<double>(at - p));
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kIndexRead;
        e.pos = at;
        e.packet = packet_id;
        if (annotated) {
          e.node = trace.origins[i].node;
          e.depth = trace.origins[i].depth;
        }
        trace_out->events.push_back(e);
      }
      p = at + 1;
      ++out.tuning_index;
      if (faults && read_failed(at)) {
        lost = true;
        break;
      }
      if (SpanAt(at) != cur) {
        switched = true;
        switch_at = at;
        break;
      }
    }
    if (!lost && !switched) {
      if (trace.packets.empty()) {
        p = std::max(p, seg_start);  // degenerate: empty index
      }

      // --- Data retrieval in the current epoch's layout.
      const int64_t sstart = span_start(cur);
      const int64_t bucket_in_cycle = ch.BucketStart(trace.region);
      const int64_t cycle_base =
          ((p - sstart) / ch.cycle_packets()) * ch.cycle_packets();
      int64_t data_at = sstart + cycle_base + bucket_in_cycle;
      if (data_at < p) data_at += ch.cycle_packets();
      emit_doze(data_at, static_cast<double>(data_at - p));
      int bucket_read = 0;
      bool corrupted_here = false;
      for (int b = 0; b < ch.bucket_packets(); ++b) {
        ++out.tuning_data;
        ++bucket_read;
        const int64_t q = data_at + b;
        if (faults) {
          if (loss.enabled() && loss.NextLost()) {
            ++out.lost_packets;
            lost = true;
            p = q + 1;  // loss detected at the end of this packet
            break;
          }
          if (corrupt.enabled() && corrupt.NextCorrupted()) {
            ++out.corrupted_packets;
            corrupted_here = true;
            lost = true;
            p = q + 1;  // CRC failure at the end of this packet
            break;
          }
        }
        if (SpanAt(q) != cur) {
          switched = true;
          switch_at = q;
          break;
        }
      }
      if (trace_out != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kBucketRead;
        e.pos = data_at;
        e.packet = bucket_read;
        trace_out->events.push_back(e);
        if (lost) {
          emit_read(corrupted_here ? TraceEventKind::kCorruption
                                   : TraceEventKind::kLoss,
                    data_at + bucket_read - 1);
        }
      }
      if (!lost && !switched) {
        const int64_t done = data_at + ch.bucket_packets();
        out.latency = static_cast<double>(done) - arrival;
        finish();
        return out;
      }
    }
    if (switched) {
      if (!observe_switch(switch_at, SpanAt(switch_at))) return out;
      pos = switch_at + 1;
      ++restarts;  // fresh streams; not a fault retry
      continue;
    }
    // Fault: re-tune to the next index repetition, budget permitting.
    if (out.retries >= lopt.max_retries) {
      return conclude(p, GiveUpStage::kRetryBudget);
    }
    fault_restart = true;
    ++restarts;
    pos = p;
  }
}

}  // namespace dtree::bcast
