// Triangle primitive used by the Kirkpatrick hierarchy and the
// triangulation routines.

#ifndef DTREE_GEOM_TRIANGLE_H_
#define DTREE_GEOM_TRIANGLE_H_

#include <array>
#include <cmath>

#include "geom/point.h"
#include "geom/predicates.h"

namespace dtree::geom {

struct Triangle {
  std::array<Point, 3> v;

  Triangle() = default;
  Triangle(const Point& a, const Point& b, const Point& c) : v{a, b, c} {}

  double SignedArea() const {
    return OrientValue(v[0], v[1], v[2]) / 2.0;
  }
  double Area() const { return std::abs(SignedArea()); }

  /// Reorders vertices so the triangle is counter-clockwise.
  void EnsureCCW() {
    if (SignedArea() < 0.0) std::swap(v[1], v[2]);
  }

  /// Closed containment test (boundary counts as inside). Assumes CCW.
  bool Contains(const Point& p, double eps = kGeomEps) const {
    const double s = std::max(Area(), 1.0);
    const double tol = eps * s;
    return OrientValue(v[0], v[1], p) >= -tol &&
           OrientValue(v[1], v[2], p) >= -tol &&
           OrientValue(v[2], v[0], p) >= -tol;
  }

  /// True when the two (CCW) triangles overlap in a region of positive
  /// area. Adjacency along an edge or at a vertex does not count.
  bool OverlapsInterior(const Triangle& o) const;

  Point Centroid() const {
    return {(v[0].x + v[1].x + v[2].x) / 3.0,
            (v[0].y + v[1].y + v[2].y) / 3.0};
  }

  BBox Bounds() const {
    BBox b;
    for (const Point& p : v) b.Extend(p);
    return b;
  }
};

}  // namespace dtree::geom

#endif  // DTREE_GEOM_TRIANGLE_H_
