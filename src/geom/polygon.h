// Simple polygons and polylines.
//
// A Polygon is a simple (non-self-intersecting) closed ring of vertices.
// Data regions (Voronoi valid scopes), subdivision extents, and R*-tree
// shape-layer objects are all built on this type. A Polyline is an open or
// closed chain of vertices; D-tree partitions are sets of polylines.

#ifndef DTREE_GEOM_POLYGON_H_
#define DTREE_GEOM_POLYGON_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "geom/point.h"

namespace dtree::geom {

/// Open or closed chain of vertices.
///
/// For a closed polyline the first vertex is NOT repeated at the end;
/// `closed` records the implicit last edge back to the front.
struct Polyline {
  std::vector<Point> pts;
  bool closed = false;

  size_t NumVertices() const { return pts.size(); }
  /// Number of line segments spanned by the chain.
  size_t NumSegments() const {
    if (pts.size() < 2) return 0;
    return closed ? pts.size() : pts.size() - 1;
  }
  /// Endpoints of the i-th segment (wraps around when closed).
  void Segment(size_t i, Point* a, Point* b) const {
    *a = pts[i];
    *b = pts[(i + 1) % pts.size()];
  }
  BBox Bounds() const {
    BBox b;
    for (const Point& p : pts) b.Extend(p);
    return b;
  }
};

/// Simple polygon stored as a vertex ring (first vertex not repeated).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {}

  const std::vector<Point>& ring() const { return ring_; }
  std::vector<Point>& mutable_ring() { return ring_; }
  size_t NumVertices() const { return ring_.size(); }
  bool empty() const { return ring_.size() < 3; }

  /// Endpoints of the i-th boundary edge (i in [0, NumVertices())).
  void Edge(size_t i, Point* a, Point* b) const {
    *a = ring_[i];
    *b = ring_[(i + 1) % ring_.size()];
  }

  /// Signed area: positive for counter-clockwise rings.
  double SignedArea() const;
  double Area() const;
  Point Centroid() const;
  BBox Bounds() const;

  bool IsCCW() const { return SignedArea() > 0.0; }
  /// Reverses the ring if it is clockwise.
  void EnsureCCW();

  /// True when p is strictly inside or on the boundary. Uses ray crossing
  /// with the half-open rule plus an explicit boundary check, so points on
  /// edges are reported as contained regardless of crossing parity.
  ///
  /// Boundary semantics: this test is *inclusive*, so in a tiling (Voronoi
  /// cells) a point exactly on a shared edge is contained by BOTH adjacent
  /// cells. Use ContainsHalfOpen when exactly one cell may claim the point.
  bool Contains(const Point& p) const;

  /// Pure half-open ray-crossing parity, with no boundary pre-check. In a
  /// polygon tiling this assigns every point — including points exactly on
  /// shared edges and vertices — to exactly one cell, deterministically:
  /// for two cells sharing edge e, RayRightCrossesSegment's half-open rule
  /// (an endpoint at the ray height counts only as the lower endpoint)
  /// makes exactly one of the two parities odd on e. This is the tie-break
  /// the client region cache relies on so a cached-cell lookup can never
  /// resolve a boundary point to a different cell than a cold probe.
  bool ContainsHalfOpen(const Point& p) const;

  /// True when p lies on the boundary within `eps`.
  bool OnBoundary(const Point& p, double eps = kGeomEps) const;

  /// Distance from p to the nearest boundary edge.
  double DistanceToBoundary(const Point& p) const;

  /// True when no two non-adjacent edges properly intersect and no vertex
  /// repeats. O(n^2); intended for tests and validation, not hot paths.
  bool IsSimple() const;

  /// True when every vertex turns the same way (allows collinear runs).
  bool IsConvex() const;

  /// A point guaranteed to be strictly inside the polygon (centroid when
  /// the polygon is convex; otherwise an interior midpoint found by
  /// scanline sampling). Returns false for degenerate polygons.
  bool InteriorPoint(Point* out) const;

 private:
  std::vector<Point> ring_;
};

/// Containment test over a vertex ring stored structure-of-arrays
/// (vertex i is (xs[i], ys[i]); the ring closes implicitly, first vertex
/// not repeated). Bit-identical to Polygon::Contains on the same ring —
/// boundary check first, then ray-crossing parity — but runs over
/// contiguous coordinate arrays, which is what the flat-arena probe
/// engines store instead of materialized Polygon objects.
bool PointInRing(const double* xs, const double* ys, size_t n,
                 const Point& p);

/// SoA twin of Polygon::ContainsHalfOpen: pure crossing parity, no boundary
/// pre-check, bit-identical to ContainsHalfOpen on the same ring. Partitions
/// a tiling uniquely (see ContainsHalfOpen).
bool RingContainsHalfOpen(const double* xs, const double* ys, size_t n,
                          const Point& p);

/// Bit-identical to Polygon::DistanceToBoundary over the same SoA ring.
double RingDistanceToBoundary(const double* xs, const double* ys, size_t n,
                              const Point& p);

/// Clips `poly` by the half-plane {p : a*p.x + b*p.y + c <= 0} using
/// Sutherland-Hodgman. The input must be convex for the output to be a
/// correct single polygon (the Voronoi builder only ever clips convex
/// cells). Returns an empty polygon when nothing remains.
Polygon ClipHalfPlane(const Polygon& poly, double a, double b, double c);

/// Clips an arbitrary simple polygon to the vertical band lo <= x <= hi and
/// returns the total remaining area. Non-convex inputs are handled by
/// summing trapezoid contributions edge-by-edge (Green's theorem on the
/// clipped edges), which is exact for band clipping.
double AreaInVerticalBand(const Polygon& poly, double lo, double hi);

/// Same for the horizontal band lo <= y <= hi.
double AreaInHorizontalBand(const Polygon& poly, double lo, double hi);

}  // namespace dtree::geom

#endif  // DTREE_GEOM_POLYGON_H_
