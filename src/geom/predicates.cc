#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

namespace dtree::geom {

int Orient(const Point& a, const Point& b, const Point& c, double eps) {
  const double v = OrientValue(a, b, c);
  // Scale the tolerance by the magnitude of the inputs so the predicate
  // behaves consistently across coordinate ranges.
  const double scale =
      std::max({std::abs(b.x - a.x), std::abs(b.y - a.y),
                std::abs(c.x - a.x), std::abs(c.y - a.y), 1.0});
  const double tol = eps * scale * scale;
  if (v > tol) return 1;
  if (v < -tol) return -1;
  return 0;
}

bool OnSegment(const Point& a, const Point& b, const Point& p, double eps) {
  return DistanceToSegment(a, b, p) <= eps;
}

double DistanceToSegment(const Point& a, const Point& b, const Point& p) {
  const Point ab = b - a;
  const double len2 = Dot(ab, ab);
  if (len2 == 0.0) return Distance(a, p);
  double t = Dot(p - a, ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  const Point proj = a + ab * t;
  return Distance(proj, p);
}

bool SegmentsProperlyIntersect(const Point& a, const Point& b, const Point& c,
                               const Point& d) {
  const int o1 = Orient(a, b, c);
  const int o2 = Orient(a, b, d);
  const int o3 = Orient(c, d, a);
  const int o4 = Orient(c, d, b);
  return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4;
}

bool RayRightCrossesSegment(const Point& p, const Point& a, const Point& b) {
  // Half-open in y: the segment is crossed iff exactly one endpoint is
  // strictly above p.y. This makes a ray through a shared polyline vertex
  // count the two incident segments once in total (when the polyline
  // actually crosses) or zero/two times (when it only touches).
  if ((a.y > p.y) == (b.y > p.y)) return false;
  // x-coordinate where the segment meets the horizontal line y = p.y.
  const double t = (p.y - a.y) / (b.y - a.y);
  const double x_int = a.x + t * (b.x - a.x);
  return x_int > p.x;
}

bool RayDownCrossesSegment(const Point& p, const Point& a, const Point& b) {
  if ((a.x > p.x) == (b.x > p.x)) return false;
  const double t = (p.x - a.x) / (b.x - a.x);
  const double y_int = a.y + t * (b.y - a.y);
  return y_int < p.y;
}

int CountRayRightCrossings(const double* ax, const double* ay,
                           const double* bx, const double* by, size_t n,
                           const Point& p) {
  int crossings = 0;
  for (size_t i = 0; i < n; ++i) {
    if ((ay[i] > p.y) == (by[i] > p.y)) continue;
    const double t = (p.y - ay[i]) / (by[i] - ay[i]);
    const double x_int = ax[i] + t * (bx[i] - ax[i]);
    crossings += x_int > p.x ? 1 : 0;
  }
  return crossings;
}

int CountRayDownCrossings(const double* ax, const double* ay,
                          const double* bx, const double* by, size_t n,
                          const Point& p) {
  int crossings = 0;
  for (size_t i = 0; i < n; ++i) {
    if ((ax[i] > p.x) == (bx[i] > p.x)) continue;
    const double t = (p.x - ax[i]) / (bx[i] - ax[i]);
    const double y_int = ay[i] + t * (by[i] - ay[i]);
    crossings += y_int < p.y ? 1 : 0;
  }
  return crossings;
}

}  // namespace dtree::geom
