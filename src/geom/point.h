// Basic planar types: Point and BBox.
//
// Coordinates are doubles in memory; they are serialized as 4-byte floats
// only when nodes are laid out into broadcast packets (Table 2 of the
// paper). Tolerances used across the geometry kernel are centralized here.

#ifndef DTREE_GEOM_POINT_H_
#define DTREE_GEOM_POINT_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

namespace dtree::geom {

/// Predicate tolerance for near-zero tests (orientation, incidence).
inline constexpr double kGeomEps = 1e-9;

/// Vertex-identity tolerance: two vertices closer than this are considered
/// the same point when stitching a subdivision. Chosen far above the
/// floating-point error of the Voronoi construction (~1e-9 over a
/// [0,1000]^2 world) and far below typical inter-vertex distances.
inline constexpr double kMergeEps = 1e-6;

struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }

  /// Lexicographic (x, then y) order; the trapezoidal map uses this as a
  /// symbolic shear to break ties between equal x-coordinates.
  bool LexLess(const Point& o) const {
    return x < o.x || (x == o.x && y < o.y);
  }
};

inline double Dot(const Point& a, const Point& b) { return a.x * b.x + a.y * b.y; }
inline double Cross(const Point& a, const Point& b) { return a.x * b.y - a.y * b.x; }

inline double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

/// True when the two points are within the vertex-identity tolerance.
inline bool NearlyEqual(const Point& a, const Point& b,
                        double eps = kMergeEps) {
  return std::abs(a.x - b.x) <= eps && std::abs(a.y - b.y) <= eps;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// Axis-aligned bounding box. Default-constructed box is empty.
struct BBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  BBox() = default;
  BBox(double x0, double y0, double x1, double y1)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  bool empty() const { return min_x > max_x || min_y > max_y; }
  double width() const { return empty() ? 0.0 : max_x - min_x; }
  double height() const { return empty() ? 0.0 : max_y - min_y; }
  double Area() const { return width() * height(); }
  Point Center() const {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  void Extend(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  void Extend(const BBox& b) {
    if (b.empty()) return;
    min_x = std::min(min_x, b.min_x);
    min_y = std::min(min_y, b.min_y);
    max_x = std::max(max_x, b.max_x);
    max_y = std::max(max_y, b.max_y);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool Contains(const BBox& b) const {
    return b.min_x >= min_x && b.max_x <= max_x && b.min_y >= min_y &&
           b.max_y <= max_y;
  }
  bool Intersects(const BBox& b) const {
    return !(b.min_x > max_x || b.max_x < min_x || b.min_y > max_y ||
             b.max_y < min_y);
  }

  /// Area of the geometric intersection (0 when disjoint).
  double IntersectionArea(const BBox& b) const {
    const double w =
        std::min(max_x, b.max_x) - std::max(min_x, b.min_x);
    const double h =
        std::min(max_y, b.max_y) - std::max(min_y, b.min_y);
    if (w <= 0.0 || h <= 0.0) return 0.0;
    return w * h;
  }

  /// Half-perimeter ("margin" in R*-tree terminology).
  double Margin() const { return width() + height(); }

  /// Smallest box covering both this box and `b`.
  BBox Union(const BBox& b) const {
    BBox r = *this;
    r.Extend(b);
    return r;
  }

  bool operator==(const BBox& o) const {
    return min_x == o.min_x && min_y == o.min_y && max_x == o.max_x &&
           max_y == o.max_y;
  }
};

}  // namespace dtree::geom

#endif  // DTREE_GEOM_POINT_H_
