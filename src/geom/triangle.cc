#include "geom/triangle.h"

#include "geom/polygon.h"

namespace dtree::geom {

bool Triangle::OverlapsInterior(const Triangle& o) const {
  if (!Bounds().Intersects(o.Bounds())) return false;
  // Clip `o` by the three half-planes of `this` and check the remaining
  // area. Edge/vertex adjacency leaves (near-)zero area behind.
  Polygon clipped(std::vector<Point>{o.v[0], o.v[1], o.v[2]});
  for (int i = 0; i < 3 && !clipped.empty(); ++i) {
    const Point& a = v[i];
    const Point& b = v[(i + 1) % 3];
    // Inside (left of CCW edge a->b): cross(b-a, p-a) >= 0, i.e.
    // -(b.y-a.y) * p.x + (b.x-a.x) * p.y + (a.x*(b.y-a.y) - a.y*(b.x-a.x))
    // >= 0; ClipHalfPlane keeps coef <= 0, so negate.
    const double ca = (b.y - a.y);
    const double cb = -(b.x - a.x);
    const double cc = -(a.x * ca + a.y * cb);
    clipped = ClipHalfPlane(clipped, ca, cb, cc);
  }
  if (clipped.empty()) return false;
  const double min_area = std::min(Area(), o.Area());
  return clipped.Area() > 1e-9 * std::max(min_area, 1.0);
}

}  // namespace dtree::geom
