// Planar geometric predicates.
//
// The kernel works in double precision; input coordinates are stitched to a
// tolerance grid before the predicates are used for structural decisions
// (see subdivision/stitch.h), which keeps plain floating-point evaluation
// reliable for the data scales this library targets.

#ifndef DTREE_GEOM_PREDICATES_H_
#define DTREE_GEOM_PREDICATES_H_

#include "geom/point.h"

namespace dtree::geom {

/// Sign of the signed area of triangle (a, b, c):
/// +1 when c lies to the left of directed line a->b (counter-clockwise),
/// -1 when to the right, 0 when collinear within tolerance.
int Orient(const Point& a, const Point& b, const Point& c,
           double eps = kGeomEps);

/// Raw twice-signed-area value (positive = CCW).
inline double OrientValue(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// True when p lies on the closed segment [a, b] within tolerance.
bool OnSegment(const Point& a, const Point& b, const Point& p,
               double eps = kGeomEps);

/// Euclidean distance from p to the closed segment [a, b].
double DistanceToSegment(const Point& a, const Point& b, const Point& p);

/// True when the open interiors of segments [a,b] and [c,d] intersect
/// (shared endpoints do not count). Used by subdivision validation.
bool SegmentsProperlyIntersect(const Point& a, const Point& b, const Point& c,
                               const Point& d);

/// Does a horizontal ray from p toward +x cross segment [a, b]?
/// Uses the half-open rule (an endpoint exactly at p.y counts only when it
/// is the *lower* endpoint), so crossing counts are consistent for rays
/// passing through shared vertices of a polyline.
bool RayRightCrossesSegment(const Point& p, const Point& a, const Point& b);

/// Does a vertical ray from p toward -y cross segment [a, b]?
/// Half-open rule on x (an endpoint exactly at p.x counts only when it is
/// the *left* endpoint).
bool RayDownCrossesSegment(const Point& p, const Point& a, const Point& b);

/// Crossing counts over `n` independent segments stored structure-of-
/// arrays (segment i is (ax[i], ay[i]) -> (bx[i], by[i])). Exactly
/// equivalent to calling the predicates above per segment, but the
/// branch-light contiguous loop is what the flat-arena probe engines
/// (DESIGN.md §12) run per query, so it must stay bit-identical to the
/// scalar forms: same division-based intercept, same strict comparisons.
int CountRayRightCrossings(const double* ax, const double* ay,
                           const double* bx, const double* by, size_t n,
                           const Point& p);
int CountRayDownCrossings(const double* ax, const double* ay,
                          const double* bx, const double* by, size_t n,
                          const Point& p);

}  // namespace dtree::geom

#endif  // DTREE_GEOM_PREDICATES_H_
