#include "geom/polygon.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "geom/predicates.h"

namespace dtree::geom {

double Polygon::SignedArea() const {
  if (ring_.size() < 3) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    s += Cross(a, b);
  }
  return s / 2.0;
}

double Polygon::Area() const { return std::abs(SignedArea()); }

Point Polygon::Centroid() const {
  if (ring_.empty()) return {};
  const double a = SignedArea();
  if (std::abs(a) < kGeomEps) {
    // Degenerate: fall back to the vertex average.
    Point c;
    for (const Point& p : ring_) c = c + p;
    return c * (1.0 / static_cast<double>(ring_.size()));
  }
  double cx = 0.0, cy = 0.0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& p = ring_[i];
    const Point& q = ring_[(i + 1) % ring_.size()];
    const double w = Cross(p, q);
    cx += (p.x + q.x) * w;
    cy += (p.y + q.y) * w;
  }
  return {cx / (6.0 * a), cy / (6.0 * a)};
}

BBox Polygon::Bounds() const {
  BBox b;
  for (const Point& p : ring_) b.Extend(p);
  return b;
}

void Polygon::EnsureCCW() {
  if (!ring_.empty() && SignedArea() < 0.0) {
    std::reverse(ring_.begin(), ring_.end());
  }
}

bool Polygon::Contains(const Point& p) const {
  if (ring_.size() < 3) return false;
  if (OnBoundary(p)) return true;
  int crossings = 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    Point a, b;
    Edge(i, &a, &b);
    if (RayRightCrossesSegment(p, a, b)) ++crossings;
  }
  return (crossings % 2) == 1;
}

bool Polygon::ContainsHalfOpen(const Point& p) const {
  if (ring_.size() < 3) return false;
  int crossings = 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    Point a, b;
    Edge(i, &a, &b);
    if (RayRightCrossesSegment(p, a, b)) ++crossings;
  }
  return (crossings % 2) == 1;
}

bool Polygon::OnBoundary(const Point& p, double eps) const {
  for (size_t i = 0; i < ring_.size(); ++i) {
    Point a, b;
    Edge(i, &a, &b);
    if (DistanceToSegment(a, b, p) <= eps) return true;
  }
  return false;
}

double Polygon::DistanceToBoundary(const Point& p) const {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < ring_.size(); ++i) {
    Point a, b;
    Edge(i, &a, &b);
    best = std::min(best, DistanceToSegment(a, b, p));
  }
  return best;
}

bool PointInRing(const double* xs, const double* ys, size_t n,
                 const Point& p) {
  if (n < 3) return false;
  for (size_t i = 0; i < n; ++i) {
    const size_t j = (i + 1) % n;
    if (DistanceToSegment({xs[i], ys[i]}, {xs[j], ys[j]}, p) <= kGeomEps) {
      return true;
    }
  }
  int crossings = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t j = (i + 1) % n;
    if (RayRightCrossesSegment(p, {xs[i], ys[i]}, {xs[j], ys[j]})) {
      ++crossings;
    }
  }
  return (crossings % 2) == 1;
}

bool RingContainsHalfOpen(const double* xs, const double* ys, size_t n,
                          const Point& p) {
  if (n < 3) return false;
  int crossings = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t j = (i + 1) % n;
    if (RayRightCrossesSegment(p, {xs[i], ys[i]}, {xs[j], ys[j]})) {
      ++crossings;
    }
  }
  return (crossings % 2) == 1;
}

double RingDistanceToBoundary(const double* xs, const double* ys, size_t n,
                              const Point& p) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const size_t j = (i + 1) % n;
    best = std::min(best, DistanceToSegment({xs[i], ys[i]}, {xs[j], ys[j]}, p));
  }
  return best;
}

bool Polygon::IsSimple() const {
  const size_t n = ring_.size();
  if (n < 3) return false;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (NearlyEqual(ring_[i], ring_[j], kGeomEps)) return false;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    Point a, b;
    Edge(i, &a, &b);
    for (size_t j = i + 1; j < n; ++j) {
      // Skip adjacent edges (they legitimately share a vertex).
      if (j == i || (j + 1) % n == i || (i + 1) % n == j) continue;
      Point c, d;
      Edge(j, &c, &d);
      if (SegmentsProperlyIntersect(a, b, c, d)) return false;
    }
  }
  return true;
}

bool Polygon::IsConvex() const {
  const size_t n = ring_.size();
  if (n < 3) return false;
  int sign = 0;
  for (size_t i = 0; i < n; ++i) {
    const int o =
        Orient(ring_[i], ring_[(i + 1) % n], ring_[(i + 2) % n]);
    if (o == 0) continue;
    if (sign == 0) {
      sign = o;
    } else if (o != sign) {
      return false;
    }
  }
  return true;
}

bool Polygon::InteriorPoint(Point* out) const {
  if (ring_.size() < 3 || Area() < kGeomEps) return false;
  if (IsConvex()) {
    *out = Centroid();
    return true;
  }
  // Scanline at a y strictly between two distinct vertex levels: collect
  // edge crossings, and take the midpoint of the first in/out pair.
  std::set<double> ys;
  for (const Point& p : ring_) ys.insert(p.y);
  DTREE_CHECK(ys.size() >= 2);
  // Pick the widest gap between consecutive vertex levels for stability.
  double best_lo = 0.0, best_gap = -1.0;
  for (auto it = ys.begin(); std::next(it) != ys.end(); ++it) {
    const double gap = *std::next(it) - *it;
    if (gap > best_gap) {
      best_gap = gap;
      best_lo = *it;
    }
  }
  const double scan_y = best_lo + best_gap / 2.0;
  std::vector<double> xs;
  for (size_t i = 0; i < ring_.size(); ++i) {
    Point a, b;
    Edge(i, &a, &b);
    if ((a.y > scan_y) == (b.y > scan_y)) continue;
    const double t = (scan_y - a.y) / (b.y - a.y);
    xs.push_back(a.x + t * (b.x - a.x));
  }
  if (xs.size() < 2) return false;
  std::sort(xs.begin(), xs.end());
  *out = {(xs[0] + xs[1]) / 2.0, scan_y};
  return true;
}

Polygon ClipHalfPlane(const Polygon& poly, double a, double b, double c) {
  const size_t n = poly.NumVertices();
  if (n < 3) return Polygon();
  // Normalize so `side` is a signed distance; keeps tolerances meaningful.
  const double norm = std::hypot(a, b);
  if (norm < kGeomEps) return poly;  // Degenerate line: no constraint.
  a /= norm;
  b /= norm;
  c /= norm;
  constexpr double kOnLine = 1e-12;

  auto side = [&](const Point& p) { return a * p.x + b * p.y + c; };

  std::vector<Point> out;
  out.reserve(n + 2);
  for (size_t i = 0; i < n; ++i) {
    const Point& cur = poly.ring()[i];
    const Point& nxt = poly.ring()[(i + 1) % n];
    const double sc = side(cur);
    const double sn = side(nxt);
    const bool cur_in = sc <= kOnLine;
    const bool nxt_in = sn <= kOnLine;
    if (cur_in) out.push_back(cur);
    if (cur_in != nxt_in) {
      const double t = sc / (sc - sn);
      out.push_back({cur.x + t * (nxt.x - cur.x), cur.y + t * (nxt.y - cur.y)});
    }
  }
  // Drop consecutive duplicates introduced by near-on-line vertices.
  std::vector<Point> dedup;
  dedup.reserve(out.size());
  for (const Point& p : out) {
    if (dedup.empty() || !NearlyEqual(dedup.back(), p, kGeomEps)) {
      dedup.push_back(p);
    }
  }
  while (dedup.size() > 1 && NearlyEqual(dedup.front(), dedup.back(), kGeomEps)) {
    dedup.pop_back();
  }
  if (dedup.size() < 3) return Polygon();
  return Polygon(std::move(dedup));
}

namespace {

double ClippedAbsArea(const Polygon& poly, double a1, double b1, double c1,
                      double a2, double b2, double c2) {
  // Two successive Sutherland-Hodgman passes. For non-convex subjects the
  // output ring may contain zero-width bridges along the clip lines, but
  // its signed area still equals the true intersection area, which is all
  // this helper is used for.
  Polygon p1 = ClipHalfPlane(poly, a1, b1, c1);
  if (p1.empty()) return 0.0;
  Polygon p2 = ClipHalfPlane(p1, a2, b2, c2);
  return p2.Area();
}

}  // namespace

double AreaInVerticalBand(const Polygon& poly, double lo, double hi) {
  if (hi <= lo) return 0.0;
  // x >= lo  <=>  -x + lo <= 0 ; x <= hi  <=>  x - hi <= 0.
  return ClippedAbsArea(poly, -1.0, 0.0, lo, 1.0, 0.0, -hi);
}

double AreaInHorizontalBand(const Polygon& poly, double lo, double hi) {
  if (hi <= lo) return 0.0;
  return ClippedAbsArea(poly, 0.0, -1.0, lo, 0.0, 1.0, -hi);
}

}  // namespace dtree::geom
