// Dataset generators for the paper's three evaluation workloads.
//
// UNIFORM reproduces the paper exactly (1000 random points in a square).
// HOSPITAL (N=185) and PARK (N=1102) were real Southern-California point
// sets from a now-defunct archive; we substitute clustered synthetic
// generators with matched cardinalities and a strongly clustered spatial
// distribution, which is what the experiments actually exercise (see
// DESIGN.md, "Substitutions").

#ifndef DTREE_WORKLOAD_DATASETS_H_
#define DTREE_WORKLOAD_DATASETS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geom/point.h"
#include "subdivision/subdivision.h"

namespace dtree::workload {

/// The service area used throughout the evaluation.
inline geom::BBox DefaultServiceArea() { return {0.0, 0.0, 1000.0, 1000.0}; }

/// N points uniform in the service area (the paper's UNIFORM, N=1000).
std::vector<geom::Point> UniformPoints(int n, const geom::BBox& area,
                                       Rng* rng);

/// N points drawn from a mixture of Gaussian clusters (stand-in for the
/// paper's highly clustered HOSPITAL / PARK datasets). `num_clusters`
/// cluster centers are placed uniformly; each point picks a cluster and a
/// Gaussian offset with `spread_fraction` of the area width as sigma.
/// Points falling outside the area are re-drawn; near-duplicate points are
/// rejected so the Voronoi construction stays well-conditioned.
std::vector<geom::Point> ClusteredPoints(int n, const geom::BBox& area,
                                         int num_clusters,
                                         double spread_fraction, Rng* rng);

/// Named datasets matching the paper's Figure 9.
struct Dataset {
  std::string name;
  std::vector<geom::Point> sites;
  sub::Subdivision subdivision;  ///< Voronoi valid scopes of the sites
};

/// UNIFORM: 1000 uniform points.
Result<Dataset> MakeUniformDataset(uint64_t seed = 7);
/// HOSPITAL stand-in: 185 points in 12 tight clusters.
Result<Dataset> MakeHospitalDataset(uint64_t seed = 11);
/// PARK stand-in: 1102 points in 25 tight clusters.
Result<Dataset> MakeParkDataset(uint64_t seed = 13);

/// Convenience: all three datasets in the paper's order.
Result<std::vector<Dataset>> MakePaperDatasets();

/// Spatial distribution of a SCALE dataset.
enum class ScaleDistribution { kUniform, kClustered };

/// SCALE-U<n> / SCALE-C<n>: build-pipeline stress datasets far beyond the
/// paper's N=1102 maximum (the build-scaling bench sweeps N in
/// {10k, 50k, 100k}). Uniform draws n uniform sites; clustered keeps PARK's
/// ~50-sites-per-cluster occupancy so local density grows with n.
Result<Dataset> MakeScaleDataset(int n, ScaleDistribution dist,
                                 uint64_t seed = 7);

/// Zipf access weights for n regions: weight of the region ranked r is
/// 1 / r^theta, with ranks randomly permuted across region ids (theta = 0
/// degenerates to uniform). Used by the skewed-access experiments.
std::vector<double> ZipfWeights(int n, double theta, Rng* rng);

}  // namespace dtree::workload

#endif  // DTREE_WORKLOAD_DATASETS_H_
