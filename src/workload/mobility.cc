#include "workload/mobility.h"

#include <cmath>

#include "common/check.h"

namespace dtree::workload {

const char* MobilityModelName(MobilityModel model) {
  switch (model) {
    case MobilityModel::kGaussianHop:
      return "gaussian_hop";
    case MobilityModel::kRandomWaypoint:
      return "random_waypoint";
  }
  return "?";
}

namespace {

/// Folds v into [lo, hi] by mirroring at the walls (billiard reflection),
/// so a hop that overshoots the service area bounces back in instead of
/// clamping to the wall (clamping would pile probability mass onto the
/// boundary, exactly where the cache's boundary guard refuses to answer).
double Reflect(double v, double lo, double hi) {
  const double w = hi - lo;
  if (w <= 0.0) return lo;
  double t = std::fmod(v - lo, 2.0 * w);
  if (t < 0.0) t += 2.0 * w;
  return t <= w ? lo + t : lo + (2.0 * w - t);
}

geom::Point UniformIn(const geom::BBox& area, Rng* rng) {
  const double x = rng->Uniform(area.min_x, area.max_x);
  const double y = rng->Uniform(area.min_y, area.max_y);
  return {x, y};
}

}  // namespace

geom::Point MobilityStep(const MobilityOptions& options,
                         const geom::BBox& area, MobilityState* state,
                         Rng* rng) {
  DTREE_CHECK(state != nullptr && rng != nullptr);
  if (!state->started) {
    state->pos = UniformIn(area, rng);
    state->started = true;
    state->has_waypoint = false;
    return state->pos;
  }
  switch (options.model) {
    case MobilityModel::kGaussianHop: {
      const double dx = rng->Gaussian(0.0, options.hop_scale);
      const double dy = rng->Gaussian(0.0, options.hop_scale);
      state->pos = {Reflect(state->pos.x + dx, area.min_x, area.max_x),
                    Reflect(state->pos.y + dy, area.min_y, area.max_y)};
      return state->pos;
    }
    case MobilityModel::kRandomWaypoint: {
      if (!state->has_waypoint) {
        state->waypoint = UniformIn(area, rng);
        state->has_waypoint = true;
      }
      const double d = geom::Distance(state->pos, state->waypoint);
      if (d <= options.waypoint_step) {
        // Arrive this step; the next step draws a fresh waypoint.
        state->pos = state->waypoint;
        state->has_waypoint = false;
      } else {
        const double t = options.waypoint_step / d;
        state->pos = state->pos + (state->waypoint - state->pos) * t;
      }
      return state->pos;
    }
  }
  DTREE_CHECK(false);
  return state->pos;
}

Status ValidateMobilityOptions(const MobilityOptions& options) {
  if (!options.enabled) return Status::OK();
  switch (options.model) {
    case MobilityModel::kGaussianHop:
      if (!(options.hop_scale > 0.0)) {
        return Status::InvalidArgument("mobility hop_scale must be > 0");
      }
      break;
    case MobilityModel::kRandomWaypoint:
      if (!(options.waypoint_step > 0.0)) {
        return Status::InvalidArgument("mobility waypoint_step must be > 0");
      }
      break;
  }
  return Status::OK();
}

}  // namespace dtree::workload
