#include "workload/datasets.h"

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "subdivision/voronoi.h"

namespace dtree::workload {

namespace {

using geom::BBox;
using geom::Point;

/// Rejects points closer than this to an existing point (keeps the Voronoi
/// construction well-conditioned and matches real point data, where two
/// facilities never share coordinates).
constexpr double kMinSeparation = 1e-3;

/// Hash grid with buckets exactly kMinSeparation wide: any point closer
/// than the separation radius to `p` lives in the 3x3 bucket neighborhood
/// of `p`. Replaces the O(n) scan over all accepted points with an O(1)
/// expected probe. The accept/reject predicate (strict DistanceSquared <
/// kMinSeparation^2 against every prior point) is unchanged, so generators
/// draw the exact same RNG sequence and produce byte-identical point sets.
class SeparationGrid {
 public:
  bool FarFromAll(const Point& p) const {
    const int64_t cx = Cell(p.x), cy = Cell(p.y);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = buckets_.find(Key(cx + dx, cy + dy));
        if (it == buckets_.end()) continue;
        for (const Point& q : it->second) {
          if (geom::DistanceSquared(p, q) <
              kMinSeparation * kMinSeparation) {
            return false;
          }
        }
      }
    }
    return true;
  }

  void Add(const Point& p) {
    buckets_[Key(Cell(p.x), Cell(p.y))].push_back(p);
  }

 private:
  static int64_t Cell(double v) {
    return static_cast<int64_t>(std::floor(v / kMinSeparation));
  }
  static uint64_t Key(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(cx) << 32) ^ static_cast<uint64_t>(cy);
  }

  std::unordered_map<uint64_t, std::vector<Point>> buckets_;
};

}  // namespace

std::vector<Point> UniformPoints(int n, const BBox& area, Rng* rng) {
  std::vector<Point> pts;
  pts.reserve(n);
  SeparationGrid grid;
  while (static_cast<int>(pts.size()) < n) {
    Point p{rng->Uniform(area.min_x, area.max_x),
            rng->Uniform(area.min_y, area.max_y)};
    if (grid.FarFromAll(p)) {
      grid.Add(p);
      pts.push_back(p);
    }
  }
  return pts;
}

std::vector<Point> ClusteredPoints(int n, const BBox& area, int num_clusters,
                                   double spread_fraction, Rng* rng) {
  // Cluster centers keep away from the border so clusters stay mostly
  // inside (real facility clusters sit in urban cores, not at map edges).
  std::vector<Point> centers;
  const double margin_x = area.width() * 0.08;
  const double margin_y = area.height() * 0.08;
  for (int c = 0; c < num_clusters; ++c) {
    centers.push_back({rng->Uniform(area.min_x + margin_x,
                                    area.max_x - margin_x),
                       rng->Uniform(area.min_y + margin_y,
                                    area.max_y - margin_y)});
  }
  const double sigma = area.width() * spread_fraction;
  std::vector<Point> pts;
  pts.reserve(n);
  SeparationGrid grid;
  while (static_cast<int>(pts.size()) < n) {
    const Point& c =
        centers[static_cast<size_t>(rng->UniformInt(0, num_clusters - 1))];
    Point p{rng->Gaussian(c.x, sigma), rng->Gaussian(c.y, sigma)};
    if (p.x <= area.min_x || p.x >= area.max_x || p.y <= area.min_y ||
        p.y >= area.max_y) {
      continue;
    }
    if (grid.FarFromAll(p)) {
      grid.Add(p);
      pts.push_back(p);
    }
  }
  return pts;
}

namespace {

Result<Dataset> MakeDataset(std::string name, std::vector<Point> sites) {
  Result<sub::Subdivision> sub_r =
      sub::BuildVoronoiSubdivision(sites, DefaultServiceArea());
  if (!sub_r.ok()) return sub_r.status();
  Dataset d;
  d.name = std::move(name);
  d.sites = std::move(sites);
  d.subdivision = std::move(sub_r).value();
  return d;
}

}  // namespace

Result<Dataset> MakeUniformDataset(uint64_t seed) {
  Rng rng(seed);
  return MakeDataset("UNIFORM", UniformPoints(1000, DefaultServiceArea(),
                                              &rng));
}

Result<Dataset> MakeHospitalDataset(uint64_t seed) {
  Rng rng(seed);
  return MakeDataset(
      "HOSPITAL",
      ClusteredPoints(185, DefaultServiceArea(), 12, 0.035, &rng));
}

Result<Dataset> MakeParkDataset(uint64_t seed) {
  Rng rng(seed);
  return MakeDataset(
      "PARK", ClusteredPoints(1102, DefaultServiceArea(), 25, 0.03, &rng));
}

Result<Dataset> MakeScaleDataset(int n, ScaleDistribution dist,
                                 uint64_t seed) {
  if (n < 2) return Status::InvalidArgument("SCALE dataset needs n >= 2");
  Rng rng(seed);
  std::string name;
  std::vector<Point> sites;
  if (dist == ScaleDistribution::kUniform) {
    name = "SCALE-U" + std::to_string(n);
    sites = UniformPoints(n, DefaultServiceArea(), &rng);
  } else {
    // Matches PARK's cluster occupancy (~50 points per cluster) so the
    // local density — what stresses the Voronoi ring search — scales with
    // n instead of flattening out to uniform.
    name = "SCALE-C" + std::to_string(n);
    const int clusters = std::max(2, n / 50);
    sites = ClusteredPoints(n, DefaultServiceArea(), clusters, 0.03, &rng);
  }
  return MakeDataset(std::move(name), std::move(sites));
}

std::vector<double> ZipfWeights(int n, double theta, Rng* rng) {
  std::vector<int> rank(n);
  for (int i = 0; i < n; ++i) rank[i] = i + 1;
  rng->Shuffle(&rank);
  std::vector<double> w(n);
  for (int i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(rank[i]), theta);
  }
  return w;
}

Result<std::vector<Dataset>> MakePaperDatasets() {
  std::vector<Dataset> out;
  for (auto maker : {&MakeUniformDataset, &MakeHospitalDataset,
                     &MakeParkDataset}) {
    Result<Dataset> d = maker(/*seed=*/7);
    if (!d.ok()) return d.status();
    out.push_back(std::move(d).value());
  }
  return out;
}

}  // namespace dtree::workload
