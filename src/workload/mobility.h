// Moving-client workloads: spatially correlated query-point sequences.
//
// The i.i.d. samplers in broadcast/experiment.h model a fleet of unrelated
// one-shot queries. A real mobile client issues *sequences* of queries
// from nearby positions — which is exactly the locality the client-side
// region cache (broadcast/region_cache.h) exploits: if the next query
// point is still inside the Voronoi cell of the previous answer, the
// client need not tune into the broadcast at all.
//
// Two classic mobility models:
//
//  * kGaussianHop      — each query hops from the previous position by an
//                        isotropic Gaussian step of standard deviation
//                        `hop_scale` per axis; positions reflect off the
//                        service-area walls so the walk never escapes.
//  * kRandomWaypoint   — the client picks a uniform waypoint in the area
//                        and moves toward it in straight-line steps of
//                        `waypoint_step` per query, drawing a fresh
//                        waypoint on arrival.
//
// Determinism contract (RNG stream hygiene): a walk draws ONLY from the
// Rng handed to each MobilityStep call. Callers derive that Rng from the
// dedicated kMobilityStreamBase family — never from the point / schedule /
// loss streams existing workloads consume — so enabling mobility cannot
// perturb a single existing draw, and the walk itself depends only on
// (seed, stream ids), never on thread count.

#ifndef DTREE_WORKLOAD_MOBILITY_H_
#define DTREE_WORKLOAD_MOBILITY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "geom/point.h"

namespace dtree::workload {

enum class MobilityModel {
  kGaussianHop,
  kRandomWaypoint,
};

const char* MobilityModelName(MobilityModel model);

struct MobilityOptions {
  /// Off by default: samplers draw i.i.d. points, bit-identical to today.
  bool enabled = false;
  MobilityModel model = MobilityModel::kGaussianHop;
  /// kGaussianHop: per-axis standard deviation of one hop, in service-area
  /// units. Must be > 0 when the model is kGaussianHop.
  double hop_scale = 10.0;
  /// kRandomWaypoint: straight-line distance traveled per query toward the
  /// current waypoint. Must be > 0 when the model is kRandomWaypoint.
  double waypoint_step = 25.0;
};

/// Base of the RNG sub-stream family reserved for mobility walks.
///
/// Existing stream ids are tiny: experiment shards use streams [0, 64),
/// the fleet's per-client families are FleetJoinStream()=0 and
/// 3q+{1,2,3} for query q (q < 2^32, so < ~2^34). Offsetting mobility
/// streams by 2^40 keeps the families disjoint forever:
///   experiment shard s  -> Rng::ForStream(seed,       kMobilityStreamBase + s)
///   fleet client, query q -> Rng::ForStream(client key, kMobilityStreamBase + q)
inline constexpr uint64_t kMobilityStreamBase = uint64_t{1} << 40;

/// One client's walk state. Plain value type so the fleet engine can embed
/// it per client and reset it on churn (a fresh generation is a fresh
/// client with an unrelated walk).
struct MobilityState {
  geom::Point pos{0.0, 0.0};
  /// kRandomWaypoint: current target, valid only when has_waypoint.
  geom::Point waypoint{0.0, 0.0};
  bool started = false;
  bool has_waypoint = false;
};

/// Advances `state` by one query step inside `area` and returns the new
/// position (always within the area). The first call of a walk draws the
/// start position uniformly in the area. All randomness comes from `rng`.
geom::Point MobilityStep(const MobilityOptions& options,
                         const geom::BBox& area, MobilityState* state,
                         Rng* rng);

/// Validates model parameters (positive scales, non-degenerate area).
Status ValidateMobilityOptions(const MobilityOptions& options);

}  // namespace dtree::workload

#endif  // DTREE_WORKLOAD_MOBILITY_H_
