#include "subdivision/extent.h"

#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace dtree::sub {

namespace {

uint64_t EdgeKey(int a, int b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

Result<std::vector<geom::Polyline>> ComputeExtent(
    const Subdivision& sub, const std::vector<int>& region_ids) {
  if (region_ids.empty()) {
    return Status::InvalidArgument("extent of an empty region group");
  }

  // Collect directed edges; cancel pairs (a,b)/(b,a) — those are borders
  // interior to the group.
  std::unordered_set<uint64_t> edges;
  for (int r : region_ids) {
    if (r < 0 || r >= sub.NumRegions()) {
      return Status::InvalidArgument("region id out of range");
    }
    const std::vector<int>& ring = sub.Ring(r);
    for (size_t i = 0; i < ring.size(); ++i) {
      const int a = ring[i];
      const int b = ring[(i + 1) % ring.size()];
      const auto rev = edges.find(EdgeKey(b, a));
      if (rev != edges.end()) {
        edges.erase(rev);
      } else {
        const bool inserted = edges.insert(EdgeKey(a, b)).second;
        if (!inserted) {
          return Status::Internal("duplicate directed edge in region group");
        }
      }
    }
  }
  if (edges.empty()) {
    return Status::Internal("region group has no boundary");
  }

  // Outgoing-edge adjacency for chaining the surviving edges into loops.
  std::unordered_map<int, std::vector<int>> out_edges;
  for (uint64_t k : edges) {
    const int a = static_cast<int>(k >> 32);
    const int b = static_cast<int>(k & 0xffffffffu);
    out_edges[a].push_back(b);
  }

  std::vector<geom::Polyline> loops;
  const std::vector<geom::Point>& pts = sub.vertices();
  while (!edges.empty()) {
    const uint64_t start_key = *edges.begin();
    const int start = static_cast<int>(start_key >> 32);
    int cur = start;
    geom::Polyline loop;
    loop.closed = true;
    do {
      auto it = out_edges.find(cur);
      if (it == out_edges.end() || it->second.empty()) {
        return Status::Internal(
            "extent boundary is not a closed chain (dangling at vertex " +
            std::to_string(cur) + ")");
      }
      const int nxt = it->second.back();
      it->second.pop_back();
      const size_t erased = edges.erase(EdgeKey(cur, nxt));
      DTREE_CHECK(erased == 1);
      loop.pts.push_back(pts[cur]);
      cur = nxt;
    } while (cur != start);
    if (loop.pts.size() < 3) {
      return Status::Internal("degenerate extent loop");
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

}  // namespace dtree::sub
