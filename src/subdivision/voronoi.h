// Voronoi-based construction of data-region valid scopes.
//
// The paper builds the valid scopes of its datasets "using the Voronoi
// Diagram approach": the region of site s is the set of points closer to s
// than to any other site, clipped to the service area. This implementation
// clips each cell by the perpendicular-bisector half-planes of the other
// sites, visited in ascending distance order through a uniform bucket grid:
// candidates are drained from an expanding Chebyshev ring of grid cells and
// the running MaxVertexDistance bound stops the drain once no remaining site
// can cut the cell. Per-cell work is near-constant on realistic inputs, so
// the whole diagram is O(N) expected instead of the O(N^2 log N) of the
// sort-everything formulation (kept as VoronoiCellsReference).
//
// Cells are independent, so clipping is parallelized over ThreadPool with a
// fixed shard -> site mapping and per-slot output writes; the result is
// bit-identical for every thread count.

#ifndef DTREE_SUBDIVISION_VORONOI_H_
#define DTREE_SUBDIVISION_VORONOI_H_

#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "subdivision/subdivision.h"

namespace dtree::sub {

/// Sites closer than this are rejected as near-coincident: they would carve
/// a cell thinner than the stitcher's vertex-merge tolerance (geom::kMergeEps),
/// which collapses during snapping and breaks the tiling invariant. The 4x
/// factor leaves a 2x margin over the snap radius on each side of the
/// bisector.
inline constexpr double kMinSiteSeparation = 4.0 * geom::kMergeEps;

struct VoronoiOptions {
  /// Threads used for per-cell clipping; <= 0 selects
  /// ThreadPool::DefaultThreads(). Output is bit-identical for every value.
  int num_threads = 0;
};

/// Computes the Voronoi cell polygons of `sites` clipped to `service_area`.
/// Cell i corresponds to sites[i]. Fails with InvalidArgument when sites are
/// empty, any site is outside the service area, or two sites lie within
/// kMinSiteSeparation of each other (duplicate and near-coincident inputs
/// are detected up front instead of surfacing as degenerate sliver cells).
Result<std::vector<geom::Polygon>> VoronoiCells(
    const std::vector<geom::Point>& sites, const geom::BBox& service_area);
Result<std::vector<geom::Polygon>> VoronoiCells(
    const std::vector<geom::Point>& sites, const geom::BBox& service_area,
    const VoronoiOptions& options);

/// The pre-grid serial formulation: per cell, sorts all other sites by
/// distance and clips until the distance bound prunes the tail. Kept
/// verbatim as the byte-identity oracle for tests, the CI digest gate, and
/// the bench_build_scaling serial baseline. O(N^2 log N); do not use in new
/// code.
Result<std::vector<geom::Polygon>> VoronoiCellsReference(
    const std::vector<geom::Point>& sites, const geom::BBox& service_area);

/// Convenience wrapper: builds the cells and stitches them into a
/// Subdivision whose region i answers nearest-neighbor queries for site i.
Result<Subdivision> BuildVoronoiSubdivision(
    const std::vector<geom::Point>& sites, const geom::BBox& service_area);
Result<Subdivision> BuildVoronoiSubdivision(
    const std::vector<geom::Point>& sites, const geom::BBox& service_area,
    const VoronoiOptions& options);

}  // namespace dtree::sub

#endif  // DTREE_SUBDIVISION_VORONOI_H_
