// Voronoi-based construction of data-region valid scopes.
//
// The paper builds the valid scopes of its datasets "using the Voronoi
// Diagram approach": the region of site s is the set of points closer to s
// than to any other site, clipped to the service area. This implementation
// clips each cell by the perpendicular-bisector half-planes of the other
// sites, with a distance bound that skips sites provably too far away,
// giving near-linear work per cell on realistic inputs.

#ifndef DTREE_SUBDIVISION_VORONOI_H_
#define DTREE_SUBDIVISION_VORONOI_H_

#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "subdivision/subdivision.h"

namespace dtree::sub {

/// Computes the Voronoi cell polygons of `sites` clipped to `service_area`.
/// Cell i corresponds to sites[i]. Fails when sites are empty, any site is
/// outside the service area, or two sites coincide within geom::kMergeEps.
Result<std::vector<geom::Polygon>> VoronoiCells(
    const std::vector<geom::Point>& sites, const geom::BBox& service_area);

/// Convenience wrapper: builds the cells and stitches them into a
/// Subdivision whose region i answers nearest-neighbor queries for site i.
Result<Subdivision> BuildVoronoiSubdivision(
    const std::vector<geom::Point>& sites, const geom::BBox& service_area);

}  // namespace dtree::sub

#endif  // DTREE_SUBDIVISION_VORONOI_H_
