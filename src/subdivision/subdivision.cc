#include "subdivision/subdivision.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "geom/predicates.h"

namespace dtree::sub {

namespace {

using geom::BBox;
using geom::kMergeEps;
using geom::Point;
using geom::Polygon;

/// Maps points to shared vertex ids, merging points within kMergeEps via a
/// uniform grid hash (cells 4x the tolerance wide, 3x3 neighborhood probe).
class VertexPool {
 public:
  VertexPool() : cell_(kMergeEps * 4.0) {}

  int Intern(const Point& p) {
    const int64_t cx = Quantize(p.x);
    const int64_t cy = Quantize(p.y);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = grid_.find(Key(cx + dx, cy + dy));
        if (it == grid_.end()) continue;
        for (int id : it->second) {
          if (geom::NearlyEqual(points_[id], p)) return id;
        }
      }
    }
    const int id = static_cast<int>(points_.size());
    points_.push_back(p);
    grid_[Key(cx, cy)].push_back(id);
    return id;
  }

  const std::vector<Point>& points() const { return points_; }

 private:
  int64_t Quantize(double v) const {
    return static_cast<int64_t>(std::floor(v / cell_));
  }
  static uint64_t Key(int64_t cx, int64_t cy) {
    return static_cast<uint64_t>(cx) * 0x9e3779b97f4a7c15ULL ^
           static_cast<uint64_t>(cy);
  }

  double cell_;
  std::vector<Point> points_;
  std::unordered_map<uint64_t, std::vector<int>> grid_;
};

}  // namespace

Result<Subdivision> Subdivision::FromPolygons(
    const geom::BBox& service_area, const std::vector<Polygon>& polygons) {
  if (polygons.empty()) {
    return Status::InvalidArgument("subdivision needs at least one region");
  }
  if (service_area.empty() || service_area.Area() <= 0.0) {
    return Status::InvalidArgument("service area must have positive area");
  }

  VertexPool pool;
  std::vector<std::vector<int>> rings;
  rings.reserve(polygons.size());
  for (size_t i = 0; i < polygons.size(); ++i) {
    Polygon poly = polygons[i];
    if (poly.NumVertices() < 3 || poly.Area() <= 0.0) {
      return Status::InvalidArgument("region " + std::to_string(i) +
                                     " is degenerate");
    }
    poly.EnsureCCW();
    std::vector<int> ring;
    ring.reserve(poly.NumVertices());
    for (const Point& p : poly.ring()) {
      const int id = pool.Intern(p);
      if (ring.empty() || ring.back() != id) ring.push_back(id);
    }
    while (ring.size() > 1 && ring.front() == ring.back()) ring.pop_back();
    if (ring.size() < 3) {
      return Status::InvalidArgument("region " + std::to_string(i) +
                                     " collapsed during vertex snapping");
    }
    rings.push_back(std::move(ring));
  }

  // T-junction pass: split every edge at vertices that lie on its interior.
  const std::vector<Point>& pts = pool.points();
  // Coarse spatial grid over the vertices for T-junction candidate lookup
  // (the snapping grid's cells are far too fine to scan per edge).
  BBox all_box = service_area;
  for (const Point& p : pts) all_box.Extend(p);
  // 1024^2 cells keep the per-edge candidate count near-constant up to the
  // N=100k SCALE datasets (~600k vertices); the grid only filters
  // candidates, so the cap does not affect results.
  const int gdim = std::clamp(
      static_cast<int>(std::sqrt(static_cast<double>(pts.size()))), 1, 1024);
  const double gw = std::max(all_box.width(), 1e-9) / gdim;
  const double gh = std::max(all_box.height(), 1e-9) / gdim;
  std::vector<std::vector<int>> coarse(static_cast<size_t>(gdim) * gdim);
  auto cell_of = [&](double x, double y) {
    const int cx = std::clamp(
        static_cast<int>((x - all_box.min_x) / gw), 0, gdim - 1);
    const int cy = std::clamp(
        static_cast<int>((y - all_box.min_y) / gh), 0, gdim - 1);
    return std::pair<int, int>{cx, cy};
  };
  for (size_t v = 0; v < pts.size(); ++v) {
    const auto [cx, cy] = cell_of(pts[v].x, pts[v].y);
    coarse[static_cast<size_t>(cy) * gdim + cx].push_back(
        static_cast<int>(v));
  }
  // Appends candidates instead of returning a fresh vector: this runs once
  // per edge (~6 * N times), and the allocation dominated the pass at
  // SCALE sizes.
  std::vector<int> cand;
  auto coarse_query = [&](const BBox& box) {
    cand.clear();
    const auto [x0, y0] = cell_of(box.min_x - kMergeEps,
                                  box.min_y - kMergeEps);
    const auto [x1, y1] = cell_of(box.max_x + kMergeEps,
                                  box.max_y + kMergeEps);
    for (int cy = y0; cy <= y1; ++cy) {
      for (int cx = x0; cx <= x1; ++cx) {
        const auto& cell = coarse[static_cast<size_t>(cy) * gdim + cx];
        cand.insert(cand.end(), cell.begin(), cell.end());
      }
    }
  };

  std::vector<std::pair<double, int>> on_edge;
  std::vector<int> split;
  for (std::vector<int>& ring : rings) {
    split.clear();
    split.reserve(ring.size() + 8);
    for (size_t i = 0; i < ring.size(); ++i) {
      const int a = ring[i];
      const int b = ring[(i + 1) % ring.size()];
      split.push_back(a);
      BBox edge_box;
      edge_box.Extend(pts[a]);
      edge_box.Extend(pts[b]);
      on_edge.clear();
      coarse_query(edge_box);
      for (int v : cand) {
        if (v == a || v == b) continue;
        if (geom::DistanceToSegment(pts[a], pts[b], pts[v]) > kMergeEps) {
          continue;
        }
        // Parameter along the edge for ordering.
        const Point ab = pts[b] - pts[a];
        const double t =
            geom::Dot(pts[v] - pts[a], ab) / geom::Dot(ab, ab);
        if (t <= 0.0 || t >= 1.0) continue;
        on_edge.emplace_back(t, v);
      }
      std::sort(on_edge.begin(), on_edge.end());
      for (const auto& [t, v] : on_edge) {
        if (split.back() != v) split.push_back(v);
      }
    }
    // Remove duplicates created by splits meeting ring vertices.
    std::vector<int> dedup;
    for (int v : split) {
      if (dedup.empty() || dedup.back() != v) dedup.push_back(v);
    }
    while (dedup.size() > 1 && dedup.front() == dedup.back()) dedup.pop_back();
    ring = std::move(dedup);
  }

  Subdivision out;
  out.service_area_ = service_area;
  out.vertices_ = pool.points();
  out.rings_ = std::move(rings);
  out.bounds_.reserve(out.rings_.size());
  for (const std::vector<int>& ring : out.rings_) {
    BBox b;
    for (int v : ring) b.Extend(out.vertices_[v]);
    out.bounds_.push_back(b);
  }
  out.BuildBorderGrid();
  return out;
}

void Subdivision::BuildBorderGrid() {
  // Unique undirected edges: a shared border appears in both neighboring
  // rings (reversed) but only needs one distance check.
  std::unordered_map<uint64_t, std::pair<int, int>> unique_edges;
  for (const std::vector<int>& ring : rings_) {
    for (size_t i = 0; i < ring.size(); ++i) {
      const int a = ring[i];
      const int b = ring[(i + 1) % ring.size()];
      const int lo = std::min(a, b), hi = std::max(a, b);
      const uint64_t key =
          (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
          static_cast<uint32_t>(hi);
      // Store the canonical (lo, hi) direction, not the first-seen ring
      // direction: DistanceToSegment is not bitwise direction-symmetric,
      // and the full-scan reference evaluates segments in canonical order
      // too, so the two paths stay exactly comparable.
      unique_edges.emplace(key, std::make_pair(lo, hi));
    }
  }
  border_edges_.clear();
  border_edges_.reserve(unique_edges.size());
  for (const auto& [key, e] : unique_edges) border_edges_.push_back(e);
  if (border_edges_.empty()) {
    border_grid_dim_ = 0;
    return;
  }

  border_grid_box_ = service_area_;
  for (const Point& p : vertices_) border_grid_box_.Extend(p);
  border_grid_dim_ = std::clamp(
      static_cast<int>(std::sqrt(static_cast<double>(border_edges_.size()))),
      1, 1024);
  border_cell_w_ =
      std::max(border_grid_box_.width(), 1e-9) / border_grid_dim_;
  border_cell_h_ =
      std::max(border_grid_box_.height(), 1e-9) / border_grid_dim_;
  border_cells_.assign(
      static_cast<size_t>(border_grid_dim_) * border_grid_dim_, {});
  auto cell_index = [&](double v, double lo, double step) {
    return std::clamp(static_cast<int>((v - lo) / step), 0,
                      border_grid_dim_ - 1);
  };
  for (size_t e = 0; e < border_edges_.size(); ++e) {
    const Point& a = vertices_[border_edges_[e].first];
    const Point& b = vertices_[border_edges_[e].second];
    const int x0 = cell_index(std::min(a.x, b.x), border_grid_box_.min_x,
                              border_cell_w_);
    const int x1 = cell_index(std::max(a.x, b.x), border_grid_box_.min_x,
                              border_cell_w_);
    const int y0 = cell_index(std::min(a.y, b.y), border_grid_box_.min_y,
                              border_cell_h_);
    const int y1 = cell_index(std::max(a.y, b.y), border_grid_box_.min_y,
                              border_cell_h_);
    for (int gy = y0; gy <= y1; ++gy) {
      for (int gx = x0; gx <= x1; ++gx) {
        border_cells_[static_cast<size_t>(gy) * border_grid_dim_ + gx]
            .push_back(static_cast<int>(e));
      }
    }
  }
}

Polygon Subdivision::RegionPolygon(int i) const {
  DTREE_CHECK(i >= 0 && i < NumRegions());
  std::vector<Point> ring;
  ring.reserve(rings_[i].size());
  for (int v : rings_[i]) ring.push_back(vertices_[v]);
  return Polygon(std::move(ring));
}

Status Subdivision::Validate() const {
  if (rings_.empty()) return Status::FailedPrecondition("no regions");
  double area_sum = 0.0;
  for (int i = 0; i < NumRegions(); ++i) {
    const Polygon poly = RegionPolygon(i);
    if (poly.NumVertices() < 3) {
      return Status::Internal("region " + std::to_string(i) +
                              " has fewer than 3 vertices");
    }
    if (poly.SignedArea() <= 0.0) {
      return Status::Internal("region " + std::to_string(i) + " is not CCW");
    }
    area_sum += poly.Area();
    const BBox b = poly.Bounds();
    const double slack = kMergeEps * 10.0;
    if (b.min_x < service_area_.min_x - slack ||
        b.max_x > service_area_.max_x + slack ||
        b.min_y < service_area_.min_y - slack ||
        b.max_y > service_area_.max_y + slack) {
      return Status::Internal("region " + std::to_string(i) +
                              " escapes the service area");
    }
  }
  const double expect = service_area_.Area();
  if (std::abs(area_sum - expect) > 1e-3 * expect) {
    return Status::Internal("region areas sum to " + std::to_string(area_sum) +
                            ", expected " + std::to_string(expect));
  }

  // Edge matching: each directed edge's reverse must exist in some region,
  // unless the edge lies on the service-area boundary.
  std::unordered_map<uint64_t, int> edge_count;
  auto key = [](int a, int b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  };
  for (const std::vector<int>& ring : rings_) {
    for (size_t i = 0; i < ring.size(); ++i) {
      const int a = ring[i];
      const int b = ring[(i + 1) % ring.size()];
      if (a == b) return Status::Internal("zero-length edge");
      ++edge_count[key(a, b)];
    }
  }
  auto on_border = [&](const Point& p) {
    return std::abs(p.x - service_area_.min_x) <= kMergeEps ||
           std::abs(p.x - service_area_.max_x) <= kMergeEps ||
           std::abs(p.y - service_area_.min_y) <= kMergeEps ||
           std::abs(p.y - service_area_.max_y) <= kMergeEps;
  };
  for (const auto& [k, count] : edge_count) {
    if (count != 1) return Status::Internal("duplicate directed edge");
    const int a = static_cast<int>(k >> 32);
    const int b = static_cast<int>(k & 0xffffffffu);
    if (edge_count.count(key(b, a)) > 0) continue;  // shared with neighbor
    if (on_border(vertices_[a]) && on_border(vertices_[b])) continue;
    return Status::Internal("unmatched interior edge between vertices " +
                            std::to_string(a) + " and " + std::to_string(b));
  }
  return Status::OK();
}

double Subdivision::BorderDistanceFullScan(const geom::Point& p) const {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < NumRegions(); ++i) {
    const std::vector<int>& ring = rings_[i];
    for (size_t j = 0; j < ring.size(); ++j) {
      // Canonical (lo, hi) endpoint order, matching the border grid:
      // DistanceToSegment(a, b, p) and DistanceToSegment(b, a, p) can
      // differ in the last ulp, and a shared edge appears here in both
      // ring directions. Canonicalizing makes this scan bitwise comparable
      // with the grid-accelerated path.
      const int u = ring[j];
      const int v = ring[(j + 1) % ring.size()];
      const Point& a = vertices_[std::min(u, v)];
      const Point& b = vertices_[std::max(u, v)];
      best = std::min(best, geom::DistanceToSegment(a, b, p));
    }
  }
  return best;
}

double Subdivision::DistanceToNearestBorder(const geom::Point& p) const {
  if (border_grid_dim_ == 0) return BorderDistanceFullScan(p);
  // The expanding-ring bound below assumes p lies inside its own grid
  // cell; outside the grid extent, fall back to the full scan.
  if (!border_grid_box_.Contains(p)) return BorderDistanceFullScan(p);

  const int cx = std::clamp(
      static_cast<int>((p.x - border_grid_box_.min_x) / border_cell_w_), 0,
      border_grid_dim_ - 1);
  const int cy = std::clamp(
      static_cast<int>((p.y - border_grid_box_.min_y) / border_cell_h_), 0,
      border_grid_dim_ - 1);
  const double min_cell = std::min(border_cell_w_, border_cell_h_);

  double best = std::numeric_limits<double>::infinity();
  auto scan_cell = [&](int gx, int gy) {
    if (gx < 0 || gy < 0 || gx >= border_grid_dim_ || gy >= border_grid_dim_)
      return;
    for (int e :
         border_cells_[static_cast<size_t>(gy) * border_grid_dim_ + gx]) {
      const Point& a = vertices_[border_edges_[e].first];
      const Point& b = vertices_[border_edges_[e].second];
      best = std::min(best, geom::DistanceToSegment(a, b, p));
    }
  };
  for (int ring = 0; ring < border_grid_dim_; ++ring) {
    if (ring == 0) {
      scan_cell(cx, cy);
    } else {
      for (int gx = cx - ring; gx <= cx + ring; ++gx) {
        scan_cell(gx, cy - ring);
        scan_cell(gx, cy + ring);
      }
      for (int gy = cy - ring + 1; gy <= cy + ring - 1; ++gy) {
        scan_cell(cx - ring, gy);
        scan_cell(cx + ring, gy);
      }
    }
    // Termination bound, audited for exactness: after scanning ring r, the
    // nearest uncovered cells sit at Chebyshev ring r+1, whose guaranteed
    // clearance is min_cell * ((r+1) - 1) = r * min_cell. That clearance
    // only relies on p lying inside its own *closed* grid cell, which the
    // clamp+floor cell assignment preserves even when p sits exactly on a
    // grid-cell boundary (the boundary belongs to both cells; p is assigned
    // to the right/upper one and still touches it). So breaking once
    // best <= r * min_cell can never skip a closer edge; the property test
    // in tests/subdivision_test.cc checks this against
    // BorderDistanceFullScan on boundary-aligned points.
    if (best <= static_cast<double>(ring) * min_cell) break;
  }
  DTREE_DCHECK(std::isfinite(best));
  return best;
}

PointLocator::PointLocator(const Subdivision& sub) : sub_(sub) {
  const int n = sub.NumRegions();
  polys_.reserve(n);
  for (int i = 0; i < n; ++i) polys_.push_back(sub.RegionPolygon(i));
  grid_dim_ = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(n))));
  const BBox& area = sub.service_area();
  cell_w_ = area.width() / grid_dim_;
  cell_h_ = area.height() / grid_dim_;
  cells_.assign(static_cast<size_t>(grid_dim_) * grid_dim_, {});
  for (int i = 0; i < n; ++i) {
    const BBox& b = sub.RegionBounds(i);
    const int x0 = std::clamp(
        static_cast<int>((b.min_x - area.min_x) / cell_w_), 0, grid_dim_ - 1);
    const int x1 = std::clamp(
        static_cast<int>((b.max_x - area.min_x) / cell_w_), 0, grid_dim_ - 1);
    const int y0 = std::clamp(
        static_cast<int>((b.min_y - area.min_y) / cell_h_), 0, grid_dim_ - 1);
    const int y1 = std::clamp(
        static_cast<int>((b.max_y - area.min_y) / cell_h_), 0, grid_dim_ - 1);
    for (int gx = x0; gx <= x1; ++gx) {
      for (int gy = y0; gy <= y1; ++gy) {
        cells_[static_cast<size_t>(gy) * grid_dim_ + gx].push_back(i);
      }
    }
  }
}

int PointLocator::Locate(const geom::Point& p) const {
  if (polys_.empty()) return -1;
  const BBox& area = sub_.service_area();
  const int gx = std::clamp(static_cast<int>((p.x - area.min_x) / cell_w_), 0,
                            grid_dim_ - 1);
  const int gy = std::clamp(static_cast<int>((p.y - area.min_y) / cell_h_), 0,
                            grid_dim_ - 1);
  const std::vector<int>& cands =
      cells_[static_cast<size_t>(gy) * grid_dim_ + gx];
  for (int i : cands) {
    if (sub_.RegionBounds(i).Contains(p) && polys_[i].Contains(p)) return i;
  }
  // Numeric-gap fallback: nearest boundary among candidates, then global.
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (int i : cands) {
    const double d = polys_[i].DistanceToBoundary(p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  if (best >= 0 && best_d <= kMergeEps * 100.0) return best;
  for (size_t i = 0; i < polys_.size(); ++i) {
    if (polys_[i].Contains(p)) return static_cast<int>(i);
    const double d = polys_[i].DistanceToBoundary(p);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace dtree::sub
