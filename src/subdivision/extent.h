// Union-boundary ("extent") extraction for groups of regions.
//
// The D-tree partition algorithm (Algorithm 1 of the paper) needs the
// extent of a subspace: the boundary of the union of its member regions,
// possibly several closed loops (including hole loops when the group
// surrounds a region of the complementary group).

#ifndef DTREE_SUBDIVISION_EXTENT_H_
#define DTREE_SUBDIVISION_EXTENT_H_

#include <vector>

#include "common/status.h"
#include "geom/polygon.h"
#include "subdivision/subdivision.h"

namespace dtree::sub {

/// Computes the union boundary of `region_ids` within `sub` as a set of
/// closed polylines.
///
/// Directed edges of member rings that appear with their reverse inside the
/// group are interior and cancel; the remainder chains into closed loops.
/// Requires the subdivision to be stitched (borders matching edge-for-edge,
/// which Subdivision::FromPolygons guarantees).
Result<std::vector<geom::Polyline>> ComputeExtent(
    const Subdivision& sub, const std::vector<int>& region_ids);

}  // namespace dtree::sub

#endif  // DTREE_SUBDIVISION_EXTENT_H_
