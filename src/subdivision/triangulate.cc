#include "subdivision/triangulate.h"

#include <algorithm>
#include <cmath>
#include <list>

#include "common/check.h"
#include "geom/predicates.h"

namespace dtree::sub {

namespace {

using geom::Point;
using geom::Triangle;

/// True when `v` prevents (prev, cur, next) from being clipped as an ear:
/// it lies inside the closed candidate triangle, is not one of the corners,
/// and does not sit on the two original polygon edges. A vertex exactly on
/// the diagonal prev->next blocks — clipping would create a T-junction.
bool BlocksEar(const Point& prev, const Point& cur, const Point& next,
               const Point& v) {
  constexpr double kEps = geom::kMergeEps;
  if (geom::NearlyEqual(v, prev, kEps) || geom::NearlyEqual(v, cur, kEps) ||
      geom::NearlyEqual(v, next, kEps)) {
    return false;
  }
  Triangle t(prev, cur, next);
  if (!t.Contains(v)) return false;
  if (geom::DistanceToSegment(prev, cur, v) <= kEps) return false;
  if (geom::DistanceToSegment(cur, next, v) <= kEps) return false;
  return true;
}

}  // namespace

Status EarClipTriangulate(const std::vector<Point>& ring,
                          std::vector<Triangle>* out) {
  const size_t n = ring.size();
  if (n < 3) return Status::InvalidArgument("ring with fewer than 3 vertices");
  {
    geom::Polygon p(ring);
    if (p.SignedArea() <= 0.0) {
      return Status::InvalidArgument("ear clipping requires a CCW ring");
    }
  }

  // Doubly linked ring over the original vertex indices. Because the ring
  // order is the index order, walking `next` from the lowest live index
  // visits live vertices exactly as the erase-from-a-vector formulation
  // scanned them, so the emitted triangle sequence is unchanged.
  std::vector<size_t> next_v(n), prev_v(n);
  std::vector<char> alive(n, 1);
  for (size_t i = 0; i < n; ++i) {
    next_v[i] = (i + 1) % n;
    prev_v[i] = (i + n - 1) % n;
  }

  // Only reflex or straight vertices (Orient <= 0 in their own wedge) can
  // block an ear: a simple polygon whose candidate triangle contains any
  // vertex also contains a non-convex one. Tracking just that set turns the
  // O(n) per-candidate containment scan into O(k) for k blockers, giving
  // O(n*k) overall instead of O(n^2). The blocker list tolerates stale
  // entries (vertices clipped or reclassified convex are skipped on read);
  // at most two vertices are reclassified per clip, so staleness is O(n)
  // total.
  const auto orient_at = [&](size_t v) {
    return geom::Orient(ring[prev_v[v]], ring[v], ring[next_v[v]]);
  };
  std::vector<char> is_blocker(n, 0);
  std::vector<size_t> blockers;
  for (size_t i = 0; i < n; ++i) {
    if (orient_at(i) <= 0) {
      is_blocker[i] = 1;
      blockers.push_back(i);
    }
  }

  size_t head = 0;  // lowest live index
  size_t live = n;
  out->reserve(out->size() + n - 2);
  while (live > 3) {
    bool clipped = false;
    size_t v = head;
    for (size_t scanned = 0; scanned < live; ++scanned, v = next_v[v]) {
      const Point& prev = ring[prev_v[v]];
      const Point& cur = ring[v];
      const Point& next = ring[next_v[v]];
      if (geom::Orient(prev, cur, next) <= 0) continue;  // reflex/collinear
      bool ear = true;
      for (size_t b : blockers) {
        if (!alive[b] || !is_blocker[b]) continue;  // stale entry
        if (b == v || b == prev_v[v] || b == next_v[v]) continue;
        if (BlocksEar(prev, cur, next, ring[b])) {
          ear = false;
          break;
        }
      }
      if (!ear) continue;
      out->emplace_back(prev, cur, next);
      alive[v] = 0;
      next_v[prev_v[v]] = next_v[v];
      prev_v[next_v[v]] = prev_v[v];
      if (v == head) head = next_v[v];
      --live;
      // Reclassify the two neighbors whose wedges changed.
      for (size_t w : {prev_v[v], next_v[v]}) {
        const char now_blocker = orient_at(w) <= 0 ? 1 : 0;
        if (now_blocker && !is_blocker[w]) blockers.push_back(w);
        is_blocker[w] = now_blocker;
      }
      clipped = true;
      break;
    }
    if (!clipped) {
      return Status::Internal("ear clipping stalled on a degenerate ring");
    }
  }
  const size_t a = head, b = next_v[head], c = next_v[next_v[head]];
  Triangle last(ring[a], ring[b], ring[c]);
  if (last.SignedArea() <= 0.0) {
    return Status::Internal("final ear-clipping triangle is degenerate");
  }
  out->push_back(last);
  return Status::OK();
}

Result<std::vector<Triangle>> FanTriangulate(const geom::Polygon& convex) {
  const size_t n = convex.NumVertices();
  if (n < 3) return Status::InvalidArgument("polygon with fewer than 3 vertices");
  if (!convex.IsConvex() || convex.SignedArea() <= 0.0) {
    return Status::InvalidArgument("FanTriangulate requires a convex CCW ring");
  }
  // Fanning is only degeneracy-free when the ring has no collinear
  // vertices; fall back to ear clipping otherwise so no vertex is skipped.
  const std::vector<Point>& r = convex.ring();
  bool has_collinear = false;
  for (size_t i = 0; i < n; ++i) {
    if (geom::Orient(r[i], r[(i + 1) % n], r[(i + 2) % n]) == 0) {
      has_collinear = true;
      break;
    }
  }
  std::vector<Triangle> tris;
  if (has_collinear) {
    DTREE_RETURN_IF_ERROR(EarClipTriangulate(r, &tris));
    return tris;
  }
  tris.reserve(n - 2);
  for (size_t i = 1; i + 1 < n; ++i) {
    tris.emplace_back(r[0], r[i], r[i + 1]);
  }
  return tris;
}

Status TriangulateRectAnnulus(const geom::BBox& outer,
                              const geom::BBox& inner_rect,
                              const std::vector<Point>& inner_ring,
                              std::vector<Triangle>* out) {
  if (!(outer.min_x < inner_rect.min_x && outer.min_y < inner_rect.min_y &&
        outer.max_x > inner_rect.max_x && outer.max_y > inner_rect.max_y)) {
    return Status::InvalidArgument(
        "outer rectangle must strictly contain the inner rectangle");
  }
  const size_t n = inner_ring.size();
  if (n < 4) return Status::InvalidArgument("inner ring needs >= 4 vertices");

  // Inner corners in CCW order starting at (min, min).
  const Point corners[4] = {{inner_rect.min_x, inner_rect.min_y},
                            {inner_rect.max_x, inner_rect.min_y},
                            {inner_rect.max_x, inner_rect.max_y},
                            {inner_rect.min_x, inner_rect.max_y}};
  const Point outer_corners[4] = {{outer.min_x, outer.min_y},
                                  {outer.max_x, outer.min_y},
                                  {outer.max_x, outer.max_y},
                                  {outer.min_x, outer.max_y}};

  size_t corner_idx[4];
  for (int c = 0; c < 4; ++c) {
    bool found = false;
    for (size_t i = 0; i < n; ++i) {
      if (geom::NearlyEqual(inner_ring[i], corners[c])) {
        corner_idx[c] = i;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "inner ring is missing rectangle corner " + std::to_string(c));
    }
  }
  {
    // The ring must be CCW so corners appear in cyclic order 0,1,2,3.
    geom::Polygon p(inner_ring);
    if (p.SignedArea() <= 0.0) {
      return Status::InvalidArgument("inner ring must be CCW");
    }
  }

  for (int s = 0; s < 4; ++s) {
    const size_t from = corner_idx[s];
    const size_t to = corner_idx[(s + 1) % 4];
    // Chain from corner s to corner s+1 walking CCW along the ring.
    std::vector<Point> chain;
    for (size_t i = from;; i = (i + 1) % n) {
      chain.push_back(inner_ring[i]);
      if (i == to) break;
      if (chain.size() > n) {
        return Status::InvalidArgument("inner ring corners out of order");
      }
    }
    if (chain.size() < 2) {
      return Status::InvalidArgument("empty side chain in inner ring");
    }
    // Fan from the outer corner behind the side's start corner.
    const Point& b = outer_corners[s];
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      Triangle t(b, chain[i + 1], chain[i]);
      if (t.SignedArea() <= 0.0) {
        return Status::Internal("non-CCW annulus fan triangle");
      }
      out->push_back(t);
    }
    // Corner triangle joining this side's fan to the next side's fan.
    Triangle tc(outer_corners[s], outer_corners[(s + 1) % 4],
                corners[(s + 1) % 4]);
    DTREE_CHECK(tc.SignedArea() > 0.0);
    out->push_back(tc);
  }
  return Status::OK();
}

}  // namespace dtree::sub
