#include "subdivision/triangulate.h"

#include <algorithm>
#include <cmath>
#include <list>

#include "common/check.h"
#include "geom/predicates.h"

namespace dtree::sub {

namespace {

using geom::Point;
using geom::Triangle;

/// True when `v` prevents (prev, cur, next) from being clipped as an ear:
/// it lies inside the closed candidate triangle, is not one of the corners,
/// and does not sit on the two original polygon edges. A vertex exactly on
/// the diagonal prev->next blocks — clipping would create a T-junction.
bool BlocksEar(const Point& prev, const Point& cur, const Point& next,
               const Point& v) {
  constexpr double kEps = geom::kMergeEps;
  if (geom::NearlyEqual(v, prev, kEps) || geom::NearlyEqual(v, cur, kEps) ||
      geom::NearlyEqual(v, next, kEps)) {
    return false;
  }
  Triangle t(prev, cur, next);
  if (!t.Contains(v)) return false;
  if (geom::DistanceToSegment(prev, cur, v) <= kEps) return false;
  if (geom::DistanceToSegment(cur, next, v) <= kEps) return false;
  return true;
}

}  // namespace

Status EarClipTriangulate(const std::vector<Point>& ring,
                          std::vector<Triangle>* out) {
  const size_t n = ring.size();
  if (n < 3) return Status::InvalidArgument("ring with fewer than 3 vertices");
  {
    geom::Polygon p(ring);
    if (p.SignedArea() <= 0.0) {
      return Status::InvalidArgument("ear clipping requires a CCW ring");
    }
  }
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;

  out->reserve(out->size() + n - 2);
  while (idx.size() > 3) {
    bool clipped = false;
    for (size_t k = 0; k < idx.size(); ++k) {
      const Point& prev = ring[idx[(k + idx.size() - 1) % idx.size()]];
      const Point& cur = ring[idx[k]];
      const Point& next = ring[idx[(k + 1) % idx.size()]];
      if (geom::Orient(prev, cur, next) <= 0) continue;  // reflex/collinear
      bool ear = true;
      for (size_t j = 0; j < idx.size(); ++j) {
        if (j == k || idx[j] == idx[(k + idx.size() - 1) % idx.size()] ||
            idx[j] == idx[(k + 1) % idx.size()]) {
          continue;
        }
        if (BlocksEar(prev, cur, next, ring[idx[j]])) {
          ear = false;
          break;
        }
      }
      if (!ear) continue;
      out->emplace_back(prev, cur, next);
      idx.erase(idx.begin() + static_cast<std::ptrdiff_t>(k));
      clipped = true;
      break;
    }
    if (!clipped) {
      return Status::Internal("ear clipping stalled on a degenerate ring");
    }
  }
  Triangle last(ring[idx[0]], ring[idx[1]], ring[idx[2]]);
  if (last.SignedArea() <= 0.0) {
    return Status::Internal("final ear-clipping triangle is degenerate");
  }
  out->push_back(last);
  return Status::OK();
}

Result<std::vector<Triangle>> FanTriangulate(const geom::Polygon& convex) {
  const size_t n = convex.NumVertices();
  if (n < 3) return Status::InvalidArgument("polygon with fewer than 3 vertices");
  if (!convex.IsConvex() || convex.SignedArea() <= 0.0) {
    return Status::InvalidArgument("FanTriangulate requires a convex CCW ring");
  }
  // Fanning is only degeneracy-free when the ring has no collinear
  // vertices; fall back to ear clipping otherwise so no vertex is skipped.
  const std::vector<Point>& r = convex.ring();
  bool has_collinear = false;
  for (size_t i = 0; i < n; ++i) {
    if (geom::Orient(r[i], r[(i + 1) % n], r[(i + 2) % n]) == 0) {
      has_collinear = true;
      break;
    }
  }
  std::vector<Triangle> tris;
  if (has_collinear) {
    DTREE_RETURN_IF_ERROR(EarClipTriangulate(r, &tris));
    return tris;
  }
  tris.reserve(n - 2);
  for (size_t i = 1; i + 1 < n; ++i) {
    tris.emplace_back(r[0], r[i], r[i + 1]);
  }
  return tris;
}

Status TriangulateRectAnnulus(const geom::BBox& outer,
                              const geom::BBox& inner_rect,
                              const std::vector<Point>& inner_ring,
                              std::vector<Triangle>* out) {
  if (!(outer.min_x < inner_rect.min_x && outer.min_y < inner_rect.min_y &&
        outer.max_x > inner_rect.max_x && outer.max_y > inner_rect.max_y)) {
    return Status::InvalidArgument(
        "outer rectangle must strictly contain the inner rectangle");
  }
  const size_t n = inner_ring.size();
  if (n < 4) return Status::InvalidArgument("inner ring needs >= 4 vertices");

  // Inner corners in CCW order starting at (min, min).
  const Point corners[4] = {{inner_rect.min_x, inner_rect.min_y},
                            {inner_rect.max_x, inner_rect.min_y},
                            {inner_rect.max_x, inner_rect.max_y},
                            {inner_rect.min_x, inner_rect.max_y}};
  const Point outer_corners[4] = {{outer.min_x, outer.min_y},
                                  {outer.max_x, outer.min_y},
                                  {outer.max_x, outer.max_y},
                                  {outer.min_x, outer.max_y}};

  size_t corner_idx[4];
  for (int c = 0; c < 4; ++c) {
    bool found = false;
    for (size_t i = 0; i < n; ++i) {
      if (geom::NearlyEqual(inner_ring[i], corners[c])) {
        corner_idx[c] = i;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "inner ring is missing rectangle corner " + std::to_string(c));
    }
  }
  {
    // The ring must be CCW so corners appear in cyclic order 0,1,2,3.
    geom::Polygon p(inner_ring);
    if (p.SignedArea() <= 0.0) {
      return Status::InvalidArgument("inner ring must be CCW");
    }
  }

  for (int s = 0; s < 4; ++s) {
    const size_t from = corner_idx[s];
    const size_t to = corner_idx[(s + 1) % 4];
    // Chain from corner s to corner s+1 walking CCW along the ring.
    std::vector<Point> chain;
    for (size_t i = from;; i = (i + 1) % n) {
      chain.push_back(inner_ring[i]);
      if (i == to) break;
      if (chain.size() > n) {
        return Status::InvalidArgument("inner ring corners out of order");
      }
    }
    if (chain.size() < 2) {
      return Status::InvalidArgument("empty side chain in inner ring");
    }
    // Fan from the outer corner behind the side's start corner.
    const Point& b = outer_corners[s];
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      Triangle t(b, chain[i + 1], chain[i]);
      if (t.SignedArea() <= 0.0) {
        return Status::Internal("non-CCW annulus fan triangle");
      }
      out->push_back(t);
    }
    // Corner triangle joining this side's fan to the next side's fan.
    Triangle tc(outer_corners[s], outer_corners[(s + 1) % 4],
                corners[(s + 1) % 4]);
    DTREE_CHECK(tc.SignedArea() > 0.0);
    out->push_back(tc);
  }
  return Status::OK();
}

}  // namespace dtree::sub
