#include "subdivision/voronoi.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "geom/polygon.h"

namespace dtree::sub {

namespace {

using geom::BBox;
using geom::Point;
using geom::Polygon;

Polygon RectPolygon(const BBox& b) {
  return Polygon(std::vector<Point>{{b.min_x, b.min_y},
                                    {b.max_x, b.min_y},
                                    {b.max_x, b.max_y},
                                    {b.min_x, b.max_y}});
}

/// Maximum distance from `site` to any vertex of `cell`. Any other site
/// farther than twice this distance cannot cut the cell: its bisector lies
/// entirely beyond the cell.
double MaxVertexDistance(const Point& site, const Polygon& cell) {
  double m = 0.0;
  for (const Point& p : cell.ring()) {
    m = std::max(m, geom::Distance(site, p));
  }
  return m;
}

Status ValidateInput(const std::vector<Point>& sites, const BBox& area) {
  if (sites.empty()) return Status::InvalidArgument("no sites");
  if (area.empty() || area.Area() <= 0.0) {
    return Status::InvalidArgument("service area must have positive area");
  }
  for (size_t i = 0; i < sites.size(); ++i) {
    if (!area.Contains(sites[i])) {
      return Status::InvalidArgument("site " + std::to_string(i) +
                                     " lies outside the service area");
    }
  }
  return Status::OK();
}

/// Uniform bucket grid over the service area, CSR layout with site ids
/// ascending inside each bucket. A site in a bucket at Chebyshev ring
/// distance r from the query's bucket is at least (r - 1) * min_cell away
/// (both points lie in their own closed bucket rectangles, so only the gap
/// of r - 1 whole buckets between them is guaranteed); that clearance is
/// what lets the expanding-ring drain below stop early.
class SiteGrid {
 public:
  SiteGrid(const std::vector<Point>& sites, const BBox& area) {
    const size_t n = sites.size();
    dim_ = std::clamp(static_cast<int>(std::sqrt(static_cast<double>(n))), 1,
                      2048);
    origin_x_ = area.min_x;
    origin_y_ = area.min_y;
    cell_w_ = area.width() / dim_;
    cell_h_ = area.height() / dim_;
    min_cell_ = std::min(cell_w_, cell_h_);
    offsets_.assign(static_cast<size_t>(dim_) * dim_ + 1, 0);
    for (const Point& p : sites) ++offsets_[BucketIndex(p) + 1];
    for (size_t b = 1; b < offsets_.size(); ++b) offsets_[b] += offsets_[b - 1];
    ids_.resize(n);
    std::vector<int> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      ids_[static_cast<size_t>(cursor[BucketIndex(sites[i])]++)] =
          static_cast<int>(i);
    }
  }

  int dim() const { return dim_; }
  double min_cell() const { return min_cell_; }

  int CellX(double x) const {
    return Clamp(static_cast<int>((x - origin_x_) / cell_w_));
  }
  int CellY(double y) const {
    return Clamp(static_cast<int>((y - origin_y_) / cell_h_));
  }

  /// Calls fn(site_id) for every site bucketed in grid cell (bx, by).
  template <typename Fn>
  void ForBucket(int bx, int by, const Fn& fn) const {
    const size_t b =
        static_cast<size_t>(by) * static_cast<size_t>(dim_) +
        static_cast<size_t>(bx);
    for (int k = offsets_[b]; k < offsets_[b + 1]; ++k) fn(ids_[k]);
  }

  /// Calls fn(site_id) for every site at Chebyshev bucket distance exactly
  /// `ring` from (cx, cy), in fixed row-major bucket order.
  template <typename Fn>
  void ForRing(int cx, int cy, int ring, const Fn& fn) const {
    if (ring == 0) {
      ForBucket(cx, cy, fn);
      return;
    }
    const int x0 = cx - ring, x1 = cx + ring;
    const int y0 = cy - ring, y1 = cy + ring;
    for (int y = y0; y <= y1; ++y) {
      if (y < 0 || y >= dim_) continue;
      const bool edge_row = (y == y0 || y == y1);
      const int step = edge_row ? 1 : (x1 - x0 == 0 ? 1 : x1 - x0);
      for (int x = x0; x <= x1; x += step) {
        if (x < 0 || x >= dim_) continue;
        ForBucket(x, y, fn);
      }
    }
  }

 private:
  int Clamp(int v) const { return std::min(std::max(v, 0), dim_ - 1); }
  size_t BucketIndex(const Point& p) const {
    return static_cast<size_t>(CellY(p.y)) * static_cast<size_t>(dim_) +
           static_cast<size_t>(CellX(p.x));
  }

  int dim_ = 1;
  double origin_x_ = 0.0, origin_y_ = 0.0;
  double cell_w_ = 1.0, cell_h_ = 1.0, min_cell_ = 1.0;
  std::vector<int> offsets_;  ///< dim*dim + 1 CSR offsets
  std::vector<int> ids_;      ///< site ids grouped by bucket, ascending
};

/// Rejects duplicate and near-coincident sites before any clipping runs:
/// two sites within kMinSiteSeparation would carve a sliver cell thinner
/// than the stitcher's merge tolerance, which either vanishes under
/// ClipHalfPlane or collapses during vertex snapping and breaks the tiling
/// invariant. Deterministic: scans sites in ascending order against already
/// seen neighbors, so the reported pair never depends on thread count.
Status CheckMinSeparation(const std::vector<Point>& sites,
                          const SiteGrid& grid) {
  // Buckets are normally much wider than the separation radius; the reach
  // only grows past 1 for pathologically tiny service areas.
  const int reach = std::max(
      1, static_cast<int>(std::ceil(kMinSiteSeparation / grid.min_cell())));
  constexpr double kSepSq = kMinSiteSeparation * kMinSiteSeparation;
  for (size_t i = 0; i < sites.size(); ++i) {
    const Point& s = sites[i];
    const int cx = grid.CellX(s.x), cy = grid.CellY(s.y);
    for (int r = 0; r <= reach; ++r) {
      int hit = -1;
      grid.ForRing(cx, cy, r, [&](int j) {
        if (static_cast<size_t>(j) < i && hit < 0 &&
            geom::DistanceSquared(s, sites[static_cast<size_t>(j)]) < kSepSq) {
          hit = j;
        }
      });
      if (hit >= 0) {
        return Status::InvalidArgument(
            "sites " + std::to_string(hit) + " and " + std::to_string(i) +
            " coincide within the minimum separation (" +
            std::to_string(kMinSiteSeparation) + ")");
      }
    }
  }
  return Status::OK();
}

/// Min-heap of (distance^2, site id) candidate cutters.
using CandidateHeap = std::vector<std::pair<double, int>>;

/// Clips the cell of sites[i] against nearby sites in globally ascending
/// (distance, id) order. The heap is fed one Chebyshev ring of buckets at a
/// time; a candidate is only popped once it is provably nearer than every
/// site in the uncollected rings, so the clip sequence is identical to the
/// sort-all-sites reference for any grid dimension and any thread count.
Status ClipCell(const std::vector<Point>& sites, const BBox& area,
                const SiteGrid& grid, size_t i, CandidateHeap* heap,
                Polygon* out) {
  const Point& s = sites[i];
  Polygon cell = RectPolygon(area);
  double reach = MaxVertexDistance(s, cell);

  heap->clear();
  const int cx = grid.CellX(s.x), cy = grid.CellY(s.y);
  const int max_ring = std::max(std::max(cx, grid.dim() - 1 - cx),
                                std::max(cy, grid.dim() - 1 - cy));
  int next_ring = 0;
  const auto ring_clearance_sq = [&](int ring) {
    const double lb = std::max(0, ring - 1) * grid.min_cell();
    return lb * lb;
  };

  while (true) {
    // Drain rings until the heap's minimum beats every uncollected site.
    while (next_ring <= max_ring &&
           (heap->empty() ||
            heap->front().first >= ring_clearance_sq(next_ring))) {
      grid.ForRing(cx, cy, next_ring, [&](int j) {
        if (static_cast<size_t>(j) == i) return;
        heap->emplace_back(geom::DistanceSquared(s, sites[static_cast<size_t>(j)]),
                           j);
        std::push_heap(heap->begin(), heap->end(),
                       std::greater<std::pair<double, int>>());
      });
      ++next_ring;
    }
    if (heap->empty()) break;  // no other sites at all
    std::pop_heap(heap->begin(), heap->end(),
                  std::greater<std::pair<double, int>>());
    const auto [d2, j] = heap->back();
    heap->pop_back();

    const Point& t = sites[static_cast<size_t>(j)];
    // sqrt(DistanceSquared) is bitwise geom::Distance, so the break test
    // below makes the exact decisions the reference implementation makes.
    const double d = std::sqrt(d2);
    if (d <= geom::kMergeEps) {
      return Status::InvalidArgument(
          "duplicate sites " + std::to_string(std::min<size_t>(i, j)) +
          " and " + std::to_string(std::max<size_t>(i, j)));
    }
    if (d / 2.0 > reach) break;  // no remaining site can touch the cell
    // Keep the side closer to s: |p-s|^2 <= |p-t|^2
    //   <=> 2(t-s).p <= |t|^2 - |s|^2.
    const double a = 2.0 * (t.x - s.x);
    const double b = 2.0 * (t.y - s.y);
    const double c = (s.x * s.x + s.y * s.y) - (t.x * t.x + t.y * t.y);
    Polygon clipped = geom::ClipHalfPlane(cell, a, b, c);
    if (clipped.empty()) {
      return Status::InvalidArgument("Voronoi cell of site " +
                                     std::to_string(i) +
                                     " vanished (degenerate input)");
    }
    cell = std::move(clipped);
    reach = MaxVertexDistance(s, cell);
  }
  cell.EnsureCCW();
  *out = std::move(cell);
  return Status::OK();
}

}  // namespace

Result<std::vector<Polygon>> VoronoiCells(const std::vector<Point>& sites,
                                          const BBox& service_area,
                                          const VoronoiOptions& options) {
  DTREE_RETURN_IF_ERROR(ValidateInput(sites, service_area));
  const size_t n = sites.size();
  const SiteGrid grid(sites, service_area);
  DTREE_RETURN_IF_ERROR(CheckMinSeparation(sites, grid));

  std::vector<Polygon> cells(n);
  const int num_shards = static_cast<int>(std::min<size_t>(n, 64));
  std::vector<Status> shard_status(static_cast<size_t>(num_shards),
                                   Status::OK());
  // Fixed shard -> site mapping with per-slot writes: the output (and any
  // error) is a pure function of the input, never of thread scheduling.
  const auto run_shard = [&](int shard) {
    const size_t lo = n * static_cast<size_t>(shard) /
                      static_cast<size_t>(num_shards);
    const size_t hi = n * (static_cast<size_t>(shard) + 1) /
                      static_cast<size_t>(num_shards);
    CandidateHeap heap;
    for (size_t i = lo; i < hi; ++i) {
      Status st = ClipCell(sites, service_area, grid, i, &heap, &cells[i]);
      if (!st.ok()) {
        shard_status[static_cast<size_t>(shard)] = std::move(st);
        return;  // first (lowest-site) error of this shard wins
      }
    }
  };

  const int threads = options.num_threads > 0 ? options.num_threads
                                              : ThreadPool::DefaultThreads();
  if (threads <= 1 || n < 2048) {
    for (int s = 0; s < num_shards; ++s) run_shard(s);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(num_shards, run_shard);
  }
  // Shards cover ascending site ranges, so the first failed shard carries
  // the lowest failing site: deterministic error selection.
  for (const Status& st : shard_status) {
    if (!st.ok()) return st;
  }
  return cells;
}

Result<std::vector<Polygon>> VoronoiCells(const std::vector<Point>& sites,
                                          const BBox& service_area) {
  return VoronoiCells(sites, service_area, VoronoiOptions{});
}

Result<std::vector<Polygon>> VoronoiCellsReference(
    const std::vector<Point>& sites, const BBox& service_area) {
  const size_t n = sites.size();
  DTREE_RETURN_IF_ERROR(ValidateInput(sites, service_area));

  std::vector<Polygon> cells;
  cells.reserve(n);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    const Point& s = sites[i];
    // Clip against the other sites from nearest to farthest; the running
    // distance bound prunes most of them.
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return geom::DistanceSquared(s, sites[a]) <
             geom::DistanceSquared(s, sites[b]);
    });
    Polygon cell = RectPolygon(service_area);
    double reach = MaxVertexDistance(s, cell);
    for (size_t j : order) {
      if (j == i) continue;
      const Point& t = sites[j];
      const double d = geom::Distance(s, t);
      if (d <= geom::kMergeEps) {
        return Status::InvalidArgument("duplicate sites " + std::to_string(i) +
                                       " and " + std::to_string(j));
      }
      if (d / 2.0 > reach) break;  // bisector cannot touch the cell
      // Keep the side closer to s: |p-s|^2 <= |p-t|^2
      //   <=> 2(t-s).p <= |t|^2 - |s|^2.
      const double a = 2.0 * (t.x - s.x);
      const double b = 2.0 * (t.y - s.y);
      const double c = (s.x * s.x + s.y * s.y) - (t.x * t.x + t.y * t.y);
      Polygon clipped = geom::ClipHalfPlane(cell, a, b, c);
      if (clipped.empty()) {
        return Status::Internal("Voronoi cell of site " + std::to_string(i) +
                                " vanished (degenerate input)");
      }
      cell = std::move(clipped);
      reach = MaxVertexDistance(s, cell);
    }
    cell.EnsureCCW();
    cells.push_back(std::move(cell));
  }
  return cells;
}

Result<Subdivision> BuildVoronoiSubdivision(const std::vector<Point>& sites,
                                            const BBox& service_area,
                                            const VoronoiOptions& options) {
  Result<std::vector<Polygon>> cells =
      VoronoiCells(sites, service_area, options);
  if (!cells.ok()) return cells.status();
  return Subdivision::FromPolygons(service_area, cells.value());
}

Result<Subdivision> BuildVoronoiSubdivision(const std::vector<Point>& sites,
                                            const BBox& service_area) {
  return BuildVoronoiSubdivision(sites, service_area, VoronoiOptions{});
}

}  // namespace dtree::sub
