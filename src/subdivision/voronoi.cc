#include "subdivision/voronoi.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geom/polygon.h"

namespace dtree::sub {

namespace {

using geom::BBox;
using geom::Point;
using geom::Polygon;

Polygon RectPolygon(const BBox& b) {
  return Polygon(std::vector<Point>{{b.min_x, b.min_y},
                                    {b.max_x, b.min_y},
                                    {b.max_x, b.max_y},
                                    {b.min_x, b.max_y}});
}

/// Maximum distance from `site` to any vertex of `cell`. Any other site
/// farther than twice this distance cannot cut the cell: its bisector lies
/// entirely beyond the cell.
double MaxVertexDistance(const Point& site, const Polygon& cell) {
  double m = 0.0;
  for (const Point& p : cell.ring()) {
    m = std::max(m, geom::Distance(site, p));
  }
  return m;
}

}  // namespace

Result<std::vector<Polygon>> VoronoiCells(const std::vector<Point>& sites,
                                          const BBox& service_area) {
  const size_t n = sites.size();
  if (n == 0) return Status::InvalidArgument("no sites");
  if (service_area.empty() || service_area.Area() <= 0.0) {
    return Status::InvalidArgument("service area must have positive area");
  }
  for (size_t i = 0; i < n; ++i) {
    if (!service_area.Contains(sites[i])) {
      return Status::InvalidArgument("site " + std::to_string(i) +
                                     " lies outside the service area");
    }
  }

  std::vector<Polygon> cells;
  cells.reserve(n);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    const Point& s = sites[i];
    // Clip against the other sites from nearest to farthest; the running
    // distance bound prunes most of them.
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return geom::DistanceSquared(s, sites[a]) <
             geom::DistanceSquared(s, sites[b]);
    });
    Polygon cell = RectPolygon(service_area);
    double reach = MaxVertexDistance(s, cell);
    for (size_t j : order) {
      if (j == i) continue;
      const Point& t = sites[j];
      const double d = geom::Distance(s, t);
      if (d <= geom::kMergeEps) {
        return Status::InvalidArgument("duplicate sites " + std::to_string(i) +
                                       " and " + std::to_string(j));
      }
      if (d / 2.0 > reach) break;  // bisector cannot touch the cell
      // Keep the side closer to s: |p-s|^2 <= |p-t|^2
      //   <=> 2(t-s).p <= |t|^2 - |s|^2.
      const double a = 2.0 * (t.x - s.x);
      const double b = 2.0 * (t.y - s.y);
      const double c = (s.x * s.x + s.y * s.y) - (t.x * t.x + t.y * t.y);
      Polygon clipped = geom::ClipHalfPlane(cell, a, b, c);
      if (clipped.empty()) {
        return Status::Internal("Voronoi cell of site " + std::to_string(i) +
                                " vanished (degenerate input)");
      }
      cell = std::move(clipped);
      reach = MaxVertexDistance(s, cell);
    }
    cell.EnsureCCW();
    cells.push_back(std::move(cell));
  }
  return cells;
}

Result<Subdivision> BuildVoronoiSubdivision(const std::vector<Point>& sites,
                                            const BBox& service_area) {
  Result<std::vector<Polygon>> cells = VoronoiCells(sites, service_area);
  if (!cells.ok()) return cells.status();
  return Subdivision::FromPolygons(service_area, cells.value());
}

}  // namespace dtree::sub
