// Planar subdivision: a set of polygonal data regions tiling a rectangular
// service area.
//
// This is the input shared by every index structure in the library. Regions
// are stored over a shared vertex pool so that borders between adjacent
// regions match edge-for-edge — a requirement for the D-tree's
// union-boundary (extent) computation and for building a consistent
// triangulation for Kirkpatrick's hierarchy.

#ifndef DTREE_SUBDIVISION_SUBDIVISION_H_
#define DTREE_SUBDIVISION_SUBDIVISION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "geom/polygon.h"

namespace dtree::sub {

/// A subdivision of `service_area` into N polygonal data regions.
///
/// Region i corresponds to data instance i (Definition 1 of the paper:
/// regions are disjoint and their union is the service area).
class Subdivision {
 public:
  Subdivision() = default;

  /// Builds a subdivision from raw polygons, snapping vertices within
  /// geom::kMergeEps to a shared pool and splitting edges at T-junctions
  /// so neighboring borders match exactly.
  ///
  /// Fails with InvalidArgument when fewer than one polygon is supplied or
  /// a polygon is degenerate.
  static Result<Subdivision> FromPolygons(
      const geom::BBox& service_area,
      const std::vector<geom::Polygon>& polygons);

  int NumRegions() const { return static_cast<int>(rings_.size()); }
  const geom::BBox& service_area() const { return service_area_; }
  const std::vector<geom::Point>& vertices() const { return vertices_; }

  /// Vertex-id ring (CCW) of region i.
  const std::vector<int>& Ring(int i) const { return rings_[i]; }

  /// Materializes region i as a Polygon (copies vertices).
  geom::Polygon RegionPolygon(int i) const;

  /// Bounding box of region i (precomputed).
  const geom::BBox& RegionBounds(int i) const { return bounds_[i]; }

  /// Structural validation: rings are CCW with >= 3 vertices, region areas
  /// sum to the service area (within 0.1%), every region lies inside the
  /// service area, and every edge is either shared (reversed) with exactly
  /// one other region or lies on the service-area boundary.
  Status Validate() const;

  /// Distance from p to the nearest region border (used by tests to skip
  /// query points whose answer is numerically ambiguous, and by the
  /// experiment oracle on every mismatching query). Grid-accelerated:
  /// border edges are bucketed into a uniform grid at construction and
  /// looked up by expanding rings around p's cell; points outside the
  /// grid's extent fall back to the full edge scan.
  double DistanceToNearestBorder(const geom::Point& p) const;

  /// Brute-force reference: every edge of every region. Public so property
  /// tests can pit the grid-accelerated path against it.
  double BorderDistanceFullScan(const geom::Point& p) const;

  /// Border-grid introspection for property tests (generating query points
  /// aligned exactly to grid-cell boundaries). A dimension of 0 means no
  /// grid was built and DistanceToNearestBorder always full-scans.
  int border_grid_dim() const { return border_grid_dim_; }
  const geom::BBox& border_grid_box() const { return border_grid_box_; }
  double border_cell_w() const { return border_cell_w_; }
  double border_cell_h() const { return border_cell_h_; }

 private:
  /// Collects unique undirected border edges and buckets them into the
  /// uniform grid used by DistanceToNearestBorder.
  void BuildBorderGrid();

  geom::BBox service_area_;
  std::vector<geom::Point> vertices_;
  std::vector<std::vector<int>> rings_;
  std::vector<geom::BBox> bounds_;

  /// Border-distance acceleration: unique undirected edges (vertex-id
  /// pairs) bucketed into a uniform grid over `border_grid_box_`. Built by
  /// FromPolygons; a default-constructed Subdivision has no grid
  /// (border_grid_dim_ == 0) and uses the full scan.
  std::vector<std::pair<int, int>> border_edges_;
  geom::BBox border_grid_box_;
  int border_grid_dim_ = 0;
  double border_cell_w_ = 1.0, border_cell_h_ = 1.0;
  std::vector<std::vector<int>> border_cells_;  ///< edge ids per grid cell
};

/// Grid-accelerated brute-force point locator over a Subdivision. Serves as
/// ground truth for every index structure and as the labeling oracle for
/// trapezoids / triangles at build time.
class PointLocator {
 public:
  explicit PointLocator(const Subdivision& sub);

  /// Region containing p. Points outside every region (possible only
  /// through floating-point gaps or p outside the service area) resolve to
  /// the region with the nearest boundary. Returns -1 only for an empty
  /// subdivision.
  int Locate(const geom::Point& p) const;

 private:
  const Subdivision& sub_;
  std::vector<geom::Polygon> polys_;
  int grid_dim_ = 1;
  double cell_w_ = 1.0, cell_h_ = 1.0;
  std::vector<std::vector<int>> cells_;  // region ids per grid cell
};

}  // namespace dtree::sub

#endif  // DTREE_SUBDIVISION_SUBDIVISION_H_
