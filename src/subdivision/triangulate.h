// Polygon triangulation routines — the substrate for Kirkpatrick's planar
// point-location hierarchy (the paper's "trian-tree" baseline).

#ifndef DTREE_SUBDIVISION_TRIANGULATE_H_
#define DTREE_SUBDIVISION_TRIANGULATE_H_

#include <vector>

#include "common/status.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/triangle.h"

namespace dtree::sub {

/// Triangulates a CCW simple polygon by ear clipping. Tolerates collinear
/// vertices; emits exactly n-2 triangles whose corners are ring vertices
/// (required for mesh consistency: no vertex is skipped). O(n^2).
Status EarClipTriangulate(const std::vector<geom::Point>& ring,
                          std::vector<geom::Triangle>* out);

/// Fan triangulation of a convex CCW polygon. Keeps every vertex as a
/// triangle corner (zero-area fan slivers from collinear runs are avoided
/// by fanning from a strictly convex vertex).
Result<std::vector<geom::Triangle>> FanTriangulate(const geom::Polygon& convex);

/// Triangulates the rectangular annulus between `outer` (an axis-aligned
/// rectangle) and the closed CCW `inner_ring` (the outer boundary of the
/// subdivision: an axis-aligned rectangle `inner_rect` whose ring may carry
/// many collinear vertices along its edges). Every inner-ring vertex is
/// used as a triangle corner, so the result meshes exactly with the
/// subdivision's own triangulation. Construction: one fan per side from an
/// outer corner plus four corner triangles.
Status TriangulateRectAnnulus(const geom::BBox& outer,
                              const geom::BBox& inner_rect,
                              const std::vector<geom::Point>& inner_ring,
                              std::vector<geom::Triangle>* out);

}  // namespace dtree::sub

#endif  // DTREE_SUBDIVISION_TRIANGULATE_H_
