#!/usr/bin/env python3
"""Summarize or validate per-query broadcast trace JSONL files.

The input is the --trace-out output of any experiment bench (one JSON
object per line; schema in DESIGN.md §9). Stdlib only.

Usage:
  tools/trace_summary.py TRACE.jsonl            # per-cell report
  tools/trace_summary.py --check TRACE.jsonl    # schema check; exit 1 on
                                                # any malformed line
  tools/trace_summary.py --json=OUT.json TRACE.jsonl
                                                # report in the BENCH_*.json
                                                # cell schema

The report gives, per cell: query count, p50/p95/p99/max access latency
and tuning time (exact, computed from the raw per-query values), the
retry histogram, and index-packet reads per tree level.

Fleet traces (those stamped with a "client" id) additionally pass
per-client invariants under --check: within one (cell, client) stream
the query counter "q" is strictly increasing and arrivals are
non-decreasing — a client issues its queries sequentially, and the
fleet engine replays traces in a deterministic order that preserves
each client's issue order. Per-line, dozes plus packet reads must add
up to the access latency for every query, fleet or not.

Versioned-broadcast traces (DESIGN.md §15) stamp each line with the
completion "epoch" and its mid-query "epoch_switches" count; the two
must appear together, and every "epoch_switch" event must carry the
target epoch plus a 1-based "attempt" ordinal whose sequence matches
the line's total switch count.

Region-cache traces (DESIGN.md §16) mark queries answered from the
client's cache with a top-level "cache_hit": true and a single
"cache_hit" event carrying the cached epoch. A hit never tunes in, so
--check enforces: zero tuning, zero latency, and no probe / doze /
index / bucket / fallback_scan events on the line — the cache_hit
event must be the only one. A "cache_hit" event on a line without the
flag (or vice versa) is an error.
"""

import json
import math
import sys

EVENT_KINDS = {
    "probe",
    "doze",
    "index",
    "bucket",
    "loss",
    "retune",
    "corruption_detected",
    "fallback_scan",
    "epoch_switch",
    "cache_hit",
}

REQUIRED_TOP = {
    "q": int,
    "x": (int, float),
    "y": (int, float),
    "region": int,
    "arrival": (int, float),
    "latency": (int, float),
    "tuning": int,
    "retries": int,
    "lost": int,
    "corrupted": int,
    "fallback": bool,
    "unrecoverable": bool,
    "events": list,
}


def validate_line(obj):
    """Returns an error string or None. Checks field presence/types plus
    the cross-invariants the simulator guarantees: tuning equals the
    packets read across probe/index/bucket events, retune events match
    the retry count, and dozes plus reads add up to the access latency."""
    if not isinstance(obj, dict):
        return "line is not a JSON object"
    for key, typ in REQUIRED_TOP.items():
        if key not in obj:
            return f"missing field {key!r}"
        if not isinstance(obj[key], typ) or isinstance(obj[key], bool) != (
            typ is bool
        ):
            return f"field {key!r} has wrong type {type(obj[key]).__name__}"
    if "cell" in obj and not isinstance(obj["cell"], str):
        return "field 'cell' has wrong type"
    # Fleet-engine traces (broadcast/fleet.h) stamp the issuing client:
    # slot + generation * num_clients, a non-negative integer. Single-query
    # simulations omit the field entirely.
    if "client" in obj:
        if not isinstance(obj["client"], int) or isinstance(obj["client"], bool):
            return "field 'client' has wrong type"
        if obj["client"] < 0:
            return f"field 'client' is negative ({obj['client']})"
    # Versioned-broadcast traces (RunFleetVersioned / BroadcastTimeline)
    # stamp the epoch the query completed in and the number of mid-query
    # epoch switches; legacy traces omit both fields entirely.
    if ("epoch" in obj) != ("epoch_switches" in obj):
        return "fields 'epoch' and 'epoch_switches' must appear together"
    for key in ("epoch", "epoch_switches"):
        if key in obj:
            if not isinstance(obj[key], int) or isinstance(obj[key], bool):
                return f"field {key!r} has wrong type"
            if obj[key] < 0:
                return f"field {key!r} is negative ({obj[key]})"
    # Region-cache traces (broadcast/region_cache.h) stamp hits with a
    # boolean flag; miss lines and cache-off runs omit the field entirely.
    if "cache_hit" in obj and not isinstance(obj["cache_hit"], bool):
        return "field 'cache_hit' has wrong type"

    reads = 0
    retunes = 0
    losses = 0
    corruptions = 0
    fallback_scans = 0
    epoch_switches = 0
    cache_hit_events = 0
    doze = 0.0
    for i, ev in enumerate(obj["events"]):
        if not isinstance(ev, dict):
            return f"event {i} is not an object"
        kind = ev.get("t")
        if kind not in EVENT_KINDS:
            return f"event {i} has unknown kind {kind!r}"
        if not isinstance(ev.get("pos"), int):
            return f"event {i} ({kind}) missing integer 'pos'"
        if kind == "probe":
            reads += 1
        elif kind == "doze":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] <= 0:
                return f"event {i} (doze) needs positive 'dur'"
            doze += ev["dur"]
        elif kind == "index":
            if not isinstance(ev.get("pkt"), int) or ev["pkt"] < 0:
                return f"event {i} (index) needs non-negative 'pkt'"
            if ("node" in ev) != ("depth" in ev):
                return f"event {i} (index) has node without depth (or vice versa)"
            reads += 1
        elif kind == "bucket":
            if not isinstance(ev.get("n"), int) or ev["n"] < 1:
                return f"event {i} (bucket) needs positive 'n'"
            reads += ev["n"]
        elif kind == "loss":
            losses += 1
        elif kind == "retune":
            if not isinstance(ev.get("attempt"), int) or ev["attempt"] < 1:
                return f"event {i} (retune) needs positive 'attempt'"
            retunes += 1
        elif kind == "corruption_detected":
            corruptions += 1
        elif kind == "epoch_switch":
            if not isinstance(ev.get("epoch"), int) or ev["epoch"] < 0:
                return f"event {i} (epoch_switch) needs non-negative 'epoch'"
            if not isinstance(ev.get("attempt"), int) or ev["attempt"] < 1:
                return f"event {i} (epoch_switch) needs positive 'attempt'"
            epoch_switches += 1
            if ev["attempt"] != epoch_switches:
                return (
                    f"event {i} (epoch_switch) attempt {ev['attempt']} out "
                    f"of order (expected {epoch_switches})"
                )
        elif kind == "cache_hit":
            if not isinstance(ev.get("epoch"), int) or ev["epoch"] < 0:
                return f"event {i} (cache_hit) needs non-negative 'epoch'"
            cache_hit_events += 1
        elif kind == "fallback_scan":
            if not isinstance(ev.get("n"), int) or ev["n"] < 0:
                return f"event {i} (fallback_scan) needs non-negative 'n'"
            if not isinstance(ev.get("attempt"), int) or ev["attempt"] < 0:
                return f"event {i} (fallback_scan) needs non-negative 'attempt'"
            reads += ev["n"]
            fallback_scans += 1
    if reads != obj["tuning"]:
        return f"tuning {obj['tuning']} != {reads} packets read in events"
    if retunes != obj["retries"]:
        return f"retries {obj['retries']} != {retunes} retune events"
    if losses != obj["lost"]:
        return f"lost {obj['lost']} != {losses} loss events"
    if corruptions != obj["corrupted"]:
        return (
            f"corrupted {obj['corrupted']} != {corruptions} "
            f"corruption_detected events"
        )
    if obj["fallback"] != (fallback_scans > 0):
        return (
            f"fallback flag {obj['fallback']} inconsistent with "
            f"{fallback_scans} fallback_scan events"
        )
    if "epoch_switches" in obj:
        if epoch_switches != obj["epoch_switches"]:
            return (
                f"epoch_switches {obj['epoch_switches']} != "
                f"{epoch_switches} epoch_switch events"
            )
    elif epoch_switches > 0:
        return (
            f"{epoch_switches} epoch_switch events on a trace without the "
            f"versioned 'epoch_switches' field"
        )
    if obj.get("cache_hit", False):
        # A hit is answered from the cached region: the receiver never
        # wakes, so zero index reads, zero doze, and the single cache_hit
        # event is the whole story.
        if cache_hit_events != 1:
            return (
                f"cache_hit line has {cache_hit_events} cache_hit events "
                f"(expected exactly 1)"
            )
        if len(obj["events"]) != 1:
            return (
                f"cache_hit line has {len(obj['events'])} events "
                f"(the cache_hit event must be the only one)"
            )
        if obj["tuning"] != 0:
            return f"cache_hit line has nonzero tuning {obj['tuning']}"
        if obj["latency"] != 0:
            return f"cache_hit line has nonzero latency {obj['latency']}"
        if doze != 0.0:
            return f"cache_hit line has nonzero doze {doze}"
    elif cache_hit_events > 0:
        return (
            f"{cache_hit_events} cache_hit events on a line without the "
            f"'cache_hit' flag"
        )
    # Values survive a %.10g round-trip, so allow ~1e-3 absolute slack.
    if not math.isclose(doze + reads, obj["latency"], rel_tol=1e-7, abs_tol=1e-3):
        return (
            f"latency {obj['latency']} != doze {doze} + reads {reads} "
            f"(= {doze + reads})"
        )
    return None


def percentile(sorted_values, p):
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(p * len(sorted_values)))
    return sorted_values[rank - 1]


class CellStats:
    def __init__(self):
        self.latency = []
        self.tuning = []
        self.retries = {}
        self.level_reads = {}
        self.unattributed = 0
        self.unrecoverable = 0
        self.fallback = 0
        self.cache_hits = 0

    def add(self, obj):
        if obj.get("cache_hit", False):
            self.cache_hits += 1
        self.latency.append(obj["latency"])
        self.tuning.append(obj["tuning"])
        self.retries[obj["retries"]] = self.retries.get(obj["retries"], 0) + 1
        if obj["unrecoverable"]:
            self.unrecoverable += 1
        if obj["fallback"]:
            self.fallback += 1
        for ev in obj["events"]:
            if ev.get("t") != "index":
                continue
            depth = ev.get("depth", -1)
            if depth >= 0:
                self.level_reads[depth] = self.level_reads.get(depth, 0) + 1
            else:
                self.unattributed += 1

    def summary(self):
        lat = sorted(self.latency)
        tun = sorted(self.tuning)
        return {
            "queries": len(lat),
            "p50_latency": percentile(lat, 0.50),
            "p95_latency": percentile(lat, 0.95),
            "p99_latency": percentile(lat, 0.99),
            "max_latency": lat[-1] if lat else 0.0,
            "p50_tuning": percentile(tun, 0.50),
            "p95_tuning": percentile(tun, 0.95),
            "p99_tuning": percentile(tun, 0.99),
            "max_tuning": tun[-1] if tun else 0.0,
            "unrecoverable": self.unrecoverable,
            "fallback": self.fallback,
            "cache_hits": self.cache_hits,
            "retry_histogram": {str(k): v for k, v in sorted(self.retries.items())},
            "level_reads": {str(k): v for k, v in sorted(self.level_reads.items())},
            "unattributed_reads": self.unattributed,
        }


def main(argv):
    check_only = False
    json_out = None
    paths = []
    for arg in argv[1:]:
        if arg == "--check":
            check_only = True
        elif arg.startswith("--json="):
            json_out = arg[len("--json=") :]
        elif arg.startswith("-"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2

    cells = {}
    total = 0
    # Per-(cell, client) stream state for the fleet invariants: last seen
    # query counter and arrival time.
    client_streams = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{path}:{lineno}: invalid JSON: {e}", file=sys.stderr)
                    return 1
                err = validate_line(obj)
                if err is not None:
                    print(f"{path}:{lineno}: {err}", file=sys.stderr)
                    return 1
                if "client" in obj:
                    stream = (obj.get("cell", ""), obj["client"])
                    prev = client_streams.get(stream)
                    if prev is not None:
                        prev_q, prev_arrival = prev
                        if obj["q"] <= prev_q:
                            print(
                                f"{path}:{lineno}: client {obj['client']} "
                                f"query counter went {prev_q} -> {obj['q']} "
                                f"(must be strictly increasing)",
                                file=sys.stderr,
                            )
                            return 1
                        if obj["arrival"] < prev_arrival:
                            print(
                                f"{path}:{lineno}: client {obj['client']} "
                                f"arrival went {prev_arrival} -> "
                                f"{obj['arrival']} (must be non-decreasing)",
                                file=sys.stderr,
                            )
                            return 1
                    client_streams[stream] = (obj["q"], obj["arrival"])
                total += 1
                if not check_only:
                    cells.setdefault(obj.get("cell", ""), CellStats()).add(obj)

    if check_only:
        print(f"OK: {total} trace lines valid")
        return 0

    report = {cell or "(unlabeled)": stats.summary() for cell, stats in cells.items()}
    for cell, s in report.items():
        print(f"\n-- {cell} ({s['queries']} queries) --")
        print(
            "latency  p50 {p50_latency:8.1f}  p95 {p95_latency:8.1f}  "
            "p99 {p99_latency:8.1f}  max {max_latency:8.1f}".format(**s)
        )
        print(
            "tuning   p50 {p50_tuning:8.1f}  p95 {p95_tuning:8.1f}  "
            "p99 {p99_tuning:8.1f}  max {max_tuning:8.1f}".format(**s)
        )
        if any(k != "0" for k in s["retry_histogram"]):
            hist = ", ".join(f"{k}: {v}" for k, v in s["retry_histogram"].items())
            print(
                f"retries  {{{hist}}}  unrecoverable {s['unrecoverable']}"
                f"  fallback {s['fallback']}"
            )
        if s["cache_hits"]:
            rate = s["cache_hits"] / s["queries"] if s["queries"] else 0.0
            print(f"cache hits {s['cache_hits']} ({rate:.1%})")
        if s["level_reads"]:
            levels = "  ".join(f"L{k} {v}" for k, v in s["level_reads"].items())
            extra = (
                f"  ? {s['unattributed_reads']}" if s["unattributed_reads"] else ""
            )
            print(f"index reads by tree level: {levels}{extra}")

    if json_out:
        payload = {
            "bench": "trace_summary",
            "cells": [{"cell": cell, **s} for cell, s in sorted(report.items())],
        }
        with open(json_out, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"\nsummary written to {json_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
