#!/usr/bin/env python3
"""Summarize or validate fleet telemetry timeline JSONL files.

The input is the --telemetry-out output of bench_fleet or
bench_trace_profile (schema in DESIGN.md §14): one or more blocks, each
a meta line ({"meta": "fleet_telemetry", ...run totals...}) followed by
one JSON line per broadcast-cycle window. Stdlib only.

Usage:
  tools/telemetry_report.py TIMELINE.jsonl          # per-block report
  tools/telemetry_report.py --check TIMELINE.jsonl  # validate; exit 1 on
                                                    # any violation
  tools/telemetry_report.py --check --flight=FLIGHT.jsonl TIMELINE.jsonl
                                                    # also validate the
                                                    # flight-recorder dump
                                                    # and cross-check its
                                                    # record count

--check enforces the schema plus the invariants the telemetry layer
guarantees by construction, so any violation means the producer (or the
file) is broken, not the fleet:
  * every block starts with a meta line and carries exactly meta.windows
    window lines with strictly increasing window indices;
  * summing any window counter over the block reproduces the matching
    meta total (queries, retries, lost, corrupted, unrecoverable,
    fallback, sessions, departures) — the meta totals come from the
    engine's own FleetResult, so this cross-checks telemetry against the
    simulation it observed;
  * per window, the latency and tuning histograms hold exactly one
    sample per completed query;
  * heatmap rows have exactly meta.heatmap_bins bins per class and their
    binned packets sum to the window's index_reads / data_reads
    counters;
  * the epoch_switches window counter sums to the meta total (always
    present, 0 on single-epoch runs), and versioned flight records
    carry "epoch" and "epoch_switches" together or not at all
    (DESIGN.md §15);
  * region-cache counters (cache_hits, cache_misses, cache_evictions,
    cache_invalidations; DESIGN.md §16) are optional but consistent:
    cache-off runs omit all four everywhere, cache-on runs carry all
    four in the meta totals and in every window, the window sums
    reproduce the meta totals, and hits plus misses equal the block's
    query count (every issued query consults the cache exactly once).
"""

import json
import math
import sys

META_INT_KEYS = ("window_packets", "cycle_packets", "heatmap_bins",
                 "windows", "flight_records")
TOTALS_KEYS = ("queries", "sessions", "departures", "retries", "lost",
               "corrupted", "unrecoverable", "fallback", "epoch_switches")
# Present in totals and windows iff the producing run had the region
# cache enabled (broadcast/region_cache.h); all-or-nothing per block.
CACHE_KEYS = ("cache_hits", "cache_misses", "cache_evictions",
              "cache_invalidations")
WINDOW_COUNTER_KEYS = ("issued", "completed", "unrecoverable", "fallback",
                       "retries", "lost", "corrupted", "arrivals",
                       "departures", "index_reads", "data_reads",
                       "doze_count", "epoch_switches")
HIST_KEYS = ("count", "sum", "min", "max", "p50", "p95", "p99")
FLIGHT_EVENT_KINDS = {
    "probe", "doze", "index", "bucket", "loss", "retune",
    "corruption_detected", "fallback_scan", "epoch_switch",
}
# window counter -> meta totals key it must sum to.
SUM_CHECKS = {
    "completed": "queries",
    "retries": "retries",
    "lost": "lost",
    "corrupted": "corrupted",
    "unrecoverable": "unrecoverable",
    "fallback": "fallback",
    "arrivals": "sessions",
    "departures": "departures",
    "epoch_switches": "epoch_switches",
}


def is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_meta(obj):
    """Returns an error string or None."""
    if obj.get("meta") != "fleet_telemetry":
        return f"unexpected meta id {obj.get('meta')!r}"
    if "cell" in obj and not isinstance(obj["cell"], str):
        return "field 'cell' has wrong type"
    for key in META_INT_KEYS:
        if not is_int(obj.get(key)) or obj[key] < 0:
            return f"meta field {key!r} must be a non-negative integer"
    for key in ("window_packets", "cycle_packets", "heatmap_bins"):
        if obj[key] == 0:
            return f"meta field {key!r} must be positive"
    totals = obj.get("totals")
    if not isinstance(totals, dict):
        return "meta is missing the 'totals' object"
    for key in TOTALS_KEYS:
        if not is_int(totals.get(key)) or totals[key] < 0:
            return f"totals field {key!r} must be a non-negative integer"
    present = [key for key in CACHE_KEYS if key in totals]
    if present and len(present) != len(CACHE_KEYS):
        missing = sorted(set(CACHE_KEYS) - set(present))
        return f"totals has cache counters but is missing {missing}"
    for key in present:
        if not is_int(totals[key]) or totals[key] < 0:
            return f"totals field {key!r} must be a non-negative integer"
    return None


def meta_cache_enabled(meta):
    return CACHE_KEYS[0] in meta["totals"]


def validate_hist(h, name):
    if not isinstance(h, dict):
        return f"window field {name!r} is not an object"
    for key in HIST_KEYS:
        if not is_num(h.get(key)):
            return f"histogram {name!r} field {key!r} must be numeric"
    if h["count"] > 0 and h["min"] > h["max"]:
        return f"histogram {name!r} has min > max"
    return None


def validate_window(obj, bins, cache_on):
    if not is_int(obj.get("w")) or obj["w"] < 0:
        return "window field 'w' must be a non-negative integer"
    for key in WINDOW_COUNTER_KEYS:
        if not is_int(obj.get(key)) or obj[key] < 0:
            return f"window field {key!r} must be a non-negative integer"
    for key in CACHE_KEYS:
        if (key in obj) != cache_on:
            return (
                f"window field {key!r} must appear iff the block's meta "
                f"totals carry cache counters"
            )
        if cache_on and (not is_int(obj[key]) or obj[key] < 0):
            return f"window field {key!r} must be a non-negative integer"
    if not is_num(obj.get("doze_packets")) or obj["doze_packets"] < 0:
        return "window field 'doze_packets' must be non-negative"
    for key in ("inflight_min", "inflight_max"):
        if not is_num(obj.get(key)):
            return f"window field {key!r} must be numeric"
    for name in ("latency", "tuning"):
        err = validate_hist(obj.get(name), name)
        if err is not None:
            return err
        if obj[name]["count"] != obj["completed"]:
            return (
                f"histogram {name!r} holds {obj[name]['count']} samples "
                f"but the window completed {obj['completed']} queries"
            )
    for name, counter in (("heatmap_index", "index_reads"),
                          ("heatmap_data", "data_reads")):
        row = obj.get(name)
        if not isinstance(row, list) or len(row) != bins:
            return f"{name!r} must be a {bins}-bin array"
        if not all(is_int(c) and c >= 0 for c in row):
            return f"{name!r} entries must be non-negative integers"
        if sum(row) != obj[counter]:
            return (
                f"{name!r} sums to {sum(row)} but the window counted "
                f"{obj[counter]} {counter}"
            )
    return None


def check_block_totals(meta, windows, where):
    """Sums window counters against the meta totals; returns error or None."""
    for counter, total_key in SUM_CHECKS.items():
        got = sum(w[counter] for w in windows)
        want = meta["totals"][total_key]
        if got != want:
            return (
                f"{where}: sum of window {counter!r} is {got}, meta total "
                f"{total_key!r} says {want}"
            )
    issued = sum(w["issued"] for w in windows)
    if issued != meta["totals"]["queries"]:
        return (
            f"{where}: {issued} queries issued but {meta['totals']['queries']} "
            f"completed — the fleet runs every issued query to completion"
        )
    lat_count = sum(w["latency"]["count"] for w in windows)
    if lat_count != meta["totals"]["queries"]:
        return (
            f"{where}: latency histograms hold {lat_count} samples for "
            f"{meta['totals']['queries']} queries"
        )
    if meta_cache_enabled(meta):
        for key in CACHE_KEYS:
            got = sum(w[key] for w in windows)
            want = meta["totals"][key]
            if got != want:
                return (
                    f"{where}: sum of window {key!r} is {got}, meta total "
                    f"says {want}"
                )
        lookups = meta["totals"]["cache_hits"] + meta["totals"]["cache_misses"]
        if lookups != meta["totals"]["queries"]:
            return (
                f"{where}: {lookups} cache lookups for "
                f"{meta['totals']['queries']} queries — every issued query "
                f"consults the cache exactly once"
            )
    return None


def validate_flight_line(obj):
    if obj.get("flight") != "unrecoverable":
        return f"unexpected flight id {obj.get('flight')!r}"
    if not is_int(obj.get("client")):
        return "flight field 'client' must be an integer"
    for key in ("q", "tuning", "retries", "lost", "corrupted"):
        if not is_int(obj.get(key)) or obj[key] < 0:
            return f"flight field {key!r} must be a non-negative integer"
    for key in ("done", "latency"):
        if not is_num(obj.get(key)) or obj[key] < 0:
            return f"flight field {key!r} must be non-negative"
    if not isinstance(obj.get("fallback"), bool):
        return "flight field 'fallback' must be a boolean"
    if "give_up" in obj and not isinstance(obj["give_up"], str):
        return "flight field 'give_up' has wrong type"
    # Versioned-broadcast records stamp the completion epoch and the
    # mid-query switch count; legacy records omit both fields.
    if ("epoch" in obj) != ("epoch_switches" in obj):
        return "flight fields 'epoch' and 'epoch_switches' must appear together"
    for key in ("epoch", "epoch_switches"):
        if key in obj and (not is_int(obj[key]) or obj[key] < 0):
            return f"flight field {key!r} must be a non-negative integer"
    events = obj.get("events")
    if not isinstance(events, list):
        return "flight field 'events' must be an array"
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return f"flight event {i} is not an object"
        if ev.get("t") not in FLIGHT_EVENT_KINDS:
            return f"flight event {i} has unknown kind {ev.get('t')!r}"
        if not is_int(ev.get("pos")):
            return f"flight event {i} missing integer 'pos'"
        if ev["t"] == "doze" and (not is_num(ev.get("dur")) or ev["dur"] <= 0):
            return f"flight event {i} (doze) needs positive 'dur'"
    return None


def parse_blocks(path):
    """Yields (meta, windows, first_lineno) blocks; raises SystemExit with
    a message on any structural or schema violation."""
    blocks = []
    meta = None
    windows = []
    meta_line = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: invalid JSON: {e}")
            if not isinstance(obj, dict):
                sys.exit(f"{path}:{lineno}: line is not a JSON object")
            if "meta" in obj:
                if meta is not None and len(windows) != meta["windows"]:
                    sys.exit(
                        f"{path}:{meta_line}: block declares "
                        f"{meta['windows']} windows, found {len(windows)}"
                    )
                err = validate_meta(obj)
                if err is not None:
                    sys.exit(f"{path}:{lineno}: {err}")
                if meta is not None:
                    blocks.append((meta, windows, meta_line))
                meta, windows, meta_line = obj, [], lineno
                continue
            if meta is None:
                sys.exit(f"{path}:{lineno}: window line before any meta line")
            err = validate_window(obj, meta["heatmap_bins"],
                                  meta_cache_enabled(meta))
            if err is not None:
                sys.exit(f"{path}:{lineno}: {err}")
            if windows and obj["w"] <= windows[-1]["w"]:
                sys.exit(
                    f"{path}:{lineno}: window index {obj['w']} not "
                    f"strictly increasing (previous {windows[-1]['w']})"
                )
            windows.append(obj)
    if meta is None:
        sys.exit(f"{path}: no telemetry blocks found")
    if len(windows) != meta["windows"]:
        sys.exit(
            f"{path}:{meta_line}: block declares {meta['windows']} "
            f"windows, found {len(windows)}"
        )
    blocks.append((meta, windows, meta_line))
    return blocks


def report_block(meta, windows):
    cell = meta.get("cell", "(unlabeled)")
    totals = meta["totals"]
    width = meta["window_packets"]
    print(f"\n-- {cell} --")
    print(
        f"{len(windows)} windows x {width} packets, "
        f"{totals['queries']} queries, {totals['sessions']} sessions "
        f"({totals['departures']} departed), "
        f"{totals['unrecoverable']} unrecoverable, "
        f"{meta['flight_records']} flight records"
    )
    if totals["retries"] or totals["lost"] or totals["corrupted"]:
        print(
            f"faults: {totals['retries']} retries, {totals['lost']} lost, "
            f"{totals['corrupted']} corrupted, "
            f"{totals['fallback']} fallback queries"
        )
    if meta_cache_enabled(meta):
        lookups = totals["cache_hits"] + totals["cache_misses"]
        rate = totals["cache_hits"] / lookups if lookups else 0.0
        print(
            f"cache: {totals['cache_hits']} hits ({rate:.1%}), "
            f"{totals['cache_evictions']} evictions, "
            f"{totals['cache_invalidations']} invalidations"
        )
    print(f"{'w':>4} {'done':>7} {'p95 lat':>9} {'p95 tun':>8} "
          f"{'reads':>8} {'dozing':>8} {'inflight':>9}")
    for w in windows:
        reads = w["index_reads"] + w["data_reads"]
        dozing = w["doze_packets"] / width  # mean dozing clients
        print(
            f"{w['w']:>4} {w['completed']:>7} "
            f"{w['latency']['p95']:>9.1f} {w['tuning']['p95']:>8.1f} "
            f"{reads:>8} {dozing:>8.1f} "
            f"{w['inflight_min']:.0f}-{w['inflight_max']:<.0f}"
        )
    # Hottest heatmap bin across the block, per class.
    bins = meta["heatmap_bins"]
    index_bins = [0] * bins
    data_bins = [0] * bins
    for w in windows:
        for i, c in enumerate(w["heatmap_index"]):
            index_bins[i] += c
        for i, c in enumerate(w["heatmap_data"]):
            data_bins[i] += c
    for name, row in (("index", index_bins), ("data", data_bins)):
        total = sum(row)
        if total:
            hot = max(range(bins), key=lambda i: row[i])
            print(
                f"hottest {name} bin: {hot}/{bins} with "
                f"{100.0 * row[hot] / total:.1f}% of {total} reads"
            )


def main(argv):
    check_only = False
    flight_path = None
    paths = []
    for arg in argv[1:]:
        if arg == "--check":
            check_only = True
        elif arg.startswith("--flight="):
            flight_path = arg[len("--flight="):]
        elif arg.startswith("-"):
            print(f"unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2

    total_blocks = 0
    total_windows = 0
    declared_flight_records = 0
    for path in paths:
        for meta, windows, meta_line in parse_blocks(path):
            err = check_block_totals(meta, windows, f"{path}:{meta_line}")
            if err is not None:
                print(err, file=sys.stderr)
                return 1
            total_blocks += 1
            total_windows += len(windows)
            declared_flight_records += meta["flight_records"]
            if not check_only:
                report_block(meta, windows)

    if flight_path is not None:
        flight_lines = 0
        with open(flight_path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{flight_path}:{lineno}: invalid JSON: {e}",
                          file=sys.stderr)
                    return 1
                err = validate_flight_line(obj)
                if err is not None:
                    print(f"{flight_path}:{lineno}: {err}", file=sys.stderr)
                    return 1
                flight_lines += 1
        if flight_lines != declared_flight_records:
            print(
                f"{flight_path}: {flight_lines} flight records, timeline "
                f"meta declares {declared_flight_records}",
                file=sys.stderr,
            )
            return 1

    if check_only:
        suffix = (
            f", {declared_flight_records} flight records"
            if flight_path is not None else ""
        )
        print(
            f"OK: {total_blocks} telemetry blocks, {total_windows} "
            f"windows valid{suffix}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
