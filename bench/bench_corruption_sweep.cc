// Bit-corruption sweep: runs the experiment for every index structure at
// a range of i.i.d. bit-error rates (plus one burst-fading row) with the
// full degradation ladder armed (re-tune recovery + fallback linear
// scan) and reports how access latency, tuning time, and the fallback
// rate degrade as the medium gets worse. Also acts as a smoke check for
// the corruption layer: the BER-0 row must reproduce the fault-free run
// bit-for-bit with zero corrupted packets and zero fallbacks, and the
// binary exits nonzero when it does not.
//
// Extra flags (on top of the shared ones):
//   --bers=a,b,c   bit-error rates to sweep (default 0,1e-6,1e-5,1e-4,1e-3)
//   --capacity=N   packet capacity (default 256)

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  std::vector<double> bers{0.0, 1e-6, 1e-5, 1e-4, 1e-3};
  int capacity = 256;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bers=", 7) == 0) {
      bers.clear();
      for (const std::string& r : SplitCsv(argv[i] + 7)) {
        bers.push_back(std::atof(r.c_str()));
      }
    } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
      capacity = std::atoi(argv[i] + 11);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchFlags flags =
      ParseFlags(static_cast<int>(passthrough.size()), passthrough.data());
  if (flags.bench_json == "BENCH_experiment.json") {
    flags.bench_json = "BENCH_corruption.json";
  }
  flags.datasets = {flags.datasets.front()};

  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  const dtree::workload::Dataset& ds = datasets.value().front();

  std::printf("== Bit-corruption sweep ==\n");
  std::printf("dataset %s (N=%d), cap %d, %d queries/cell, fallback armed\n",
              ds.name.c_str(), ds.subdivision.NumRegions(), capacity,
              flags.queries);
  std::printf("%-14s", "ber");
  for (IndexKind k : kAllKinds) std::printf(" %34s", KindName(k));
  std::printf("\n%-14s", "");
  for (size_t i = 0; i < 4; ++i) {
    std::printf(" %10s %7s %7s %7s", "latency", "tuning", "corr", "fb%");
  }
  std::printf("\n");

  BenchRecorder recorder("bench_corruption_sweep", flags);
  bool ok = true;

  // One fault-free baseline per structure; the BER-0 row must match it.
  std::vector<dtree::bcast::ExperimentResult> baseline;
  std::vector<std::unique_ptr<dtree::bcast::AirIndex>> indexes;
  for (IndexKind k : kAllKinds) {
    auto index = BuildIndex(k, ds.subdivision, capacity);
    if (!index.ok()) {
      std::fprintf(stderr, "build %s: %s\n", KindName(k),
                   index.status().ToString().c_str());
      return 1;
    }
    dtree::bcast::ExperimentOptions opt;
    opt.packet_capacity = capacity;
    opt.num_queries = flags.queries;
    opt.seed = flags.seed;
    opt.num_threads = flags.threads;
    auto res =
        dtree::bcast::RunExperiment(*index.value(), ds.subdivision, nullptr,
                                    opt);
    if (!res.ok()) {
      std::fprintf(stderr, "baseline %s: %s\n", KindName(k),
                   res.status().ToString().c_str());
      return 1;
    }
    baseline.push_back(std::move(res).value());
    indexes.push_back(std::move(index).value());
  }

  auto run_row = [&](const char* row_label,
                     const dtree::bcast::CorruptionOptions& corruption,
                     bool check_against_baseline) {
    std::printf("%-14s", row_label);
    for (size_t ki = 0; ki < indexes.size(); ++ki) {
      const std::string cell = ds.name + "/" + KindName(kAllKinds[ki]) +
                               "/cap" + std::to_string(capacity) + "/" +
                               row_label;
      dtree::bcast::ExperimentOptions opt;
      opt.packet_capacity = capacity;
      opt.num_queries = flags.queries;
      opt.seed = flags.seed;
      opt.num_threads = flags.threads;
      opt.loss.corruption = corruption;
      opt.loss.max_retries = 8;
      opt.loss.fallback_scan_cycles = 2;
      AttachTrace(flags, cell, &opt);
      const auto t0 = std::chrono::steady_clock::now();
      auto res = dtree::bcast::RunExperiment(*indexes[ki], ds.subdivision,
                                             nullptr, opt);
      const double wall_s = SecondsSince(t0);
      if (!res.ok()) {
        std::printf(" %34s", "ERR");
        std::fprintf(stderr, "cell %s/%s failed: %s\n", row_label,
                     KindName(kAllKinds[ki]),
                     res.status().ToString().c_str());
        ok = false;
        continue;
      }
      const auto& r = res.value();
      recorder.Record(cell, wall_s,
                      flags.queries / std::max(wall_s, 1e-12), 0,
                      CellPercentiles::From(r));
      std::printf(" %10.2f %7.2f %7.3f %6.2f%%", r.mean_latency,
                  r.mean_tuning_total, r.mean_corrupted_packets,
                  100.0 * r.fallback_queries / flags.queries);
      if (check_against_baseline) {
        const auto& b = baseline[ki];
        if (r.mean_latency != b.mean_latency ||
            r.mean_tuning_index != b.mean_tuning_index ||
            r.mean_tuning_total != b.mean_tuning_total ||
            r.total_retries != 0 || r.total_corrupted_packets != 0 ||
            r.fallback_queries != 0 || r.unrecoverable_queries != 0) {
          std::fprintf(stderr,
                       "FAIL: %s at BER 0 does not reproduce the fault-free "
                       "run (latency %.17g vs %.17g, corrupted %lld, "
                       "fallbacks %lld)\n",
                       KindName(kAllKinds[ki]), r.mean_latency,
                       b.mean_latency,
                       static_cast<long long>(r.total_corrupted_packets),
                       static_cast<long long>(r.fallback_queries));
          ok = false;
        }
      }
    }
    std::printf("\n");
  };

  for (double ber : bers) {
    dtree::bcast::CorruptionOptions corruption;
    corruption.model = dtree::bcast::CorruptionModel::kIidBits;
    corruption.bit_error_rate = ber;
    corruption.seed = flags.seed + 2;
    char label[32];
    std::snprintf(label, sizeof(label), "ber%g", ber);
    run_row(label, corruption, ber == 0.0);
  }
  {
    // Burst row: bad-state BER matching the 1e-4 i.i.d. row's frame hit
    // rate but concentrated in fades (stationary P(bad) = 1/11).
    dtree::bcast::CorruptionOptions corruption;
    corruption.model = dtree::bcast::CorruptionModel::kBurstBits;
    corruption.p_good_to_bad = 0.05;
    corruption.p_bad_to_good = 0.5;
    corruption.ber_good = 0.0;
    corruption.ber_bad = 1.1e-3;
    corruption.seed = flags.seed + 2;
    run_row("burst", corruption, false);
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: corruption-sweep invariants violated\n");
    return 1;
  }
  return 0;
}
