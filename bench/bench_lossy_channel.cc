// Lossy-channel sweep: runs the experiment for every index structure at a
// range of i.i.d. packet-loss rates (plus one Gilbert–Elliott burst-loss
// row) and reports how access latency, tuning time, and retry counts
// degrade as the medium gets worse. Also acts as a smoke check for the
// fault-injection layer: the loss-rate-0 row must reproduce the lossless
// run bit-for-bit with zero retries and zero unrecoverable queries, and
// the binary exits nonzero when it does not.
//
// Extra flags (on top of the shared ones):
//   --loss-rates=a,b,c   i.i.d. loss rates to sweep (default 0,0.05,0.1,0.2)
//   --capacity=N         packet capacity (default 256)

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  std::vector<double> loss_rates{0.0, 0.05, 0.1, 0.2};
  int capacity = 256;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--loss-rates=", 13) == 0) {
      loss_rates.clear();
      for (const std::string& r : SplitCsv(argv[i] + 13)) {
        loss_rates.push_back(std::atof(r.c_str()));
      }
    } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
      capacity = std::atoi(argv[i] + 11);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchFlags flags =
      ParseFlags(static_cast<int>(passthrough.size()), passthrough.data());
  if (flags.bench_json == "BENCH_experiment.json") {
    flags.bench_json = "BENCH_lossy.json";
  }
  flags.datasets = {flags.datasets.front()};

  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  const dtree::workload::Dataset& ds = datasets.value().front();

  std::printf("== Lossy-channel sweep ==\n");
  std::printf("dataset %s (N=%d), cap %d, %d queries/cell\n", ds.name.c_str(),
              ds.subdivision.NumRegions(), capacity, flags.queries);
  std::printf("%-14s", "loss");
  for (IndexKind k : kAllKinds) std::printf(" %26s", KindName(k));
  std::printf("\n%-14s", "");
  for (size_t i = 0; i < 4; ++i) {
    std::printf(" %10s %8s %6s", "latency", "retries", "unrec");
  }
  std::printf("\n");

  BenchRecorder recorder("bench_lossy_channel", flags);
  bool ok = true;

  // One lossless baseline per structure; the loss-0 row must match it.
  std::vector<dtree::bcast::ExperimentResult> baseline;
  std::vector<std::unique_ptr<dtree::bcast::AirIndex>> indexes;
  for (IndexKind k : kAllKinds) {
    auto index = BuildIndex(k, ds.subdivision, capacity);
    if (!index.ok()) {
      std::fprintf(stderr, "build %s: %s\n", KindName(k),
                   index.status().ToString().c_str());
      return 1;
    }
    dtree::bcast::ExperimentOptions opt;
    opt.packet_capacity = capacity;
    opt.num_queries = flags.queries;
    opt.seed = flags.seed;
    opt.num_threads = flags.threads;
    auto res =
        dtree::bcast::RunExperiment(*index.value(), ds.subdivision, nullptr,
                                    opt);
    if (!res.ok()) {
      std::fprintf(stderr, "baseline %s: %s\n", KindName(k),
                   res.status().ToString().c_str());
      return 1;
    }
    baseline.push_back(std::move(res).value());
    indexes.push_back(std::move(index).value());
  }

  auto run_row = [&](const char* row_label,
                     const dtree::bcast::LossOptions& loss,
                     bool check_against_baseline) {
    std::printf("%-14s", row_label);
    for (size_t ki = 0; ki < indexes.size(); ++ki) {
      const std::string cell = ds.name + "/" + KindName(kAllKinds[ki]) +
                               "/cap" + std::to_string(capacity) + "/" +
                               row_label;
      dtree::bcast::ExperimentOptions opt;
      opt.packet_capacity = capacity;
      opt.num_queries = flags.queries;
      opt.seed = flags.seed;
      opt.num_threads = flags.threads;
      opt.loss = loss;
      AttachTrace(flags, cell, &opt);
      const auto t0 = std::chrono::steady_clock::now();
      auto res = dtree::bcast::RunExperiment(*indexes[ki], ds.subdivision,
                                             nullptr, opt);
      const double wall_s = SecondsSince(t0);
      if (!res.ok()) {
        std::printf(" %26s", "ERR");
        std::fprintf(stderr, "cell %s/%s failed: %s\n", row_label,
                     KindName(kAllKinds[ki]),
                     res.status().ToString().c_str());
        ok = false;
        continue;
      }
      const auto& r = res.value();
      recorder.Record(cell, wall_s,
                      flags.queries / std::max(wall_s, 1e-12), 0,
                      CellPercentiles::From(r));
      std::printf(" %10.2f %8.3f %6lld", r.mean_latency, r.mean_retries,
                  static_cast<long long>(r.unrecoverable_queries));
      if (check_against_baseline) {
        const auto& b = baseline[ki];
        if (r.mean_latency != b.mean_latency ||
            r.mean_tuning_index != b.mean_tuning_index ||
            r.mean_tuning_total != b.mean_tuning_total ||
            r.total_retries != 0 || r.unrecoverable_queries != 0) {
          std::fprintf(stderr,
                       "FAIL: %s at loss 0 does not reproduce the lossless "
                       "run (latency %.17g vs %.17g, retries %lld, "
                       "unrecoverable %lld)\n",
                       KindName(kAllKinds[ki]), r.mean_latency,
                       b.mean_latency,
                       static_cast<long long>(r.total_retries),
                       static_cast<long long>(r.unrecoverable_queries));
          ok = false;
        }
      }
    }
    std::printf("\n");
  };

  for (double rate : loss_rates) {
    dtree::bcast::LossOptions loss;
    loss.model = dtree::bcast::LossModel::kIid;
    loss.loss_rate = rate;
    loss.seed = flags.seed + 1;
    char label[32];
    std::snprintf(label, sizeof(label), "loss%g", rate);
    run_row(label, loss, rate == 0.0);
  }
  {
    // Burst-loss row: same mean loss as the 0.05 i.i.d. row
    // (stationary P(bad) = 1/11, loss_bad = 0.55) but correlated in time.
    dtree::bcast::LossOptions loss;
    loss.model = dtree::bcast::LossModel::kGilbertElliott;
    loss.p_good_to_bad = 0.05;
    loss.p_bad_to_good = 0.5;
    loss.loss_good = 0.0;
    loss.loss_bad = 0.55;
    loss.seed = flags.seed + 1;
    run_row("burst", loss, false);
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: lossy-channel invariants violated\n");
    return 1;
  }
  return 0;
}
