// Figure 11 reproduction: index sizes normalized to the database size
// (N x 1 KB), as a function of packet capacity, for the PARK dataset
// (plus any other dataset requested via --datasets=).
//
// Paper shape to verify: trap-tree >> trian-tree >> D-tree ~ R*-tree; the
// relative order matches the access-latency order of Figure 10.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  bool datasets_overridden = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--datasets=", 11) == 0) {
      datasets_overridden = true;
    }
  }
  if (!datasets_overridden) flags.datasets = {"PARK"};
  // Index size does not depend on the query load.
  flags.queries = 1;
  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  std::printf("== Figure 11: index size normalized to database size ==\n");
  // No query load here, so the recorded cells time index construction
  // (qps field holds regions indexed per second).
  BenchRecorder recorder("bench_fig11_index_size", flags);
  for (const auto& ds : datasets.value()) {
    std::printf("\nFig.11 normalized index size — dataset %s (N=%d)\n",
                ds.name.c_str(), ds.subdivision.NumRegions());
    std::printf("%-10s", "packet");
    for (IndexKind k : kAllKinds) std::printf(" %12s", KindName(k));
    std::printf(" %14s\n", "(d-tree pkts)");
    for (int capacity : flags.capacities) {
      std::printf("%-10d", capacity);
      int dtree_packets = 0;
      for (IndexKind k : kAllKinds) {
        const auto t0 = std::chrono::steady_clock::now();
        auto index = BuildIndex(k, ds.subdivision, capacity);
        const double wall_s = SecondsSince(t0);
        recorder.Record("build:" + ds.name + "/" + KindName(k) + "/cap" +
                            std::to_string(capacity),
                        wall_s,
                        ds.subdivision.NumRegions() / std::max(wall_s, 1e-12));
        if (!index.ok()) {
          std::printf(" %12s", "ERR");
          continue;
        }
        const double db_bytes =
            static_cast<double>(ds.subdivision.NumRegions()) *
            dtree::bcast::kDataInstanceSize;
        const double packets_bytes =
            static_cast<double>(index.value()->NumIndexPackets()) * capacity;
        std::printf(" %12.3f", packets_bytes / db_bytes);
        if (k == IndexKind::kDTree) {
          dtree_packets = index.value()->NumIndexPackets();
        }
      }
      std::printf(" %14d\n", dtree_packets);
    }
  }
  return 0;
}
