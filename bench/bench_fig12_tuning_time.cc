// Figure 12 reproduction: tuning time (packet accesses during the index
// search step) vs packet capacity, for all datasets and indexes.
//
// Paper shape to verify: R*-tree worst everywhere (MBR overlap); D-tree
// beats trian/trap for packets > 256 B, slightly behind the trap-tree
// below 256 B; at large packets D-tree ~ half the trap-tree.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  const BenchFlags flags = ParseFlags(argc, argv);
  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  std::printf("== Figure 12: tuning time of the index search step "
              "(packets) ==\n");
  std::printf("queries per cell: %d, seed %llu\n", flags.queries,
              static_cast<unsigned long long>(flags.seed));
  BenchRecorder recorder("bench_fig12_tuning_time", flags);
  for (const auto& ds : datasets.value()) {
    PrintFigureTable("Fig.12 tuning time (packets)", ds, flags, &recorder,
                     [](const dtree::bcast::ExperimentResult& r) {
                       return r.mean_tuning_index;
                     });
  }
  return 0;
}
