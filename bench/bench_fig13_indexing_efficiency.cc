// Figure 13 reproduction: indexing efficiency — tuning time saved against
// the non-indexing scheme divided by the access-latency overhead the
// index adds — vs packet capacity.
//
// Paper shape to verify: D-tree best in all cases; trap-tree worst
// (enormous index); trian-tree between trap-tree and R*-tree.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  const BenchFlags flags = ParseFlags(argc, argv);
  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  std::printf("== Figure 13: indexing efficiency = (tuning saved) / "
              "(latency overhead) ==\n");
  std::printf("queries per cell: %d, seed %llu\n", flags.queries,
              static_cast<unsigned long long>(flags.seed));
  BenchRecorder recorder("bench_fig13_indexing_efficiency", flags);
  for (const auto& ds : datasets.value()) {
    PrintFigureTable("Fig.13 indexing efficiency", ds, flags, &recorder,
                     [](const dtree::bcast::ExperimentResult& r) {
                       return r.indexing_efficiency;
                     });
  }
  return 0;
}
