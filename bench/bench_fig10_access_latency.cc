// Figure 10 reproduction: expected access latency, normalized to the
// optimal (no-index) latency, as a function of packet capacity, for the
// UNIFORM / HOSPITAL / PARK datasets and all four index structures.
//
// Paper shape to verify: trian/trap-tree several times optimal; D-tree
// ~1.5x optimal and flat; D-tree <= R*-tree everywhere, clearly better at
// small packets.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  const BenchFlags flags = ParseFlags(argc, argv);
  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  std::printf("== Figure 10: expected access latency (normalized to "
              "optimal = half a pure-data cycle) ==\n");
  std::printf("queries per cell: %d, seed %llu\n", flags.queries,
              static_cast<unsigned long long>(flags.seed));
  BenchRecorder recorder("bench_fig10_access_latency", flags);
  for (const auto& ds : datasets.value()) {
    PrintFigureTable("Fig.10 normalized access latency", ds, flags,
                     &recorder,
                     [](const dtree::bcast::ExperimentResult& r) {
                       return r.normalized_latency;
                     });
  }
  return 0;
}
