// Skewed-access extension bench: under a Zipf query load, compare the
// paper's count-balanced D-tree against the weight-balanced variant
// (Options::access_weights), which splits partitions at equal access
// mass. Inspired by the paper's reference [6] (imbalanced indexing for
// skewed broadcast access).
//
// Expected: weighting leaves uniform loads unchanged and cuts mean tuning
// under skew, more at higher theta, at essentially the same index size.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  const BenchFlags flags = ParseFlags(argc, argv);
  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  std::printf("== Skewed access: count-balanced vs weight-balanced D-tree "
              "==\nqueries per cell: %d, seed %llu\n",
              flags.queries, static_cast<unsigned long long>(flags.seed));
  BenchRecorder recorder("bench_skewed_access", flags);
  const double thetas[] = {0.0, 0.5, 0.8, 1.1};
  for (const auto& ds : datasets.value()) {
    std::printf("\ndataset %s (N=%d)\n", ds.name.c_str(),
                ds.subdivision.NumRegions());
    for (int capacity : flags.capacities) {
      std::printf("  packet %d\n", capacity);
      std::printf("    %-8s %18s %18s %10s\n", "theta", "tuning(balanced)",
                  "tuning(weighted)", "saving");
      for (double theta : thetas) {
        dtree::Rng wrng(flags.seed + 1);
        const std::vector<double> weights = dtree::workload::ZipfWeights(
            ds.subdivision.NumRegions(), theta, &wrng);

        dtree::core::DTree::Options balanced;
        balanced.packet_capacity = capacity;
        dtree::core::DTree::Options weighted = balanced;
        weighted.access_weights = weights;

        dtree::bcast::ExperimentOptions opt;
        opt.packet_capacity = capacity;
        opt.num_queries = flags.queries;
        opt.seed = flags.seed;
        opt.distribution = dtree::bcast::QueryDistribution::kWeightedRegion;
        opt.region_weights = weights;
        opt.num_threads = flags.threads;

        double tuning[2] = {0.0, 0.0};
        bool ok = true;
        const dtree::core::DTree::Options* variants[2] = {&balanced,
                                                          &weighted};
        const char* variant_name[2] = {"balanced", "weighted"};
        for (int v = 0; v < 2 && ok; ++v) {
          auto tree = dtree::core::DTree::Build(ds.subdivision, *variants[v]);
          if (!tree.ok()) {
            std::printf("    build error: %s\n",
                        tree.status().ToString().c_str());
            ok = false;
            break;
          }
          char theta_cs[16];
          std::snprintf(theta_cs, sizeof(theta_cs), "%.2f", theta);
          const std::string cell = ds.name + "/" + variant_name[v] + "/cap" +
                                   std::to_string(capacity) + "/theta" +
                                   theta_cs;
          AttachTrace(flags, cell, &opt);
          const auto t0 = std::chrono::steady_clock::now();
          auto res = dtree::bcast::RunExperiment(tree.value(),
                                                 ds.subdivision, nullptr,
                                                 opt);
          const double wall_s = SecondsSince(t0);
          if (!res.ok()) {
            std::printf("    run error: %s\n",
                        res.status().ToString().c_str());
            ok = false;
            break;
          }
          recorder.Record(cell, wall_s,
                          flags.queries / std::max(wall_s, 1e-12), 0,
                          CellPercentiles::From(res.value()));
          tuning[v] = res.value().mean_tuning_index;
        }
        if (!ok) continue;
        std::printf("    %-8.2f %18.3f %18.3f %9.1f%%\n", theta, tuning[0],
                    tuning[1], 100.0 * (tuning[0] - tuning[1]) /
                                   std::max(tuning[0], 1e-9));
      }
    }
  }
  return 0;
}
