// (1, m) interleaving sweep: measures D-tree access latency as a function
// of the index-repetition factor m and marks the analytic optimum
// m* = sqrt(data_packets / index_packets) from Imielinski et al., "Data on
// air". Validates that the channel simulator reproduces the classic
// latency/m trade-off (more repetitions = shorter probe wait, longer
// cycle).

#include <cmath>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  std::printf("== (1, m) sweep: D-tree normalized latency vs m ==\n");
  BenchRecorder recorder("bench_msweep", flags);
  for (const auto& ds : datasets.value()) {
    for (int capacity : flags.capacities) {
      dtree::core::DTree::Options o;
      o.packet_capacity = capacity;
      auto tree = dtree::core::DTree::Build(ds.subdivision, o);
      if (!tree.ok()) continue;
      const double ratio =
          static_cast<double>(ds.subdivision.NumRegions()) *
          std::ceil(1024.0 / capacity) / tree.value().NumIndexPackets();
      const int m_star = std::max(1, (int)std::lround(std::sqrt(ratio)));
      std::printf("\n%s, packet %d (index %d packets, m* = %d):\n",
                  ds.name.c_str(), capacity, tree.value().NumIndexPackets(),
                  m_star);
      std::printf("  %-6s %-10s %-10s %-9s %-9s\n", "m", "latency",
                  "tuning", "wall(s)", "kqps");
      for (int m : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
        if (m > ds.subdivision.NumRegions()) break;
        dtree::bcast::ExperimentOptions opt;
        const std::string cell = ds.name + "/d-tree/cap" +
                                 std::to_string(capacity) + "/m" +
                                 std::to_string(m);
        opt.packet_capacity = capacity;
        opt.num_queries = flags.queries;
        opt.seed = flags.seed;
        opt.m = m;
        opt.num_threads = flags.threads;
        AttachTrace(flags, cell, &opt);
        const auto t0 = std::chrono::steady_clock::now();
        auto res = dtree::bcast::RunExperiment(tree.value(), ds.subdivision,
                                               nullptr, opt);
        const double wall_s = SecondsSince(t0);
        if (!res.ok()) continue;
        const double qps = flags.queries / std::max(wall_s, 1e-12);
        recorder.Record(cell, wall_s, qps, 0,
                        CellPercentiles::From(res.value()));
        std::printf("  %-6d %-10.3f %-10.3f %-9.3f %-9.1f%s\n", m,
                    res.value().normalized_latency,
                    res.value().mean_tuning_index, wall_s, qps / 1000.0,
                    m == m_star ? "   <- m*" : "");
      }
    }
  }
  return 0;
}
