// E18: semantic region cache for mobile clients (bench_cache).
//
// Sweeps mobility model x hop scale x cache size x loss rate x epoch
// update rate over the fleet engine and measures what the cache buys:
// hit rate and mean tuning saved against an identical cache-off twin
// (the mobility walk's RNG streams are independent of the cache, so both
// runs see exactly the same query points).
//
// Every cache-on run has CacheOptions::verify_hits set: each hit is
// replayed against a forced cold probe inside the engine, and any
// divergence fails the run — and this bench — with a nonzero exit.
// Two more invariants are enforced (nonzero exit on violation):
//
//   1. Determinism: FleetResult — cache counters included — is
//      bit-identical at 1, 4 and 8 worker threads.
//   2. Efficacy: under the smallest Gaussian hop scale the hit rate
//      exceeds 50% and the cache saves tuning vs the cache-off twin.
//
// Extra flags (on top of the shared ones):
//   --clients=N      concurrent clients (default 20000)
//   --cycles=C       simulated horizon in broadcast cycles (default 4)
//   --rate=R         per-client queries per cycle (default 2)
//   --churn=P        per-query departure probability (default 0.02)
//   --hop-scales=... Gaussian hop sigmas / waypoint steps (default 4,16,64)
//   --cache-kb=...   per-client cache budgets in KB (default 16)
//   --loss-rates=... i.i.d. packet loss rates (default 0,0.1)
//   --epoch-counts=... broadcast epochs inside the horizon (default 1,4):
//                    K > 1 splits the horizon into K stretches with
//                    distinct epoch ids over the SAME index, so every
//                    observed switch flushes caches without changing any
//                    answer (verify_hits stays a strict differential)
//   --capacity=N     packet capacity (default 256)
// The shared --threads flag is ignored: the thread sweep is fixed 1/4/8.
//
// With --telemetry-out / --flight-out / --prom-out set, a FleetTelemetry
// sink rides along on the thread sweep and its exports (which include the
// cache_hits/misses/evictions/invalidations series) must be byte-identical
// across thread counts. With --trace-out set, traces of the sweep cell are
// written for tools/trace_summary.py --check (cache-hit lines must carry
// zero tuning and no awake reads).

#include "bench_util.h"

#include <algorithm>
#include <cinttypes>

#include "broadcast/fleet.h"
#include "broadcast/telemetry.h"
#include "workload/mobility.h"

namespace {

using dtree::bcast::FleetResult;

bool SameFleetResult(const FleetResult& a, const FleetResult& b) {
  return a.queries == b.queries && a.sessions == b.sessions &&
         a.departures == b.departures &&
         a.mean_latency == b.mean_latency &&
         a.mean_tuning_index == b.mean_tuning_index &&
         a.mean_tuning_total == b.mean_tuning_total &&
         a.mean_retries == b.mean_retries &&
         a.total_retries == b.total_retries &&
         a.unrecoverable_queries == b.unrecoverable_queries &&
         a.fallback_queries == b.fallback_queries &&
         a.cache_hits == b.cache_hits &&
         a.cache_misses == b.cache_misses &&
         a.cache_evictions == b.cache_evictions &&
         a.cache_invalidations == b.cache_invalidations &&
         a.min_latency == b.min_latency && a.max_latency == b.max_latency &&
         a.min_tuning_total == b.min_tuning_total &&
         a.max_tuning_total == b.max_tuning_total;
}

std::vector<double> ParseDoubles(const char* s) {
  std::vector<double> out;
  while (*s != '\0') {
    char* end = nullptr;
    out.push_back(std::strtod(s, &end));
    if (end == s) break;
    s = (*end == ',') ? end + 1 : end;
  }
  return out;
}

std::vector<int> ParseInts(const char* s) {
  std::vector<int> out;
  for (double v : ParseDoubles(s)) out.push_back(static_cast<int>(v));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtree::bench;
  namespace bcast = dtree::bcast;
  namespace workload = dtree::workload;
  int64_t clients = 20000;
  double cycles = 4.0;
  double rate = 2.0;
  double churn = 0.02;
  int capacity = 256;
  std::vector<double> hop_scales{4.0, 16.0, 64.0};
  std::vector<int> cache_kb{16};
  std::vector<double> loss_rates{0.0, 0.1};
  std::vector<int> epoch_counts{1, 4};
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::strtoll(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--cycles=", 9) == 0) {
      cycles = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--rate=", 7) == 0) {
      rate = std::atof(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--churn=", 8) == 0) {
      churn = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--hop-scales=", 13) == 0) {
      hop_scales = ParseDoubles(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--cache-kb=", 11) == 0) {
      cache_kb = ParseInts(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--loss-rates=", 13) == 0) {
      loss_rates = ParseDoubles(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--epoch-counts=", 15) == 0) {
      epoch_counts = ParseInts(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
      capacity = std::atoi(argv[i] + 11);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchFlags flags =
      ParseFlags(static_cast<int>(passthrough.size()), passthrough.data());
  if (flags.bench_json == "BENCH_experiment.json") {
    flags.bench_json = "BENCH_cache.json";
  }

  auto ds = dtree::workload::MakeUniformDataset();
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index = BuildIndex(IndexKind::kDTree, ds.value().subdivision,
                          capacity);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }

  bcast::FleetOptions base;
  base.packet_capacity = capacity;
  base.num_clients = clients;
  base.sim_cycles = cycles;
  base.queries_per_cycle = rate;
  base.churn = churn;
  base.seed = flags.seed;

  // A cell's epoch timeline: K stretches of the SAME index/subdivision
  // under distinct epoch ids, evenly splitting the horizon (the last
  // epoch broadcasts forever).
  const auto make_epochs = [&](int k) {
    std::vector<bcast::FleetEpoch> epochs;
    const int64_t span_cycles =
        std::max<int64_t>(1, static_cast<int64_t>(cycles) /
                                 std::max(k, 1));
    for (int e = 0; e < k; ++e) {
      epochs.push_back({index.value().get(), &ds.value().subdivision,
                        static_cast<uint16_t>(e), span_cycles});
    }
    return epochs;
  };

  bool ok = true;
  BenchRecorder recorder("bench_cache", flags);

  std::printf("== Region-cache bench (E18) ==\n");
  std::printf(
      "dataset %s, cap %d, %lld clients, %.3g cycles, rate %.3g/cycle, "
      "churn %.3g\n",
      ds.value().name.c_str(), capacity, static_cast<long long>(clients),
      cycles, rate, churn);
  std::printf("%-34s %9s %9s %9s %9s %10s %9s\n", "cell", "queries",
              "hit_rate", "tun_off", "tun_on", "saved", "wall_s");

  double smallest_gauss_hit_rate = -1.0;
  double smallest_gauss_saved = 0.0;
  const double smallest_hop =
      *std::min_element(hop_scales.begin(), hop_scales.end());

  for (const auto model : {workload::MobilityModel::kGaussianHop,
                           workload::MobilityModel::kRandomWaypoint}) {
    for (double hop : hop_scales) {
      for (int kb : cache_kb) {
        for (double loss : loss_rates) {
          for (int k : epoch_counts) {
            bcast::FleetOptions on = base;
            on.mobility.enabled = true;
            on.mobility.model = model;
            on.mobility.hop_scale = hop;
            on.mobility.waypoint_step = hop;
            on.cache.enabled = true;
            on.cache.verify_hits = true;
            on.cache.byte_budget = static_cast<size_t>(kb) * 1024;
            if (loss > 0.0) {
              on.loss.model = bcast::LossModel::kIid;
              on.loss.loss_rate = loss;
              on.loss.seed = flags.seed + 1;
            }
            bcast::FleetOptions off = on;
            off.cache = bcast::CacheOptions{};  // disabled twin

            const auto epochs = make_epochs(k);
            const auto t0 = std::chrono::steady_clock::now();
            auto r_on = bcast::RunFleetVersioned(epochs, on);
            auto r_off = bcast::RunFleetVersioned(epochs, off);
            const double wall_s = SecondsSince(t0);
            if (!r_on.ok() || !r_off.ok()) {
              std::fprintf(stderr, "FAIL: cell run failed: %s\n",
                           (!r_on.ok() ? r_on.status() : r_off.status())
                               .ToString()
                               .c_str());
              return 1;
            }
            const FleetResult& von = r_on.value();
            const FleetResult& voff = r_off.value();
            // Note the twins need not complete the same query count: a
            // hit finishes at its arrival, unclamping the client's next
            // arrival, so warm clients fit MORE queries into the same
            // horizon. The comparison below is per-query means.
            const double hit_rate =
                von.queries > 0
                    ? static_cast<double>(von.cache_hits) /
                          static_cast<double>(von.queries)
                    : 0.0;
            const double saved =
                voff.mean_tuning_total - von.mean_tuning_total;
            char cell[128];
            std::snprintf(cell, sizeof(cell),
                          "%s/h%g/kb%d/l%g/e%d",
                          workload::MobilityModelName(model), hop, kb,
                          loss, k);
            char extra[256];
            std::snprintf(
                extra, sizeof(extra),
                ", \"hit_rate\": %.4f, \"cache_hits\": %lld, "
                "\"cache_misses\": %lld, \"cache_evictions\": %lld, "
                "\"cache_invalidations\": %lld, "
                "\"tuning_off\": %.3f, \"tuning_saved\": %.3f",
                hit_rate, static_cast<long long>(von.cache_hits),
                static_cast<long long>(von.cache_misses),
                static_cast<long long>(von.cache_evictions),
                static_cast<long long>(von.cache_invalidations),
                voff.mean_tuning_total, saved);
            recorder.Record(cell, wall_s,
                            static_cast<double>(von.queries) /
                                std::max(wall_s, 1e-12),
                            flags.threads, CellPercentiles::From(von),
                            extra);
            std::printf("%-34s %9lld %9.3f %9.3f %9.3f %10.3f %9.2f\n",
                        cell, static_cast<long long>(von.queries),
                        hit_rate, voff.mean_tuning_total,
                        von.mean_tuning_total, saved, wall_s);
            if (model == workload::MobilityModel::kGaussianHop &&
                hop == smallest_hop && loss == 0.0 && k == 1 &&
                hit_rate > smallest_gauss_hit_rate) {
              smallest_gauss_hit_rate = hit_rate;
              smallest_gauss_saved = saved;
            }
          }
        }
      }
    }
  }

  // --- Efficacy gate: spatial locality must pay. The smallest Gaussian
  // hop is the paper's "slow pedestrian" — if the cache cannot clear 50%
  // hits there, it is broken (or the sweep was asked for hop scales that
  // make no sense).
  if (smallest_gauss_hit_rate >= 0.0) {
    if (smallest_gauss_hit_rate <= 0.5 || smallest_gauss_saved <= 0.0) {
      std::fprintf(stderr,
                   "FAIL: smallest Gaussian hop (%.3g) hit rate %.3f "
                   "(need > 0.5) saved %.3f (need > 0)\n",
                   smallest_hop, smallest_gauss_hit_rate,
                   smallest_gauss_saved);
      ok = false;
    } else {
      std::printf("efficacy: hop %.3g hit rate %.3f, tuning saved %.3f ✓\n",
                  smallest_hop, smallest_gauss_hit_rate,
                  smallest_gauss_saved);
    }
  }

  // --- Thread sweep on one representative cell (smallest hop, largest
  // cache, lossy, multi-epoch when asked): FleetResult including every
  // cache counter must be bit-identical at 1/4/8 threads, and so must
  // the telemetry exports when attached.
  {
    bcast::FleetOptions run = base;
    run.mobility.enabled = true;
    run.mobility.model = workload::MobilityModel::kGaussianHop;
    run.mobility.hop_scale = smallest_hop;
    run.mobility.waypoint_step = smallest_hop;
    run.cache.enabled = true;
    run.cache.verify_hits = true;
    run.cache.byte_budget =
        static_cast<size_t>(
            *std::max_element(cache_kb.begin(), cache_kb.end())) *
        1024;
    const double sweep_loss = loss_rates.back();
    if (sweep_loss > 0.0) {
      run.loss.model = bcast::LossModel::kIid;
      run.loss.loss_rate = sweep_loss;
      run.loss.seed = flags.seed + 1;
    }
    const auto epochs = make_epochs(epoch_counts.back());

    const bool telemetry_on = !flags.telemetry_out.empty() ||
                              !flags.flight_out.empty() ||
                              !flags.prom_out.empty();
    bcast::FleetTelemetry telemetry;
    const std::string tlabel = ds.value().name + "/cache/c" +
                               std::to_string(clients);
    std::string ref_timeline, ref_flight, ref_prom;
    bool have_telemetry_reference = false;
    FleetResult reference;
    bool have_reference = false;
    for (int threads : {1, 4, 8}) {
      bcast::FleetOptions sweep = run;
      sweep.num_threads = threads;
      const std::string cell = tlabel + "/t" + std::to_string(threads);
      bcast::JsonlTraceSink* trace = GlobalTraceSink(flags);
      if (trace != nullptr) {
        trace->set_label(cell);
        sweep.trace_sink = trace;
      }
      if (telemetry_on) sweep.telemetry = &telemetry;
      const auto t0 = std::chrono::steady_clock::now();
      auto res = bcast::RunFleetVersioned(epochs, sweep);
      const double wall_s = SecondsSince(t0);
      if (!res.ok()) {
        std::fprintf(stderr, "FAIL: thread-sweep run failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
      const FleetResult& r = res.value();
      char extra[192];
      std::snprintf(
          extra, sizeof(extra),
          ", \"hit_rate\": %.4f, \"cache_hits\": %lld, "
          "\"cache_misses\": %lld, \"cache_evictions\": %lld, "
          "\"cache_invalidations\": %lld",
          r.queries > 0 ? static_cast<double>(r.cache_hits) /
                              static_cast<double>(r.queries)
                        : 0.0,
          static_cast<long long>(r.cache_hits),
          static_cast<long long>(r.cache_misses),
          static_cast<long long>(r.cache_evictions),
          static_cast<long long>(r.cache_invalidations));
      recorder.Record(tlabel + "/t" + std::to_string(threads), wall_s,
                      static_cast<double>(r.queries) /
                          std::max(wall_s, 1e-12),
                      threads, CellPercentiles::From(r), extra);
      if (!have_reference) {
        reference = r;
        have_reference = true;
      } else if (!SameFleetResult(reference, r)) {
        std::fprintf(stderr,
                     "FAIL: FleetResult at %d threads diverges from the "
                     "1-thread run (hits %lld vs %lld)\n",
                     threads, static_cast<long long>(r.cache_hits),
                     static_cast<long long>(reference.cache_hits));
        ok = false;
      }
      if (telemetry_on) {
        const bcast::TelemetryTotals totals = bcast::TotalsFromFleet(r);
        const std::string timeline =
            telemetry.TimelineJsonl(tlabel, &totals);
        const std::string& flight = telemetry.flight_records();
        const std::string prom = telemetry.PrometheusText();
        if (!have_telemetry_reference) {
          ref_timeline = timeline;
          ref_flight = flight;
          ref_prom = prom;
          have_telemetry_reference = true;
        } else if (timeline != ref_timeline || flight != ref_flight ||
                   prom != ref_prom) {
          std::fprintf(stderr,
                       "FAIL: telemetry output at %d threads diverges\n",
                       threads);
          ok = false;
        }
      }
    }
    if (have_reference) {
      std::printf("thread sweep: %lld queries, %lld hits, "
                  "%lld invalidations — bit-identical at 1/4/8 ✓\n",
                  static_cast<long long>(reference.queries),
                  static_cast<long long>(reference.cache_hits),
                  static_cast<long long>(reference.cache_invalidations));
    }
    if (have_telemetry_reference && ok) {
      if (!flags.telemetry_out.empty() &&
          !WriteTextFile(flags.telemetry_out, ref_timeline)) {
        ok = false;
      }
      if (!flags.flight_out.empty() &&
          !WriteTextFile(flags.flight_out, ref_flight)) {
        ok = false;
      }
      if (!flags.prom_out.empty() &&
          !WriteTextFile(flags.prom_out, ref_prom)) {
        ok = false;
      }
    }
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: region-cache invariants violated\n");
    return 1;
  }
  return 0;
}
