// Build-pipeline scaling bench: times every phase of turning N sites into
// broadcast-ready packets — site generation, grid-pruned parallel Voronoi,
// subdivision stitching, triangulation, D-tree partitioning, packet paging,
// and serialization — on SCALE datasets far beyond the paper's N=1102.
//
// Before any timing, the bench self-checks correctness: the N=1102 PARK
// subdivision built through the grid-pruned parallel path (at 1, 4, and 8
// threads) must be bit-identical to the pre-grid serial reference
// (VoronoiCellsReference). Any divergence exits nonzero, which is what CI
// keys off.
//
// Flags:
//   --n=10000,50000,...        SCALE sizes to sweep (default 10k,50k,100k)
//   --dist=uniform|clustered|both   site distribution (default uniform)
//   --threads=T                Voronoi threads (0 = hardware concurrency)
//   --seed=S                   site RNG seed (default 7, the dataset seed)
//   --bench-json=PATH          timings JSON (default BENCH_build.json)
//   --serial-baseline-max=N    also time the pre-grid O(n^2) reference
//                              Voronoi for sweep sizes <= N and report the
//                              end-to-end speedup (0 = off; the reference
//                              is quadratic, keep this modest)
//   --skip-digest-check        skip the PARK bit-identity gate

#include <cstring>

#include "bench_util.h"

#include "common/metrics.h"
#include "dtree/serialize.h"
#include "subdivision/triangulate.h"
#include "subdivision/voronoi.h"

namespace {

using dtree::bench::SecondsSince;
using dtree::geom::BBox;
using dtree::geom::Point;
using dtree::geom::Polygon;

struct BuildFlags {
  std::vector<int> ns{10000, 50000, 100000};
  std::vector<dtree::workload::ScaleDistribution> dists{
      dtree::workload::ScaleDistribution::kUniform};
  int threads = 0;
  uint64_t seed = 7;
  std::string bench_json = "BENCH_build.json";
  int serial_baseline_max = 0;
  bool digest_check = true;
};

BuildFlags Parse(int argc, char** argv) {
  using dtree::workload::ScaleDistribution;
  BuildFlags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--n=", 4) == 0) {
      f.ns.clear();
      for (const std::string& s : dtree::bench::SplitCsv(arg + 4)) {
        f.ns.push_back(std::atoi(s.c_str()));
      }
    } else if (std::strncmp(arg, "--dist=", 7) == 0) {
      const std::string d = arg + 7;
      f.dists.clear();
      if (d == "uniform" || d == "both") {
        f.dists.push_back(ScaleDistribution::kUniform);
      }
      if (d == "clustered" || d == "both") {
        f.dists.push_back(ScaleDistribution::kClustered);
      }
      if (f.dists.empty()) {
        std::fprintf(stderr, "bad --dist=%s\n", d.c_str());
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      f.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      f.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--bench-json=", 13) == 0) {
      f.bench_json = arg + 13;
    } else if (std::strncmp(arg, "--serial-baseline-max=", 22) == 0) {
      f.serial_baseline_max = std::atoi(arg + 22);
    } else if (std::strcmp(arg, "--skip-digest-check") == 0) {
      f.digest_check = false;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --n= --dist= --threads= "
                   "--seed= --bench-json= --serial-baseline-max= "
                   "--skip-digest-check)\n",
                   arg);
      std::exit(2);
    }
  }
  return f;
}

/// FNV-1a over the subdivision's vertex coordinates and ring indices —
/// a bitwise digest of the stitched geometry.
uint64_t SubdivisionDigest(const dtree::sub::Subdivision& sub) {
  uint64_t h = 1469598103934665603ull;
  auto mix_bytes = [&h](const void* p, size_t len) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < len; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  for (const Point& p : sub.vertices()) {
    mix_bytes(&p.x, sizeof(p.x));
    mix_bytes(&p.y, sizeof(p.y));
  }
  for (int i = 0; i < sub.NumRegions(); ++i) {
    for (int v : sub.Ring(i)) mix_bytes(&v, sizeof(v));
  }
  return h;
}

/// The CI gate: the grid-pruned parallel Voronoi must reproduce the
/// pre-grid serial reference bit-for-bit on the PARK-sized dataset, at
/// every thread count. Returns false (and prints) on any divergence.
bool DigestCheck() {
  const BBox area = dtree::workload::DefaultServiceArea();
  dtree::Rng rng(7);  // the MakePaperDatasets seed
  const std::vector<Point> sites =
      dtree::workload::ClusteredPoints(1102, area, 25, 0.03, &rng);

  auto ref_cells = dtree::sub::VoronoiCellsReference(sites, area);
  if (!ref_cells.ok()) {
    std::fprintf(stderr, "digest check: reference Voronoi failed: %s\n",
                 ref_cells.status().ToString().c_str());
    return false;
  }
  auto ref_sub = dtree::sub::Subdivision::FromPolygons(area, ref_cells.value());
  if (!ref_sub.ok()) {
    std::fprintf(stderr, "digest check: reference stitch failed: %s\n",
                 ref_sub.status().ToString().c_str());
    return false;
  }
  const uint64_t want = SubdivisionDigest(ref_sub.value());
  std::printf("digest check: PARK N=1102 reference digest %016llx\n",
              static_cast<unsigned long long>(want));

  for (const int threads : {1, 4, 8}) {
    dtree::sub::VoronoiOptions opts;
    opts.num_threads = threads;
    auto sub = dtree::sub::BuildVoronoiSubdivision(sites, area, opts);
    if (!sub.ok()) {
      std::fprintf(stderr, "digest check: grid Voronoi (%d threads): %s\n",
                   threads, sub.status().ToString().c_str());
      return false;
    }
    const uint64_t got = SubdivisionDigest(sub.value());
    const bool match = got == want;
    std::printf("digest check: %d thread(s) -> %016llx %s\n", threads,
                static_cast<unsigned long long>(got),
                match ? "OK" : "MISMATCH");
    if (!match) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using dtree::workload::ScaleDistribution;
  const BuildFlags flags = Parse(argc, argv);

  if (flags.digest_check && !DigestCheck()) {
    std::fprintf(stderr,
                 "FAIL: grid-pruned Voronoi diverges from the serial "
                 "reference — build outputs are no longer reproducible\n");
    return 1;
  }

  dtree::bench::BenchFlags rec_flags;
  rec_flags.bench_json = flags.bench_json;
  rec_flags.threads = flags.threads;
  rec_flags.seed = flags.seed;
  rec_flags.queries = 0;
  dtree::bench::BenchRecorder recorder("bench_build_scaling", rec_flags);
  dtree::MetricsRegistry metrics;

  const BBox area = dtree::workload::DefaultServiceArea();
  const char* phase_names[] = {"points",    "voronoi", "stitch",
                               "triangulate", "dtree_partition",
                               "paging",    "serialize"};

  std::printf("\n== Build-pipeline scaling (threads=%d) ==\n",
              flags.threads > 0 ? flags.threads
                                : dtree::ThreadPool::DefaultThreads());
  std::printf("%-14s", "dataset");
  for (const char* p : phase_names) std::printf(" %12s", p);
  std::printf(" %12s\n", "total");

  for (const int n : flags.ns) {
    for (const ScaleDistribution dist : flags.dists) {
      const std::string name =
          (dist == ScaleDistribution::kUniform ? "SCALE-U" : "SCALE-C") +
          std::to_string(n);
      std::vector<double> phase_s;
      const auto total_t0 = std::chrono::steady_clock::now();

      // -- points ---------------------------------------------------------
      auto t0 = std::chrono::steady_clock::now();
      dtree::Rng rng(flags.seed);
      std::vector<Point> sites;
      if (dist == ScaleDistribution::kUniform) {
        sites = dtree::workload::UniformPoints(n, area, &rng);
      } else {
        sites = dtree::workload::ClusteredPoints(n, area, std::max(2, n / 50),
                                                 0.03, &rng);
      }
      phase_s.push_back(SecondsSince(t0));

      // -- voronoi --------------------------------------------------------
      t0 = std::chrono::steady_clock::now();
      dtree::sub::VoronoiOptions vopts;
      vopts.num_threads = flags.threads;
      auto cells = dtree::sub::VoronoiCells(sites, area, vopts);
      if (!cells.ok()) {
        std::fprintf(stderr, "%s: voronoi: %s\n", name.c_str(),
                     cells.status().ToString().c_str());
        return 1;
      }
      phase_s.push_back(SecondsSince(t0));

      // -- stitch (FromPolygons: T-junctions, rings, border grid) ---------
      t0 = std::chrono::steady_clock::now();
      auto sub = dtree::sub::Subdivision::FromPolygons(area, cells.value());
      if (!sub.ok()) {
        std::fprintf(stderr, "%s: stitch: %s\n", name.c_str(),
                     sub.status().ToString().c_str());
        return 1;
      }
      phase_s.push_back(SecondsSince(t0));

      // -- triangulate (the trian-tree baseline's substrate) --------------
      t0 = std::chrono::steady_clock::now();
      size_t num_tris = 0;
      {
        std::vector<dtree::geom::Triangle> tris;
        std::vector<Point> ring;
        for (int i = 0; i < sub.value().NumRegions(); ++i) {
          tris.clear();
          ring.clear();
          for (int v : sub.value().Ring(i)) {
            ring.push_back(sub.value().vertices()[v]);
          }
          const dtree::Status st = dtree::sub::EarClipTriangulate(ring, &tris);
          if (!st.ok()) {
            std::fprintf(stderr, "%s: triangulate region %d: %s\n",
                         name.c_str(), i, st.ToString().c_str());
            return 1;
          }
          num_tris += tris.size();
        }
      }
      phase_s.push_back(SecondsSince(t0));

      // -- D-tree partition + paging --------------------------------------
      dtree::core::DTree::Options topt;
      topt.packet_capacity = 256;
      dtree::core::DTree::BuildTimings timings;
      auto tree = dtree::core::DTree::Build(sub.value(), topt, &timings);
      if (!tree.ok()) {
        std::fprintf(stderr, "%s: d-tree: %s\n", name.c_str(),
                     tree.status().ToString().c_str());
        return 1;
      }
      phase_s.push_back(timings.partition_seconds);
      phase_s.push_back(timings.paging_seconds);

      // -- serialize ------------------------------------------------------
      t0 = std::chrono::steady_clock::now();
      auto packets = dtree::core::SerializeDTree(tree.value());
      if (!packets.ok()) {
        std::fprintf(stderr, "%s: serialize: %s\n", name.c_str(),
                     packets.status().ToString().c_str());
        return 1;
      }
      phase_s.push_back(SecondsSince(t0));

      const double total_s = SecondsSince(total_t0);
      std::printf("%-14s", name.c_str());
      for (size_t i = 0; i < phase_s.size(); ++i) {
        std::printf(" %12.3f", phase_s[i]);
        metrics.histogram(std::string("build/") + phase_names[i] + "_s")
            ->Add(phase_s[i]);
        recorder.Record(name + "/" + phase_names[i], phase_s[i],
                        n / std::max(phase_s[i], 1e-12));
      }
      std::printf(" %12.3f\n", total_s);
      metrics.histogram("build/total_s")->Add(total_s);
      recorder.Record(name + "/total", total_s,
                      n / std::max(total_s, 1e-12));
      std::fprintf(stderr,
                   "%s: %d regions -> %zu triangles, %d tree nodes, "
                   "%d packets\n",
                   name.c_str(), sub.value().NumRegions(), num_tris,
                   tree.value().num_nodes(), tree.value().NumIndexPackets());

      // -- optional pre-grid serial reference -----------------------------
      if (flags.serial_baseline_max > 0 && n <= flags.serial_baseline_max) {
        t0 = std::chrono::steady_clock::now();
        auto ref = dtree::sub::VoronoiCellsReference(sites, area);
        const double ref_s = SecondsSince(t0);
        if (!ref.ok()) {
          std::fprintf(stderr, "%s: reference voronoi: %s\n", name.c_str(),
                       ref.status().ToString().c_str());
          return 1;
        }
        recorder.Record(name + "/voronoi_serial_reference", ref_s,
                        n / std::max(ref_s, 1e-12));
        // End-to-end speedup, conservatively: the pre-PR pipeline is the
        // reference Voronoi plus the (already improved) downstream phases.
        const double pre_pr_total = total_s - phase_s[1] + ref_s;
        recorder.Record(name + "/total_pre_pr_estimate", pre_pr_total,
                        n / std::max(pre_pr_total, 1e-12));
        std::printf("%-14s serial reference voronoi %.3fs -> end-to-end "
                    "speedup %.1fx (voronoi alone %.1fx)\n",
                    name.c_str(), ref_s, pre_pr_total / total_s,
                    ref_s / std::max(phase_s[1], 1e-12));
      }
    }
  }

  std::printf("\nphase histograms (seconds; across sweep cells)\n");
  for (const auto& [hname, h] : metrics.histograms()) {
    std::printf("  %-24s count=%llu mean=%.3f max=%.3f\n", hname.c_str(),
                static_cast<unsigned long long>(h.TotalCount()), h.Mean(),
                h.Max());
  }
  return 0;
}
