// Fleet-engine bench: one broadcast cycle clock, a million concurrent
// clients. Measures how fast the event-driven engine (broadcast/fleet.h)
// chews through wake-ups and verifies, with a nonzero exit on violation,
// the two properties the engine is built on:
//
//   1. Determinism: FleetResult is bit-identical at 1, 4, and 8 worker
//      threads (fixed 64-shard layout, shard-ordered merge).
//   2. Differential anchor: a one-client fleet reproduces
//      BroadcastChannel::Simulate field-for-field when the query is
//      replayed through the synchronous simulator with the same streams.
//
// Extra flags (on top of the shared ones):
//   --clients=N      concurrent clients (default 1000000)
//   --cycles=C       simulated horizon in broadcast cycles (default 2)
//   --rate=R         per-client queries per cycle (default 1)
//   --churn=P        per-query departure probability (default 0.05)
//   --loss-rate=L    i.i.d. packet loss rate (default 0.1; 0 = lossless)
//   --capacity=N     packet capacity (default 256)
// The shared --threads flag is ignored: the bench always sweeps 1/4/8.
//
// With --telemetry-out / --flight-out / --prom-out set, a FleetTelemetry
// sink rides along on every run of the sweep and the bench additionally
// verifies (nonzero exit on violation) that
//
//   3. the timeline JSONL, flight-recorder JSONL and Prometheus snapshot
//      are byte-identical at 1, 4, and 8 threads, and
//   4. the FleetResult with telemetry attached matches the reference —
//      observation must not perturb the simulation.
//
// With --trace-out set, fleet traces also feed a CycleProfiler, printing
// the per-D-tree-level read attribution for the fleet workload.

#include "bench_util.h"

#include <cinttypes>

#include "broadcast/fleet.h"
#include "broadcast/telemetry.h"

namespace {

using dtree::bcast::FleetResult;

bool SameFleetResult(const FleetResult& a, const FleetResult& b) {
  return a.queries == b.queries && a.sessions == b.sessions &&
         a.departures == b.departures &&
         a.mean_latency == b.mean_latency &&
         a.mean_tuning_index == b.mean_tuning_index &&
         a.mean_tuning_total == b.mean_tuning_total &&
         a.mean_retries == b.mean_retries &&
         a.mean_lost_packets == b.mean_lost_packets &&
         a.mean_corrupted_packets == b.mean_corrupted_packets &&
         a.total_retries == b.total_retries &&
         a.total_lost_packets == b.total_lost_packets &&
         a.total_corrupted_packets == b.total_corrupted_packets &&
         a.unrecoverable_queries == b.unrecoverable_queries &&
         a.fallback_queries == b.fallback_queries &&
         a.min_latency == b.min_latency && a.max_latency == b.max_latency &&
         a.min_tuning_total == b.min_tuning_total &&
         a.max_tuning_total == b.max_tuning_total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtree::bench;
  namespace bcast = dtree::bcast;
  int64_t clients = 1000000;
  double cycles = 2.0;
  double rate = 1.0;
  double churn = 0.05;
  double loss_rate = 0.1;
  int capacity = 256;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::strtoll(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--cycles=", 9) == 0) {
      cycles = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--rate=", 7) == 0) {
      rate = std::atof(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--churn=", 8) == 0) {
      churn = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--loss-rate=", 12) == 0) {
      loss_rate = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
      capacity = std::atoi(argv[i] + 11);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchFlags flags =
      ParseFlags(static_cast<int>(passthrough.size()), passthrough.data());
  if (flags.bench_json == "BENCH_experiment.json") {
    flags.bench_json = "BENCH_fleet.json";
  }

  auto ds = dtree::workload::MakeUniformDataset();
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto index = BuildIndex(IndexKind::kDTree, ds.value().subdivision,
                          capacity);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }

  bcast::FleetOptions fopt;
  fopt.packet_capacity = capacity;
  fopt.num_clients = clients;
  fopt.sim_cycles = cycles;
  fopt.queries_per_cycle = rate;
  fopt.churn = churn;
  fopt.seed = flags.seed;
  if (loss_rate > 0.0) {
    fopt.loss.model = bcast::LossModel::kIid;
    fopt.loss.loss_rate = loss_rate;
    fopt.loss.seed = flags.seed + 1;
  }

  bool ok = true;

  // --- Differential anchor: one client, one query, replayed by hand
  // through the public stream helpers and the synchronous simulator.
  {
    bcast::FleetOptions one = fopt;
    one.num_clients = 1;
    one.sim_cycles = 1.0;
    one.queries_per_cycle = 1e-6;  // exactly the join-time query
    one.churn = 0.0;
    auto fleet = bcast::RunFleet(*index.value(), ds.value().subdivision,
                                 one);
    if (!fleet.ok() || fleet.value().queries != 1) {
      std::fprintf(stderr, "FAIL: single-client fleet did not run\n");
      return 1;
    }
    bcast::ChannelOptions copt;
    copt.packet_capacity = one.packet_capacity;
    copt.m = one.m;
    copt.loss = one.loss;
    auto ch = bcast::BroadcastChannel::Create(
        index.value()->NumIndexPackets(),
        ds.value().subdivision.NumRegions(), copt);
    auto sampler = bcast::QuerySampler::Create(ds.value().subdivision,
                                               one.distribution, {});
    DTREE_CHECK(ch.ok() && sampler.ok());
    const uint64_t key = bcast::FleetClientKey(one.seed, 0);
    dtree::Rng join_rng =
        dtree::Rng::ForStream(key, bcast::FleetJoinStream());
    const double arrival = join_rng.Uniform(
        0.0, static_cast<double>(ch.value().cycle_packets()));
    dtree::Rng point_rng =
        dtree::Rng::ForStream(key, bcast::FleetPointStream(0));
    bcast::ProbeTrace trace;
    DTREE_CHECK(
        index.value()->ProbeInto(sampler.value().Draw(&point_rng), &trace)
            .ok());
    auto out = ch.value().Simulate(trace, arrival,
                                   bcast::FleetQueryLossStream(key, 0));
    DTREE_CHECK(out.ok());
    const FleetResult& fr = fleet.value();
    const auto& o = out.value();
    if (fr.mean_latency != o.latency ||
        fr.mean_tuning_index != static_cast<double>(o.tuning_index) ||
        fr.mean_tuning_total != static_cast<double>(o.tuning_total()) ||
        fr.total_retries != o.retries ||
        fr.total_lost_packets != o.lost_packets ||
        fr.total_corrupted_packets != o.corrupted_packets ||
        fr.unrecoverable_queries != (o.unrecoverable ? 1 : 0) ||
        fr.fallback_queries != (o.fallback_scan ? 1 : 0)) {
      std::fprintf(stderr,
                   "FAIL: single-client fleet does not reproduce Simulate "
                   "(latency %.17g vs %.17g)\n",
                   fr.mean_latency, o.latency);
      ok = false;
    } else {
      std::printf("differential anchor: fleet(1 client) == Simulate ✓\n");
    }
  }

  // --- The fleet itself, swept over worker threads.
  std::printf("== Fleet bench ==\n");
  std::printf(
      "dataset %s, cap %d, %lld clients, %.3g cycles, rate %.3g/cycle, "
      "churn %.3g, loss %.3g\n",
      ds.value().name.c_str(), capacity, static_cast<long long>(clients),
      cycles, rate, churn, loss_rate);
  std::printf("%-8s %12s %12s %10s %10s %8s %10s %12s\n", "threads",
              "queries", "sessions", "latency", "tuning", "unrec",
              "wall_s", "clients/s");

  // Channel layout (for the CycleProfiler's cycle length); identical to
  // the one RunFleet builds from the same options.
  bcast::ChannelOptions layout_opt;
  layout_opt.packet_capacity = capacity;
  layout_opt.m = fopt.m;
  layout_opt.loss = fopt.loss;
  auto layout = bcast::BroadcastChannel::Create(
      index.value()->NumIndexPackets(), ds.value().subdivision.NumRegions(),
      layout_opt);
  DTREE_CHECK(layout.ok());
  const int64_t cycle_packets = layout.value().cycle_packets();

  const bool telemetry_on = !flags.telemetry_out.empty() ||
                            !flags.flight_out.empty() ||
                            !flags.prom_out.empty();
  bcast::FleetTelemetry telemetry;
  const std::string tlabel =
      ds.value().name + "/fleet/c" + std::to_string(clients);
  std::string ref_timeline, ref_flight, ref_prom;
  bool have_telemetry_reference = false;

  BenchRecorder recorder("bench_fleet", flags);
  FleetResult reference;
  bool have_reference = false;
  std::unique_ptr<bcast::CycleProfiler> profiler;
  for (int threads : {1, 4, 8}) {
    bcast::FleetOptions run = fopt;
    run.num_threads = threads;
    const std::string cell = ds.value().name + "/fleet/c" +
                             std::to_string(clients) + "/t" +
                             std::to_string(threads);
    bcast::JsonlTraceSink* trace = GlobalTraceSink(flags);
    std::unique_ptr<bcast::TeeTraceSink> tee;
    if (trace != nullptr) {
      trace->set_label(cell);
      // Per-D-tree-level read attribution for the fleet workload; the
      // last sweep run's profile is printed (traces are thread-count
      // invariant, so every run sees the same stream).
      profiler =
          std::make_unique<bcast::CycleProfiler>(cycle_packets);
      tee = std::make_unique<bcast::TeeTraceSink>(
          std::vector<bcast::TraceSink*>{trace, profiler.get()});
      run.trace_sink = tee.get();
    }
    if (telemetry_on) run.telemetry = &telemetry;
    const auto t0 = std::chrono::steady_clock::now();
    auto res = bcast::RunFleet(*index.value(), ds.value().subdivision, run);
    const double wall_s = SecondsSince(t0);
    if (!res.ok()) {
      std::fprintf(stderr, "fleet run failed: %s\n",
                   res.status().ToString().c_str());
      return 1;
    }
    const FleetResult& r = res.value();
    recorder.Record(cell, wall_s,
                    static_cast<double>(r.queries) /
                        std::max(wall_s, 1e-12),
                    threads, CellPercentiles::From(r));
    std::printf("%-8d %12lld %12lld %10.2f %10.3f %8lld %10.2f %12.0f\n",
                threads, static_cast<long long>(r.queries),
                static_cast<long long>(r.sessions), r.mean_latency,
                r.mean_tuning_total,
                static_cast<long long>(r.unrecoverable_queries), wall_s,
                static_cast<double>(clients) / std::max(wall_s, 1e-12));
    if (!have_reference) {
      reference = r;
      have_reference = true;
    } else if (!SameFleetResult(reference, r)) {
      std::fprintf(stderr,
                   "FAIL: FleetResult at %d threads diverges from the "
                   "1-thread run (queries %lld vs %lld, latency %.17g vs "
                   "%.17g)\n",
                   threads, static_cast<long long>(r.queries),
                   static_cast<long long>(reference.queries),
                   r.mean_latency, reference.mean_latency);
      ok = false;
    }
    if (telemetry_on) {
      const bcast::TelemetryTotals totals = bcast::TotalsFromFleet(r);
      const std::string timeline = telemetry.TimelineJsonl(tlabel, &totals);
      const std::string& flight = telemetry.flight_records();
      const std::string prom = telemetry.PrometheusText();
      if (!have_telemetry_reference) {
        ref_timeline = timeline;
        ref_flight = flight;
        ref_prom = prom;
        have_telemetry_reference = true;
      } else if (timeline != ref_timeline || flight != ref_flight ||
                 prom != ref_prom) {
        std::fprintf(stderr,
                     "FAIL: telemetry output at %d threads diverges from "
                     "the 1-thread run (timeline %s, flight %s, prom %s)\n",
                     threads,
                     timeline == ref_timeline ? "same" : "DIFFERS",
                     flight == ref_flight ? "same" : "DIFFERS",
                     prom == ref_prom ? "same" : "DIFFERS");
        ok = false;
      }
    }
  }
  if (have_telemetry_reference && ok) {
    std::printf("telemetry: timeline+flight+prom byte-identical at "
                "1/4/8 threads ✓\n");
    if (!flags.telemetry_out.empty() &&
        !WriteTextFile(flags.telemetry_out, ref_timeline)) {
      ok = false;
    }
    if (!flags.flight_out.empty() &&
        !WriteTextFile(flags.flight_out, ref_flight)) {
      ok = false;
    }
    if (!flags.prom_out.empty() &&
        !WriteTextFile(flags.prom_out, ref_prom)) {
      ok = false;
    }
  }
  if (profiler != nullptr) {
    std::printf("fleet read attribution by D-tree level (%" PRIu64
                " traced queries):\n",
                profiler->queries());
    const auto& levels = profiler->level_reads();
    for (size_t d = 0; d < levels.size(); ++d) {
      std::printf("  level %zu: %lld index reads\n", d,
                  static_cast<long long>(levels[d]));
    }
    if (profiler->unattributed_reads() > 0) {
      std::printf("  unattributed: %lld\n",
                  static_cast<long long>(profiler->unattributed_reads()));
    }
    if (static_cast<int64_t>(profiler->queries()) != reference.queries) {
      std::fprintf(stderr,
                   "FAIL: CycleProfiler saw %llu traces but the fleet "
                   "completed %lld queries\n",
                   static_cast<unsigned long long>(profiler->queries()),
                   static_cast<long long>(reference.queries));
      ok = false;
    }
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: fleet invariants violated\n");
    return 1;
  }
  return 0;
}
