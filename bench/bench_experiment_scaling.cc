// Thread-scaling bench for the parallel experiment driver: one large cell
// (1000-region Voronoi subdivision, 100k queries by default, D-tree at
// 256 B packets) run at increasing thread counts. Verifies at runtime that
// every thread count reproduces the single-thread metrics bit-for-bit
// (the shard/stream RNG guarantee), and records wall time / throughput /
// speedup per thread count into the BENCH json.
//
// Extra flag (on top of the shared ones): --regions=N (default 1000).

#include "bench_util.h"

#include "subdivision/voronoi.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  int regions = 1000;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--regions=", 10) == 0) {
      regions = std::atoi(argv[i] + 10);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchFlags flags =
      ParseFlags(static_cast<int>(passthrough.size()), passthrough.data());
  flags.queries = flags.queries == 20000 ? 100000 : flags.queries;

  dtree::Rng rng(flags.seed);
  const dtree::geom::BBox area = dtree::workload::DefaultServiceArea();
  const auto pts = dtree::workload::UniformPoints(regions, area, &rng);
  auto sub_r = dtree::sub::BuildVoronoiSubdivision(pts, area);
  if (!sub_r.ok()) {
    std::fprintf(stderr, "%s\n", sub_r.status().ToString().c_str());
    return 1;
  }
  const dtree::sub::Subdivision& sub = sub_r.value();

  dtree::core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = dtree::core::DTree::Build(sub, topt);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  std::printf("== Experiment-driver thread scaling ==\n");
  std::printf("%d regions, %d queries, d-tree @ 256 B packets, "
              "%d hardware threads\n",
              sub.NumRegions(), flags.queries,
              dtree::ThreadPool::DefaultThreads());
  std::printf("%-8s %10s %12s %10s  %s\n", "threads", "wall(s)", "qps",
              "speedup", "deterministic");

  BenchRecorder recorder("bench_experiment_scaling", flags);
  double serial_wall = 0.0;
  dtree::bcast::ExperimentResult serial_res;
  bool all_match = true;
  for (int threads : {1, 2, 4, 8}) {
    const std::string cell = "voronoi" + std::to_string(sub.NumRegions()) +
                             "/d-tree/cap256/threads" +
                             std::to_string(threads);
    dtree::bcast::ExperimentOptions opt;
    opt.packet_capacity = 256;
    opt.num_queries = flags.queries;
    opt.seed = flags.seed;
    opt.num_threads = threads;
    AttachTrace(flags, cell, &opt);
    const auto t0 = std::chrono::steady_clock::now();
    auto res = dtree::bcast::RunExperiment(tree.value(), sub, nullptr, opt);
    const double wall_s = SecondsSince(t0);
    if (!res.ok()) {
      std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
      return 1;
    }
    const double qps = flags.queries / std::max(wall_s, 1e-12);
    bool match = true;
    if (threads == 1) {
      serial_wall = wall_s;
      serial_res = res.value();
    } else {
      match = res.value().mean_latency == serial_res.mean_latency &&
              res.value().mean_tuning_index == serial_res.mean_tuning_index &&
              res.value().mean_tuning_total == serial_res.mean_tuning_total &&
              res.value().mean_tuning_noindex ==
                  serial_res.mean_tuning_noindex;
      all_match = all_match && match;
    }
    recorder.Record(cell, wall_s, qps, threads,
                    CellPercentiles::From(res.value()));
    std::printf("%-8d %10.3f %12.1f %9.2fx  %s\n", threads, wall_s, qps,
                serial_wall / std::max(wall_s, 1e-12),
                threads == 1 ? "(baseline)" : match ? "yes" : "NO");
  }
  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: results differ across thread counts — the "
                 "shard/stream determinism contract is broken\n");
    return 1;
  }
  return 0;
}
