// Micro-benchmarks (google-benchmark): index construction cost and
// in-memory query throughput for all four structures, plus the Voronoi
// substrate. These measure wall-clock performance of this implementation
// (the paper's metrics are packet counts, covered by the figure benches).

#include <benchmark/benchmark.h>

#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/experiment.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dtree/dtree.h"
#include "subdivision/voronoi.h"
#include "workload/datasets.h"

namespace {

using namespace dtree;

const sub::Subdivision& SharedSubdivision(int n) {
  static auto* cache =
      new std::map<int, sub::Subdivision>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(99);
    const geom::BBox area = workload::DefaultServiceArea();
    auto pts = workload::UniformPoints(n, area, &rng);
    auto sub = sub::BuildVoronoiSubdivision(pts, area);
    it = cache->emplace(n, std::move(sub).value()).first;
  }
  return it->second;
}

void BM_VoronoiBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  const geom::BBox area = workload::DefaultServiceArea();
  auto pts = workload::UniformPoints(n, area, &rng);
  for (auto _ : state) {
    auto sub = sub::BuildVoronoiSubdivision(pts, area);
    benchmark::DoNotOptimize(sub);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VoronoiBuild)->Arg(100)->Arg(500)->Arg(1000);

void BM_DTreeBuild(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  core::DTree::Options o;
  o.packet_capacity = 256;
  for (auto _ : state) {
    auto tree = core::DTree::Build(sub, o);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_DTreeBuild)->Arg(100)->Arg(500)->Arg(1000);

void BM_RStarBuild(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::RStarTree::Options o;
  o.packet_capacity = 256;
  for (auto _ : state) {
    auto tree = baselines::RStarTree::Build(sub, o);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_RStarBuild)->Arg(100)->Arg(500)->Arg(1000);

void BM_TrapMapBuild(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::TrapMap::Options o;
  o.packet_capacity = 256;
  for (auto _ : state) {
    auto map = baselines::TrapMap::Build(sub, o);
    benchmark::DoNotOptimize(map);
  }
}
BENCHMARK(BM_TrapMapBuild)->Arg(100)->Arg(500)->Arg(1000);

void BM_TrianTreeBuild(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::TrianTree::Options o;
  o.packet_capacity = 256;
  for (auto _ : state) {
    auto tree = baselines::TrianTree::Build(sub, o);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TrianTreeBuild)->Arg(100)->Arg(500)->Arg(1000);

template <typename Index>
void QueryLoop(benchmark::State& state, const Index& index,
               const sub::Subdivision& sub) {
  Rng rng(5);
  const geom::BBox& a = sub.service_area();
  std::vector<geom::Point> queries;
  for (int i = 0; i < 1024; ++i) {
    queries.push_back({rng.Uniform(a.min_x, a.max_x),
                       rng.Uniform(a.min_y, a.max_y)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Locate(queries[i & 1023]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DTreeQuery(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  core::DTree::Options o;
  o.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, o);
  QueryLoop(state, tree.value(), sub);
}
BENCHMARK(BM_DTreeQuery)->Arg(100)->Arg(1000);

void BM_RStarQuery(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::RStarTree::Options o;
  o.packet_capacity = 256;
  auto tree = baselines::RStarTree::Build(sub, o);
  QueryLoop(state, tree.value(), sub);
}
BENCHMARK(BM_RStarQuery)->Arg(100)->Arg(1000);

void BM_TrapMapQuery(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::TrapMap::Options o;
  o.packet_capacity = 256;
  auto map = baselines::TrapMap::Build(sub, o);
  QueryLoop(state, map.value(), sub);
}
BENCHMARK(BM_TrapMapQuery)->Arg(100)->Arg(1000);

void BM_TrianTreeQuery(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::TrianTree::Options o;
  o.packet_capacity = 256;
  auto tree = baselines::TrianTree::Build(sub, o);
  QueryLoop(state, tree.value(), sub);
}
BENCHMARK(BM_TrianTreeQuery)->Arg(100)->Arg(1000);

// Sharded experiment driver end to end; Arg = thread count. Compares the
// pool dispatch overhead and scaling of the full query loop (sample ->
// probe -> channel simulation) at a fixed 500-region workload.
void BM_RunExperimentThreads(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(500);
  core::DTree::Options o;
  o.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, o);
  bcast::ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 20000;
  opt.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = bcast::RunExperiment(tree.value(), sub, nullptr, opt);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * opt.num_queries);
}
BENCHMARK(BM_RunExperimentThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Raw pool dispatch cost: trivial tasks, so the time is all handoff.
void BM_ThreadPoolParallelFor(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  std::atomic<int64_t> sink{0};
  for (auto _ : state) {
    pool.ParallelFor(64, [&](int i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
