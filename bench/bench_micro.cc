// Micro-benchmarks (google-benchmark): index construction cost and
// in-memory query throughput for all four structures, plus the Voronoi
// substrate. These measure wall-clock performance of this implementation
// (the paper's metrics are packet counts, covered by the figure benches).
//
// Flat-arena probe throughput (EXPERIMENTS.md E14): passing
// --bench-json=PATH switches on a self-verifying measurement pass that
// pits the per-probe byte decoders against the flat-arena engines
// (DESIGN.md §12) on SCALE-U subdivisions up to N=100k, then writes the
// ns/probe table to PATH. Before any timing, every configuration is
// checked query-by-query against the byte decoder — the bit-identical
// oracle — and any mismatch exits nonzero, so a CI bench run doubles as
// a correctness gate. Remaining arguments pass through to
// google-benchmark (use --benchmark_filter=NONE to run only the
// measurement pass).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/kirkpatrick/arena.h"
#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/arena.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/arena.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/experiment.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dtree/arena.h"
#include "dtree/dtree.h"
#include "dtree/serialize.h"
#include "subdivision/voronoi.h"
#include "workload/datasets.h"

namespace {

using namespace dtree;

const sub::Subdivision& SharedSubdivision(int n) {
  static auto* cache =
      new std::map<int, sub::Subdivision>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(99);
    const geom::BBox area = workload::DefaultServiceArea();
    auto pts = workload::UniformPoints(n, area, &rng);
    auto sub = sub::BuildVoronoiSubdivision(pts, area);
    it = cache->emplace(n, std::move(sub).value()).first;
  }
  return it->second;
}

void BM_VoronoiBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  const geom::BBox area = workload::DefaultServiceArea();
  auto pts = workload::UniformPoints(n, area, &rng);
  for (auto _ : state) {
    auto sub = sub::BuildVoronoiSubdivision(pts, area);
    benchmark::DoNotOptimize(sub);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VoronoiBuild)->Arg(100)->Arg(500)->Arg(1000);

void BM_DTreeBuild(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  core::DTree::Options o;
  o.packet_capacity = 256;
  for (auto _ : state) {
    auto tree = core::DTree::Build(sub, o);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_DTreeBuild)->Arg(100)->Arg(500)->Arg(1000);

void BM_RStarBuild(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::RStarTree::Options o;
  o.packet_capacity = 256;
  for (auto _ : state) {
    auto tree = baselines::RStarTree::Build(sub, o);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_RStarBuild)->Arg(100)->Arg(500)->Arg(1000);

void BM_TrapMapBuild(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::TrapMap::Options o;
  o.packet_capacity = 256;
  for (auto _ : state) {
    auto map = baselines::TrapMap::Build(sub, o);
    benchmark::DoNotOptimize(map);
  }
}
BENCHMARK(BM_TrapMapBuild)->Arg(100)->Arg(500)->Arg(1000);

void BM_TrianTreeBuild(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::TrianTree::Options o;
  o.packet_capacity = 256;
  for (auto _ : state) {
    auto tree = baselines::TrianTree::Build(sub, o);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TrianTreeBuild)->Arg(100)->Arg(500)->Arg(1000);

std::vector<geom::Point> SampleQueries(const sub::Subdivision& sub,
                                       size_t count) {
  Rng rng(5);
  const geom::BBox& a = sub.service_area();
  std::vector<geom::Point> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back({rng.Uniform(a.min_x, a.max_x),
                       rng.Uniform(a.min_y, a.max_y)});
  }
  return queries;
}

template <typename Index>
void QueryLoop(benchmark::State& state, const Index& index,
               const sub::Subdivision& sub) {
  const std::vector<geom::Point> queries = SampleQueries(sub, 1024);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Locate(queries[i & 1023]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DTreeQuery(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  core::DTree::Options o;
  o.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, o);
  QueryLoop(state, tree.value(), sub);
}
BENCHMARK(BM_DTreeQuery)->Arg(100)->Arg(1000);

void BM_RStarQuery(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::RStarTree::Options o;
  o.packet_capacity = 256;
  auto tree = baselines::RStarTree::Build(sub, o);
  QueryLoop(state, tree.value(), sub);
}
BENCHMARK(BM_RStarQuery)->Arg(100)->Arg(1000);

void BM_TrapMapQuery(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::TrapMap::Options o;
  o.packet_capacity = 256;
  auto map = baselines::TrapMap::Build(sub, o);
  QueryLoop(state, map.value(), sub);
}
BENCHMARK(BM_TrapMapQuery)->Arg(100)->Arg(1000);

void BM_TrianTreeQuery(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  baselines::TrianTree::Options o;
  o.packet_capacity = 256;
  auto tree = baselines::TrianTree::Build(sub, o);
  QueryLoop(state, tree.value(), sub);
}
BENCHMARK(BM_TrianTreeQuery)->Arg(100)->Arg(1000);

// Per-probe byte decoding vs the flat arena on the same serialized cycle.
// Small-N spot checks for interactive runs; the --bench-json measurement
// pass covers the N=100k headline numbers with full verification.
void BM_DTreeProbeDecode(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  core::DTree::Options o;
  o.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, o).value();
  auto packets = core::SerializeDTreeFlat(tree).value();
  const std::vector<geom::Point> queries = SampleQueries(sub, 1024);
  std::vector<int> read;
  size_t i = 0;
  for (auto _ : state) {
    read.clear();
    benchmark::DoNotOptimize(core::QueryFromPackets(
        packets, 256, tree.options().early_termination, queries[i & 1023],
        &read));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DTreeProbeDecode)->Arg(1000);

void BM_DTreeProbeArena(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(
      static_cast<int>(state.range(0)));
  core::DTree::Options o;
  o.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, o).value();
  auto packets = core::SerializeDTreeFlat(tree).value();
  auto arena =
      core::DTreeArena::Build(packets, 256, /*framed=*/false,
                              tree.options().early_termination,
                              tree.num_regions())
          .value();
  const std::vector<geom::Point> queries = SampleQueries(sub, 1024);
  bcast::ProbeTrace trace;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.ProbeInto(queries[i & 1023], &trace));
    benchmark::DoNotOptimize(trace.region);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DTreeProbeArena)->Arg(1000);

// Sharded experiment driver end to end; Arg = thread count. Compares the
// pool dispatch overhead and scaling of the full query loop (sample ->
// probe -> channel simulation) at a fixed 500-region workload.
void BM_RunExperimentThreads(benchmark::State& state) {
  const sub::Subdivision& sub = SharedSubdivision(500);
  core::DTree::Options o;
  o.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, o);
  bcast::ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 20000;
  opt.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = bcast::RunExperiment(tree.value(), sub, nullptr, opt);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * opt.num_queries);
}
BENCHMARK(BM_RunExperimentThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Raw pool dispatch cost: trivial tasks, so the time is all handoff.
void BM_ThreadPoolParallelFor(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  std::atomic<int64_t> sink{0};
  for (auto _ : state) {
    pool.ParallelFor(64, [&](int i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// --bench-json measurement pass: decode-per-probe vs flat arena, verified.
// ---------------------------------------------------------------------------

struct ProbeMeasurement {
  std::string index;
  int n = 0;
  size_t arena_bytes = 0;
  int verified_queries = 0;
  double decode_ns = 0.0;
  double arena_ns = 0.0;
  double speedup = 0.0;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times fn(query) over the query set until ~0.25 s has elapsed; returns
/// mean ns per call.
template <typename Fn>
double TimeProbeNs(const std::vector<geom::Point>& queries, Fn&& fn) {
  const size_t nq = queries.size();
  for (size_t i = 0; i < nq; ++i) fn(queries[i]);  // warm caches
  int64_t calls = 0;
  const double start = NowSeconds();
  double elapsed = 0.0;
  do {
    for (size_t i = 0; i < nq; ++i) fn(queries[i]);
    calls += static_cast<int64_t>(nq);
    elapsed = NowSeconds() - start;
  } while (elapsed < 0.25);
  return elapsed * 1e9 / static_cast<double>(calls);
}

/// Compares the byte decoder (oracle) against the arena engine on every
/// query, then times both. `decode` returns the region via Result and
/// appends the read-log to its vector argument. When `compare_packets` is
/// false only the region is pinned (the R*-tree arena intentionally logs
/// memory-Probe-style packets, not the wire walk's header peeks).
template <typename DecodeFn>
bool GuardAndMeasure(const std::string& index_name, int n,
                     DecodeFn&& decode, const bcast::FlatProbeEngine& engine,
                     bool compare_packets,
                     const std::vector<geom::Point>& queries,
                     ProbeMeasurement* out) {
  std::vector<int> read;
  bcast::ProbeTrace trace;
  for (size_t i = 0; i < queries.size(); ++i) {
    const geom::Point& p = queries[i];
    read.clear();
    Result<int> oracle = decode(p, &read);
    const Status st = engine.ProbeInto(p, &trace);
    if (!oracle.ok() || !st.ok()) {
      if (oracle.ok() != st.ok() ||
          oracle.status().code() != st.code()) {
        std::fprintf(stderr,
                     "FAIL %s n=%d query %zu: oracle '%s' vs arena '%s'\n",
                     index_name.c_str(), n, i,
                     oracle.ok() ? "ok" : oracle.status().ToString().c_str(),
                     st.ok() ? "ok" : st.ToString().c_str());
        return false;
      }
      continue;  // both failed identically (e.g. NotFound outside area)
    }
    if (oracle.value() != trace.region) {
      std::fprintf(stderr,
                   "FAIL %s n=%d query %zu (%.17g, %.17g): oracle region %d "
                   "vs arena region %d\n",
                   index_name.c_str(), n, i, p.x, p.y, oracle.value(),
                   trace.region);
      return false;
    }
    if (compare_packets && read != trace.packets) {
      std::fprintf(stderr,
                   "FAIL %s n=%d query %zu: packet log diverges "
                   "(oracle %zu packets, arena %zu)\n",
                   index_name.c_str(), n, i, read.size(),
                   trace.packets.size());
      return false;
    }
  }

  out->index = index_name;
  out->n = n;
  out->arena_bytes = engine.ArenaBytes();
  out->verified_queries = static_cast<int>(queries.size());
  out->decode_ns = TimeProbeNs(queries, [&](const geom::Point& p) {
    read.clear();
    benchmark::DoNotOptimize(decode(p, &read));
  });
  out->arena_ns = TimeProbeNs(queries, [&](const geom::Point& p) {
    benchmark::DoNotOptimize(engine.ProbeInto(p, &trace));
  });
  out->speedup = out->decode_ns / out->arena_ns;
  std::printf("%-10s n=%-7d decode %8.1f ns/probe   arena %8.1f ns/probe   "
              "speedup %5.2fx   arena %zu bytes\n",
              index_name.c_str(), n, out->decode_ns, out->arena_ns,
              out->speedup, out->arena_bytes);
  std::fflush(stdout);
  return true;
}

constexpr int kVerifyQueries = 4096;
constexpr int kPacketCapacity = 256;

bool MeasureDTree(const sub::Subdivision& sub, int n,
                  std::vector<ProbeMeasurement>* results) {
  core::DTree::Options o;
  o.packet_capacity = kPacketCapacity;
  auto tree_r = core::DTree::Build(sub, o);
  if (!tree_r.ok()) return false;
  const core::DTree& tree = tree_r.value();
  auto packets_r = core::SerializeDTreeFlat(tree);
  if (!packets_r.ok()) return false;
  const bcast::PacketBuffer& packets = packets_r.value();
  auto arena_r = core::DTreeArena::Build(
      packets, kPacketCapacity, /*framed=*/false,
      tree.options().early_termination, tree.num_regions());
  if (!arena_r.ok()) return false;
  const auto queries = SampleQueries(sub, kVerifyQueries);
  ProbeMeasurement m;
  if (!GuardAndMeasure(
          "dtree", n,
          [&](const geom::Point& p, std::vector<int>* read) {
            return core::QueryFromPackets(packets, kPacketCapacity,
                                          tree.options().early_termination,
                                          p, read);
          },
          arena_r.value(), /*compare_packets=*/true, queries, &m)) {
    return false;
  }
  results->push_back(m);
  return true;
}

bool MeasureBaselines(const sub::Subdivision& sub, int n,
                      std::vector<ProbeMeasurement>* results) {
  const auto queries = SampleQueries(sub, kVerifyQueries);
  const int num_regions = sub.NumRegions();
  {
    baselines::TrapMap::Options o;
    o.packet_capacity = kPacketCapacity;
    auto map_r = baselines::TrapMap::Build(sub, o);
    if (!map_r.ok()) return false;
    auto packets_r = map_r.value().SerializePackets();
    if (!packets_r.ok()) return false;
    const auto& packets = packets_r.value();
    auto arena_r = baselines::TrapMapArena::Build(
        packets, kPacketCapacity, /*framed=*/false, num_regions);
    if (!arena_r.ok()) return false;
    ProbeMeasurement m;
    if (!GuardAndMeasure(
            "trapmap", n,
            [&](const geom::Point& p, std::vector<int>* read) {
              return baselines::TrapMap::QueryFromPackets(
                  packets, kPacketCapacity, /*framed=*/false, num_regions, p,
                  read);
            },
            arena_r.value(), /*compare_packets=*/true, queries, &m)) {
      return false;
    }
    results->push_back(m);
  }
  {
    baselines::TrianTree::Options o;
    o.packet_capacity = kPacketCapacity;
    auto tree_r = baselines::TrianTree::Build(sub, o);
    if (!tree_r.ok()) return false;
    auto packets_r = tree_r.value().SerializePackets();
    if (!packets_r.ok()) return false;
    const auto& packets = packets_r.value();
    const auto roots = tree_r.value().RootLocations();
    auto arena_r = baselines::TrianTreeArena::Build(
        packets, kPacketCapacity, /*framed=*/false, roots, num_regions);
    if (!arena_r.ok()) return false;
    ProbeMeasurement m;
    if (!GuardAndMeasure(
            "kirkpatrick", n,
            [&](const geom::Point& p, std::vector<int>* read) {
              return baselines::TrianTree::QueryFromPackets(
                  packets, kPacketCapacity, /*framed=*/false, roots,
                  num_regions, p, read);
            },
            arena_r.value(), /*compare_packets=*/true, queries, &m)) {
      return false;
    }
    results->push_back(m);
  }
  {
    baselines::RStarTree::Options o;
    o.packet_capacity = kPacketCapacity;
    auto tree_r = baselines::RStarTree::Build(sub, o);
    if (!tree_r.ok()) return false;
    auto packets_r = tree_r.value().SerializePackets();
    if (!packets_r.ok()) return false;
    const auto& packets = packets_r.value();
    auto arena_r = baselines::RStarArena::Build(
        packets, kPacketCapacity, /*framed=*/false, num_regions);
    if (!arena_r.ok()) return false;
    ProbeMeasurement m;
    if (!GuardAndMeasure(
            "rstar", n,
            [&](const geom::Point& p, std::vector<int>* read) {
              return baselines::RStarTree::QueryFromPackets(
                  packets, kPacketCapacity, /*framed=*/false, num_regions, p,
                  read);
            },
            arena_r.value(), /*compare_packets=*/false, queries, &m)) {
      return false;
    }
    results->push_back(m);
  }
  return true;
}

bool WriteJson(const std::string& path,
               const std::vector<ProbeMeasurement>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_micro probe throughput\",\n");
  std::fprintf(f, "  \"packet_capacity\": %d,\n", kPacketCapacity);
  std::fprintf(f, "  \"verify_queries\": %d,\n", kVerifyQueries);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ProbeMeasurement& m = results[i];
    std::fprintf(f,
                 "    {\"index\": \"%s\", \"n\": %d, "
                 "\"decode_ns_per_probe\": %.1f, "
                 "\"arena_ns_per_probe\": %.1f, \"speedup\": %.2f, "
                 "\"arena_bytes\": %zu, \"verified_queries\": %d}%s\n",
                 m.index.c_str(), m.n, m.decode_ns, m.arena_ns, m.speedup,
                 m.arena_bytes, m.verified_queries,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

/// Runs the verified decode-vs-arena measurement matrix and writes the
/// JSON table. Returns false (-> nonzero exit) on any verification
/// failure: the arena engines must agree with the byte decoders on every
/// sampled query before a single number is reported.
bool RunProbeThroughputPass(const std::string& json_path) {
  std::vector<ProbeMeasurement> results;
  for (int n : {1000, 20000, 100000}) {
    auto ds = workload::MakeScaleDataset(
        n, workload::ScaleDistribution::kUniform);
    if (!ds.ok()) {
      std::fprintf(stderr, "SCALE-U%d build failed: %s\n", n,
                   ds.status().ToString().c_str());
      return false;
    }
    if (!MeasureDTree(ds.value().subdivision, n, &results)) return false;
    if (n <= 20000 &&
        !MeasureBaselines(ds.value().subdivision, n, &results)) {
      return false;
    }
  }
  return WriteJson(json_path, results);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  // Strip --bench-json=PATH before google-benchmark sees the arguments.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--bench-json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!json_path.empty() && !RunProbeThroughputPass(json_path)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
