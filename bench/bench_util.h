// Shared harness code for the paper-reproduction benchmark binaries.
//
// Every figure binary sweeps (dataset x index x packet capacity) cells,
// runs the broadcast-channel experiment, and prints the series the paper
// plots. Flags:
//   --queries=N        queries per cell (default 20000; paper used 1e6)
//   --seed=S           RNG seed (default 42)
//   --datasets=a,b     subset of UNIFORM,HOSPITAL,PARK
//   --capacities=...   subset of 64,128,256,512,1024,2048

#ifndef DTREE_BENCH_BENCH_UTIL_H_
#define DTREE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/experiment.h"
#include "common/check.h"
#include "dtree/dtree.h"
#include "workload/datasets.h"

namespace dtree::bench {

enum class IndexKind { kDTree, kRStar, kTrapTree, kTrianTree };

inline const char* KindName(IndexKind k) {
  switch (k) {
    case IndexKind::kDTree:
      return "d-tree";
    case IndexKind::kRStar:
      return "r*-tree";
    case IndexKind::kTrapTree:
      return "trap-tree";
    case IndexKind::kTrianTree:
      return "trian-tree";
  }
  return "?";
}

inline constexpr IndexKind kAllKinds[] = {
    IndexKind::kDTree, IndexKind::kRStar, IndexKind::kTrapTree,
    IndexKind::kTrianTree};

inline Result<std::unique_ptr<bcast::AirIndex>> BuildIndex(
    IndexKind kind, const sub::Subdivision& sub, int capacity) {
  switch (kind) {
    case IndexKind::kDTree: {
      core::DTree::Options o;
      o.packet_capacity = capacity;
      Result<core::DTree> r = core::DTree::Build(sub, o);
      if (!r.ok()) return r.status();
      return std::unique_ptr<bcast::AirIndex>(
          new core::DTree(std::move(r).value()));
    }
    case IndexKind::kRStar: {
      baselines::RStarTree::Options o;
      o.packet_capacity = capacity;
      Result<baselines::RStarTree> r = baselines::RStarTree::Build(sub, o);
      if (!r.ok()) return r.status();
      return std::unique_ptr<bcast::AirIndex>(
          new baselines::RStarTree(std::move(r).value()));
    }
    case IndexKind::kTrapTree: {
      baselines::TrapMap::Options o;
      o.packet_capacity = capacity;
      Result<baselines::TrapMap> r = baselines::TrapMap::Build(sub, o);
      if (!r.ok()) return r.status();
      return std::unique_ptr<bcast::AirIndex>(
          new baselines::TrapMap(std::move(r).value()));
    }
    case IndexKind::kTrianTree: {
      baselines::TrianTree::Options o;
      o.packet_capacity = capacity;
      Result<baselines::TrianTree> r = baselines::TrianTree::Build(sub, o);
      if (!r.ok()) return r.status();
      return std::unique_ptr<bcast::AirIndex>(
          new baselines::TrianTree(std::move(r).value()));
    }
  }
  return Status::InvalidArgument("unknown index kind");
}

struct BenchFlags {
  int queries = 20000;
  uint64_t seed = 42;
  std::vector<std::string> datasets{"UNIFORM", "HOSPITAL", "PARK"};
  std::vector<int> capacities{64, 128, 256, 512, 1024, 2048};
};

inline std::vector<std::string> SplitCsv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--queries=", 10) == 0) {
      flags.queries = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      flags.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--datasets=", 11) == 0) {
      flags.datasets = SplitCsv(arg + 11);
    } else if (std::strncmp(arg, "--capacities=", 13) == 0) {
      flags.capacities.clear();
      for (const std::string& c : SplitCsv(arg + 13)) {
        flags.capacities.push_back(std::atoi(c.c_str()));
      }
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --queries= --seed= "
                   "--datasets= --capacities=)\n",
                   arg);
      std::exit(2);
    }
  }
  return flags;
}

inline Result<std::vector<workload::Dataset>> LoadDatasets(
    const BenchFlags& flags) {
  std::vector<workload::Dataset> out;
  for (const std::string& name : flags.datasets) {
    Result<workload::Dataset> d =
        name == "UNIFORM"    ? workload::MakeUniformDataset()
        : name == "HOSPITAL" ? workload::MakeHospitalDataset()
        : name == "PARK"     ? workload::MakeParkDataset()
                             : Result<workload::Dataset>(Status::InvalidArgument(
                                   "unknown dataset " + name));
    if (!d.ok()) return d.status();
    out.push_back(std::move(d).value());
  }
  return out;
}

/// Runs one (dataset, kind, capacity) cell end to end.
inline Result<bcast::ExperimentResult> RunCell(const workload::Dataset& ds,
                                               IndexKind kind, int capacity,
                                               const BenchFlags& flags) {
  Result<std::unique_ptr<bcast::AirIndex>> index =
      BuildIndex(kind, ds.subdivision, capacity);
  if (!index.ok()) return index.status();
  bcast::ExperimentOptions opt;
  opt.packet_capacity = capacity;
  opt.num_queries = flags.queries;
  opt.seed = flags.seed;
  Result<bcast::ExperimentResult> res =
      bcast::RunExperiment(*index.value(), ds.subdivision, nullptr, opt);
  if (!res.ok()) return res.status();
  bcast::ExperimentResult r = std::move(res).value();
  r.index_name = KindName(kind);
  return r;
}

/// Prints one figure's table: rows = packet capacity, one column per
/// index; `value` selects the metric.
template <typename ValueFn>
void PrintFigureTable(const char* title, const workload::Dataset& ds,
                      const BenchFlags& flags, ValueFn value) {
  std::printf("\n%s — dataset %s (N=%d)\n", title, ds.name.c_str(),
              ds.subdivision.NumRegions());
  std::printf("%-10s", "packet");
  for (IndexKind k : kAllKinds) std::printf(" %12s", KindName(k));
  std::printf("\n");
  for (int capacity : flags.capacities) {
    std::printf("%-10d", capacity);
    for (IndexKind k : kAllKinds) {
      Result<bcast::ExperimentResult> res = RunCell(ds, k, capacity, flags);
      if (!res.ok()) {
        std::printf(" %12s", "ERR");
        std::fprintf(stderr, "cell %s/%s/%d failed: %s\n", ds.name.c_str(),
                     KindName(k), capacity, res.status().ToString().c_str());
        continue;
      }
      std::printf(" %12.3f", value(res.value()));
    }
    std::printf("\n");
  }
}

}  // namespace dtree::bench

#endif  // DTREE_BENCH_BENCH_UTIL_H_
