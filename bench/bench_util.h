// Shared harness code for the paper-reproduction benchmark binaries.
//
// Every figure binary sweeps (dataset x index x packet capacity) cells,
// runs the broadcast-channel experiment, and prints the series the paper
// plots. Each experiment cell is wall-clock timed and appended to a
// machine-readable JSON file so the perf trajectory is tracked across
// PRs. Flags:
//   --queries=N        queries per cell (default 20000; paper used 1e6)
//   --seed=S           RNG seed (default 42)
//   --datasets=a,b     subset of UNIFORM,HOSPITAL,PARK
//   --capacities=...   subset of 64,128,256,512,1024,2048
//   --threads=T        experiment threads (0 = hardware concurrency)
//   --bench-json=PATH  timing output (default BENCH_experiment.json;
//                      empty disables)
//   --trace-out=PATH   per-query JSONL trace output (default off); every
//                      cell appends lines labeled with its cell id
//   --telemetry-out=PATH  windowed telemetry timeline JSONL (default off;
//                      honored by the benches that attach FleetTelemetry)
//   --flight-out=PATH  flight-recorder black-box JSONL (default off)
//   --prom-out=PATH    Prometheus text-exposition snapshot (default off)

#ifndef DTREE_BENCH_BENCH_UTIL_H_
#define DTREE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/experiment.h"
#include "broadcast/fleet.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "dtree/dtree.h"
#include "workload/datasets.h"

namespace dtree::bench {

enum class IndexKind { kDTree, kRStar, kTrapTree, kTrianTree };

inline const char* KindName(IndexKind k) {
  switch (k) {
    case IndexKind::kDTree:
      return "d-tree";
    case IndexKind::kRStar:
      return "r*-tree";
    case IndexKind::kTrapTree:
      return "trap-tree";
    case IndexKind::kTrianTree:
      return "trian-tree";
  }
  return "?";
}

inline constexpr IndexKind kAllKinds[] = {
    IndexKind::kDTree, IndexKind::kRStar, IndexKind::kTrapTree,
    IndexKind::kTrianTree};

inline Result<std::unique_ptr<bcast::AirIndex>> BuildIndex(
    IndexKind kind, const sub::Subdivision& sub, int capacity) {
  switch (kind) {
    case IndexKind::kDTree: {
      core::DTree::Options o;
      o.packet_capacity = capacity;
      Result<core::DTree> r = core::DTree::Build(sub, o);
      if (!r.ok()) return r.status();
      return std::unique_ptr<bcast::AirIndex>(
          new core::DTree(std::move(r).value()));
    }
    case IndexKind::kRStar: {
      baselines::RStarTree::Options o;
      o.packet_capacity = capacity;
      Result<baselines::RStarTree> r = baselines::RStarTree::Build(sub, o);
      if (!r.ok()) return r.status();
      return std::unique_ptr<bcast::AirIndex>(
          new baselines::RStarTree(std::move(r).value()));
    }
    case IndexKind::kTrapTree: {
      baselines::TrapMap::Options o;
      o.packet_capacity = capacity;
      Result<baselines::TrapMap> r = baselines::TrapMap::Build(sub, o);
      if (!r.ok()) return r.status();
      return std::unique_ptr<bcast::AirIndex>(
          new baselines::TrapMap(std::move(r).value()));
    }
    case IndexKind::kTrianTree: {
      baselines::TrianTree::Options o;
      o.packet_capacity = capacity;
      Result<baselines::TrianTree> r = baselines::TrianTree::Build(sub, o);
      if (!r.ok()) return r.status();
      return std::unique_ptr<bcast::AirIndex>(
          new baselines::TrianTree(std::move(r).value()));
    }
  }
  return Status::InvalidArgument("unknown index kind");
}

struct BenchFlags {
  int queries = 20000;
  uint64_t seed = 42;
  std::vector<std::string> datasets{"UNIFORM", "HOSPITAL", "PARK"};
  std::vector<int> capacities{64, 128, 256, 512, 1024, 2048};
  int threads = 0;  ///< experiment threads; 0 = hardware concurrency
  std::string bench_json = "BENCH_experiment.json";
  std::string trace_out;      ///< JSONL query traces; empty disables
  std::string telemetry_out;  ///< windowed timeline JSONL; empty disables
  std::string flight_out;     ///< flight-recorder JSONL; empty disables
  std::string prom_out;       ///< Prometheus text snapshot; empty disables
};

/// Process-wide JSONL sink for --trace-out, shared by every cell of a
/// bench run (lines carry the cell id). Created on first use, nullptr
/// when the flag is unset; flushed when the process exits.
inline bcast::JsonlTraceSink* GlobalTraceSink(const BenchFlags& flags) {
  if (flags.trace_out.empty()) return nullptr;
  static std::unique_ptr<bcast::JsonlTraceSink> sink =
      std::make_unique<bcast::JsonlTraceSink>(flags.trace_out);
  return sink->ok() ? sink.get() : nullptr;
}

/// Wires --trace-out into an ExperimentOptions for benches that run the
/// experiment themselves (outside RunCell); subsequent JSONL lines carry
/// `cell_id`. No-op when the flag is unset.
inline void AttachTrace(const BenchFlags& flags, const std::string& cell_id,
                        bcast::ExperimentOptions* opt) {
  bcast::JsonlTraceSink* trace = GlobalTraceSink(flags);
  if (trace != nullptr) {
    trace->set_label(cell_id);
    opt->trace_sink = trace;
  }
}

/// Per-cell latency/tuning distribution summary plus fault-counter
/// totals, derived from the experiment's histograms and written next to
/// the timings so the perf trajectory tracks percentiles and the fault
/// ladder's activity, not just means.
struct CellPercentiles {
  bool has = false;
  double p50_latency = 0.0, p95_latency = 0.0, p99_latency = 0.0;
  double max_latency = 0.0;
  double p50_tuning = 0.0, p95_tuning = 0.0, p99_tuning = 0.0;
  double max_tuning = 0.0;
  /// MetricsRegistry fault totals; all zero on a fault-free run.
  bool has_counters = false;
  int64_t total_retries = 0;
  int64_t total_lost_packets = 0;
  int64_t total_corrupted_packets = 0;
  int64_t unrecoverable_queries = 0;
  int64_t fallback_queries = 0;

  static CellPercentiles From(const bcast::ExperimentResult& res) {
    CellPercentiles p;
    const Histogram* lat = res.metrics.FindHistogram(bcast::kLatencyHist);
    const Histogram* tun =
        res.metrics.FindHistogram(bcast::kTuningTotalHist);
    if (lat == nullptr || tun == nullptr) return p;
    p.has = true;
    p.p50_latency = lat->Percentile(0.50);
    p.p95_latency = lat->Percentile(0.95);
    p.p99_latency = lat->Percentile(0.99);
    p.max_latency = lat->Max();
    p.p50_tuning = tun->Percentile(0.50);
    p.p95_tuning = tun->Percentile(0.95);
    p.p99_tuning = tun->Percentile(0.99);
    p.max_tuning = tun->Max();
    p.has_counters = true;
    p.total_retries = res.total_retries;
    // The driver keeps no lost-packet total; per-query samples are small
    // integers, so the histogram's exact sum reconstructs it.
    const Histogram* lost =
        res.metrics.FindHistogram(bcast::kLostPacketsHist);
    p.total_lost_packets =
        lost == nullptr ? 0 : static_cast<int64_t>(lost->Sum());
    p.total_corrupted_packets = res.total_corrupted_packets;
    p.unrecoverable_queries = res.unrecoverable_queries;
    p.fallback_queries = res.fallback_queries;
    return p;
  }

  /// Fleet runs record the same per-query histograms and keep explicit
  /// fault totals, so the cell schema is shared with the experiment
  /// driver's.
  static CellPercentiles From(const bcast::FleetResult& res) {
    CellPercentiles p;
    const Histogram* lat = res.metrics.FindHistogram(bcast::kLatencyHist);
    const Histogram* tun =
        res.metrics.FindHistogram(bcast::kTuningTotalHist);
    if (lat == nullptr || tun == nullptr) return p;
    p.has = true;
    p.p50_latency = lat->Percentile(0.50);
    p.p95_latency = lat->Percentile(0.95);
    p.p99_latency = lat->Percentile(0.99);
    p.max_latency = lat->Max();
    p.p50_tuning = tun->Percentile(0.50);
    p.p95_tuning = tun->Percentile(0.95);
    p.p99_tuning = tun->Percentile(0.99);
    p.max_tuning = tun->Max();
    p.has_counters = true;
    p.total_retries = res.total_retries;
    p.total_lost_packets = res.total_lost_packets;
    p.total_corrupted_packets = res.total_corrupted_packets;
    p.unrecoverable_queries = res.unrecoverable_queries;
    p.fallback_queries = res.fallback_queries;
    return p;
  }
};

/// Collects per-cell wall-clock timings (plus optional distribution
/// percentiles) and writes them as JSON on Flush()/destruction:
///   {"bench": ..., "threads": T, "cells":
///    [{"cell": id, "wall_s": s, "qps": q, "threads": T,
///      "p50_latency": ..., ..., "max_tuning": ...}, ...]}
class BenchRecorder {
 public:
  BenchRecorder(std::string bench_name, const BenchFlags& flags)
      : bench_name_(std::move(bench_name)), path_(flags.bench_json),
        threads_(flags.threads > 0 ? flags.threads
                                   : ThreadPool::DefaultThreads()),
        queries_(flags.queries), seed_(flags.seed) {}

  ~BenchRecorder() { Flush(); }

  /// `cell_threads` overrides the flag-derived thread count for benches
  /// that vary it per cell (the scaling bench); <= 0 keeps the default.
  /// `extra_json` is emitted verbatim inside the cell object — it must
  /// be empty or a string of the form `, "key": value, ...` (leading
  /// comma included) of pre-formatted JSON fields.
  void Record(const std::string& cell, double wall_s, double qps,
              int cell_threads = 0,
              const CellPercentiles& pct = CellPercentiles{},
              std::string extra_json = "") {
    cells_.push_back({cell, wall_s, qps,
                      cell_threads > 0 ? cell_threads : threads_, pct,
                      std::move(extra_json)});
  }

  void Flush() {
    if (path_.empty() || flushed_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n  \"threads\": %d,\n"
                 "  \"queries_per_cell\": %d,\n  \"seed\": %llu,\n"
                 "  \"cells\": [",
                 bench_name_.c_str(), threads_, queries_,
                 static_cast<unsigned long long>(seed_));
    for (size_t i = 0; i < cells_.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"cell\": \"%s\", \"wall_s\": %.6f, "
                   "\"qps\": %.1f, \"threads\": %d",
                   i == 0 ? "" : ",", cells_[i].cell.c_str(),
                   cells_[i].wall_s, cells_[i].qps, cells_[i].threads);
      const CellPercentiles& p = cells_[i].pct;
      if (p.has) {
        std::fprintf(f,
                     ", \"p50_latency\": %.3f, \"p95_latency\": %.3f, "
                     "\"p99_latency\": %.3f, \"max_latency\": %.3f, "
                     "\"p50_tuning\": %.3f, \"p95_tuning\": %.3f, "
                     "\"p99_tuning\": %.3f, \"max_tuning\": %.3f",
                     p.p50_latency, p.p95_latency, p.p99_latency,
                     p.max_latency, p.p50_tuning, p.p95_tuning,
                     p.p99_tuning, p.max_tuning);
      }
      if (p.has_counters) {
        std::fprintf(f,
                     ", \"retries_total\": %lld, \"lost_total\": %lld, "
                     "\"corrupted_total\": %lld, \"unrecoverable\": %lld, "
                     "\"fallback\": %lld",
                     static_cast<long long>(p.total_retries),
                     static_cast<long long>(p.total_lost_packets),
                     static_cast<long long>(p.total_corrupted_packets),
                     static_cast<long long>(p.unrecoverable_queries),
                     static_cast<long long>(p.fallback_queries));
      }
      if (!cells_[i].extra_json.empty()) {
        std::fprintf(f, "%s", cells_[i].extra_json.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    flushed_ = true;
    std::fprintf(stderr, "cell timings written to %s (%zu cells)\n",
                 path_.c_str(), cells_.size());
  }

 private:
  struct Cell {
    std::string cell;
    double wall_s;
    double qps;
    int threads;
    CellPercentiles pct;
    std::string extra_json;
  };

  std::string bench_name_;
  std::string path_;
  int threads_;
  int queries_;
  uint64_t seed_;
  std::vector<Cell> cells_;
  bool flushed_ = false;
};

/// Writes `content` to `path` (truncating); false + stderr on failure.
inline bool WriteTextFile(const std::string& path,
                          const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

/// Wall-clock seconds elapsed since `t0`.
inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inline std::vector<std::string> SplitCsv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--queries=", 10) == 0) {
      flags.queries = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      flags.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--datasets=", 11) == 0) {
      flags.datasets = SplitCsv(arg + 11);
    } else if (std::strncmp(arg, "--capacities=", 13) == 0) {
      flags.capacities.clear();
      for (const std::string& c : SplitCsv(arg + 13)) {
        flags.capacities.push_back(std::atoi(c.c_str()));
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      flags.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--bench-json=", 13) == 0) {
      flags.bench_json = arg + 13;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      flags.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
      flags.telemetry_out = arg + 16;
    } else if (std::strncmp(arg, "--flight-out=", 13) == 0) {
      flags.flight_out = arg + 13;
    } else if (std::strncmp(arg, "--prom-out=", 11) == 0) {
      flags.prom_out = arg + 11;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --queries= --seed= "
                   "--datasets= --capacities= --threads= --bench-json= "
                   "--trace-out= --telemetry-out= --flight-out= "
                   "--prom-out=)\n",
                   arg);
      std::exit(2);
    }
  }
  return flags;
}

inline Result<std::vector<workload::Dataset>> LoadDatasets(
    const BenchFlags& flags) {
  std::vector<workload::Dataset> out;
  for (const std::string& name : flags.datasets) {
    Result<workload::Dataset> d =
        name == "UNIFORM"    ? workload::MakeUniformDataset()
        : name == "HOSPITAL" ? workload::MakeHospitalDataset()
        : name == "PARK"     ? workload::MakeParkDataset()
                             : Result<workload::Dataset>(Status::InvalidArgument(
                                   "unknown dataset " + name));
    if (!d.ok()) return d.status();
    out.push_back(std::move(d).value());
  }
  return out;
}

/// Runs one (dataset, kind, capacity) cell end to end. The experiment's
/// wall-clock time, throughput, and latency/tuning percentiles are
/// recorded under the cell id "<dataset>/<index>/cap<capacity>" when
/// `recorder` is non-null; with --trace-out set, every query of the cell
/// is appended to the shared JSONL sink labeled with that cell id.
inline Result<bcast::ExperimentResult> RunCell(const workload::Dataset& ds,
                                               IndexKind kind, int capacity,
                                               const BenchFlags& flags,
                                               BenchRecorder* recorder) {
  Result<std::unique_ptr<bcast::AirIndex>> index =
      BuildIndex(kind, ds.subdivision, capacity);
  if (!index.ok()) return index.status();
  const std::string cell_id =
      ds.name + "/" + KindName(kind) + "/cap" + std::to_string(capacity);
  bcast::ExperimentOptions opt;
  opt.packet_capacity = capacity;
  opt.num_queries = flags.queries;
  opt.seed = flags.seed;
  opt.num_threads = flags.threads;
  bcast::JsonlTraceSink* trace = GlobalTraceSink(flags);
  if (trace != nullptr) {
    trace->set_label(cell_id);
    opt.trace_sink = trace;
  }
  const auto t0 = std::chrono::steady_clock::now();
  Result<bcast::ExperimentResult> res =
      bcast::RunExperiment(*index.value(), ds.subdivision, nullptr, opt);
  const double wall_s = SecondsSince(t0);
  if (!res.ok()) return res.status();
  if (recorder != nullptr) {
    recorder->Record(cell_id, wall_s,
                     flags.queries / std::max(wall_s, 1e-12), 0,
                     CellPercentiles::From(res.value()));
  }
  bcast::ExperimentResult r = std::move(res).value();
  r.index_name = KindName(kind);
  return r;
}

/// Prints one figure's table: rows = packet capacity, one column per
/// index; `value` selects the metric. A second table reports the measured
/// per-cell query throughput (thousand queries / second) and the total
/// wall-clock time for the sweep.
template <typename ValueFn>
void PrintFigureTable(const char* title, const workload::Dataset& ds,
                      const BenchFlags& flags, BenchRecorder* recorder,
                      ValueFn value) {
  std::printf("\n%s — dataset %s (N=%d)\n", title, ds.name.c_str(),
              ds.subdivision.NumRegions());
  std::printf("%-10s", "packet");
  for (IndexKind k : kAllKinds) std::printf(" %12s", KindName(k));
  std::printf("\n");
  std::vector<std::vector<double>> kqps_rows;
  const auto sweep_t0 = std::chrono::steady_clock::now();
  for (int capacity : flags.capacities) {
    std::printf("%-10d", capacity);
    std::vector<double> kqps_row;
    for (IndexKind k : kAllKinds) {
      const auto t0 = std::chrono::steady_clock::now();
      Result<bcast::ExperimentResult> res =
          RunCell(ds, k, capacity, flags, recorder);
      kqps_row.push_back(flags.queries /
                         std::max(SecondsSince(t0), 1e-12) / 1000.0);
      if (!res.ok()) {
        std::printf(" %12s", "ERR");
        std::fprintf(stderr, "cell %s/%s/%d failed: %s\n", ds.name.c_str(),
                     KindName(k), capacity, res.status().ToString().c_str());
        continue;
      }
      std::printf(" %12.3f", value(res.value()));
    }
    std::printf("\n");
    kqps_rows.push_back(std::move(kqps_row));
  }
  const double sweep_s = SecondsSince(sweep_t0);
  std::printf("timing — kqueries/sec per cell (threads=%d, wall %.2fs "
              "total, incl. index build)\n",
              flags.threads > 0 ? flags.threads : ThreadPool::DefaultThreads(),
              sweep_s);
  for (size_t row = 0; row < kqps_rows.size(); ++row) {
    std::printf("%-10d", flags.capacities[row]);
    for (double kqps : kqps_rows[row]) std::printf(" %12.1f", kqps);
    std::printf("\n");
  }
}

}  // namespace dtree::bench

#endif  // DTREE_BENCH_BENCH_UTIL_H_
