// Broadcast-cycle profiler: where inside a query does a client spend its
// energy, and how heavy are the tails the mean-based figures hide?
//
// For every index structure and every loss rate the binary runs the
// standard experiment with per-query tracing enabled and aggregates the
// stream in a CycleProfiler, reporting
//   * latency and tuning-time percentiles (p50/p95/p99/max),
//   * a retry histogram,
//   * index-packet reads attributed to D-tree levels (which part of the
//     tree costs tuning energy),
//   * awake packets attributed to their position within the broadcast
//     cycle,
// plus a p99-tuning-vs-loss-rate table across all four structures
// (EXPERIMENTS.md E11). Cell percentiles land in the BENCH_*.json schema
// (default BENCH_trace_profile.json); --trace-out additionally streams
// every query as JSONL for offline analysis (tools/trace_summary.py);
// --telemetry-out appends one windowed-timeline block per cell (fed
// through TelemetryTraceSink, validated by tools/telemetry_report.py).
//
// Extra flags (on top of the shared ones):
//   --loss-rates=a,b,c   i.i.d. loss rates to sweep (default 0,0.05,0.1,0.2)
//   --capacity=N         packet capacity (default 256)
//   --bins=N             broadcast-cycle position bins (default 16)

#include <map>

#include "bench_util.h"
#include "broadcast/telemetry.h"
#include "broadcast/trace.h"

int main(int argc, char** argv) {
  using namespace dtree::bench;
  namespace bcast = dtree::bcast;
  std::vector<double> loss_rates{0.0, 0.05, 0.1, 0.2};
  int capacity = 256;
  int bins = 16;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--loss-rates=", 13) == 0) {
      loss_rates.clear();
      for (const std::string& r : SplitCsv(argv[i] + 13)) {
        loss_rates.push_back(std::atof(r.c_str()));
      }
    } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
      capacity = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--bins=", 7) == 0) {
      bins = std::atoi(argv[i] + 7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchFlags flags =
      ParseFlags(static_cast<int>(passthrough.size()), passthrough.data());
  if (flags.bench_json == "BENCH_experiment.json") {
    flags.bench_json = "BENCH_trace_profile.json";
  }
  flags.datasets = {flags.datasets.front()};

  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  const dtree::workload::Dataset& ds = datasets.value().front();

  std::printf("== Broadcast-cycle trace profile ==\n");
  std::printf("dataset %s (N=%d), cap %d, %d queries/cell, seed %llu\n",
              ds.name.c_str(), ds.subdivision.NumRegions(), capacity,
              flags.queries, static_cast<unsigned long long>(flags.seed));

  BenchRecorder recorder("bench_trace_profile", flags);
  bool ok = true;
  // One timeline block per cell, appended and written at the end.
  std::string timeline_blocks;
  // p99 tuning per (loss rate, index) for the E11 summary table.
  std::map<double, std::map<std::string, double>> p99_tuning;

  for (IndexKind kind : kAllKinds) {
    auto index = BuildIndex(kind, ds.subdivision, capacity);
    if (!index.ok()) {
      std::fprintf(stderr, "build %s: %s\n", KindName(kind),
                   index.status().ToString().c_str());
      return 1;
    }
    for (double rate : loss_rates) {
      char cell[128];
      std::snprintf(cell, sizeof(cell), "%s/%s/cap%d/loss%g",
                    ds.name.c_str(), KindName(kind), capacity, rate);

      dtree::bcast::ExperimentOptions opt;
      opt.packet_capacity = capacity;
      opt.num_queries = flags.queries;
      opt.seed = flags.seed;
      opt.num_threads = flags.threads;
      if (rate > 0.0) {
        opt.loss.model = bcast::LossModel::kIid;
        opt.loss.loss_rate = rate;
        opt.loss.seed = flags.seed + 1;
      }

      // Channel layout is needed to size the profiler; it must match the
      // one the experiment derives from the same options.
      bcast::ChannelOptions copt;
      copt.packet_capacity = capacity;
      auto channel = bcast::BroadcastChannel::Create(
          index.value()->NumIndexPackets(), ds.subdivision.NumRegions(),
          copt);
      if (!channel.ok()) {
        std::fprintf(stderr, "channel %s: %s\n", cell,
                     channel.status().ToString().c_str());
        return 1;
      }
      bcast::CycleProfiler profiler(channel.value().cycle_packets(), bins);
      bcast::JsonlTraceSink* jsonl = GlobalTraceSink(flags);
      if (jsonl != nullptr) jsonl->set_label(cell);
      bcast::FleetTelemetry telemetry;
      std::unique_ptr<bcast::TelemetryTraceSink> telemetry_sink;
      if (!flags.telemetry_out.empty()) {
        telemetry.Reset(channel.value().cycle_packets(), /*num_shards=*/1);
        telemetry_sink =
            std::make_unique<bcast::TelemetryTraceSink>(&telemetry);
      }
      bcast::TeeTraceSink tee({&profiler, jsonl, telemetry_sink.get()});
      opt.trace_sink = &tee;

      const auto t0 = std::chrono::steady_clock::now();
      auto res = dtree::bcast::RunExperiment(*index.value(), ds.subdivision,
                                             nullptr, opt);
      const double wall_s = SecondsSince(t0);
      if (!res.ok()) {
        std::fprintf(stderr, "cell %s failed: %s\n", cell,
                     res.status().ToString().c_str());
        ok = false;
        continue;
      }
      const auto& r = res.value();
      recorder.Record(cell, wall_s, flags.queries / std::max(wall_s, 1e-12),
                      0, CellPercentiles::From(r));
      if (telemetry_sink != nullptr) {
        telemetry.MergeShards();
        timeline_blocks += telemetry.TimelineJsonl(cell);
      }

      const dtree::Histogram& lat = profiler.latency_hist();
      const dtree::Histogram& tun = profiler.tuning_hist();
      const dtree::Histogram& ret = profiler.retries_hist();
      p99_tuning[rate][KindName(kind)] = tun.Percentile(0.99);

      std::printf("\n-- %s --\n", cell);
      std::printf("latency  p50 %8.1f  p95 %8.1f  p99 %8.1f  max %8.1f"
                  "  (mean %8.1f)\n",
                  lat.Percentile(0.50), lat.Percentile(0.95),
                  lat.Percentile(0.99), lat.Max(), r.mean_latency);
      std::printf("tuning   p50 %8.1f  p95 %8.1f  p99 %8.1f  max %8.1f"
                  "  (mean %8.1f)\n",
                  tun.Percentile(0.50), tun.Percentile(0.95),
                  tun.Percentile(0.99), tun.Max(), r.mean_tuning_total);
      if (ret.Max() > 0.0) {
        std::printf("retries  p95 %.0f  p99 %.0f  max %.0f  "
                    "(mean %.3f, unrecoverable %lld)\n",
                    ret.Percentile(0.95), ret.Percentile(0.99), ret.Max(),
                    r.mean_retries,
                    static_cast<long long>(r.unrecoverable_queries));
      }

      // Per-level attribution: D-tree probes annotate their path, so the
      // profiler can say where in the tree the energy goes.
      const std::vector<int64_t>& levels = profiler.level_reads();
      if (!levels.empty()) {
        int64_t total = profiler.unattributed_reads();
        for (int64_t c : levels) total += c;
        std::printf("index reads by tree level (total %lld):",
                    static_cast<long long>(total));
        for (size_t d = 0; d < levels.size(); ++d) {
          std::printf(" L%zu %.1f%%", d,
                      100.0 * static_cast<double>(levels[d]) /
                          static_cast<double>(std::max<int64_t>(total, 1)));
        }
        if (profiler.unattributed_reads() > 0) {
          std::printf(" ? %.1f%%",
                      100.0 *
                          static_cast<double>(profiler.unattributed_reads()) /
                          static_cast<double>(std::max<int64_t>(total, 1)));
        }
        std::printf("\n");
      }

      // Cycle-position attribution: which slice of the broadcast cycle
      // the client is awake for.
      const std::vector<int64_t>& pos = profiler.position_reads();
      int64_t awake = 0;
      for (int64_t c : pos) awake += c;
      if (awake > 0) {
        std::printf("awake packets by cycle position (%d bins):", bins);
        for (int64_t c : pos) {
          std::printf(" %.1f%%", 100.0 * static_cast<double>(c) /
                                     static_cast<double>(awake));
        }
        std::printf("\n");
      }
    }
  }

  std::printf("\n== p99 tuning time vs. loss rate (E11) ==\n%-10s", "loss");
  for (IndexKind k : kAllKinds) std::printf(" %12s", KindName(k));
  std::printf("\n");
  for (const auto& [rate, row] : p99_tuning) {
    std::printf("%-10g", rate);
    for (IndexKind k : kAllKinds) {
      const auto it = row.find(KindName(k));
      if (it == row.end()) {
        std::printf(" %12s", "ERR");
      } else {
        std::printf(" %12.1f", it->second);
      }
    }
    std::printf("\n");
  }

  if (!flags.telemetry_out.empty() &&
      !WriteTextFile(flags.telemetry_out, timeline_blocks)) {
    ok = false;
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: one or more profile cells failed\n");
    return 1;
  }
  return 0;
}
