// Ablation bench for the D-tree's three design choices (§4.2/§4.4):
//   * inter-prob tie-breaking among equal-size partitions,
//   * the RMC/LMC early-termination arrangement for multi-packet nodes,
//   * greedy partial-packet merging.
// Reports tuning time, normalized latency, and index packets with each
// knob toggled off, against the full configuration.

#include "bench_util.h"

namespace {

using dtree::bcast::ExperimentOptions;
using dtree::bcast::ExperimentResult;
using dtree::bcast::RunExperiment;
using dtree::bench::BenchFlags;
using dtree::core::DTree;

struct Variant {
  const char* name;
  DTree::Options options;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dtree::bench;
  const BenchFlags flags = ParseFlags(argc, argv);
  auto datasets = LoadDatasets(flags);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  std::printf("== D-tree ablations (tuning packets / normalized latency / "
              "index packets) ==\n");
  std::printf("queries per cell: %d, seed %llu\n", flags.queries,
              static_cast<unsigned long long>(flags.seed));
  BenchRecorder recorder("bench_ablation_dtree", flags);
  for (const auto& ds : datasets.value()) {
    std::printf("\ndataset %s (N=%d)\n", ds.name.c_str(),
                ds.subdivision.NumRegions());
    for (int capacity : flags.capacities) {
      DTree::Options full;
      full.packet_capacity = capacity;
      DTree::Options no_interprob = full;
      no_interprob.interprob_tiebreak = false;
      DTree::Options no_early = full;
      no_early.early_termination = false;
      DTree::Options no_merge = full;
      no_merge.merge_leaf_packets = false;
      const Variant variants[] = {{"full", full},
                                  {"-interprob", no_interprob},
                                  {"-early-term", no_early},
                                  {"-pkt-merge", no_merge}};
      std::printf("  packet %d\n", capacity);
      for (const Variant& v : variants) {
        auto tree = DTree::Build(ds.subdivision, v.options);
        if (!tree.ok()) {
          std::printf("    %-12s ERR: %s\n", v.name,
                      tree.status().ToString().c_str());
          continue;
        }
        const std::string cell = ds.name + "/" + v.name + "/cap" +
                                 std::to_string(capacity);
        ExperimentOptions opt;
        opt.packet_capacity = capacity;
        opt.num_queries = flags.queries;
        opt.seed = flags.seed;
        opt.num_threads = flags.threads;
        AttachTrace(flags, cell, &opt);
        const auto t0 = std::chrono::steady_clock::now();
        auto res = RunExperiment(tree.value(), ds.subdivision, nullptr, opt);
        const double wall_s = SecondsSince(t0);
        if (!res.ok()) {
          std::printf("    %-12s ERR: %s\n", v.name,
                      res.status().ToString().c_str());
          continue;
        }
        const double qps = flags.queries / std::max(wall_s, 1e-12);
        recorder.Record(cell, wall_s, qps, 0,
                        CellPercentiles::From(res.value()));
        const ExperimentResult& r = res.value();
        std::printf("    %-12s tuning %7.3f  latency %6.3f  packets %5d"
                    "  (%.3fs, %.1f kqps)\n",
                    v.name, r.mean_tuning_index, r.normalized_latency,
                    r.index_packets, wall_s, qps / 1000.0);
      }
    }
  }
  return 0;
}
