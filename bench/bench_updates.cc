// Versioned-broadcast bench: live dataset updates under fleet load.
//
// Sweeps update rate (number of broadcast epochs over a fixed horizon) x
// index type x packet loss, running every cell through RunFleetVersioned
// at 1, 4 and 8 worker threads. Site evolution is driven by the real
// server path — a VersionedProgram with randomized insert/delete batches
// committed at cycle boundaries — and the bench verifies, with a nonzero
// exit on violation:
//
//   1. Commit oracle: every epoch CommitEpoch publishes is bit-identical
//      (site list and every broadcast frame) to VersionedProgram::BuildEpoch
//      run cold on the same evolved site set.
//   2. Determinism: FleetResult — including the version-skew accounting
//      (total_epoch_switches, epoch_churn_queries, mean_epoch_switches) —
//      is bit-identical at 1, 4, and 8 worker threads for every cell.
//   3. Liveness of the rung: multi-epoch cells actually observe epoch
//      switches (a sweep that never exercises the ladder measures nothing).
//
// Extra flags (on top of the shared ones):
//   --clients=N     concurrent clients (default 10000)
//   --updates=U     site updates per committed epoch (default 4; even
//                   values alternate insert/delete so the site count holds)
//   --capacity=N    packet capacity (default 256)
// The shared --threads flag is ignored: the bench always sweeps 1/4/8.
//
// With --trace-out set, every cell's queries are appended to the shared
// JSONL sink (lines carry the versioned "epoch"/"epoch_switches" fields
// and "epoch_switch" events; tools/trace_summary.py --check validates
// them). With --telemetry-out / --flight-out set, a FleetTelemetry sink
// rides along and the bench additionally verifies that the timeline and
// flight-recorder bytes are identical at 1/4/8 threads for every cell.

#include "bench_util.h"

#include <cinttypes>
#include <cmath>

#include "broadcast/fleet.h"
#include "broadcast/telemetry.h"
#include "dtree/versioned.h"
#include "subdivision/voronoi.h"

namespace {

using dtree::Rng;
using dtree::bcast::FleetResult;
using dtree::core::EpochState;
using dtree::core::SiteUpdate;
using dtree::core::VersionedProgram;
using dtree::geom::Point;

/// Bitwise equality over every FleetResult scalar, epoch accounting
/// included (the superset of bench_fleet's SameFleetResult).
bool SameVersionedResult(const FleetResult& a, const FleetResult& b) {
  return a.queries == b.queries && a.sessions == b.sessions &&
         a.departures == b.departures && a.mean_latency == b.mean_latency &&
         a.mean_tuning_index == b.mean_tuning_index &&
         a.mean_tuning_total == b.mean_tuning_total &&
         a.mean_retries == b.mean_retries &&
         a.mean_lost_packets == b.mean_lost_packets &&
         a.mean_corrupted_packets == b.mean_corrupted_packets &&
         a.total_retries == b.total_retries &&
         a.total_lost_packets == b.total_lost_packets &&
         a.total_corrupted_packets == b.total_corrupted_packets &&
         a.unrecoverable_queries == b.unrecoverable_queries &&
         a.fallback_queries == b.fallback_queries &&
         a.total_epoch_switches == b.total_epoch_switches &&
         a.epoch_churn_queries == b.epoch_churn_queries &&
         a.mean_epoch_switches == b.mean_epoch_switches &&
         a.min_latency == b.min_latency && a.max_latency == b.max_latency &&
         a.min_tuning_total == b.min_tuning_total &&
         a.max_tuning_total == b.max_tuning_total;
}

/// Insert candidate well clear of every live site so a commit never trips
/// the Voronoi separation floor (rejection is essentially free at these
/// densities, but a collision would abort a whole cell).
Point DrawInsertPoint(const std::vector<Point>& sites,
                      const dtree::geom::BBox& area, Rng* rng) {
  const double margin = 8.0 * dtree::sub::kMinSiteSeparation;
  for (;;) {
    const Point p{rng->Uniform(area.min_x + 1.0, area.max_x - 1.0),
                  rng->Uniform(area.min_y + 1.0, area.max_y - 1.0)};
    bool clear = true;
    for (const Point& s : sites) {
      const double dx = s.x - p.x, dy = s.y - p.y;
      if (dx * dx + dy * dy < margin * margin) {
        clear = false;
        break;
      }
    }
    if (clear) return p;
  }
}

/// One epoch timeline: E states published by a VersionedProgram, each
/// commit checked bit-for-bit against the cold-rebuild oracle.
struct EpochTimeline {
  std::vector<std::shared_ptr<const EpochState>> states;
};

bool SameSites(const std::vector<Point>& a, const std::vector<Point>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x || a[i].y != b[i].y) return false;
  }
  return true;
}

bool SameProgramBytes(const dtree::core::BroadcastProgram& a,
                      const dtree::core::BroadcastProgram& b) {
  if (a.num_frames() != b.num_frames()) return false;
  for (int64_t i = 0; i < a.num_frames(); ++i) {
    const auto fa = a.frame(i);
    const auto fb = b.frame(i);
    if (fa.size() != fb.size() ||
        !std::equal(fa.begin(), fa.end(), fb.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtree::bench;
  namespace bcast = dtree::bcast;
  int64_t clients = 10000;
  int updates_per_epoch = 4;
  int capacity = 256;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::strtoll(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--updates=", 10) == 0) {
      updates_per_epoch = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--capacity=", 11) == 0) {
      capacity = std::atoi(argv[i] + 11);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  BenchFlags flags =
      ParseFlags(static_cast<int>(passthrough.size()), passthrough.data());
  if (flags.bench_json == "BENCH_experiment.json") {
    flags.bench_json = "BENCH_updates.json";
  }

  const dtree::geom::BBox area = dtree::workload::DefaultServiceArea();
  VersionedProgram::Options popt;
  popt.service_area = area;
  popt.channel.packet_capacity = capacity;
  popt.tree.packet_capacity = capacity;

  Rng base_rng(flags.seed);
  const std::vector<Point> base_sites =
      dtree::workload::UniformPoints(40, area, &base_rng);

  bool ok = true;

  // --- Site evolution per update rate, through the real server path.
  // Every commit is held to the cold-rebuild oracle before any fleet runs.
  const int kEpochCounts[] = {2, 4, 8};
  std::vector<EpochTimeline> timelines;
  for (int num_epochs : kEpochCounts) {
    auto program = VersionedProgram::Create(base_sites, popt);
    if (!program.ok()) {
      std::fprintf(stderr, "epoch 0 build failed: %s\n",
                   program.status().ToString().c_str());
      return 1;
    }
    EpochTimeline tl;
    tl.states.push_back(program.value()->Acquire());
    std::vector<Point> sites = base_sites;
    Rng update_rng(Rng::MixStream(flags.seed, static_cast<uint64_t>(num_epochs)));
    for (int e = 1; e < num_epochs; ++e) {
      std::vector<SiteUpdate> batch;
      for (int u = 0; u < updates_per_epoch; ++u) {
        if (u % 2 == 0) {
          batch.push_back(
              SiteUpdate::Insert(DrawInsertPoint(sites, area, &update_rng)));
        } else {
          batch.push_back(SiteUpdate::Delete(
              Point{update_rng.Uniform(area.min_x, area.max_x),
                    update_rng.Uniform(area.min_y, area.max_y)}));
        }
        // Keep `sites` mirroring the queue so later insert candidates are
        // drawn against the set the commit will actually see.
        auto applied = VersionedProgram::ApplyUpdates(sites, {batch.back()});
        DTREE_CHECK(applied.ok());
        sites = std::move(applied).value();
      }
      for (const SiteUpdate& up : batch) program.value()->Enqueue(up);
      auto committed = program.value()->CommitEpoch();
      if (!committed.ok()) {
        std::fprintf(stderr, "commit %d/%d failed: %s\n", e, num_epochs,
                     committed.status().ToString().c_str());
        return 1;
      }
      auto cold = VersionedProgram::BuildEpoch(sites, popt,
                                              static_cast<uint16_t>(e));
      if (!cold.ok()) {
        std::fprintf(stderr, "cold oracle build failed: %s\n",
                     cold.status().ToString().c_str());
        return 1;
      }
      if (committed.value()->epoch != e ||
          !SameSites(committed.value()->sites, cold.value()->sites) ||
          !SameProgramBytes(committed.value()->program,
                            cold.value()->program)) {
        std::fprintf(stderr,
                     "FAIL: epoch %d commit diverges from the cold-rebuild "
                     "oracle (E=%d)\n",
                     e, num_epochs);
        ok = false;
      }
      tl.states.push_back(std::move(committed).value());
    }
    timelines.push_back(std::move(tl));
  }
  if (ok) {
    std::printf("commit oracle: every epoch == cold rebuild, "
                "bit-for-bit ✓\n");
  }

  // --- The sweep: update rate x index type x loss, 1/4/8 threads each.
  std::printf("== Versioned fleet bench ==\n");
  std::printf("UNIFORM(40 sites), cap %d, %lld clients, %d updates/epoch\n",
              capacity, static_cast<long long>(clients), updates_per_epoch);
  std::printf("%-34s %10s %10s %9s %9s %8s %8s\n", "cell", "queries",
              "latency", "switches", "churned", "unrec", "wall_s");

  BenchRecorder recorder("bench_updates", flags);
  const bool telemetry_on =
      !flags.telemetry_out.empty() || !flags.flight_out.empty();
  bcast::FleetTelemetry telemetry;
  std::string all_timeline, all_flight;
  const double kLossRates[] = {0.0, 0.1};
  for (size_t ti = 0; ti < timelines.size(); ++ti) {
    const int num_epochs = kEpochCounts[ti];
    const EpochTimeline& tl = timelines[ti];
    for (IndexKind kind : kAllKinds) {
      // Per-epoch indexes for this kind. The D-tree rides the server's own
      // tree; baselines are built over the same published subdivisions.
      std::vector<std::unique_ptr<bcast::AirIndex>> built;
      std::vector<bcast::FleetEpoch> epochs;
      bool kind_ok = true;
      for (size_t e = 0; e < tl.states.size(); ++e) {
        const EpochState& st = *tl.states[e];
        const bcast::AirIndex* index = &st.tree;
        if (kind != IndexKind::kDTree) {
          auto b = BuildIndex(kind, st.subdivision, capacity);
          if (!b.ok()) {
            std::fprintf(stderr, "%s epoch %zu build failed: %s\n",
                         KindName(kind), e, b.status().ToString().c_str());
            kind_ok = false;
            break;
          }
          built.push_back(std::move(b).value());
          index = built.back().get();
        }
        epochs.push_back(bcast::FleetEpoch{index, &st.subdivision, st.epoch,
                                           /*cycles=*/1});
      }
      if (!kind_ok) {
        ok = false;
        continue;
      }
      for (double loss_rate : kLossRates) {
        bcast::FleetOptions fopt;
        fopt.packet_capacity = capacity;
        fopt.num_clients = clients;
        fopt.sim_cycles = static_cast<double>(num_epochs) + 1.0;
        fopt.queries_per_cycle = 1.0;
        fopt.churn = 0.05;
        fopt.seed = flags.seed;
        if (loss_rate > 0.0) {
          fopt.loss.model = bcast::LossModel::kIid;
          fopt.loss.loss_rate = loss_rate;
          fopt.loss.seed = flags.seed + 1;
        }
        char cell[128];
        std::snprintf(cell, sizeof(cell), "UNIFORM/%s/e%d/loss%.2g",
                      KindName(kind), num_epochs, loss_rate);
        FleetResult reference;
        bool have_reference = false;
        std::string ref_timeline, ref_flight;
        for (int threads : {1, 4, 8}) {
          bcast::FleetOptions run = fopt;
          run.num_threads = threads;
          bcast::JsonlTraceSink* trace = GlobalTraceSink(flags);
          if (trace != nullptr) {
            trace->set_label(std::string(cell) + "/t" +
                             std::to_string(threads));
            run.trace_sink = trace;
          }
          if (telemetry_on) run.telemetry = &telemetry;
          const auto t0 = std::chrono::steady_clock::now();
          auto res = bcast::RunFleetVersioned(epochs, run);
          const double wall_s = SecondsSince(t0);
          if (!res.ok()) {
            std::fprintf(stderr, "%s at %d threads failed: %s\n", cell,
                         threads, res.status().ToString().c_str());
            return 1;
          }
          const FleetResult& r = res.value();
          recorder.Record(std::string(cell) + "/t" + std::to_string(threads),
                          wall_s,
                          static_cast<double>(r.queries) /
                              std::max(wall_s, 1e-12),
                          threads, CellPercentiles::From(r));
          if (!have_reference) {
            reference = r;
            have_reference = true;
            std::printf("%-34s %10lld %10.2f %9lld %9lld %8lld %8.2f\n",
                        cell, static_cast<long long>(r.queries),
                        r.mean_latency,
                        static_cast<long long>(r.total_epoch_switches),
                        static_cast<long long>(r.epoch_churn_queries),
                        static_cast<long long>(r.unrecoverable_queries),
                        wall_s);
          } else if (!SameVersionedResult(reference, r)) {
            std::fprintf(stderr,
                         "FAIL: %s diverges at %d threads (queries %lld vs "
                         "%lld, latency %.17g vs %.17g, switches %lld vs "
                         "%lld)\n",
                         cell, threads,
                         static_cast<long long>(r.queries),
                         static_cast<long long>(reference.queries),
                         r.mean_latency, reference.mean_latency,
                         static_cast<long long>(r.total_epoch_switches),
                         static_cast<long long>(reference.total_epoch_switches));
            ok = false;
          }
          if (telemetry_on) {
            const bcast::TelemetryTotals totals = bcast::TotalsFromFleet(r);
            const std::string timeline =
                telemetry.TimelineJsonl(cell, &totals);
            const std::string& flight = telemetry.flight_records();
            if (threads == 1) {
              ref_timeline = timeline;
              ref_flight = flight;
            } else if (timeline != ref_timeline || flight != ref_flight) {
              std::fprintf(stderr,
                           "FAIL: %s telemetry diverges at %d threads "
                           "(timeline %s, flight %s)\n",
                           cell, threads,
                           timeline == ref_timeline ? "same" : "DIFFERS",
                           flight == ref_flight ? "same" : "DIFFERS");
              ok = false;
            }
          }
        }
        if (telemetry_on) {
          all_timeline += ref_timeline;
          all_flight += ref_flight;
        }
        if (num_epochs > 1 && reference.total_epoch_switches == 0) {
          std::fprintf(stderr,
                       "FAIL: %s never observed an epoch switch — the "
                       "version-skew rung was not exercised\n",
                       cell);
          ok = false;
        }
      }
    }
  }

  if (telemetry_on && ok) {
    std::printf("telemetry: timeline+flight byte-identical at 1/4/8 "
                "threads for every cell ✓\n");
    if (!flags.telemetry_out.empty() &&
        !WriteTextFile(flags.telemetry_out, all_timeline)) {
      ok = false;
    }
    if (!flags.flight_out.empty() &&
        !WriteTextFile(flags.flight_out, all_flight)) {
      ok = false;
    }
  }

  if (!ok) {
    std::fprintf(stderr, "FAIL: versioned-broadcast invariants violated\n");
    return 1;
  }
  std::printf("determinism: FleetResult bit-identical at 1/4/8 threads "
              "for every cell ✓\n");
  return 0;
}
