// skewed_hotspots: the access-weighted D-tree extension in action.
//
// Real location-dependent query loads are skewed (downtown gets asked far
// more often than the outskirts). The paper's D-tree balances region
// *counts*; with Options::access_weights it balances access *mass*
// instead, so hot regions sit on shorter index paths. This example builds
// both trees over the same city, replays the same Zipf-distributed load,
// and prints the tuning-time difference.
//
//   $ ./skewed_hotspots [theta]

#include <cstdio>
#include <cstdlib>

#include "broadcast/experiment.h"
#include "dtree/dtree.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace dtree;
  const double theta = argc > 1 ? std::atof(argv[1]) : 1.1;

  auto ds_r = workload::MakeHospitalDataset();
  if (!ds_r.ok()) {
    std::fprintf(stderr, "%s\n", ds_r.status().ToString().c_str());
    return 1;
  }
  const workload::Dataset& ds = ds_r.value();
  const int n = ds.subdivision.NumRegions();

  Rng wrng(2027);
  const std::vector<double> weights = workload::ZipfWeights(n, theta, &wrng);

  core::DTree::Options balanced;
  balanced.packet_capacity = 128;
  core::DTree::Options weighted = balanced;
  weighted.access_weights = weights;

  bcast::ExperimentOptions opt;
  opt.packet_capacity = 128;
  opt.num_queries = 50000;
  opt.distribution = bcast::QueryDistribution::kWeightedRegion;
  opt.region_weights = weights;

  std::printf("dataset %s, N=%d, Zipf theta=%.2f, packet 128 B\n\n",
              ds.name.c_str(), n, theta);
  std::printf("%-22s %8s %10s %9s %12s\n", "variant", "height",
              "tuning", "latency", "efficiency");
  for (const auto& [label, options] :
       {std::pair<const char*, core::DTree::Options*>{"count-balanced",
                                                      &balanced},
        {"access-weighted", &weighted}}) {
    auto tree = core::DTree::Build(ds.subdivision, *options);
    if (!tree.ok()) {
      std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
      return 1;
    }
    auto res = bcast::RunExperiment(tree.value(), ds.subdivision, nullptr,
                                    opt);
    if (!res.ok()) {
      std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %8d %10.3f %9.3f %12.3f\n", label,
                tree.value().height(), res.value().mean_tuning_index,
                res.value().normalized_latency,
                res.value().indexing_efficiency);
  }
  std::printf("\n(the weighted tree is taller — cold regions sink — but "
              "tunes less on the skewed load)\n");
  return 0;
}
