// index_shootout: builds all four air-index structures over the same
// dataset and prints a side-by-side comparison of the paper's metrics —
// a one-screen summary of the whole evaluation.
//
//   $ ./index_shootout [UNIFORM|HOSPITAL|PARK] [packet_capacity] [queries]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "baselines/kirkpatrick/kirkpatrick.h"
#include "baselines/rstar/rstar.h"
#include "baselines/trapmap/trapmap.h"
#include "broadcast/experiment.h"
#include "dtree/dtree.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace dtree;
  const char* dataset = argc > 1 ? argv[1] : "HOSPITAL";
  const int capacity = argc > 2 ? std::atoi(argv[2]) : 256;
  const int queries = argc > 3 ? std::atoi(argv[3]) : 20000;

  Result<workload::Dataset> ds_r =
      std::strcmp(dataset, "UNIFORM") == 0    ? workload::MakeUniformDataset()
      : std::strcmp(dataset, "HOSPITAL") == 0 ? workload::MakeHospitalDataset()
      : std::strcmp(dataset, "PARK") == 0     ? workload::MakeParkDataset()
          : Result<workload::Dataset>(
                Status::InvalidArgument("unknown dataset; use "
                                        "UNIFORM|HOSPITAL|PARK"));
  if (!ds_r.ok()) {
    std::fprintf(stderr, "%s\n", ds_r.status().ToString().c_str());
    return 1;
  }
  const workload::Dataset& ds = ds_r.value();

  std::printf("dataset %s: N=%d regions, packet %d B, %d queries\n\n",
              ds.name.c_str(), ds.subdivision.NumRegions(), capacity,
              queries);
  std::printf("%-12s %8s %10s %9s %9s %8s %11s\n", "index", "packets",
              "bytes", "norm.size", "latency", "tuning", "efficiency");

  auto report = [&](const bcast::AirIndex& index) {
    bcast::ExperimentOptions opt;
    opt.packet_capacity = capacity;
    opt.num_queries = queries;
    auto res_r = bcast::RunExperiment(index, ds.subdivision, nullptr, opt);
    if (!res_r.ok()) {
      std::printf("%-12s ERROR: %s\n", index.name().c_str(),
                  res_r.status().ToString().c_str());
      return;
    }
    const auto& r = res_r.value();
    std::printf("%-12s %8d %10zu %9.3f %9.3f %8.3f %11.3f\n",
                index.name().c_str(), r.index_packets, r.index_bytes,
                r.normalized_index_size, r.normalized_latency,
                r.mean_tuning_index, r.indexing_efficiency);
  };

  {
    core::DTree::Options o;
    o.packet_capacity = capacity;
    auto t = core::DTree::Build(ds.subdivision, o);
    if (t.ok()) report(t.value());
  }
  {
    baselines::RStarTree::Options o;
    o.packet_capacity = capacity;
    auto t = baselines::RStarTree::Build(ds.subdivision, o);
    if (t.ok()) report(t.value());
  }
  {
    baselines::TrapMap::Options o;
    o.packet_capacity = capacity;
    auto t = baselines::TrapMap::Build(ds.subdivision, o);
    if (t.ok()) report(t.value());
  }
  {
    baselines::TrianTree::Options o;
    o.packet_capacity = capacity;
    auto t = baselines::TrianTree::Build(ds.subdivision, o);
    if (t.ok()) report(t.value());
  }
  std::printf("\nlatency normalized to the optimal (no-index) latency; "
              "tuning = index-search packets;\nefficiency = tuning saved / "
              "latency overhead (higher is better).\n");
  return 0;
}
