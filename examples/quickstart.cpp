// Quickstart: build valid scopes with the Voronoi substrate, index them
// with a D-tree, and answer location-dependent point queries.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API; see city_guide.cpp for a
// full broadcast-protocol session and index_shootout.cpp for the baseline
// comparison.

#include <cstdio>

#include "dtree/dtree.h"
#include "subdivision/voronoi.h"

int main() {
  using namespace dtree;

  // Four cities and the service area they cover — the paper's running
  // example: each city's valid scope is its Voronoi cell.
  const geom::BBox service_area{0, 0, 100, 100};
  const std::vector<geom::Point> cities{
      {25, 70},  // o1
      {70, 80},  // o2
      {20, 20},  // o3
      {75, 30},  // o4
  };
  const char* names[] = {"Arcadia", "Brookfield", "Carverton", "Dunmore"};

  Result<sub::Subdivision> scopes =
      sub::BuildVoronoiSubdivision(cities, service_area);
  if (!scopes.ok()) {
    std::fprintf(stderr, "voronoi: %s\n", scopes.status().ToString().c_str());
    return 1;
  }

  core::DTree::Options options;
  options.packet_capacity = 64;  // small packets, as in a GPRS-like link
  Result<core::DTree> index = core::DTree::Build(scopes.value(), options);
  if (!index.ok()) {
    std::fprintf(stderr, "d-tree: %s\n", index.status().ToString().c_str());
    return 1;
  }

  std::printf("D-tree over %d data regions: %d nodes, height %d, "
              "%d packets (%zu bytes)\n\n",
              scopes.value().NumRegions(), index.value().num_nodes(),
              index.value().height(), index.value().NumIndexPackets(),
              index.value().IndexBytes());

  const geom::Point queries[] = {{10, 10}, {50, 50}, {90, 90}, {60, 10}};
  for (const geom::Point& q : queries) {
    const int region = index.value().Locate(q);
    Result<bcast::ProbeTrace> trace = index.value().Probe(q);
    std::printf("query (%4.1f, %4.1f) -> region %d (%s)", q.x, q.y, region,
                names[region]);
    if (trace.ok()) {
      std::printf("  [index search read %zu packet(s)]",
                  trace.value().packets.size());
    }
    std::printf("\n");
  }
  return 0;
}
