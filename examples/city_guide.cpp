// city_guide: an end-to-end mobile-client session on the broadcast
// channel — the scenario the paper's introduction motivates (a tourist
// asking "which region am I in, and when is its info broadcast?").
//
// A server broadcasts nearest-restaurant data for a city with a (1, m)
// interleaved D-tree air index; a client wakes at a random moment,
// follows the access protocol (initial probe -> index search -> doze ->
// data retrieval) and reports its latency and tuning time.
//
//   $ ./city_guide [seed]

#include <cstdio>
#include <cstdlib>

#include "broadcast/channel.h"
#include "common/rng.h"
#include "dtree/dtree.h"
#include "subdivision/voronoi.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace dtree;
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
  Rng rng(seed);

  // 64 restaurants scattered over the city; each data instance is the
  // 1 KB "nearest restaurant" answer valid inside its Voronoi scope.
  const geom::BBox city = workload::DefaultServiceArea();
  auto restaurants = workload::ClusteredPoints(64, city, 6, 0.05, &rng);
  auto scopes_r = sub::BuildVoronoiSubdivision(restaurants, city);
  if (!scopes_r.ok()) {
    std::fprintf(stderr, "%s\n", scopes_r.status().ToString().c_str());
    return 1;
  }
  const sub::Subdivision& scopes = scopes_r.value();

  core::DTree::Options iopt;
  iopt.packet_capacity = 128;
  auto index_r = core::DTree::Build(scopes, iopt);
  if (!index_r.ok()) {
    std::fprintf(stderr, "%s\n", index_r.status().ToString().c_str());
    return 1;
  }
  const core::DTree& index = index_r.value();

  bcast::ChannelOptions copt;
  copt.packet_capacity = 128;
  auto channel_r = bcast::BroadcastChannel::Create(
      index.NumIndexPackets(), scopes.NumRegions(), copt);
  if (!channel_r.ok()) {
    std::fprintf(stderr, "%s\n", channel_r.status().ToString().c_str());
    return 1;
  }
  const bcast::BroadcastChannel& ch = channel_r.value();

  std::printf("Broadcast program: %d regions x 1KB data, %d index packets, "
              "(1,%d) interleaving, cycle %lld packets\n\n",
              scopes.NumRegions(), index.NumIndexPackets(), ch.m(),
              static_cast<long long>(ch.cycle_packets()));

  for (int session = 0; session < 5; ++session) {
    const geom::Point here{rng.Uniform(city.min_x, city.max_x),
                           rng.Uniform(city.min_y, city.max_y)};
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    auto trace_r = index.Probe(here);
    if (!trace_r.ok()) {
      std::fprintf(stderr, "%s\n", trace_r.status().ToString().c_str());
      return 1;
    }
    auto outcome_r = ch.Simulate(trace_r.value(), arrival);
    if (!outcome_r.ok()) {
      std::fprintf(stderr, "%s\n", outcome_r.status().ToString().c_str());
      return 1;
    }
    const auto& oc = outcome_r.value();
    const auto baseline = ch.SimulateNoIndex(trace_r.value().region, arrival);
    std::printf("client %d at (%5.1f,%5.1f), tuned in at t=%.1f\n",
                session + 1, here.x, here.y, arrival);
    std::printf("  nearest restaurant region: %d\n", trace_r.value().region);
    std::printf("  latency  %7.1f packets   (no-index baseline %7.1f)\n",
                oc.latency, baseline.latency);
    std::printf("  tuning   %7d packets   (probe %d + index %d + data %d; "
                "no-index %d)\n",
                oc.tuning_total(), oc.tuning_probe, oc.tuning_index,
                oc.tuning_data, baseline.tuning_total());
    std::printf("  dozed through %.0f%% of the wait\n\n",
                100.0 * (1.0 - oc.tuning_total() / oc.latency));
  }
  return 0;
}
