// air_decoder: shows the D-tree wire format end to end. The server side
// serializes the paged tree into fixed-size packets; the client side then
// answers a query purely from those bytes (dtree::core::QueryFromPackets)
// — exactly what a mobile device does with the frames it receives — and
// we verify it matches the in-memory tree.
//
//   $ ./air_decoder

#include <cstdio>

#include "common/rng.h"
#include "dtree/dtree.h"
#include "dtree/serialize.h"
#include "subdivision/voronoi.h"
#include "workload/datasets.h"

int main() {
  using namespace dtree;
  Rng rng(4711);
  const geom::BBox area = workload::DefaultServiceArea();
  auto sites = workload::UniformPoints(48, area, &rng);
  auto sub_r = sub::BuildVoronoiSubdivision(sites, area);
  if (!sub_r.ok()) {
    std::fprintf(stderr, "%s\n", sub_r.status().ToString().c_str());
    return 1;
  }

  core::DTree::Options opt;
  opt.packet_capacity = 64;
  auto tree_r = core::DTree::Build(sub_r.value(), opt);
  if (!tree_r.ok()) {
    std::fprintf(stderr, "%s\n", tree_r.status().ToString().c_str());
    return 1;
  }
  const core::DTree& tree = tree_r.value();

  auto packets_r = core::SerializeDTree(tree);
  if (!packets_r.ok()) {
    std::fprintf(stderr, "%s\n", packets_r.status().ToString().c_str());
    return 1;
  }
  const auto& packets = packets_r.value();
  std::printf("serialized %d nodes into %zu packets of %d bytes "
              "(%zu payload bytes)\n",
              tree.num_nodes(), packets.size(), opt.packet_capacity,
              tree.IndexBytes());

  // Hex dump of the first packet (bid, header, pointers, partition...).
  std::printf("\npacket 0:");
  for (size_t i = 0; i < packets[0].size(); ++i) {
    if (i % 16 == 0) std::printf("\n  %04zx ", i);
    std::printf("%02x ", packets[0][i]);
  }
  std::printf("\n\n");

  int checked = 0, agreed = 0;
  for (int q = 0; q < 10000; ++q) {
    const geom::Point p{rng.Uniform(area.min_x, area.max_x),
                        rng.Uniform(area.min_y, area.max_y)};
    std::vector<int> read;
    auto region_r = core::QueryFromPackets(packets, opt.packet_capacity,
                                           /*early_termination=*/true, p,
                                           &read);
    if (!region_r.ok()) {
      std::fprintf(stderr, "decode: %s\n",
                   region_r.status().ToString().c_str());
      return 1;
    }
    ++checked;
    if (region_r.value() == tree.Locate(p)) ++agreed;
  }
  std::printf("decoded %d random queries from raw packets; %d agree with "
              "the in-memory tree (%.2f%%; disagreements sit on region "
              "borders within float32 rounding)\n",
              checked, agreed, 100.0 * agreed / checked);
  return 0;
}
