#include <algorithm>
#include <limits>
#include <set>

#include "geom/predicates.h"
#include "subdivision/extent.h"
#include "subdivision/subdivision.h"
#include "subdivision/triangulate.h"
#include "subdivision/voronoi.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::sub {
namespace {

using geom::BBox;
using geom::Point;
using geom::Polygon;

/// 2x2 grid of unit squares over [0,2]^2.
std::vector<Polygon> GridCells() {
  std::vector<Polygon> cells;
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      const double x = gx, y = gy;
      cells.push_back(Polygon(
          {{x, y}, {x + 1, y}, {x + 1, y + 1}, {x, y + 1}}));
    }
  }
  return cells;
}

TEST(SubdivisionTest, FromPolygonsGrid) {
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 2, 2}, GridCells());
  ASSERT_TRUE(sub_r.ok()) << sub_r.status().ToString();
  const Subdivision& sub = sub_r.value();
  EXPECT_EQ(sub.NumRegions(), 4);
  // Shared corners snap to one vertex: 3x3 grid of vertices.
  EXPECT_EQ(sub.vertices().size(), 9u);
  EXPECT_OK(sub.Validate());
}

TEST(SubdivisionTest, RejectsEmptyAndDegenerate) {
  EXPECT_FALSE(Subdivision::FromPolygons(BBox{0, 0, 1, 1}, {}).ok());
  std::vector<Polygon> degenerate{Polygon({{0, 0}, {1, 0}})};
  EXPECT_FALSE(
      Subdivision::FromPolygons(BBox{0, 0, 1, 1}, degenerate).ok());
  // Zero-area service area.
  EXPECT_FALSE(Subdivision::FromPolygons(BBox{0, 0, 0, 1}, GridCells()).ok());
}

TEST(SubdivisionTest, SnapsNearbyVertices) {
  // Two half-squares whose shared edge endpoints differ by 1e-8.
  std::vector<Polygon> cells;
  cells.push_back(Polygon({{0, 0}, {1.00000001, 0}, {1, 1}, {0, 1}}));
  cells.push_back(Polygon({{1, 0}, {2, 0}, {2, 1}, {1.00000001, 1}}));
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 2, 1}, cells);
  ASSERT_TRUE(sub_r.ok()) << sub_r.status().ToString();
  EXPECT_OK(sub_r.value().Validate());
  EXPECT_EQ(sub_r.value().vertices().size(), 6u);
}

TEST(SubdivisionTest, SplitsTJunction) {
  // Left cell is the full-height rectangle; the right side is split into
  // two cells whose shared vertex lies mid-edge on the left cell's border.
  std::vector<Polygon> cells;
  cells.push_back(Polygon({{0, 0}, {1, 0}, {1, 2}, {0, 2}}));
  cells.push_back(Polygon({{1, 0}, {2, 0}, {2, 1}, {1, 1}}));
  cells.push_back(Polygon({{1, 1}, {2, 1}, {2, 2}, {1, 2}}));
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 2, 2}, cells);
  ASSERT_TRUE(sub_r.ok()) << sub_r.status().ToString();
  const Subdivision& sub = sub_r.value();
  EXPECT_OK(sub.Validate());
  // The left cell's right edge must have been split at (1,1): 5 vertices.
  EXPECT_EQ(sub.Ring(0).size(), 5u);
}

TEST(SubdivisionTest, ValidateDetectsOverlap) {
  // Two unit squares overlapping by half: the area sum exceeds the
  // service area and the shared border never matches.
  std::vector<Polygon> cells;
  cells.push_back(Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
  cells.push_back(Polygon({{0.5, 0}, {1.5, 0}, {1.5, 1}, {0.5, 1}}));
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 1.5, 1}, cells);
  ASSERT_TRUE(sub_r.ok());  // construction is lenient...
  EXPECT_FALSE(sub_r.value().Validate().ok());  // ...validation is not
}

TEST(SubdivisionTest, ValidateDetectsGap) {
  // Two squares covering only 2/3 of the declared service area.
  std::vector<Polygon> cells;
  cells.push_back(Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
  cells.push_back(Polygon({{1, 0}, {2, 0}, {2, 1}, {1, 1}}));
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 3, 1}, cells);
  ASSERT_TRUE(sub_r.ok());
  EXPECT_FALSE(sub_r.value().Validate().ok());
}

TEST(SubdivisionTest, ValidateDetectsEscape) {
  // A region poking outside the service area.
  std::vector<Polygon> cells;
  cells.push_back(Polygon({{0, 0}, {2, 0}, {2, 1}, {0, 1}}));
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 1, 1}, cells);
  ASSERT_TRUE(sub_r.ok());
  EXPECT_FALSE(sub_r.value().Validate().ok());
}

TEST(PointLocatorTest, GridLookup) {
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 2, 2}, GridCells());
  ASSERT_TRUE(sub_r.ok());
  const Subdivision& sub = sub_r.value();
  PointLocator loc(sub);
  EXPECT_EQ(loc.Locate({0.5, 0.5}), 0);  // (gx=0, gy=0)
  EXPECT_EQ(loc.Locate({0.5, 1.5}), 1);
  EXPECT_EQ(loc.Locate({1.5, 0.5}), 2);
  EXPECT_EQ(loc.Locate({1.5, 1.5}), 3);
  // Outside the area resolves to the nearest region, not -1.
  EXPECT_EQ(loc.Locate({-1.0, 0.5}), 0);
}

TEST(VoronoiTest, TwoSites) {
  auto cells_r = VoronoiCells({{250, 500}, {750, 500}}, BBox{0, 0, 1000, 1000});
  ASSERT_TRUE(cells_r.ok()) << cells_r.status().ToString();
  const auto& cells = cells_r.value();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_NEAR(cells[0].Area(), 500000.0, 1.0);
  EXPECT_NEAR(cells[1].Area(), 500000.0, 1.0);
  EXPECT_TRUE(cells[0].Contains({100, 500}));
  EXPECT_FALSE(cells[0].Contains({900, 500}));
}

TEST(VoronoiTest, RejectsBadInput) {
  const BBox area{0, 0, 10, 10};
  EXPECT_FALSE(VoronoiCells({}, area).ok());
  EXPECT_FALSE(VoronoiCells({{5, 5}, {50, 5}}, area).ok());  // outside
  EXPECT_FALSE(VoronoiCells({{5, 5}, {5, 5}}, area).ok());   // duplicate
}

TEST(VoronoiTest, RejectsDuplicateAndNearCoincidentSites) {
  const BBox area{0, 0, 10, 10};
  // Exact duplicates anywhere in the list.
  auto dup = VoronoiCells({{1, 1}, {5, 5}, {1, 1}}, area);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  // Near-coincident: separated by more than kMergeEps (the old in-loop
  // duplicate check let this through and carved a sliver cell thinner than
  // the stitcher's snap radius) but less than kMinSiteSeparation.
  auto sliver = VoronoiCells({{5, 5}, {5 + 2e-6, 5}}, area);
  ASSERT_FALSE(sliver.ok());
  EXPECT_EQ(sliver.status().code(), StatusCode::kInvalidArgument);
  // Separation comfortably above the threshold stays accepted.
  auto ok = VoronoiCells({{5, 5}, {5.001, 5}}, area);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().size(), 2u);
}

TEST(VoronoiTest, CollinearSitesTileTheArea) {
  const BBox area{0, 0, 1000, 1000};
  // Horizontal line of sites: all bisectors are parallel, producing stripe
  // cells — a layout with no generic-position slack anywhere.
  std::vector<Point> horizontal;
  for (int i = 0; i < 8; ++i) horizontal.push_back({100.0 + 100.0 * i, 500.0});
  // Diagonal line of sites: bisectors are parallel but axis-unaligned.
  std::vector<Point> diagonal;
  for (int i = 0; i < 8; ++i) {
    diagonal.push_back({100.0 + 100.0 * i, 100.0 + 100.0 * i});
  }
  for (const auto& sites : {horizontal, diagonal}) {
    auto sub_r = BuildVoronoiSubdivision(sites, area);
    ASSERT_TRUE(sub_r.ok()) << sub_r.status().ToString();
    EXPECT_OK(sub_r.value().Validate());
    EXPECT_EQ(sub_r.value().NumRegions(), 8);
  }
}

TEST(VoronoiTest, CollinearNearCoincidentPairRejected) {
  const BBox area{0, 0, 1000, 1000};
  std::vector<Point> sites;
  for (int i = 0; i < 6; ++i) sites.push_back({100.0 + 100.0 * i, 500.0});
  sites.push_back({sites[3].x + 3e-6, 500.0});  // just under the threshold
  auto r = VoronoiCells(sites, area);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(VoronoiTest, CellsContainTheirSites) {
  Rng rng(3);
  const BBox area = workload::DefaultServiceArea();
  auto pts = workload::UniformPoints(64, area, &rng);
  auto cells_r = VoronoiCells(pts, area);
  ASSERT_TRUE(cells_r.ok());
  const auto& cells = cells_r.value();
  double total = 0.0;
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(cells[i].Contains(pts[i])) << "site " << i;
    EXPECT_TRUE(cells[i].IsConvex()) << "site " << i;
    total += cells[i].Area();
  }
  EXPECT_NEAR(total, area.Area(), area.Area() * 1e-6);
}

TEST(VoronoiTest, NearestNeighborSemantics) {
  Rng rng(17);
  const BBox area = workload::DefaultServiceArea();
  auto pts = workload::UniformPoints(40, area, &rng);
  auto sub_r = BuildVoronoiSubdivision(pts, area);
  ASSERT_TRUE(sub_r.ok());
  const Subdivision& sub = sub_r.value();
  EXPECT_OK(sub.Validate());
  PointLocator loc(sub);
  for (int q = 0; q < 500; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    // Region id must be the nearest site's id.
    int nearest = 0;
    for (size_t i = 1; i < pts.size(); ++i) {
      if (geom::DistanceSquared(p, pts[i]) <
          geom::DistanceSquared(p, pts[nearest])) {
        nearest = static_cast<int>(i);
      }
    }
    EXPECT_EQ(loc.Locate(p), nearest);
  }
}

TEST(VoronoiTest, ValidatesOnPaperScaleDatasets) {
  for (int n : {185, 500}) {
    const Subdivision sub = test::ClusteredVoronoi(n, 1000 + n);
    EXPECT_EQ(sub.NumRegions(), n);
    EXPECT_OK(sub.Validate());
  }
}

TEST(ExtentTest, SingleRegionIsItsRing) {
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 2, 2}, GridCells());
  ASSERT_TRUE(sub_r.ok());
  auto loops_r = ComputeExtent(sub_r.value(), {0});
  ASSERT_TRUE(loops_r.ok());
  ASSERT_EQ(loops_r.value().size(), 1u);
  EXPECT_TRUE(loops_r.value()[0].closed);
  EXPECT_EQ(loops_r.value()[0].pts.size(), 4u);
}

TEST(ExtentTest, UnionDropsInteriorBorder) {
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 2, 2}, GridCells());
  ASSERT_TRUE(sub_r.ok());
  // Cells 0 (lower-left) and 1 (upper-left) form the left half.
  auto loops_r = ComputeExtent(sub_r.value(), {0, 1});
  ASSERT_TRUE(loops_r.ok());
  ASSERT_EQ(loops_r.value().size(), 1u);
  const geom::Polyline& loop = loops_r.value()[0];
  EXPECT_TRUE(loop.closed);
  // 1x2 rectangle with mid-edge vertices on both long sides: 6 vertices.
  EXPECT_EQ(loop.pts.size(), 6u);
  geom::Polygon poly(loop.pts);
  EXPECT_NEAR(poly.Area(), 2.0, 1e-12);
}

TEST(ExtentTest, HoleLoopAppears) {
  // 3x3 grid; extent of the 8 outer cells must contain a hole loop around
  // the center cell.
  std::vector<Polygon> cells;
  int center = -1;
  for (int gx = 0; gx < 3; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      if (gx == 1 && gy == 1) center = static_cast<int>(cells.size());
      const double x = gx, y = gy;
      cells.push_back(Polygon(
          {{x, y}, {x + 1, y}, {x + 1, y + 1}, {x, y + 1}}));
    }
  }
  auto sub_r = Subdivision::FromPolygons(BBox{0, 0, 3, 3}, cells);
  ASSERT_TRUE(sub_r.ok());
  std::vector<int> outer;
  for (int i = 0; i < 9; ++i) {
    if (i != center) outer.push_back(i);
  }
  auto loops_r = ComputeExtent(sub_r.value(), outer);
  ASSERT_TRUE(loops_r.ok());
  EXPECT_EQ(loops_r.value().size(), 2u);  // outer boundary + hole
}

TEST(ExtentTest, AllRegionsGiveServiceBoundary) {
  const Subdivision sub = test::RandomVoronoi(50, 5);
  std::vector<int> all(sub.NumRegions());
  for (int i = 0; i < sub.NumRegions(); ++i) all[i] = i;
  auto loops_r = ComputeExtent(sub, all);
  ASSERT_TRUE(loops_r.ok());
  ASSERT_EQ(loops_r.value().size(), 1u);
  geom::Polygon boundary(loops_r.value()[0].pts);
  EXPECT_NEAR(boundary.Area(), sub.service_area().Area(),
              sub.service_area().Area() * 1e-9);
}

TEST(ExtentTest, RejectsEmptyGroup) {
  const Subdivision sub = test::RandomVoronoi(10, 6);
  EXPECT_FALSE(ComputeExtent(sub, {}).ok());
  EXPECT_FALSE(ComputeExtent(sub, {999}).ok());
}

double TotalArea(const std::vector<geom::Triangle>& tris) {
  double a = 0.0;
  for (const auto& t : tris) a += t.Area();
  return a;
}

TEST(TriangulateTest, EarClipSquare) {
  std::vector<geom::Triangle> tris;
  ASSERT_OK(EarClipTriangulate({{0, 0}, {1, 0}, {1, 1}, {0, 1}}, &tris));
  EXPECT_EQ(tris.size(), 2u);
  EXPECT_NEAR(TotalArea(tris), 1.0, 1e-12);
}

TEST(TriangulateTest, EarClipNonConvex) {
  std::vector<geom::Triangle> tris;
  ASSERT_OK(EarClipTriangulate(
      {{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}}, &tris));
  EXPECT_EQ(tris.size(), 3u);
  EXPECT_NEAR(TotalArea(tris), 10.0, 1e-9);  // shoelace area of the ring
}

TEST(TriangulateTest, EarClipCollinearVertices) {
  // Square with a redundant vertex mid-edge; every vertex must appear as a
  // triangle corner so the mesh stays consistent.
  std::vector<geom::Triangle> tris;
  ASSERT_OK(EarClipTriangulate(
      {{0, 0}, {0.5, 0}, {1, 0}, {1, 1}, {0, 1}}, &tris));
  EXPECT_EQ(tris.size(), 3u);
  EXPECT_NEAR(TotalArea(tris), 1.0, 1e-12);
  std::set<std::pair<double, double>> used;
  for (const auto& t : tris) {
    for (const auto& v : t.v) used.insert({v.x, v.y});
  }
  EXPECT_EQ(used.size(), 5u);
}

TEST(TriangulateTest, EarClipRejectsBadInput) {
  std::vector<geom::Triangle> tris;
  EXPECT_FALSE(EarClipTriangulate({{0, 0}, {1, 0}}, &tris).ok());
  // Clockwise ring.
  EXPECT_FALSE(
      EarClipTriangulate({{0, 0}, {0, 1}, {1, 1}, {1, 0}}, &tris).ok());
}

TEST(TriangulateTest, FanConvex) {
  auto tris_r = FanTriangulate(Polygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}}));
  ASSERT_TRUE(tris_r.ok());
  EXPECT_EQ(tris_r.value().size(), 2u);
  EXPECT_NEAR(TotalArea(tris_r.value()), 4.0, 1e-12);
  // Convex with a collinear vertex falls back to ear clipping.
  auto tris2_r =
      FanTriangulate(Polygon({{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}}));
  ASSERT_TRUE(tris2_r.ok());
  EXPECT_EQ(tris2_r.value().size(), 3u);
  EXPECT_FALSE(FanTriangulate(Polygon(
                   {{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}}))
                   .ok());  // non-convex
}

TEST(TriangulateTest, RectAnnulus) {
  // Inner unit square ring with an extra vertex on the bottom edge.
  std::vector<Point> inner_ring{{0, 0}, {0.5, 0}, {1, 0}, {1, 1}, {0, 1}};
  std::vector<geom::Triangle> tris;
  ASSERT_OK(TriangulateRectAnnulus(BBox{-1, -1, 2, 2}, BBox{0, 0, 1, 1},
                                   inner_ring, &tris));
  // Annulus area = 9 - 1 = 8.
  EXPECT_NEAR(TotalArea(tris), 8.0, 1e-9);
  for (const auto& t : tris) EXPECT_GT(t.SignedArea(), 0.0);
  // The mid-edge vertex must be used.
  bool found = false;
  for (const auto& t : tris) {
    for (const auto& v : t.v) {
      if (geom::NearlyEqual(v, Point{0.5, 0})) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BorderDistanceTest, GridMatchesBruteForce) {
  // The grid-accelerated DistanceToNearestBorder must agree with an
  // explicit scan over every region edge, for points inside and outside
  // the service area.
  const Subdivision sub = test::RandomVoronoi(120, 3131);
  auto brute = [&](const Point& p) {
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < sub.NumRegions(); ++i) {
      const std::vector<int>& ring = sub.Ring(i);
      for (size_t j = 0; j < ring.size(); ++j) {
        const Point& a = sub.vertices()[ring[j]];
        const Point& b = sub.vertices()[ring[(j + 1) % ring.size()]];
        best = std::min(best, geom::DistanceToSegment(a, b, p));
      }
    }
    return best;
  };
  Rng rng(99);
  const BBox& area = sub.service_area();
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.Uniform(area.min_x, area.max_x),
                  rng.Uniform(area.min_y, area.max_y)};
    EXPECT_NEAR(sub.DistanceToNearestBorder(p), brute(p), 1e-12);
  }
  // Outside the grid extent: full-scan fallback.
  for (const Point p : {Point{area.min_x - 3.0, area.min_y - 2.0},
                        Point{area.max_x + 5.0, area.Center().y},
                        Point{area.Center().x, area.max_y + 0.5}}) {
    EXPECT_NEAR(sub.DistanceToNearestBorder(p), brute(p), 1e-12);
  }
  // On a region vertex the distance is exactly zero.
  EXPECT_EQ(sub.DistanceToNearestBorder(sub.vertices()[0]), 0.0);
}

// Property audit of the expanding-ring early exit: the scan breaks after
// ring r once best <= r * min_cell — exactly the clearance of the first
// uncovered ring (r + 1), which is min_cell * ((r + 1) - 1). The bound
// relies only on the query point lying in its own *closed* grid cell, so it
// must also hold for points exactly on a grid-cell boundary, where the
// clamp+floor cell assignment picks one of the two touching cells. Pits the
// grid path against BorderDistanceFullScan on 10k random and
// boundary-aligned points; both paths call the same DistanceToSegment on
// the optimal edge, so the agreement is exact, not approximate.
TEST(BorderDistanceTest, RingEarlyExitExactOn10kRandomAndAlignedPoints) {
  const Subdivision sub = test::RandomVoronoi(200, 71);
  ASSERT_GT(sub.border_grid_dim(), 0);
  const BBox& box = sub.border_grid_box();
  const int dim = sub.border_grid_dim();
  const double cw = sub.border_cell_w();
  const double ch = sub.border_cell_h();
  Rng rng(17);
  auto grid_x = [&] {
    return box.min_x + cw * static_cast<double>(rng.UniformInt(0, dim));
  };
  auto grid_y = [&] {
    return box.min_y + ch * static_cast<double>(rng.UniformInt(0, dim));
  };
  for (int i = 0; i < 10000; ++i) {
    Point p;
    switch (i % 4) {
      case 0:  // fully random
        p = {rng.Uniform(box.min_x, box.max_x),
             rng.Uniform(box.min_y, box.max_y)};
        break;
      case 1:  // exactly on a vertical grid-cell boundary
        p = {grid_x(), rng.Uniform(box.min_y, box.max_y)};
        break;
      case 2:  // exactly on a horizontal grid-cell boundary
        p = {rng.Uniform(box.min_x, box.max_x), grid_y()};
        break;
      default:  // exactly on a grid-cell corner
        p = {grid_x(), grid_y()};
        break;
    }
    ASSERT_EQ(sub.DistanceToNearestBorder(p), sub.BorderDistanceFullScan(p))
        << "point (" << p.x << ", " << p.y << ") at i=" << i;
  }
  // Region vertices are themselves often boundary-aligned after clamping;
  // they must all report an exact zero.
  for (size_t v = 0; v < sub.vertices().size(); v += 7) {
    ASSERT_EQ(sub.DistanceToNearestBorder(sub.vertices()[v]), 0.0);
  }
}

TEST(TriangulateTest, RectAnnulusRejectsBadInput) {
  std::vector<geom::Triangle> tris;
  // Outer does not contain inner.
  EXPECT_FALSE(TriangulateRectAnnulus(BBox{0, 0, 1, 1}, BBox{0, 0, 1, 1},
                                      {{0, 0}, {1, 0}, {1, 1}, {0, 1}},
                                      &tris)
                   .ok());
  // Ring missing a corner.
  EXPECT_FALSE(TriangulateRectAnnulus(BBox{-1, -1, 2, 2}, BBox{0, 0, 1, 1},
                                      {{0, 0}, {1, 0}, {1, 1}}, &tris)
                   .ok());
}

}  // namespace
}  // namespace dtree::sub
