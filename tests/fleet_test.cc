// Tests for the event-driven fleet engine (broadcast/fleet.h).
//
// The load-bearing property is the differential anchor: every query a
// fleet client completes must reproduce BroadcastChannel::Simulate
// field-for-field when replayed through the synchronous simulator with
// the same probe trace, the wrapped arrival, and the query's loss stream
// (FleetQueryLossStream). On top of that: bitwise thread-count
// invariance of FleetResult, option validation, churn accounting, and
// the exhaustive GiveUpStageName round-trip.

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "broadcast/fleet.h"
#include "dtree/dtree.h"
#include "test_util.h"
#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

/// In-memory sink keeping full (unserialized) QueryTrace copies, so the
/// differential can recover each query's exact point, arrival and
/// outcome summary.
class VectorTraceSink : public TraceSink {
 public:
  void Consume(const QueryTrace& trace) override {
    traces.push_back(trace);
  }
  std::vector<QueryTrace> traces;
};

BroadcastChannel MakeFleetChannel(const AirIndex& index,
                                  const sub::Subdivision& sub,
                                  const FleetOptions& fopt) {
  ChannelOptions copt;
  copt.packet_capacity = fopt.packet_capacity;
  copt.data_instance_size = fopt.data_instance_size;
  copt.m = fopt.m;
  copt.loss = fopt.loss;
  auto ch_r =
      BroadcastChannel::Create(index.NumIndexPackets(), sub.NumRegions(),
                               copt);
  EXPECT_TRUE(ch_r.ok()) << ch_r.status().ToString();
  return std::move(ch_r).value();
}

/// Replays every traced fleet query through the synchronous Simulate and
/// demands the identical outcome: same probe trace (recomputed from the
/// query point), arrival wrapped mod the cycle, loss stream recomputed
/// from (seed, client_id, query_index) via the public helpers.
void ExpectFleetMatchesSimulate(const AirIndex& index,
                                const BroadcastChannel& ch,
                                uint64_t fleet_seed,
                                const std::vector<QueryTrace>& traces) {
  const double cycle = static_cast<double>(ch.cycle_packets());
  ProbeTrace trace;
  for (const QueryTrace& qt : traces) {
    ASSERT_GE(qt.client_id, 0);
    const uint64_t key =
        FleetClientKey(fleet_seed, static_cast<uint64_t>(qt.client_id));
    ASSERT_TRUE(index.ProbeInto({qt.x, qt.y}, &trace).ok());
    ASSERT_EQ(trace.region, qt.region);
    auto out_r =
        ch.Simulate(trace, std::fmod(qt.arrival, cycle),
                    FleetQueryLossStream(key, qt.query_index));
    ASSERT_TRUE(out_r.ok()) << out_r.status().ToString();
    const auto& out = out_r.value();
    EXPECT_EQ(out.latency, qt.latency);  // bitwise, not approximate
    EXPECT_EQ(out.tuning_total(), qt.tuning_total);
    EXPECT_EQ(out.retries, qt.retries);
    EXPECT_EQ(out.lost_packets, qt.lost_packets);
    EXPECT_EQ(out.corrupted_packets, qt.corrupted_packets);
    EXPECT_EQ(out.fallback_scan, qt.fallback_scan);
    EXPECT_EQ(out.unrecoverable, qt.unrecoverable);
  }
}

void ExpectIdenticalFleetResults(const FleetResult& a,
                                 const FleetResult& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.mean_latency, b.mean_latency);  // bitwise
  EXPECT_EQ(a.mean_tuning_index, b.mean_tuning_index);
  EXPECT_EQ(a.mean_tuning_total, b.mean_tuning_total);
  EXPECT_EQ(a.mean_retries, b.mean_retries);
  EXPECT_EQ(a.mean_lost_packets, b.mean_lost_packets);
  EXPECT_EQ(a.mean_corrupted_packets, b.mean_corrupted_packets);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_lost_packets, b.total_lost_packets);
  EXPECT_EQ(a.total_corrupted_packets, b.total_corrupted_packets);
  EXPECT_EQ(a.unrecoverable_queries, b.unrecoverable_queries);
  EXPECT_EQ(a.fallback_queries, b.fallback_queries);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.min_tuning_total, b.min_tuning_total);
  EXPECT_EQ(a.max_tuning_total, b.max_tuning_total);
  const Histogram* ha = a.metrics.FindHistogram(kLatencyHist);
  const Histogram* hb = b.metrics.FindHistogram(kLatencyHist);
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(ha->TotalCount(), hb->TotalCount());
  EXPECT_EQ(ha->Sum(), hb->Sum());  // bitwise: fixed shard merge order
  EXPECT_EQ(ha->Min(), hb->Min());
  EXPECT_EQ(ha->Max(), hb->Max());
}

TEST(FleetTest, SingleClientSingleQueryReproducesSimulateFieldForField) {
  // The ISSUE's differential anchor in its purest form: a fleet of one
  // client issuing one query IS one Simulate call, for every rung of the
  // fault ladder.
  auto ds = workload::MakeUniformDataset();
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(ds.value().subdivision, topt);
  ASSERT_TRUE(tree.ok());

  std::vector<LossOptions> configs(4);
  // configs[0]: lossless.
  configs[1].model = LossModel::kIid;
  configs[1].loss_rate = 0.3;
  configs[1].seed = 12;
  configs[2].model = LossModel::kGilbertElliott;
  configs[2].loss_bad = 0.9;
  configs[2].seed = 13;
  configs[2].corruption.model = CorruptionModel::kIidBits;
  configs[2].corruption.bit_error_rate = 2e-5;
  configs[2].corruption.seed = 14;
  configs[2].fallback_scan_cycles = 2;
  configs[3].model = LossModel::kIid;
  configs[3].loss_rate = 1.0;  // everything fails: probe-budget give-up
  configs[3].seed = 15;
  configs[3].max_retries = 3;

  for (size_t cfg = 0; cfg < configs.size(); ++cfg) {
    for (uint64_t seed : {1u, 77u, 4242u}) {
      FleetOptions fopt;
      fopt.packet_capacity = 256;
      fopt.num_clients = 1;
      fopt.sim_cycles = 1.0;
      // Mean thinking time of a million cycles: the one client issues
      // exactly its join-time query inside the horizon.
      fopt.queries_per_cycle = 1e-6;
      fopt.seed = seed;
      fopt.loss = configs[cfg];
      auto fleet_r =
          RunFleet(tree.value(), ds.value().subdivision, fopt);
      ASSERT_TRUE(fleet_r.ok()) << fleet_r.status().ToString();
      const FleetResult& fr = fleet_r.value();
      ASSERT_EQ(fr.queries, 1) << "cfg=" << cfg << " seed=" << seed;
      ASSERT_EQ(fr.sessions, 1);

      // Replay the client's draws through the public stream helpers.
      const BroadcastChannel ch =
          MakeFleetChannel(tree.value(), ds.value().subdivision, fopt);
      const uint64_t key = FleetClientKey(seed, 0);
      Rng join_rng = Rng::ForStream(key, FleetJoinStream());
      const double arrival = join_rng.Uniform(
          0.0, static_cast<double>(ch.cycle_packets()));
      auto sampler_r = QuerySampler::Create(
          ds.value().subdivision, fopt.distribution, {});
      ASSERT_TRUE(sampler_r.ok());
      Rng point_rng = Rng::ForStream(key, FleetPointStream(0));
      const geom::Point p = sampler_r.value().Draw(&point_rng);
      ProbeTrace trace;
      ASSERT_TRUE(tree.value().ProbeInto(p, &trace).ok());
      auto out_r = ch.Simulate(
          trace, std::fmod(arrival, static_cast<double>(ch.cycle_packets())),
          FleetQueryLossStream(key, 0));
      ASSERT_TRUE(out_r.ok()) << out_r.status().ToString();
      const auto& out = out_r.value();

      EXPECT_EQ(fr.mean_latency, out.latency);
      EXPECT_EQ(fr.mean_tuning_index, static_cast<double>(out.tuning_index));
      EXPECT_EQ(fr.mean_tuning_total,
                static_cast<double>(out.tuning_total()));
      EXPECT_EQ(fr.total_retries, out.retries);
      EXPECT_EQ(fr.total_lost_packets, out.lost_packets);
      EXPECT_EQ(fr.total_corrupted_packets, out.corrupted_packets);
      EXPECT_EQ(fr.unrecoverable_queries, out.unrecoverable ? 1 : 0);
      EXPECT_EQ(fr.fallback_queries, out.fallback_scan ? 1 : 0);
      EXPECT_EQ(fr.min_latency, out.latency);
      EXPECT_EQ(fr.max_latency, out.latency);
      EXPECT_EQ(fr.min_tuning_total,
                static_cast<double>(out.tuning_total()));
      EXPECT_EQ(fr.max_tuning_total,
                static_cast<double>(out.tuning_total()));
    }
  }
}

TEST(FleetTest, EveryFleetQueryMatchesSimulateOnPaperDataset) {
  // Multi-query, multi-cycle single client: arrivals land in later
  // broadcast cycles, exercising the absolute-time arithmetic against
  // Simulate's in-cycle arithmetic for every completed query.
  auto ds = workload::MakeUniformDataset();
  ASSERT_TRUE(ds.ok());
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(ds.value().subdivision, topt);
  ASSERT_TRUE(tree.ok());

  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 1;
  fopt.sim_cycles = 24.0;
  fopt.queries_per_cycle = 0.5;
  fopt.seed = 9;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.2;
  fopt.loss.seed = 3;
  fopt.loss.fallback_scan_cycles = 1;
  VectorTraceSink sink;
  fopt.trace_sink = &sink;
  auto fleet_r = RunFleet(tree.value(), ds.value().subdivision, fopt);
  ASSERT_TRUE(fleet_r.ok()) << fleet_r.status().ToString();
  ASSERT_GT(fleet_r.value().queries, 3);
  ASSERT_EQ(static_cast<int64_t>(sink.traces.size()),
            fleet_r.value().queries);
  const BroadcastChannel ch =
      MakeFleetChannel(tree.value(), ds.value().subdivision, fopt);
  ExpectFleetMatchesSimulate(tree.value(), ch, fopt.seed, sink.traces);
}

TEST(FleetTest, EveryFleetQueryMatchesSimulateOnScaleUWithChurn) {
  // A populated fleet with churn on SCALE-U: later generations re-occupy
  // slots under fresh RNG identities; the differential must hold for
  // every query of every generation.
  auto ds = workload::MakeScaleDataset(3000, workload::ScaleDistribution::kUniform);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(ds.value().subdivision, topt);
  ASSERT_TRUE(tree.ok());

  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 100;
  fopt.sim_cycles = 4.0;
  fopt.queries_per_cycle = 1.0;
  fopt.churn = 0.4;
  fopt.seed = 31;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.15;
  fopt.loss.seed = 8;
  fopt.loss.corruption.model = CorruptionModel::kIidBits;
  fopt.loss.corruption.bit_error_rate = 1e-5;
  fopt.loss.corruption.seed = 44;
  VectorTraceSink sink;
  fopt.trace_sink = &sink;
  auto fleet_r = RunFleet(tree.value(), ds.value().subdivision, fopt);
  ASSERT_TRUE(fleet_r.ok()) << fleet_r.status().ToString();
  const FleetResult& fr = fleet_r.value();
  ASSERT_GT(fr.queries, 100);
  EXPECT_GT(fr.departures, 0);
  EXPECT_GT(fr.sessions, fr.num_clients);  // churn seated new generations
  ASSERT_EQ(static_cast<int64_t>(sink.traces.size()), fr.queries);
  bool saw_later_generation = false;
  for (const QueryTrace& qt : sink.traces) {
    if (qt.client_id >= fopt.num_clients) saw_later_generation = true;
  }
  EXPECT_TRUE(saw_later_generation);
  const BroadcastChannel ch =
      MakeFleetChannel(tree.value(), ds.value().subdivision, fopt);
  ExpectFleetMatchesSimulate(tree.value(), ch, fopt.seed, sink.traces);
}

TEST(FleetTest, ThreadCountDoesNotChangeFleetResult) {
  const sub::Subdivision sub = test::RandomVoronoi(80, 404);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());

  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 20000;
  fopt.sim_cycles = 2.0;
  fopt.queries_per_cycle = 1.0;
  fopt.churn = 0.1;
  fopt.seed = 77;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.1;
  fopt.loss.seed = 21;
  fopt.num_threads = 1;
  auto serial = RunFleet(tree.value(), sub, fopt);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial.value().queries, 10000);
  auto replay = RunFleet(tree.value(), sub, fopt);
  ASSERT_TRUE(replay.ok());
  ExpectIdenticalFleetResults(serial.value(), replay.value());
  for (int threads : {4, 8}) {
    fopt.num_threads = threads;
    auto parallel = RunFleet(tree.value(), sub, fopt);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdenticalFleetResults(serial.value(), parallel.value());
  }
}

TEST(FleetTest, TraceStreamIsThreadCountInvariant) {
  // The serialized trace stream — order and bytes — must not depend on
  // thread count (shard-ordered replay, completion-ordered within shard).
  const sub::Subdivision sub = test::RandomVoronoi(30, 505);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  std::string jsonl[2];
  int i = 0;
  for (int threads : {1, 8}) {
    FleetOptions fopt;
    fopt.packet_capacity = 256;
    fopt.num_clients = 500;
    fopt.sim_cycles = 2.0;
    fopt.seed = 5;
    fopt.num_threads = threads;
    fopt.loss.model = LossModel::kIid;
    fopt.loss.loss_rate = 0.1;
    fopt.loss.seed = 2;
    JsonlTraceSink sink(&jsonl[i]);
    fopt.trace_sink = &sink;
    ASSERT_TRUE(RunFleet(tree.value(), sub, fopt).ok());
    ++i;
  }
  EXPECT_FALSE(jsonl[0].empty());
  EXPECT_EQ(jsonl[0], jsonl[1]);
}

TEST(FleetTest, ValidatesOptions) {
  const sub::Subdivision sub = test::RandomVoronoi(10, 303);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  FleetOptions good;
  good.packet_capacity = 256;
  good.num_clients = 4;
  ASSERT_TRUE(RunFleet(tree.value(), sub, good).ok());

  FleetOptions bad = good;
  bad.num_clients = 0;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.sim_cycles = 0.0;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.sim_cycles = std::nan("");
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.queries_per_cycle = 0.0;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.churn = 1.5;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.churn = std::nan("");
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.packet_capacity = 0;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.loss.loss_rate = 2.0;
  bad.loss.model = LossModel::kIid;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
}

TEST(FleetTest, ZeroCompletedQueriesYieldsZeroMeans) {
  // A horizon much shorter than one cycle: most seeds issue no query at
  // all (the client joins after the horizon). Means must be zero, never
  // NaN.
  const sub::Subdivision sub = test::RandomVoronoi(10, 304);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 1;
  fopt.sim_cycles = 1e-9;
  fopt.seed = 1;  // join time ~uniform in the first cycle: past horizon
  auto res = RunFleet(tree.value(), sub, fopt);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().queries, 0);
  EXPECT_EQ(res.value().mean_latency, 0.0);
  EXPECT_EQ(res.value().mean_tuning_total, 0.0);
  EXPECT_FALSE(std::isnan(res.value().mean_latency));
  EXPECT_EQ(res.value().min_latency, 0.0);
  EXPECT_EQ(res.value().max_latency, 0.0);
}

TEST(GiveUpStageTest, NameRoundTripsForEveryStage) {
  const GiveUpStage all[] = {
      GiveUpStage::kNone,
      GiveUpStage::kProbeBudget,
      GiveUpStage::kRetryBudget,
      GiveUpStage::kFallbackBudget,
  };
  std::map<std::string, GiveUpStage> by_name;
  for (GiveUpStage s : all) {
    const std::string name = GiveUpStageName(s);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");  // every enumerator has a stable name
    // Round-trip: the name uniquely identifies the stage.
    auto [it, inserted] = by_name.emplace(name, s);
    EXPECT_TRUE(inserted) << "duplicate name: " << name;
  }
  EXPECT_EQ(by_name.size(), 4u);
  EXPECT_EQ(by_name.at("none"), GiveUpStage::kNone);
  EXPECT_EQ(by_name.at("probe_budget"), GiveUpStage::kProbeBudget);
  EXPECT_EQ(by_name.at("retry_budget"), GiveUpStage::kRetryBudget);
  EXPECT_EQ(by_name.at("fallback_budget"), GiveUpStage::kFallbackBudget);
}

}  // namespace
}  // namespace dtree::bcast
