// Tests for the event-driven fleet engine (broadcast/fleet.h).
//
// The load-bearing property is the differential anchor: every query a
// fleet client completes must reproduce BroadcastChannel::Simulate
// field-for-field when replayed through the synchronous simulator with
// the same probe trace, the wrapped arrival, and the query's loss stream
// (FleetQueryLossStream). On top of that: bitwise thread-count
// invariance of FleetResult, option validation, churn accounting, and
// the exhaustive GiveUpStageName round-trip.

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "broadcast/fleet.h"
#include "broadcast/versioned.h"
#include "dtree/dtree.h"
#include "test_util.h"
#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

/// In-memory sink keeping full (unserialized) QueryTrace copies, so the
/// differential can recover each query's exact point, arrival and
/// outcome summary.
class VectorTraceSink : public TraceSink {
 public:
  void Consume(const QueryTrace& trace) override {
    traces.push_back(trace);
  }
  std::vector<QueryTrace> traces;
};

BroadcastChannel MakeFleetChannel(const AirIndex& index,
                                  const sub::Subdivision& sub,
                                  const FleetOptions& fopt) {
  ChannelOptions copt;
  copt.packet_capacity = fopt.packet_capacity;
  copt.data_instance_size = fopt.data_instance_size;
  copt.m = fopt.m;
  copt.loss = fopt.loss;
  auto ch_r =
      BroadcastChannel::Create(index.NumIndexPackets(), sub.NumRegions(),
                               copt);
  EXPECT_TRUE(ch_r.ok()) << ch_r.status().ToString();
  return std::move(ch_r).value();
}

/// Replays every traced fleet query through the synchronous Simulate and
/// demands the identical outcome: same probe trace (recomputed from the
/// query point), arrival wrapped mod the cycle, loss stream recomputed
/// from (seed, client_id, query_index) via the public helpers.
void ExpectFleetMatchesSimulate(const AirIndex& index,
                                const BroadcastChannel& ch,
                                uint64_t fleet_seed,
                                const std::vector<QueryTrace>& traces) {
  const double cycle = static_cast<double>(ch.cycle_packets());
  ProbeTrace trace;
  for (const QueryTrace& qt : traces) {
    ASSERT_GE(qt.client_id, 0);
    const uint64_t key =
        FleetClientKey(fleet_seed, static_cast<uint64_t>(qt.client_id));
    ASSERT_TRUE(index.ProbeInto({qt.x, qt.y}, &trace).ok());
    ASSERT_EQ(trace.region, qt.region);
    auto out_r =
        ch.Simulate(trace, std::fmod(qt.arrival, cycle),
                    FleetQueryLossStream(key, qt.query_index));
    ASSERT_TRUE(out_r.ok()) << out_r.status().ToString();
    const auto& out = out_r.value();
    EXPECT_EQ(out.latency, qt.latency);  // bitwise, not approximate
    EXPECT_EQ(out.tuning_total(), qt.tuning_total);
    EXPECT_EQ(out.retries, qt.retries);
    EXPECT_EQ(out.lost_packets, qt.lost_packets);
    EXPECT_EQ(out.corrupted_packets, qt.corrupted_packets);
    EXPECT_EQ(out.fallback_scan, qt.fallback_scan);
    EXPECT_EQ(out.unrecoverable, qt.unrecoverable);
  }
}

void ExpectIdenticalFleetResults(const FleetResult& a,
                                 const FleetResult& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.mean_latency, b.mean_latency);  // bitwise
  EXPECT_EQ(a.mean_tuning_index, b.mean_tuning_index);
  EXPECT_EQ(a.mean_tuning_total, b.mean_tuning_total);
  EXPECT_EQ(a.mean_retries, b.mean_retries);
  EXPECT_EQ(a.mean_lost_packets, b.mean_lost_packets);
  EXPECT_EQ(a.mean_corrupted_packets, b.mean_corrupted_packets);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_lost_packets, b.total_lost_packets);
  EXPECT_EQ(a.total_corrupted_packets, b.total_corrupted_packets);
  EXPECT_EQ(a.unrecoverable_queries, b.unrecoverable_queries);
  EXPECT_EQ(a.fallback_queries, b.fallback_queries);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.min_tuning_total, b.min_tuning_total);
  EXPECT_EQ(a.max_tuning_total, b.max_tuning_total);
  const Histogram* ha = a.metrics.FindHistogram(kLatencyHist);
  const Histogram* hb = b.metrics.FindHistogram(kLatencyHist);
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(ha->TotalCount(), hb->TotalCount());
  EXPECT_EQ(ha->Sum(), hb->Sum());  // bitwise: fixed shard merge order
  EXPECT_EQ(ha->Min(), hb->Min());
  EXPECT_EQ(ha->Max(), hb->Max());
}

TEST(FleetTest, SingleClientSingleQueryReproducesSimulateFieldForField) {
  // The ISSUE's differential anchor in its purest form: a fleet of one
  // client issuing one query IS one Simulate call, for every rung of the
  // fault ladder.
  auto ds = workload::MakeUniformDataset();
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(ds.value().subdivision, topt);
  ASSERT_TRUE(tree.ok());

  std::vector<LossOptions> configs(4);
  // configs[0]: lossless.
  configs[1].model = LossModel::kIid;
  configs[1].loss_rate = 0.3;
  configs[1].seed = 12;
  configs[2].model = LossModel::kGilbertElliott;
  configs[2].loss_bad = 0.9;
  configs[2].seed = 13;
  configs[2].corruption.model = CorruptionModel::kIidBits;
  configs[2].corruption.bit_error_rate = 2e-5;
  configs[2].corruption.seed = 14;
  configs[2].fallback_scan_cycles = 2;
  configs[3].model = LossModel::kIid;
  configs[3].loss_rate = 1.0;  // everything fails: probe-budget give-up
  configs[3].seed = 15;
  configs[3].max_retries = 3;

  for (size_t cfg = 0; cfg < configs.size(); ++cfg) {
    for (uint64_t seed : {1u, 77u, 4242u}) {
      FleetOptions fopt;
      fopt.packet_capacity = 256;
      fopt.num_clients = 1;
      fopt.sim_cycles = 1.0;
      // Mean thinking time of a million cycles: the one client issues
      // exactly its join-time query inside the horizon.
      fopt.queries_per_cycle = 1e-6;
      fopt.seed = seed;
      fopt.loss = configs[cfg];
      auto fleet_r =
          RunFleet(tree.value(), ds.value().subdivision, fopt);
      ASSERT_TRUE(fleet_r.ok()) << fleet_r.status().ToString();
      const FleetResult& fr = fleet_r.value();
      ASSERT_EQ(fr.queries, 1) << "cfg=" << cfg << " seed=" << seed;
      ASSERT_EQ(fr.sessions, 1);

      // Replay the client's draws through the public stream helpers.
      const BroadcastChannel ch =
          MakeFleetChannel(tree.value(), ds.value().subdivision, fopt);
      const uint64_t key = FleetClientKey(seed, 0);
      Rng join_rng = Rng::ForStream(key, FleetJoinStream());
      const double arrival = join_rng.Uniform(
          0.0, static_cast<double>(ch.cycle_packets()));
      auto sampler_r = QuerySampler::Create(
          ds.value().subdivision, fopt.distribution, {});
      ASSERT_TRUE(sampler_r.ok());
      Rng point_rng = Rng::ForStream(key, FleetPointStream(0));
      const geom::Point p = sampler_r.value().Draw(&point_rng);
      ProbeTrace trace;
      ASSERT_TRUE(tree.value().ProbeInto(p, &trace).ok());
      auto out_r = ch.Simulate(
          trace, std::fmod(arrival, static_cast<double>(ch.cycle_packets())),
          FleetQueryLossStream(key, 0));
      ASSERT_TRUE(out_r.ok()) << out_r.status().ToString();
      const auto& out = out_r.value();

      EXPECT_EQ(fr.mean_latency, out.latency);
      EXPECT_EQ(fr.mean_tuning_index, static_cast<double>(out.tuning_index));
      EXPECT_EQ(fr.mean_tuning_total,
                static_cast<double>(out.tuning_total()));
      EXPECT_EQ(fr.total_retries, out.retries);
      EXPECT_EQ(fr.total_lost_packets, out.lost_packets);
      EXPECT_EQ(fr.total_corrupted_packets, out.corrupted_packets);
      EXPECT_EQ(fr.unrecoverable_queries, out.unrecoverable ? 1 : 0);
      EXPECT_EQ(fr.fallback_queries, out.fallback_scan ? 1 : 0);
      EXPECT_EQ(fr.min_latency, out.latency);
      EXPECT_EQ(fr.max_latency, out.latency);
      EXPECT_EQ(fr.min_tuning_total,
                static_cast<double>(out.tuning_total()));
      EXPECT_EQ(fr.max_tuning_total,
                static_cast<double>(out.tuning_total()));
    }
  }
}

TEST(FleetTest, EveryFleetQueryMatchesSimulateOnPaperDataset) {
  // Multi-query, multi-cycle single client: arrivals land in later
  // broadcast cycles, exercising the absolute-time arithmetic against
  // Simulate's in-cycle arithmetic for every completed query.
  auto ds = workload::MakeUniformDataset();
  ASSERT_TRUE(ds.ok());
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(ds.value().subdivision, topt);
  ASSERT_TRUE(tree.ok());

  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 1;
  fopt.sim_cycles = 24.0;
  fopt.queries_per_cycle = 0.5;
  fopt.seed = 9;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.2;
  fopt.loss.seed = 3;
  fopt.loss.fallback_scan_cycles = 1;
  VectorTraceSink sink;
  fopt.trace_sink = &sink;
  auto fleet_r = RunFleet(tree.value(), ds.value().subdivision, fopt);
  ASSERT_TRUE(fleet_r.ok()) << fleet_r.status().ToString();
  ASSERT_GT(fleet_r.value().queries, 3);
  ASSERT_EQ(static_cast<int64_t>(sink.traces.size()),
            fleet_r.value().queries);
  const BroadcastChannel ch =
      MakeFleetChannel(tree.value(), ds.value().subdivision, fopt);
  ExpectFleetMatchesSimulate(tree.value(), ch, fopt.seed, sink.traces);
}

TEST(FleetTest, EveryFleetQueryMatchesSimulateOnScaleUWithChurn) {
  // A populated fleet with churn on SCALE-U: later generations re-occupy
  // slots under fresh RNG identities; the differential must hold for
  // every query of every generation.
  auto ds = workload::MakeScaleDataset(3000, workload::ScaleDistribution::kUniform);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(ds.value().subdivision, topt);
  ASSERT_TRUE(tree.ok());

  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 100;
  fopt.sim_cycles = 4.0;
  fopt.queries_per_cycle = 1.0;
  fopt.churn = 0.4;
  fopt.seed = 31;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.15;
  fopt.loss.seed = 8;
  fopt.loss.corruption.model = CorruptionModel::kIidBits;
  fopt.loss.corruption.bit_error_rate = 1e-5;
  fopt.loss.corruption.seed = 44;
  VectorTraceSink sink;
  fopt.trace_sink = &sink;
  auto fleet_r = RunFleet(tree.value(), ds.value().subdivision, fopt);
  ASSERT_TRUE(fleet_r.ok()) << fleet_r.status().ToString();
  const FleetResult& fr = fleet_r.value();
  ASSERT_GT(fr.queries, 100);
  EXPECT_GT(fr.departures, 0);
  EXPECT_GT(fr.sessions, fr.num_clients);  // churn seated new generations
  ASSERT_EQ(static_cast<int64_t>(sink.traces.size()), fr.queries);
  bool saw_later_generation = false;
  for (const QueryTrace& qt : sink.traces) {
    if (qt.client_id >= fopt.num_clients) saw_later_generation = true;
  }
  EXPECT_TRUE(saw_later_generation);
  const BroadcastChannel ch =
      MakeFleetChannel(tree.value(), ds.value().subdivision, fopt);
  ExpectFleetMatchesSimulate(tree.value(), ch, fopt.seed, sink.traces);
}

TEST(FleetTest, ThreadCountDoesNotChangeFleetResult) {
  const sub::Subdivision sub = test::RandomVoronoi(80, 404);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());

  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 20000;
  fopt.sim_cycles = 2.0;
  fopt.queries_per_cycle = 1.0;
  fopt.churn = 0.1;
  fopt.seed = 77;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.1;
  fopt.loss.seed = 21;
  fopt.num_threads = 1;
  auto serial = RunFleet(tree.value(), sub, fopt);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial.value().queries, 10000);
  auto replay = RunFleet(tree.value(), sub, fopt);
  ASSERT_TRUE(replay.ok());
  ExpectIdenticalFleetResults(serial.value(), replay.value());
  for (int threads : {4, 8}) {
    fopt.num_threads = threads;
    auto parallel = RunFleet(tree.value(), sub, fopt);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdenticalFleetResults(serial.value(), parallel.value());
  }
}

TEST(FleetTest, TraceStreamIsThreadCountInvariant) {
  // The serialized trace stream — order and bytes — must not depend on
  // thread count (shard-ordered replay, completion-ordered within shard).
  const sub::Subdivision sub = test::RandomVoronoi(30, 505);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  std::string jsonl[2];
  int i = 0;
  for (int threads : {1, 8}) {
    FleetOptions fopt;
    fopt.packet_capacity = 256;
    fopt.num_clients = 500;
    fopt.sim_cycles = 2.0;
    fopt.seed = 5;
    fopt.num_threads = threads;
    fopt.loss.model = LossModel::kIid;
    fopt.loss.loss_rate = 0.1;
    fopt.loss.seed = 2;
    JsonlTraceSink sink(&jsonl[i]);
    fopt.trace_sink = &sink;
    ASSERT_TRUE(RunFleet(tree.value(), sub, fopt).ok());
    ++i;
  }
  EXPECT_FALSE(jsonl[0].empty());
  EXPECT_EQ(jsonl[0], jsonl[1]);
}

TEST(FleetTest, ValidatesOptions) {
  const sub::Subdivision sub = test::RandomVoronoi(10, 303);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  FleetOptions good;
  good.packet_capacity = 256;
  good.num_clients = 4;
  ASSERT_TRUE(RunFleet(tree.value(), sub, good).ok());

  FleetOptions bad = good;
  bad.num_clients = 0;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.sim_cycles = 0.0;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.sim_cycles = std::nan("");
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.queries_per_cycle = 0.0;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.churn = 1.5;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.churn = std::nan("");
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.packet_capacity = 0;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
  bad = good;
  bad.loss.loss_rate = 2.0;
  bad.loss.model = LossModel::kIid;
  EXPECT_FALSE(RunFleet(tree.value(), sub, bad).ok());
}

TEST(FleetTest, ZeroCompletedQueriesYieldsZeroMeans) {
  // A horizon much shorter than one cycle: most seeds issue no query at
  // all (the client joins after the horizon). Means must be zero, never
  // NaN.
  const sub::Subdivision sub = test::RandomVoronoi(10, 304);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());
  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 1;
  fopt.sim_cycles = 1e-9;
  fopt.seed = 1;  // join time ~uniform in the first cycle: past horizon
  auto res = RunFleet(tree.value(), sub, fopt);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().queries, 0);
  EXPECT_EQ(res.value().mean_latency, 0.0);
  EXPECT_EQ(res.value().mean_tuning_total, 0.0);
  EXPECT_FALSE(std::isnan(res.value().mean_latency));
  EXPECT_EQ(res.value().min_latency, 0.0);
  EXPECT_EQ(res.value().max_latency, 0.0);
}

TEST(GiveUpStageTest, NameRoundTripsForEveryStage) {
  const GiveUpStage all[] = {
      GiveUpStage::kNone,
      GiveUpStage::kProbeBudget,
      GiveUpStage::kRetryBudget,
      GiveUpStage::kFallbackBudget,
      GiveUpStage::kEpochChurn,
  };
  std::map<std::string, GiveUpStage> by_name;
  for (GiveUpStage s : all) {
    const std::string name = GiveUpStageName(s);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");  // every enumerator has a stable name
    // Round-trip: the name uniquely identifies the stage.
    auto [it, inserted] = by_name.emplace(name, s);
    EXPECT_TRUE(inserted) << "duplicate name: " << name;
  }
  EXPECT_EQ(by_name.size(), 5u);
  EXPECT_EQ(by_name.at("none"), GiveUpStage::kNone);
  EXPECT_EQ(by_name.at("probe_budget"), GiveUpStage::kProbeBudget);
  EXPECT_EQ(by_name.at("retry_budget"), GiveUpStage::kRetryBudget);
  EXPECT_EQ(by_name.at("fallback_budget"), GiveUpStage::kFallbackBudget);
  EXPECT_EQ(by_name.at("epoch_churn"), GiveUpStage::kEpochChurn);
}

TEST(FleetClientKeyTest, GenerationWraparoundKeepsIdentitiesDistinct) {
  // Churn seats generation g of slot s under client_id =
  // s + g * num_clients in uint64 arithmetic. The id must stay injective
  // — and the derived RNG key collision-free — all the way to a
  // generation counter wrapping 32 bits, far beyond any run's churn.
  const uint64_t num_clients = 3;
  const uint64_t generations[] = {0,      1,          2,
                                  1000,   (1u << 31), 0xFFFFFFFEu,
                                  0xFFFFFFFFu};
  std::set<uint64_t> ids;
  std::set<uint64_t> keys;
  for (uint64_t g : generations) {
    for (uint64_t slot = 0; slot < num_clients; ++slot) {
      const uint64_t id = slot + g * num_clients;
      EXPECT_TRUE(ids.insert(id).second) << "id collision at g=" << g;
      EXPECT_TRUE(keys.insert(FleetClientKey(42, id)).second)
          << "key collision at g=" << g << " slot=" << slot;
      // Different fleet seeds give a different identity for the same id.
      EXPECT_NE(FleetClientKey(42, id), FleetClientKey(43, id));
    }
  }

  // Property sweep: random (slot, generation) pairs over a large fleet.
  const uint64_t big_fleet = 1'000'000;
  Rng rng(606);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  ids.clear();
  keys.clear();
  for (int i = 0; i < 2000; ++i) {
    const uint64_t slot =
        static_cast<uint64_t>(rng.UniformInt(0, big_fleet - 1));
    const uint64_t g =
        static_cast<uint64_t>(rng.UniformInt(0, 0xFFFFFFFF));
    if (!seen.insert({slot, g}).second) continue;
    const uint64_t id = slot + g * big_fleet;
    EXPECT_TRUE(ids.insert(id).second);
    EXPECT_TRUE(keys.insert(FleetClientKey(42, id)).second);
  }
}

// ---------------------------------------------------------------------------
// Versioned fleet: RunFleetVersioned.

/// Two epochs with different subdivisions (different region counts, index
/// layouts, cycle lengths): epoch 0 on the air for two of its cycles,
/// epoch 1 forever after.
struct VersionedFleetRig {
  sub::Subdivision sub0;
  sub::Subdivision sub1;
  core::DTree tree0;
  core::DTree tree1;

  VersionedFleetRig()
      : sub0(test::RandomVoronoi(40, 96)),
        sub1(test::RandomVoronoi(52, 97)),
        tree0(BuildTree(sub0)),
        tree1(BuildTree(sub1)) {}

  static core::DTree BuildTree(const sub::Subdivision& s) {
    core::DTree::Options topt;
    topt.packet_capacity = 256;
    return core::DTree::Build(s, topt).value();
  }

  std::vector<FleetEpoch> Epochs() const {
    return {{&tree0, &sub0, 0, 2}, {&tree1, &sub1, 1, 1}};
  }
};

FleetOptions MakeVersionedFleetOptions() {
  FleetOptions fopt;
  fopt.packet_capacity = 256;
  fopt.num_clients = 96;
  fopt.sim_cycles = 5.0;  // measured against epoch 0's cycle
  fopt.queries_per_cycle = 1.0;
  fopt.churn = 0.1;
  fopt.seed = 7;
  fopt.loss.model = LossModel::kIid;
  fopt.loss.loss_rate = 0.1;
  fopt.loss.seed = 21;
  fopt.loss.corruption.model = CorruptionModel::kIidBits;
  fopt.loss.corruption.bit_error_rate = 1e-5;
  fopt.loss.corruption.seed = 22;
  fopt.loss.fallback_scan_cycles = 2;
  return fopt;
}

void ExpectIdenticalEpochAccounting(const FleetResult& a,
                                    const FleetResult& b) {
  EXPECT_EQ(a.total_epoch_switches, b.total_epoch_switches);
  EXPECT_EQ(a.epoch_churn_queries, b.epoch_churn_queries);
  EXPECT_EQ(a.mean_epoch_switches, b.mean_epoch_switches);  // bitwise
  const Histogram* ha = a.metrics.FindHistogram(kEpochSwitchesHist);
  const Histogram* hb = b.metrics.FindHistogram(kEpochSwitchesHist);
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(ha->TotalCount(), hb->TotalCount());
  EXPECT_EQ(ha->Sum(), hb->Sum());
}

TEST(VersionedFleetTest, SingleEpochMatchesRunFleetBitwise) {
  // The fleet-level differential oracle: with one epoch the versioned
  // engine must reproduce RunFleet bitwise — result fields AND the
  // serialized trace stream — under loss, corruption and churn.
  VersionedFleetRig rig;
  FleetOptions fopt = MakeVersionedFleetOptions();

  std::string legacy_jsonl;
  JsonlTraceSink legacy_sink(&legacy_jsonl);
  fopt.trace_sink = &legacy_sink;
  auto legacy = RunFleet(rig.tree0, rig.sub0, fopt);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  std::string versioned_jsonl;
  JsonlTraceSink versioned_sink(&versioned_jsonl);
  fopt.trace_sink = &versioned_sink;
  auto versioned = RunFleetVersioned({{&rig.tree0, &rig.sub0, 0, 1}}, fopt);
  ASSERT_TRUE(versioned.ok()) << versioned.status().ToString();

  ASSERT_GT(legacy.value().queries, 100);
  ExpectIdenticalFleetResults(legacy.value(), versioned.value());
  EXPECT_EQ(versioned.value().total_epoch_switches, 0);
  EXPECT_EQ(versioned.value().epoch_churn_queries, 0);

  // Trace JSONL differs only by the versioned-gated epoch summary fields.
  EXPECT_FALSE(legacy_jsonl.empty());
  std::string stripped = versioned_jsonl;
  for (std::string::size_type at;
       (at = stripped.find(", \"epoch\": 0, \"epoch_switches\": 0")) !=
       std::string::npos;) {
    stripped.erase(at, std::string(", \"epoch\": 0, \"epoch_switches\": 0")
                           .size());
  }
  EXPECT_EQ(legacy_jsonl, stripped);
}

TEST(VersionedFleetTest, ThreadCountDoesNotChangeVersionedResult) {
  VersionedFleetRig rig;
  FleetOptions fopt = MakeVersionedFleetOptions();
  fopt.num_clients = 4000;
  fopt.num_threads = 1;
  auto serial = RunFleetVersioned(rig.Epochs(), fopt);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial.value().queries, 1000);
  // The epoch boundary must actually be crossed under this config.
  EXPECT_GT(serial.value().total_epoch_switches, 0);
  for (int threads : {4, 8}) {
    fopt.num_threads = threads;
    auto parallel = RunFleetVersioned(rig.Epochs(), fopt);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectIdenticalFleetResults(serial.value(), parallel.value());
    ExpectIdenticalEpochAccounting(serial.value(), parallel.value());
  }
}

TEST(VersionedFleetTest, EveryQueryMatchesTimelineSimulate) {
  // The versioned differential anchor: every traced fleet query replays
  // bit-identically through BroadcastTimeline::Simulate with per-span
  // probe traces, the absolute arrival, and the query's loss stream.
  VersionedFleetRig rig;
  FleetOptions fopt = MakeVersionedFleetOptions();
  VectorTraceSink sink;
  fopt.trace_sink = &sink;
  auto fleet_r = RunFleetVersioned(rig.Epochs(), fopt);
  ASSERT_TRUE(fleet_r.ok()) << fleet_r.status().ToString();
  const FleetResult& fr = fleet_r.value();
  ASSERT_GT(fr.queries, 100);
  ASSERT_EQ(static_cast<int64_t>(sink.traces.size()), fr.queries);
  EXPECT_GT(fr.total_epoch_switches, 0);

  const BroadcastChannel ch0 = MakeFleetChannel(rig.tree0, rig.sub0, fopt);
  const BroadcastChannel ch1 = MakeFleetChannel(rig.tree1, rig.sub1, fopt);
  auto tl_r = BroadcastTimeline::Create({{&ch0, 0, 2}, {&ch1, 1, 1}});
  ASSERT_TRUE(tl_r.ok()) << tl_r.status().ToString();
  const BroadcastTimeline& tl = tl_r.value();

  int64_t total_switches = 0;
  int64_t churned = 0;
  ProbeTrace t0, t1;
  for (const QueryTrace& qt : sink.traces) {
    EXPECT_TRUE(qt.versioned);
    ASSERT_GE(qt.client_id, 0);
    const uint64_t key =
        FleetClientKey(fopt.seed, static_cast<uint64_t>(qt.client_id));
    ASSERT_TRUE(rig.tree0.ProbeInto({qt.x, qt.y}, &t0).ok());
    ASSERT_TRUE(rig.tree1.ProbeInto({qt.x, qt.y}, &t1).ok());
    auto out_r = tl.Simulate({t0, t1}, qt.arrival,
                             FleetQueryLossStream(key, qt.query_index));
    ASSERT_TRUE(out_r.ok()) << out_r.status().ToString();
    const auto& out = out_r.value();
    EXPECT_EQ(out.latency, qt.latency);  // bitwise, not approximate
    EXPECT_EQ(out.tuning_total(), qt.tuning_total);
    EXPECT_EQ(out.retries, qt.retries);
    EXPECT_EQ(out.lost_packets, qt.lost_packets);
    EXPECT_EQ(out.corrupted_packets, qt.corrupted_packets);
    EXPECT_EQ(out.fallback_scan, qt.fallback_scan);
    EXPECT_EQ(out.unrecoverable, qt.unrecoverable);
    EXPECT_EQ(out.epoch, qt.epoch);
    EXPECT_EQ(out.epoch_switches, qt.epoch_switches);
    total_switches += qt.epoch_switches;
    if (qt.unrecoverable && out.give_up == GiveUpStage::kEpochChurn) {
      ++churned;
    }
  }
  EXPECT_EQ(total_switches, fr.total_epoch_switches);
  EXPECT_EQ(churned, fr.epoch_churn_queries);
}

TEST(VersionedFleetTest, EpochChurnBudgetExhaustionIsAccounted) {
  // Budget 0 on a clean channel: the only failure mode is the version
  // skew itself; every switch observer gives up with kEpochChurn.
  VersionedFleetRig rig;
  FleetOptions fopt = MakeVersionedFleetOptions();
  fopt.loss = {};
  fopt.loss.max_epoch_switches = 0;
  VectorTraceSink sink;
  fopt.trace_sink = &sink;
  auto fleet_r = RunFleetVersioned(rig.Epochs(), fopt);
  ASSERT_TRUE(fleet_r.ok()) << fleet_r.status().ToString();
  const FleetResult& fr = fleet_r.value();
  EXPECT_GT(fr.epoch_churn_queries, 0);
  EXPECT_EQ(fr.epoch_churn_queries, fr.unrecoverable_queries);
  EXPECT_EQ(fr.total_epoch_switches, fr.epoch_churn_queries);
  for (const QueryTrace& qt : sink.traces) {
    EXPECT_LE(qt.epoch_switches, 1);
    if (qt.epoch_switches == 1) {
      EXPECT_TRUE(qt.unrecoverable);
      EXPECT_EQ(qt.epoch, 1);
    }
  }
}

TEST(VersionedFleetTest, ValidatesEpochs) {
  VersionedFleetRig rig;
  FleetOptions fopt = MakeVersionedFleetOptions();
  EXPECT_FALSE(RunFleetVersioned({}, fopt).ok());
  EXPECT_FALSE(
      RunFleetVersioned({{nullptr, &rig.sub0, 0, 1}}, fopt).ok());
  EXPECT_FALSE(
      RunFleetVersioned({{&rig.tree0, nullptr, 0, 1}}, fopt).ok());
  // cycles < 1 on a non-last epoch; the last epoch's count is ignored.
  EXPECT_FALSE(RunFleetVersioned(
                   {{&rig.tree0, &rig.sub0, 0, 0}, {&rig.tree1, &rig.sub1, 1, 1}},
                   fopt)
                   .ok());
  EXPECT_TRUE(RunFleetVersioned(
                  {{&rig.tree0, &rig.sub0, 0, 1}, {&rig.tree1, &rig.sub1, 1, 0}},
                  fopt)
                  .ok());
}

}  // namespace
}  // namespace dtree::bcast
