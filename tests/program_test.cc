// Tests for the byte-level broadcast program: the materialized cycle must
// be structurally sound, and a client session over raw frames must agree
// with the analytic channel simulator packet for packet.

#include "broadcast/channel.h"
#include "dtree/dtree.h"
#include "dtree/program.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::core {
namespace {

using geom::Point;

struct Rig {
  sub::Subdivision sub;
  DTree tree;
  bcast::BroadcastChannel channel;
  BroadcastProgram program;
};

Rig MakeRig(int n, int capacity, uint64_t seed, int m = 0) {
  sub::Subdivision s = test::RandomVoronoi(n, seed);
  DTree::Options o;
  o.packet_capacity = capacity;
  DTree t = DTree::Build(s, o).value();
  bcast::ChannelOptions copt;
  copt.packet_capacity = capacity;
  copt.m = m;
  bcast::BroadcastChannel ch =
      bcast::BroadcastChannel::Create(t.NumIndexPackets(), s.NumRegions(),
                                      copt)
          .value();
  BroadcastProgram prog = BroadcastProgram::Materialize(t, ch).value();
  return Rig{std::move(s), std::move(t), std::move(ch), std::move(prog)};
}

TEST(BroadcastProgramTest, FrameStructure) {
  Rig su = MakeRig(30, 128, 61);
  EXPECT_EQ(su.program.num_frames(), su.channel.cycle_packets());
  int index_frames = 0, data_frames = 0;
  for (int64_t i = 0; i < su.program.num_frames(); ++i) {
    const auto& f = su.program.frame(i);
    ASSERT_EQ(f.size(),
              BroadcastProgram::kHeaderSize + static_cast<size_t>(128));
    if (f[0] == BroadcastProgram::kIndexFrame) {
      ++index_frames;
    } else {
      ASSERT_EQ(f[0], BroadcastProgram::kDataFrame);
      ++data_frames;
    }
  }
  EXPECT_EQ(index_frames, su.channel.m() * su.channel.index_packets());
  EXPECT_EQ(data_frames, su.channel.data_packets());
}

TEST(BroadcastProgramTest, NextIndexPointersLandOnSegments) {
  Rig su = MakeRig(30, 128, 62);
  const int64_t cycle = su.program.num_frames();
  for (int64_t i = 0; i < cycle; ++i) {
    const auto& f = su.program.frame(i);
    uint32_t delta = 0;
    for (int b = 0; b < 4; ++b) {
      delta |= static_cast<uint32_t>(f[1 + b]) << (8 * b);
    }
    ASSERT_GT(delta, 0u);
    const int64_t target = (i + delta) % cycle;
    // The target must be the first frame of some index segment.
    bool is_segment_start = false;
    for (int j = 0; j < su.channel.m(); ++j) {
      if (su.channel.IndexSegmentStart(j) == target) is_segment_start = true;
    }
    EXPECT_TRUE(is_segment_start) << "frame " << i;
    // And it must be the *next* one: no segment start in between.
    for (int64_t k = i + 1; k < i + delta; ++k) {
      for (int j = 0; j < su.channel.m(); ++j) {
        EXPECT_NE(su.channel.IndexSegmentStart(j), k % cycle)
            << "frame " << i << " skipped a segment";
      }
    }
  }
}

TEST(BroadcastProgramTest, RejectsMismatchedChannel) {
  Rig su = MakeRig(30, 128, 63);
  bcast::ChannelOptions copt;
  copt.packet_capacity = 128;
  auto wrong = bcast::BroadcastChannel::Create(
      su.tree.NumIndexPackets() + 3, su.sub.NumRegions(), copt);
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(BroadcastProgram::Materialize(su.tree, wrong.value()).ok());
}

class ProgramAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ProgramAgreementTest, ByteClientMatchesAnalyticSimulator) {
  const auto [n, capacity, m] = GetParam();
  Rig su = MakeRig(n, capacity, 1234 + n + capacity, m);
  Rng rng(64);
  for (int q = 0; q < 250; ++q) {
    const Point p = test::UnambiguousQueryPoint(su.sub, &rng, 1e-3);
    const double arrival = rng.Uniform(
        0.0, static_cast<double>(su.channel.cycle_packets()));

    auto session_r = su.program.RunClient(p, arrival);
    ASSERT_TRUE(session_r.ok()) << session_r.status().ToString();
    const auto& session = session_r.value();

    auto trace_r = su.tree.Probe(p);
    ASSERT_TRUE(trace_r.ok());
    auto outcome_r = su.channel.Simulate(trace_r.value(), arrival);
    ASSERT_TRUE(outcome_r.ok());
    const auto& outcome = outcome_r.value();

    EXPECT_EQ(session.region, trace_r.value().region);
    EXPECT_DOUBLE_EQ(session.latency, outcome.latency);
    EXPECT_EQ(session.tuning_index, outcome.tuning_index);
    EXPECT_EQ(session.tuning_data, outcome.tuning_data);
    EXPECT_EQ(session.tuning_total(), outcome.tuning_total());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProgramAgreementTest,
    ::testing::Combine(::testing::Values(10, 45, 90),
                       ::testing::Values(64, 256),
                       ::testing::Values(0, 1, 3)));

}  // namespace
}  // namespace dtree::core
