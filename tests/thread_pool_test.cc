// ThreadPool: every task index runs exactly once, completion blocks the
// caller, pools are reusable across ParallelFor calls, and degenerate
// shapes (0 tasks, 1 thread, more tasks than threads) behave.

#include "common/thread_pool.h"

#include <atomic>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace dtree {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr int kTasks = 200;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(kTasks, [&](int i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, CompletionIsVisibleToTheCaller) {
  // ParallelFor must not return before every task's writes are visible:
  // sum plain (non-atomic) per-task slots after the call.
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::vector<int> out(kTasks, 0);
  pool.ParallelFor(kTasks, [&](int i) { out[i] = i + 1; });
  int64_t sum = 0;
  for (int v : out) sum += v;
  EXPECT_EQ(sum, static_cast<int64_t>(kTasks) * (kTasks + 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(round % 7, [&](int) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  int expect = 0;
  for (int round = 0; round < 50; ++round) expect += round % 7;
  EXPECT_EQ(total.load(), expect);
}

TEST(ThreadPoolTest, ZeroAndNegativeTaskCountsAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](int) { count.fetch_add(1); });
  pool.ParallelFor(-5, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
  ThreadPool pool(0);  // 0 selects the default
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  constexpr int kTasks = 5000;
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(kTasks, [&](int i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kTasks) * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace dtree
