// Randomized property tests for the geometry kernel.

#include <cmath>

#include "common/rng.h"
#include "geom/polygon.h"
#include "geom/predicates.h"
#include "geom/triangle.h"

#include "gtest/gtest.h"

namespace dtree::geom {
namespace {

/// Random convex polygon: intersection of a square with random half-planes.
Polygon RandomConvex(Rng* rng) {
  Polygon poly({{0, 0}, {100, 0}, {100, 100}, {0, 100}});
  const int cuts = static_cast<int>(rng->UniformInt(0, 6));
  for (int i = 0; i < cuts && !poly.empty(); ++i) {
    // Half-plane through a random interior point with random direction.
    const double cx = rng->Uniform(20, 80), cy = rng->Uniform(20, 80);
    const double ang = rng->Uniform(0, 2 * M_PI);
    const double a = std::cos(ang), b = std::sin(ang);
    Polygon clipped = ClipHalfPlane(poly, a, b, -(a * cx + b * cy));
    if (!clipped.empty()) poly = clipped;
  }
  return poly;
}

TEST(GeomPropertyTest, HalfPlaneClipConservesArea) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const Polygon poly = RandomConvex(&rng);
    if (poly.empty()) continue;
    const double cx = rng.Uniform(0, 100), cy = rng.Uniform(0, 100);
    const double ang = rng.Uniform(0, 2 * M_PI);
    const double a = std::cos(ang), b = std::sin(ang);
    const double c = -(a * cx + b * cy);
    const Polygon keep = ClipHalfPlane(poly, a, b, c);
    const Polygon complement = ClipHalfPlane(poly, -a, -b, -c);
    EXPECT_NEAR(keep.Area() + complement.Area(), poly.Area(),
                1e-6 * std::max(poly.Area(), 1.0))
        << "trial " << trial;
  }
}

TEST(GeomPropertyTest, ClipOutputStaysInHalfPlane) {
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    const Polygon poly = RandomConvex(&rng);
    if (poly.empty()) continue;
    const double ang = rng.Uniform(0, 2 * M_PI);
    const double a = std::cos(ang), b = std::sin(ang);
    const double c = -rng.Uniform(-50, 150);
    const Polygon keep = ClipHalfPlane(poly, a, b, c);
    for (const Point& p : keep.ring()) {
      EXPECT_LE(a * p.x + b * p.y + c, 1e-6);
    }
  }
}

TEST(GeomPropertyTest, BandAreasPartitionThePolygon) {
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const Polygon poly = RandomConvex(&rng);
    if (poly.empty()) continue;
    const double split = rng.Uniform(-10, 110);
    const double left = AreaInVerticalBand(poly, -1000, split);
    const double right = AreaInVerticalBand(poly, split, 1000);
    EXPECT_NEAR(left + right, poly.Area(),
                1e-6 * std::max(poly.Area(), 1.0));
    const double lower = AreaInHorizontalBand(poly, -1000, split);
    const double upper = AreaInHorizontalBand(poly, split, 1000);
    EXPECT_NEAR(lower + upper, poly.Area(),
                1e-6 * std::max(poly.Area(), 1.0));
  }
}

TEST(GeomPropertyTest, ContainsAgreesWithSignedAreaSampling) {
  Rng rng(14);
  for (int trial = 0; trial < 100; ++trial) {
    const Polygon poly = RandomConvex(&rng);
    if (poly.empty() || poly.Area() < 1.0) continue;
    // For convex CCW polygons, Contains == all edges on the left side.
    for (int q = 0; q < 50; ++q) {
      const Point p{rng.Uniform(-10, 110), rng.Uniform(-10, 110)};
      if (poly.DistanceToBoundary(p) < 1e-6) continue;  // ambiguous rim
      bool left_of_all = true;
      for (size_t i = 0; i < poly.NumVertices(); ++i) {
        Point e0, e1;
        poly.Edge(i, &e0, &e1);
        if (OrientValue(e0, e1, p) < 0.0) {
          left_of_all = false;
          break;
        }
      }
      EXPECT_EQ(poly.Contains(p), left_of_all);
    }
  }
}

TEST(GeomPropertyTest, CentroidInsideConvex) {
  Rng rng(15);
  for (int trial = 0; trial < 200; ++trial) {
    const Polygon poly = RandomConvex(&rng);
    if (poly.empty() || poly.Area() < 1e-3) continue;
    EXPECT_TRUE(poly.Contains(poly.Centroid()));
  }
}

TEST(GeomPropertyTest, TriangleOverlapIsSymmetric) {
  Rng rng(16);
  for (int trial = 0; trial < 300; ++trial) {
    auto random_tri = [&] {
      Triangle t({rng.Uniform(0, 100), rng.Uniform(0, 100)},
                 {rng.Uniform(0, 100), rng.Uniform(0, 100)},
                 {rng.Uniform(0, 100), rng.Uniform(0, 100)});
      t.EnsureCCW();
      return t;
    };
    const Triangle a = random_tri();
    const Triangle b = random_tri();
    if (a.Area() < 1.0 || b.Area() < 1.0) continue;
    EXPECT_EQ(a.OverlapsInterior(b), b.OverlapsInterior(a));
    // A triangle overlaps itself; far translates never do.
    EXPECT_TRUE(a.OverlapsInterior(a));
    Triangle far = a;
    for (auto& v : far.v) v.x += 1000.0;
    EXPECT_FALSE(a.OverlapsInterior(far));
  }
}

TEST(GeomPropertyTest, RayParityLocatesInsideRandomConvex) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const Polygon poly = RandomConvex(&rng);
    if (poly.empty() || poly.Area() < 1.0) continue;
    for (int q = 0; q < 30; ++q) {
      const Point p{rng.Uniform(-10, 110), rng.Uniform(-10, 110)};
      if (poly.DistanceToBoundary(p) < 1e-6) continue;
      int right = 0, down = 0;
      for (size_t i = 0; i < poly.NumVertices(); ++i) {
        Point a, b;
        poly.Edge(i, &a, &b);
        if (RayRightCrossesSegment(p, a, b)) ++right;
        if (RayDownCrossesSegment(p, a, b)) ++down;
      }
      // Both ray directions must agree on parity and match Contains.
      EXPECT_EQ(right % 2, down % 2);
      EXPECT_EQ(right % 2 == 1, poly.Contains(p));
    }
  }
}

}  // namespace
}  // namespace dtree::geom
