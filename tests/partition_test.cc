#include <set>

#include "dtree/partition.h"
#include "subdivision/voronoi.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::core {
namespace {

using geom::BBox;
using geom::Point;
using geom::Polygon;

sub::Subdivision QuadGrid() {
  std::vector<Polygon> cells;
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 2; ++gy) {
      const double x = gx, y = gy;
      cells.push_back(Polygon(
          {{x, y}, {x + 1, y}, {x + 1, y + 1}, {x, y + 1}}));
    }
  }
  auto r = sub::Subdivision::FromPolygons(BBox{0, 0, 2, 2}, cells);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(PartitionStyleTest, EnumerationCounts) {
  EXPECT_EQ(EnumerateStyles(4).size(), 4u);
  EXPECT_EQ(EnumerateStyles(5).size(), 8u);
  EXPECT_EQ(EnumerateStyles(2).size(), 4u);
}

TEST(PartitionTest, GridVerticalSplit) {
  const sub::Subdivision sub = QuadGrid();
  // Regions 0,1 are the left column; 2,3 the right.
  PartitionStyle style{PartitionDim::kYDim, SortKey::kMaxCoord, false};
  auto part_r = ComputePartition(sub, {0, 1, 2, 3}, style);
  ASSERT_TRUE(part_r.ok()) << part_r.status().ToString();
  const Partition& part = part_r.value();
  EXPECT_EQ(std::set<int>(part.first_group.begin(), part.first_group.end()),
            (std::set<int>{0, 1}));
  EXPECT_EQ(std::set<int>(part.second_group.begin(),
                          part.second_group.end()),
            (std::set<int>{2, 3}));
  // A clean straight division: both shortcut bounds at x = 1.
  EXPECT_DOUBLE_EQ(part.near_bound, 1.0);
  EXPECT_DOUBLE_EQ(part.far_bound, 1.0);
  // Query tests: no ray casting needed anywhere.
  bool shortcut = false;
  EXPECT_TRUE(PointInFirstSubspace(part, {0.5, 0.5}, &shortcut));
  EXPECT_TRUE(shortcut);
  EXPECT_FALSE(PointInFirstSubspace(part, {1.5, 1.5}, &shortcut));
  EXPECT_TRUE(shortcut);
}

TEST(PartitionTest, GridHorizontalSplit) {
  const sub::Subdivision sub = QuadGrid();
  PartitionStyle style{PartitionDim::kXDim, SortKey::kMaxCoord, false};
  auto part_r = ComputePartition(sub, {0, 1, 2, 3}, style);
  ASSERT_TRUE(part_r.ok()) << part_r.status().ToString();
  const Partition& part = part_r.value();
  // First (left-child) group is the UPPER subspace: regions 1 and 3.
  EXPECT_EQ(std::set<int>(part.first_group.begin(), part.first_group.end()),
            (std::set<int>{1, 3}));
  EXPECT_TRUE(PointInFirstSubspace(part, {0.5, 1.5}));
  EXPECT_FALSE(PointInFirstSubspace(part, {0.5, 0.5}));
}

TEST(PartitionTest, InterlockingPartitionUsesParity) {
  // Two L-shaped regions interlocking in the middle band.
  //  A: left column plus the lower middle; B: right column plus the upper
  //  middle.
  std::vector<Polygon> cells;
  cells.push_back(Polygon(
      {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}}));  // A (lower-left L)
  cells.push_back(Polygon(
      {{2, 0}, {3, 0}, {3, 2}, {1, 2}, {1, 1}, {2, 1}}));  // B
  auto sub_r = sub::Subdivision::FromPolygons(BBox{0, 0, 3, 2}, cells);
  ASSERT_TRUE(sub_r.ok()) << sub_r.status().ToString();
  ASSERT_OK(sub_r.value().Validate());
  PartitionStyle style{PartitionDim::kYDim, SortKey::kMaxCoord, false};
  auto part_r = ComputePartition(sub_r.value(), {0, 1}, style);
  ASSERT_TRUE(part_r.ok());
  const Partition& part = part_r.value();
  EXPECT_EQ(part.first_group, (std::vector<int>{0}));
  // A's rightmost x is 2, B's leftmost x is 1: interlocking band [1,2].
  EXPECT_DOUBLE_EQ(part.near_bound, 1.0);
  EXPECT_DOUBLE_EQ(part.far_bound, 2.0);
  // Points inside the band on each side of the division.
  bool shortcut = true;
  EXPECT_TRUE(PointInFirstSubspace(part, {1.5, 0.5}, &shortcut));  // in A
  EXPECT_FALSE(shortcut);
  EXPECT_FALSE(PointInFirstSubspace(part, {1.5, 1.5}, &shortcut));  // in B
  EXPECT_FALSE(shortcut);
  // Shortcut zones.
  EXPECT_TRUE(PointInFirstSubspace(part, {0.5, 1.0}, &shortcut));
  EXPECT_TRUE(shortcut);
  EXPECT_FALSE(PointInFirstSubspace(part, {2.5, 1.0}, &shortcut));
  EXPECT_TRUE(shortcut);
}

TEST(PartitionTest, PartitionSizeCountsScalars) {
  const sub::Subdivision sub = QuadGrid();
  PartitionStyle style{PartitionDim::kYDim, SortKey::kMaxCoord, false};
  auto part_r = ComputePartition(sub, {0, 1, 2, 3}, style);
  ASSERT_TRUE(part_r.ok());
  int scalar = 0;
  for (const auto& pl : part_r.value().polylines) {
    scalar += 2 * static_cast<int>(pl.pts.size() + (pl.closed ? 1 : 0));
  }
  EXPECT_EQ(part_r.value().num_scalar_coords, scalar);
  // The straight division x=1 from (1,0) to (1,2) via (1,1): 3 vertices,
  // 6 scalars.
  EXPECT_EQ(part_r.value().num_scalar_coords, 6);
}

TEST(PartitionTest, RejectsTooFewRegions) {
  const sub::Subdivision sub = QuadGrid();
  PartitionStyle style{PartitionDim::kYDim, SortKey::kMaxCoord, false};
  EXPECT_FALSE(ComputePartition(sub, {0}, style).ok());
}

TEST(PartitionTest, InterProbOfStraightSplitIsZero) {
  const sub::Subdivision sub = QuadGrid();
  PartitionStyle style{PartitionDim::kYDim, SortKey::kMaxCoord, false};
  auto part_r = ComputePartition(sub, {0, 1, 2, 3}, style);
  ASSERT_TRUE(part_r.ok());
  EXPECT_NEAR(InterProb(sub, {0, 1, 2, 3}, part_r.value()), 0.0, 1e-12);
}

TEST(PartitionTest, ChooseBestPicksSmallest) {
  // 1x4 row of cells: the vertical split between cells 1|2 is a single
  // segment and must win over any horizontal split (which would be the
  // whole long boundary).
  std::vector<Polygon> cells;
  for (int gx = 0; gx < 4; ++gx) {
    const double x = gx;
    cells.push_back(Polygon({{x, 0}, {x + 1, 0}, {x + 1, 1}, {x, 1}}));
  }
  auto sub_r = sub::Subdivision::FromPolygons(BBox{0, 0, 4, 1}, cells);
  ASSERT_TRUE(sub_r.ok());
  auto best_r = ChooseBestPartition(sub_r.value(), {0, 1, 2, 3}, true);
  ASSERT_TRUE(best_r.ok());
  EXPECT_EQ(best_r.value().style.dim, PartitionDim::kYDim);
  EXPECT_EQ(best_r.value().num_scalar_coords, 4);  // one segment
}

/// Property: for every style, every region's interior stays on the side
/// the grouping assigned it to.
class PartitionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionPropertyTest, GroupsMatchGeometry) {
  const int n = GetParam();
  const sub::Subdivision sub = test::RandomVoronoi(n, 77 + n);
  std::vector<int> all(sub.NumRegions());
  for (int i = 0; i < sub.NumRegions(); ++i) all[i] = i;
  Rng rng(n);
  for (const PartitionStyle& style : EnumerateStyles(n)) {
    auto part_r = ComputePartition(sub, all, style);
    ASSERT_TRUE(part_r.ok()) << part_r.status().ToString();
    const Partition& part = part_r.value();
    ASSERT_EQ(part.first_group.size() + part.second_group.size(),
              all.size());
    const std::set<int> first(part.first_group.begin(),
                              part.first_group.end());
    for (int r = 0; r < sub.NumRegions(); ++r) {
      // Sample interior points of the region and check the query test
      // sends them to the region's own group.
      const Polygon poly = sub.RegionPolygon(r);
      Point probe;
      ASSERT_TRUE(poly.InteriorPoint(&probe));
      if (poly.DistanceToBoundary(probe) < 1e-6) continue;
      EXPECT_EQ(PointInFirstSubspace(part, probe), first.count(r) > 0)
          << "region " << r << " style dim="
          << static_cast<int>(style.dim);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartitionPropertyTest,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

}  // namespace
}  // namespace dtree::core
