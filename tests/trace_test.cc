// Observability layer: trace events must account exactly for the
// simulated protocol (reads + dozes == latency), tracing must never
// change an outcome bit, the JSONL stream must be identical for every
// thread count, and the cycle profiler must attribute every index read.

#include <cmath>
#include <string>
#include <vector>

#include "broadcast/experiment.h"
#include "broadcast/trace.h"
#include "dtree/dtree.h"
#include "test_util.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

/// Sums what the events claim happened.
struct EventTally {
  int probe_reads = 0;
  int index_reads = 0;
  int bucket_reads = 0;
  int losses = 0;
  int retunes = 0;
  int corruptions = 0;
  int fallback_scans = 0;
  int fallback_listened = 0;
  double doze = 0.0;
  int annotated_index_reads = 0;
};

EventTally Tally(const QueryTrace& qt) {
  EventTally t;
  for (const TraceEvent& e : qt.events) {
    switch (e.kind) {
      case TraceEventKind::kProbe:
        ++t.probe_reads;
        break;
      case TraceEventKind::kDoze:
        EXPECT_GT(e.dur, 0.0);
        t.doze += e.dur;
        break;
      case TraceEventKind::kIndexRead:
        ++t.index_reads;
        if (e.depth >= 0) ++t.annotated_index_reads;
        break;
      case TraceEventKind::kBucketRead:
        EXPECT_GE(e.packet, 1);
        t.bucket_reads += e.packet;
        break;
      case TraceEventKind::kLoss:
        ++t.losses;
        break;
      case TraceEventKind::kRetune:
        EXPECT_GE(e.attempt, 1);
        ++t.retunes;
        break;
      case TraceEventKind::kCorruption:
        ++t.corruptions;
        break;
      case TraceEventKind::kFallbackScan:
        EXPECT_GE(e.packet, 0);
        EXPECT_GE(e.attempt, 0);
        ++t.fallback_scans;
        t.fallback_listened += e.packet;
        break;
      case TraceEventKind::kEpochSwitch:
        ADD_FAILURE() << "single-epoch traces never switch";
        break;
    }
  }
  return t;
}

class TraceChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sub_ = test::RandomVoronoi(60, 321);
    core::DTree::Options topt;
    topt.packet_capacity = 128;
    auto tree = core::DTree::Build(sub_, topt);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::make_unique<core::DTree>(std::move(tree).value());
    ChannelOptions copt;
    copt.packet_capacity = 128;
    auto ch = BroadcastChannel::Create(tree_->NumIndexPackets(),
                                       sub_.NumRegions(), copt);
    ASSERT_TRUE(ch.ok()) << ch.status().ToString();
    channel_ = std::make_unique<BroadcastChannel>(std::move(ch).value());
  }

  sub::Subdivision sub_{};
  std::unique_ptr<core::DTree> tree_;
  std::unique_ptr<BroadcastChannel> channel_;
};

TEST_F(TraceChannelTest, EventsAccountForEveryPacketAndDoze) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const geom::Point p = test::UnambiguousQueryPoint(sub_, &rng);
    auto probe = tree_->Probe(p);
    ASSERT_TRUE(probe.ok());
    const double arrival = rng.Uniform(
        0.0, static_cast<double>(channel_->cycle_packets()));
    QueryTrace qt;
    auto out = channel_->Simulate(probe.value(), arrival, 0, &qt);
    ASSERT_TRUE(out.ok());
    const auto& o = out.value();

    const EventTally t = Tally(qt);
    EXPECT_EQ(t.probe_reads, o.tuning_probe);
    EXPECT_EQ(t.index_reads, o.tuning_index);
    EXPECT_EQ(t.bucket_reads, o.tuning_data);
    EXPECT_EQ(t.losses, o.lost_packets);
    EXPECT_EQ(t.retunes, o.retries);
    // Every awake packet and every doze interval is accounted: their sum
    // is exactly the access latency.
    EXPECT_NEAR(t.doze + o.tuning_total(), o.latency, 1e-6);
    // D-tree probes annotate their full path.
    EXPECT_EQ(t.annotated_index_reads, t.index_reads);
    // Summary mirror.
    EXPECT_EQ(qt.latency, o.latency);
    EXPECT_EQ(qt.tuning_total, o.tuning_total());
    EXPECT_EQ(qt.retries, o.retries);
    EXPECT_EQ(qt.unrecoverable, o.unrecoverable);
  }
}

TEST_F(TraceChannelTest, EventsAccountUnderLoss) {
  LossOptions loss;
  loss.model = LossModel::kIid;
  loss.loss_rate = 0.15;
  loss.seed = 9;
  ChannelOptions copt;
  copt.packet_capacity = 128;
  copt.loss = loss;
  auto ch_r = BroadcastChannel::Create(tree_->NumIndexPackets(),
                                       sub_.NumRegions(), copt);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();

  Rng rng(6);
  int total_losses = 0;
  for (int i = 0; i < 500; ++i) {
    const geom::Point p = test::UnambiguousQueryPoint(sub_, &rng);
    auto probe = tree_->Probe(p);
    ASSERT_TRUE(probe.ok());
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    QueryTrace qt;
    auto out = ch.Simulate(probe.value(), arrival,
                           static_cast<uint64_t>(i), &qt);
    ASSERT_TRUE(out.ok());
    const auto& o = out.value();
    const EventTally t = Tally(qt);
    EXPECT_EQ(t.probe_reads, o.tuning_probe);
    EXPECT_EQ(t.index_reads, o.tuning_index);
    EXPECT_EQ(t.bucket_reads, o.tuning_data);
    EXPECT_EQ(t.losses, o.lost_packets);
    EXPECT_EQ(t.retunes, o.retries);
    EXPECT_NEAR(t.doze + o.tuning_total(), o.latency, 1e-6);
    total_losses += t.losses;
  }
  EXPECT_GT(total_losses, 0) << "loss model never fired at 15%";
}

TEST_F(TraceChannelTest, TracingDoesNotChangeTheOutcome) {
  LossOptions loss;
  loss.model = LossModel::kIid;
  loss.loss_rate = 0.1;
  loss.seed = 4;
  ChannelOptions copt;
  copt.packet_capacity = 128;
  copt.loss = loss;
  auto ch_r = BroadcastChannel::Create(tree_->NumIndexPackets(),
                                       sub_.NumRegions(), copt);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const geom::Point p = test::UnambiguousQueryPoint(sub_, &rng);
    auto probe = tree_->Probe(p);
    ASSERT_TRUE(probe.ok());
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    auto plain = ch.Simulate(probe.value(), arrival,
                             static_cast<uint64_t>(i));
    QueryTrace qt;
    auto traced = ch.Simulate(probe.value(), arrival,
                              static_cast<uint64_t>(i), &qt);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(traced.ok());
    EXPECT_EQ(plain.value().latency, traced.value().latency);
    EXPECT_EQ(plain.value().tuning_probe, traced.value().tuning_probe);
    EXPECT_EQ(plain.value().tuning_index, traced.value().tuning_index);
    EXPECT_EQ(plain.value().tuning_data, traced.value().tuning_data);
    EXPECT_EQ(plain.value().retries, traced.value().retries);
    EXPECT_EQ(plain.value().lost_packets, traced.value().lost_packets);
    EXPECT_EQ(plain.value().unrecoverable, traced.value().unrecoverable);
  }
}

TEST(TraceJsonTest, FormatsAndEscapes) {
  QueryTrace qt;
  qt.query_index = 3;
  qt.x = 1.5;
  qt.y = -2.25;
  qt.region = 7;
  qt.arrival = 10.5;
  qt.latency = 12.5;
  qt.tuning_total = 3;
  TraceEvent doze;
  doze.kind = TraceEventKind::kDoze;
  doze.pos = 11;
  doze.dur = 0.5;
  qt.events.push_back(doze);
  TraceEvent read;
  read.kind = TraceEventKind::kIndexRead;
  read.pos = 11;
  read.packet = 4;
  read.node = 9;
  read.depth = 2;
  qt.events.push_back(read);
  const std::string line = FormatQueryTraceJson(qt, "a\"b\\c");
  EXPECT_NE(line.find("\"q\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"cell\": \"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(line.find("{\"t\": \"doze\", \"pos\": 11, \"dur\": 0.5}"),
            std::string::npos);
  EXPECT_NE(line.find("{\"t\": \"index\", \"pos\": 11, \"pkt\": 4, "
                      "\"node\": 9, \"depth\": 2}"),
            std::string::npos);

  std::string buf;
  JsonlTraceSink sink(&buf);
  sink.set_label("a\"b\\c");
  sink.Consume(qt);
  EXPECT_EQ(buf, line + "\n");
  EXPECT_EQ(sink.lines_written(), 1u);
}

/// JSONL stream is keyed and ordered by global query index, identical for
/// every thread count — the acceptance criterion for tracing enabled.
TEST(TraceExperimentTest, JsonlIdenticalAcrossThreadCounts) {
  const sub::Subdivision sub = test::RandomVoronoi(40, 642);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());

  auto run = [&](int threads, std::string* out) {
    JsonlTraceSink sink(out);
    sink.set_label("cell");
    ExperimentOptions opt;
    opt.packet_capacity = 256;
    opt.num_queries = 4000;
    opt.seed = 17;
    opt.num_threads = threads;
    opt.loss.model = LossModel::kIid;  // include loss/retune events
    opt.loss.loss_rate = 0.05;
    opt.loss.seed = 18;
    opt.trace_sink = &sink;
    auto res = RunExperiment(tree.value(), sub, nullptr, opt);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  };

  std::string one, four, eight;
  run(1, &one);
  run(4, &four);
  run(8, &eight);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);

  // Ordered by global query index: q strictly increases line by line.
  size_t start = 0;
  long long prev = -1;
  int lines = 0;
  while (start < one.size()) {
    const size_t eol = one.find('\n', start);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = one.substr(start, eol - start);
    const size_t qpos = line.find("{\"q\": ");
    ASSERT_EQ(qpos, 0u) << line;
    const long long q = std::atoll(line.c_str() + 6);
    EXPECT_EQ(q, prev + 1);
    prev = q;
    ++lines;
    start = eol + 1;
  }
  EXPECT_EQ(lines, 4000);
}

TEST(TraceExperimentTest, CycleProfilerAttributesEveryIndexRead) {
  const sub::Subdivision sub = test::RandomVoronoi(60, 643);
  core::DTree::Options topt;
  topt.packet_capacity = 256;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());

  ChannelOptions copt;
  copt.packet_capacity = 256;
  auto ch = BroadcastChannel::Create(tree.value().NumIndexPackets(),
                                     sub.NumRegions(), copt);
  ASSERT_TRUE(ch.ok());

  CycleProfiler profiler(ch.value().cycle_packets(), 8);
  ExperimentOptions opt;
  opt.packet_capacity = 256;
  opt.num_queries = 5000;
  opt.seed = 23;
  opt.trace_sink = &profiler;
  auto res = RunExperiment(tree.value(), sub, nullptr, opt);
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  EXPECT_EQ(profiler.queries(), 5000u);
  // The profiler's distributions agree with the driver's aggregates. The
  // profiler sums latencies in global query order while the driver sums
  // per shard and merges, so the fractional latency mean matches only up
  // to FP association; integer-valued tuning sums are exact either way.
  EXPECT_NEAR(profiler.latency_hist().Mean(), res.value().mean_latency,
              1e-9 * res.value().mean_latency);
  EXPECT_EQ(profiler.latency_hist().Min(), res.value().min_latency);
  EXPECT_EQ(profiler.latency_hist().Max(), res.value().max_latency);
  EXPECT_DOUBLE_EQ(profiler.tuning_hist().Mean(),
                   res.value().mean_tuning_total);

  // Every index read is attributed to a D-tree level, none unknown, and
  // the per-level counts add up to the driver's tuning_index total.
  EXPECT_EQ(profiler.unattributed_reads(), 0);
  int64_t level_total = 0;
  for (int64_t c : profiler.level_reads()) level_total += c;
  EXPECT_EQ(static_cast<double>(level_total),
            res.value().mean_tuning_index * 5000);
  ASSERT_FALSE(profiler.level_reads().empty());
  // The root level is read by every query.
  EXPECT_EQ(profiler.level_reads()[0], 5000);

  // Awake-packet position bins cover exactly the total tuning packets.
  int64_t awake = 0;
  for (int64_t c : profiler.position_reads()) awake += c;
  EXPECT_EQ(static_cast<double>(awake),
            res.value().mean_tuning_total * 5000);
}

TEST(TraceExperimentTest, HistogramPercentilesIndependentOfThreads) {
  const sub::Subdivision sub = test::RandomVoronoi(50, 644);
  core::DTree::Options topt;
  topt.packet_capacity = 128;
  auto tree = core::DTree::Build(sub, topt);
  ASSERT_TRUE(tree.ok());

  auto run = [&](int threads) {
    ExperimentOptions opt;
    opt.packet_capacity = 128;
    opt.num_queries = 8000;
    opt.seed = 31;
    opt.num_threads = threads;
    auto res = RunExperiment(tree.value(), sub, nullptr, opt);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return std::move(res).value();
  };
  const ExperimentResult a = run(1);
  const ExperimentResult b = run(8);
  for (const char* name :
       {kLatencyHist, kTuningIndexHist, kTuningTotalHist, kRetriesHist}) {
    const Histogram* ha = a.metrics.FindHistogram(name);
    const Histogram* hb = b.metrics.FindHistogram(name);
    ASSERT_NE(ha, nullptr);
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(ha->TotalCount(), hb->TotalCount());
    for (double p : {0.5, 0.95, 0.99}) {
      EXPECT_EQ(ha->Percentile(p), hb->Percentile(p)) << name;
    }
    EXPECT_EQ(ha->Min(), hb->Min()) << name;
    EXPECT_EQ(ha->Max(), hb->Max()) << name;
  }
}

}  // namespace
}  // namespace dtree::bcast
