// Property tests for the packet pager: random tree shapes and node sizes,
// across capacities, must always produce structurally sound layouts.

#include <map>

#include "broadcast/pager.h"
#include "common/rng.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

/// Random tree in BFS order (parents precede children) with node sizes in
/// [6, 3*capacity/2] so some nodes straddle packets.
PagingInput RandomTree(int n, int capacity, Rng* rng) {
  PagingInput input;
  input.sizes.reserve(n);
  input.parent.reserve(n);
  std::vector<int> children_count(n, 0);
  for (int i = 0; i < n; ++i) {
    input.sizes.push_back(static_cast<size_t>(
        rng->UniformInt(6, std::max(7, capacity * 3 / 2))));
    input.parent.push_back(i == 0 ? -1
                                  : static_cast<int>(rng->UniformInt(
                                        std::max(0, i - 8), i - 1)));
    if (i > 0) ++children_count[input.parent[i]];
  }
  input.is_leaf.resize(n);
  for (int i = 0; i < n; ++i) input.is_leaf[i] = children_count[i] == 0;
  return input;
}

/// Validates a paging result against its input.
void CheckPaging(const PagingInput& input, int capacity,
                 const PagingResult& result) {
  const size_t n = input.sizes.size();
  ASSERT_EQ(result.spans.size(), n);
  // Reconstruct per-packet byte intervals and verify no overlap and no
  // capacity violation.
  std::map<int, std::vector<std::pair<size_t, size_t>>> intervals;
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const NodeSpan& s = result.spans[i];
    ASSERT_GE(s.first_packet, 0);
    ASSERT_LT(s.last_packet(), result.num_packets);
    ASSERT_GE(s.num_packets, 1);
    // A span must start strictly inside its first packet: offset ==
    // capacity would be a zero-byte residency in a full packet.
    ASSERT_LT(s.offset, static_cast<size_t>(capacity));
    total += input.sizes[i];
    // Walk the node's bytes across its span.
    size_t remaining = input.sizes[i];
    size_t offset = s.offset;
    for (int p = s.first_packet; p <= s.last_packet(); ++p) {
      const size_t here =
          std::min(remaining, static_cast<size_t>(capacity) - offset);
      ASSERT_GT(here, 0u);
      intervals[p].emplace_back(offset, offset + here);
      remaining -= here;
      offset = 0;
    }
    ASSERT_EQ(remaining, 0u);
    // Forward-only: the node's span never starts before its parent's
    // last packet.
    if (input.parent[i] >= 0) {
      EXPECT_GE(s.first_packet,
                result.spans[input.parent[i]].last_packet());
    }
  }
  EXPECT_EQ(result.used_bytes, total);
  for (auto& [packet, list] : intervals) {
    std::sort(list.begin(), list.end());
    for (size_t j = 0; j + 1 < list.size(); ++j) {
      EXPECT_LE(list[j].second, list[j + 1].first)
          << "overlap in packet " << packet;
    }
    EXPECT_LE(list.back().second, static_cast<size_t>(capacity));
  }
}

class PagerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(PagerPropertyTest, RandomTreesStaySound) {
  const auto [n, capacity, merge] = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 131 + capacity + (merge ? 7 : 0));
  for (int trial = 0; trial < 20; ++trial) {
    const PagingInput input = RandomTree(n, capacity, &rng);
    auto result = TopDownPage(input, capacity, merge);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CheckPaging(input, capacity, result.value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PagerPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 17, 100, 400),
                       ::testing::Values(64, 256, 2048),
                       ::testing::Bool()));

// Regression for the exact-fit edge case: a node whose size is an exact
// multiple of the capacity leaves its last packet completely full, so a
// child anchored there must open a fresh packet rather than receive a
// zero-byte residency at offset == capacity.
TEST(PagerPropertyTest, ExactMultipleNodesPushChildrenToFreshPackets) {
  for (const int capacity : {64, 256}) {
    const size_t cap = static_cast<size_t>(capacity);
    for (const int multiple : {1, 2, 3}) {
      PagingInput input;
      // Root fills `multiple` packets exactly; node 2 fills one packet
      // exactly; nodes 1 and 3 are small children anchored to full packets.
      input.sizes = {cap * static_cast<size_t>(multiple), 10, cap, 10};
      input.parent = {-1, 0, 0, 2};
      input.is_leaf = {false, true, false, true};
      for (const bool merge : {false, true}) {
        auto result = TopDownPage(input, capacity, merge);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        CheckPaging(input, capacity, result.value());
      }
      // Without merging, the layout is fully determined: every child of an
      // exactly-full packet starts a fresh packet at offset 0.
      auto plain = TopDownPage(input, capacity, false);
      ASSERT_TRUE(plain.ok());
      const auto& spans = plain.value().spans;
      EXPECT_EQ(spans[0].num_packets, multiple);
      EXPECT_EQ(spans[1].first_packet, spans[0].last_packet() + 1);
      EXPECT_EQ(spans[1].offset, 0u);
      EXPECT_EQ(spans[2].first_packet, spans[1].first_packet + 1);
      EXPECT_EQ(spans[2].offset, 0u);
      EXPECT_EQ(spans[3].first_packet, spans[2].last_packet() + 1);
      EXPECT_EQ(spans[3].offset, 0u);
    }
  }
}

TEST(PagerPropertyTest, MergeNeverGrowsPacketCount) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 200));
    const int capacity = static_cast<int>(rng.UniformInt(32, 512));
    const PagingInput input = RandomTree(n, capacity, &rng);
    auto merged = TopDownPage(input, capacity, true);
    auto plain = TopDownPage(input, capacity, false);
    ASSERT_TRUE(merged.ok());
    ASSERT_TRUE(plain.ok());
    EXPECT_LE(merged.value().num_packets, plain.value().num_packets);
  }
}

TEST(GreedyPagePropertyTest, RandomSizesStaySound) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const int capacity = static_cast<int>(rng.UniformInt(32, 512));
    std::vector<size_t> sizes;
    const int n = static_cast<int>(rng.UniformInt(1, 300));
    for (int i = 0; i < n; ++i) {
      sizes.push_back(
          static_cast<size_t>(rng.UniformInt(1, capacity * 2)));
    }
    auto result = GreedyPage(sizes, capacity);
    ASSERT_TRUE(result.ok());
    PagingInput fake;
    fake.sizes = sizes;
    fake.parent.assign(sizes.size(), -1);
    fake.is_leaf.assign(sizes.size(), true);
    CheckPaging(fake, capacity, result.value());
    // Greedy is order-preserving: spans start in non-decreasing packets.
    for (size_t i = 1; i < result.value().spans.size(); ++i) {
      EXPECT_GE(result.value().spans[i].first_packet,
                result.value().spans[i - 1].first_packet);
    }
  }
}

}  // namespace
}  // namespace dtree::bcast
