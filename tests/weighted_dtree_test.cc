// Tests for the skew-aware (access-weighted) D-tree extension.

#include <numeric>

#include "broadcast/experiment.h"
#include "dtree/dtree.h"
#include "test_util.h"
#include "workload/datasets.h"

#include "gtest/gtest.h"

namespace dtree::core {
namespace {

using geom::Point;

TEST(ZipfWeightsTest, ShapeAndDeterminism) {
  Rng rng1(5), rng2(5);
  const auto w1 = workload::ZipfWeights(100, 0.8, &rng1);
  const auto w2 = workload::ZipfWeights(100, 0.8, &rng2);
  EXPECT_EQ(w1, w2);
  ASSERT_EQ(w1.size(), 100u);
  for (double w : w1) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
  // Exactly one region holds the top weight 1/1^theta = 1.
  EXPECT_EQ(std::count(w1.begin(), w1.end(), 1.0), 1);
  // theta = 0 degenerates to uniform.
  Rng rng3(6);
  const auto uniform = workload::ZipfWeights(10, 0.0, &rng3);
  for (double w : uniform) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(WeightedDTreeTest, RejectsBadWeights) {
  const sub::Subdivision sub = test::RandomVoronoi(16, 41);
  DTree::Options o;
  o.packet_capacity = 128;
  o.access_weights = {1.0, 2.0};  // wrong length
  EXPECT_FALSE(DTree::Build(sub, o).ok());
  o.access_weights.assign(16, 0.0);  // all zero
  EXPECT_FALSE(DTree::Build(sub, o).ok());
  o.access_weights.assign(16, 1.0);
  o.access_weights[3] = -1.0;  // negative
  EXPECT_FALSE(DTree::Build(sub, o).ok());
}

TEST(WeightedDTreeTest, UniformWeightsMatchBalancedStructure) {
  const sub::Subdivision sub = test::RandomVoronoi(32, 43);
  DTree::Options plain;
  plain.packet_capacity = 128;
  DTree::Options weighted = plain;
  weighted.access_weights.assign(32, 1.0);
  auto a = DTree::Build(sub, plain);
  auto b = DTree::Build(sub, weighted);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Equal weights split at the same place as equal counts for even n.
  EXPECT_EQ(a.value().height(), b.value().height());
  EXPECT_EQ(a.value().num_nodes(), b.value().num_nodes());
}

TEST(WeightedDTreeTest, AgreesWithOracleUnderSkew) {
  const sub::Subdivision sub = test::ClusteredVoronoi(90, 44);
  Rng wrng(45);
  DTree::Options o;
  o.packet_capacity = 128;
  o.access_weights = workload::ZipfWeights(90, 1.0, &wrng);
  auto tree_r = DTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok()) << tree_r.status().ToString();
  const sub::PointLocator oracle(sub);
  Rng rng(46);
  for (int q = 0; q < 1500; ++q) {
    const Point p = test::UnambiguousQueryPoint(sub, &rng);
    EXPECT_EQ(tree_r.value().Locate(p), oracle.Locate(p));
  }
}

/// Depth of the leaf data pointer for `region`.
int RegionDepth(const DTree& tree, int region) {
  for (int i = 0; i < tree.num_nodes(); ++i) {
    const DTreeNode& n = tree.node(i);
    if (n.left_region == region || n.right_region == region) {
      return n.depth + 1;
    }
  }
  ADD_FAILURE() << "region " << region << " not found";
  return -1;
}

TEST(WeightedDTreeTest, HotRegionsSitHigher) {
  const sub::Subdivision sub = test::RandomVoronoi(128, 47);
  Rng wrng(48);
  std::vector<double> weights = workload::ZipfWeights(128, 1.2, &wrng);
  DTree::Options plain;
  plain.packet_capacity = 256;
  DTree::Options skewed = plain;
  skewed.access_weights = weights;
  auto a = DTree::Build(sub, plain);
  auto b = DTree::Build(sub, skewed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Weighted expected depth (by access probability) must improve.
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double exp_plain = 0.0, exp_skewed = 0.0;
  for (int r = 0; r < 128; ++r) {
    exp_plain += weights[r] / total * RegionDepth(a.value(), r);
    exp_skewed += weights[r] / total * RegionDepth(b.value(), r);
  }
  EXPECT_LT(exp_skewed, exp_plain);
  // And the hottest region specifically is at most as deep as in the
  // balanced tree.
  const int hottest = static_cast<int>(
      std::max_element(weights.begin(), weights.end()) - weights.begin());
  EXPECT_LE(RegionDepth(b.value(), hottest),
            RegionDepth(a.value(), hottest));
}

TEST(WeightedDTreeTest, SkewedExperimentEndToEnd) {
  const sub::Subdivision sub = test::RandomVoronoi(64, 49);
  Rng wrng(50);
  std::vector<double> weights = workload::ZipfWeights(64, 1.0, &wrng);
  DTree::Options o;
  o.packet_capacity = 128;
  o.access_weights = weights;
  auto tree_r = DTree::Build(sub, o);
  ASSERT_TRUE(tree_r.ok());
  bcast::ExperimentOptions opt;
  opt.packet_capacity = 128;
  opt.num_queries = 2000;
  opt.distribution = bcast::QueryDistribution::kWeightedRegion;
  opt.region_weights = weights;
  const sub::PointLocator oracle(sub);
  auto res = bcast::RunExperiment(tree_r.value(), sub, &oracle, opt);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(res.value().indexing_efficiency, 0.0);
}

TEST(QuerySamplerTest, WeightedSamplingFollowsWeights) {
  const sub::Subdivision sub = test::RandomVoronoi(4, 51);
  std::vector<double> weights{8.0, 1.0, 1.0, 0.0};
  auto sampler_r = bcast::QuerySampler::Create(
      sub, bcast::QueryDistribution::kWeightedRegion, weights);
  ASSERT_TRUE(sampler_r.ok());
  const sub::PointLocator oracle(sub);
  Rng rng(52);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++hits[oracle.Locate(sampler_r.value().Draw(&rng))];
  }
  EXPECT_EQ(hits[3], 0);             // zero-weight region never drawn
  EXPECT_GT(hits[0], 4 * hits[1]);   // 8x weight dominates
  EXPECT_GT(hits[1], 100);
}

TEST(QuerySamplerTest, RejectsBadWeights) {
  const sub::Subdivision sub = test::RandomVoronoi(4, 53);
  EXPECT_FALSE(bcast::QuerySampler::Create(
                   sub, bcast::QueryDistribution::kWeightedRegion, {1.0})
                   .ok());
  EXPECT_FALSE(bcast::QuerySampler::Create(
                   sub, bcast::QueryDistribution::kWeightedRegion,
                   {1.0, -1.0, 1.0, 1.0})
                   .ok());
  EXPECT_FALSE(bcast::QuerySampler::Create(
                   sub, bcast::QueryDistribution::kWeightedRegion,
                   {0.0, 0.0, 0.0, 0.0})
                   .ok());
}

}  // namespace
}  // namespace dtree::core
