// Property tests for the (1, m) broadcast channel: random configurations
// and random (valid) probe traces must respect the protocol's physical
// invariants.

#include <algorithm>

#include "broadcast/channel.h"
#include "common/rng.h"

#include "gtest/gtest.h"

namespace dtree::bcast {
namespace {

class ChannelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChannelPropertyTest, RandomTracesRespectInvariants) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    ChannelOptions opt;
    opt.packet_capacity = static_cast<int>(rng.UniformInt(32, 2048));
    opt.m = static_cast<int>(rng.UniformInt(0, 6));  // 0 = optimal
    const int regions = static_cast<int>(rng.UniformInt(1, 200));
    const int index_packets = static_cast<int>(rng.UniformInt(0, 300));
    auto ch_r = BroadcastChannel::Create(index_packets, regions, opt);
    ASSERT_TRUE(ch_r.ok()) << ch_r.status().ToString();
    const BroadcastChannel& ch = ch_r.value();

    // Layout invariants.
    ASSERT_GE(ch.m(), 1);
    ASSERT_LE(ch.m(), regions);
    ASSERT_EQ(ch.cycle_packets(),
              ch.data_packets() +
                  static_cast<int64_t>(ch.m()) * ch.index_packets());
    int64_t prev_start = -1;
    for (int j = 0; j < ch.m(); ++j) {
      const int64_t s = ch.IndexSegmentStart(j);
      ASSERT_GT(s, prev_start);
      ASSERT_LT(s, ch.cycle_packets());
      prev_start = s;
    }
    for (int r = 0; r < regions; ++r) {
      const int64_t b = ch.BucketStart(r);
      ASSERT_GE(b, 0);
      ASSERT_LE(b + ch.bucket_packets(), ch.cycle_packets());
      if (r > 0) {
        ASSERT_GT(b, ch.BucketStart(r - 1));
      }
    }

    // Random queries with random (possibly backward) traces.
    for (int q = 0; q < 40; ++q) {
      ProbeTrace trace;
      trace.region = static_cast<int>(rng.UniformInt(0, regions - 1));
      const int hops = static_cast<int>(
          rng.UniformInt(0, std::min(index_packets, 20)));
      int prev = -1;
      for (int h = 0; h < hops; ++h) {
        int id = static_cast<int>(rng.UniformInt(0, index_packets - 1));
        if (id == prev) continue;  // traces never re-read in place
        trace.packets.push_back(id);
        prev = id;
      }
      const double arrival =
          rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
      auto out_r = ch.Simulate(trace, arrival);
      ASSERT_TRUE(out_r.ok()) << out_r.status().ToString();
      const auto& out = out_r.value();
      // Latency at least covers reading the bucket after the probe packet.
      EXPECT_GE(out.latency, ch.bucket_packets());
      EXPECT_EQ(out.tuning_probe, 1);
      EXPECT_EQ(out.tuning_index, static_cast<int>(trace.packets.size()));
      EXPECT_EQ(out.tuning_data, ch.bucket_packets());
      // Tuning never exceeds the time spent listening.
      EXPECT_LE(out.tuning_total(), out.latency + 1.0);
      // A client can always be served within (index hops + 3) cycles.
      EXPECT_LE(out.latency,
                static_cast<double>(ch.cycle_packets()) *
                    (trace.packets.size() + 3.0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelPropertyTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(ChannelPropertyTest, ForwardTraceWithinTwoCycles) {
  // Forward-only traces (every real tree index) complete within two
  // cycles: one to reach the next index, one to reach the data.
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    ChannelOptions opt;
    opt.packet_capacity = 256;
    opt.m = static_cast<int>(rng.UniformInt(1, 4));
    const int regions = static_cast<int>(rng.UniformInt(2, 100));
    const int index_packets = static_cast<int>(rng.UniformInt(1, 60));
    auto ch_r = BroadcastChannel::Create(index_packets, regions, opt);
    ASSERT_TRUE(ch_r.ok());
    const BroadcastChannel& ch = ch_r.value();
    ProbeTrace trace;
    trace.region = static_cast<int>(rng.UniformInt(0, regions - 1));
    int id = 0;
    while (id < index_packets) {
      trace.packets.push_back(id);
      id += static_cast<int>(rng.UniformInt(1, 5));
    }
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    auto out_r = ch.Simulate(trace, arrival);
    ASSERT_TRUE(out_r.ok());
    EXPECT_LE(out_r.value().latency,
              2.0 * static_cast<double>(ch.cycle_packets()) + 1.0);
  }
}

TEST(ChannelPropertyTest, NoIndexWorseOnAverageTuning) {
  // Averaged over arrivals, listening without an index costs about half a
  // data cycle of tuning — the baseline air indexing exists to beat.
  ChannelOptions opt;
  opt.packet_capacity = 1024;
  opt.m = 1;
  auto ch_r = BroadcastChannel::Create(10, 50, opt);
  ASSERT_TRUE(ch_r.ok());
  const BroadcastChannel& ch = ch_r.value();
  Rng rng(5);
  double total = 0.0;
  const int kQueries = 5000;
  for (int q = 0; q < kQueries; ++q) {
    const int region = static_cast<int>(rng.UniformInt(0, 49));
    const double arrival =
        rng.Uniform(0.0, static_cast<double>(ch.cycle_packets()));
    total += ch.SimulateNoIndex(region, arrival).tuning_total();
  }
  const double mean = total / kQueries;
  EXPECT_NEAR(mean, ch.data_packets() / 2.0, ch.data_packets() * 0.05);
}

}  // namespace
}  // namespace dtree::bcast
